#ifndef MINOS_RENDER_FONT5X7_H_
#define MINOS_RENDER_FONT5X7_H_

#include <cstdint>

#include "minos/image/bitmap.h"

namespace minos::render {

/// Fixed 5x7 raster font covering printable ASCII (32..126). The SUN-3
/// workstation drew text with its display firmware fonts; the reproduction
/// embeds a small public-domain-style glyph set so that visual pages are
/// self-contained and deterministic.
///
/// Glyphs are stored as 5 column bytes; bit 0 is the top row.
struct Font5x7 {
  static constexpr int kGlyphWidth = 5;
  static constexpr int kGlyphHeight = 7;
  static constexpr int kCellWidth = 6;   ///< Glyph + 1 px spacing.
  static constexpr int kCellHeight = 9;  ///< Glyph + leading + underline row.

  /// The 5 column bytes of `c` (space for characters outside 32..126).
  static const uint8_t* Glyph(char c);

  /// Draws one character with its top-left cell corner at (x, y).
  static void DrawChar(image::Bitmap* bm, int x, int y, char c, uint8_t ink,
                       bool bold = false, bool underline = false);

  /// Draws a string; returns the x coordinate after the last cell.
  static int DrawString(image::Bitmap* bm, int x, int y,
                        std::string_view text, uint8_t ink,
                        bool bold = false, bool underline = false);

  /// Draws a string at an integer scale factor ("letter sizes", §3):
  /// each glyph pixel becomes a scale x scale block. Returns the x
  /// coordinate after the last cell.
  static int DrawStringScaled(image::Bitmap* bm, int x, int y,
                              std::string_view text, int scale,
                              uint8_t ink);
};

}  // namespace minos::render

#endif  // MINOS_RENDER_FONT5X7_H_
