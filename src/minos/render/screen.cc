#include "minos/render/screen.h"

#include <algorithm>

#include "minos/render/font5x7.h"

namespace minos::render {

using image::Bitmap;
using image::Rect;

Screen::Screen(ScreenLayout layout)
    : layout_(layout), fb_(layout.width, layout.height) {}

void Screen::Clear() { fb_.Fill(0); }

void Screen::ClearRegion(const Rect& region) { fb_.FillRect(region, 0); }

Rect Screen::PageArea() const {
  return Rect{0, 0, layout_.width - layout_.menu_width, layout_.height};
}

Rect Screen::MenuArea() const {
  return Rect{layout_.width - layout_.menu_width, 0, layout_.menu_width,
              layout_.height};
}

Rect Screen::MessageArea() const {
  const Rect page = PageArea();
  return Rect{page.x, page.y, page.w,
              std::min(layout_.message_height, page.h)};
}

Rect Screen::LowerPageArea() const {
  const Rect page = PageArea();
  const int top = std::min(layout_.message_height, page.h);
  return Rect{page.x, page.y + top, page.w, page.h - top};
}

void Screen::DrawTextPage(const text::TextPage& page, const Rect& region) {
  ClearRegion(region);
  const int cw = Font5x7::kCellWidth;
  const int ch = Font5x7::kCellHeight;
  const int max_lines = region.h / ch;
  const int max_cols = region.w / cw;
  for (size_t li = 0;
       li < page.lines.size() && static_cast<int>(li) < max_lines; ++li) {
    std::string_view line = page.lines[li];
    if (static_cast<int>(line.size()) > max_cols) {
      line = line.substr(0, static_cast<size_t>(max_cols));
    }
    const int y = region.y + static_cast<int>(li) * ch;
    // Plain pass first.
    DrawText(region.x, y, line, 255, false, false);
    // Style runs over it.
    for (const text::StyledRun& run : page.styles) {
      if (run.line != static_cast<int>(li)) continue;
      const int from = std::clamp(run.col_begin, 0, max_cols);
      const int to = std::clamp(run.col_end, 0, max_cols);
      if (from >= to) continue;
      const bool bold = run.kind == text::Emphasis::kBold;
      const bool underline = run.kind == text::Emphasis::kUnderline ||
                             run.kind == text::Emphasis::kItalic;
      DrawText(region.x + from * cw, y,
               line.substr(static_cast<size_t>(from),
                           static_cast<size_t>(to - from)),
               255, bold, underline);
    }
  }
}

void Screen::DrawText(int x, int y, std::string_view line, uint8_t ink,
                      bool bold, bool underline) {
  Font5x7::DrawString(&fb_, x, y, line, ink, bold, underline);
}

void Screen::DrawTextScaled(int x, int y, std::string_view line, int scale,
                            uint8_t ink) {
  Font5x7::DrawStringScaled(&fb_, x, y, line, scale, ink);
}

void Screen::DrawBitmap(const Bitmap& bm, const Rect& region) {
  Bitmap clipped = bm;
  if (bm.width() > region.w || bm.height() > region.h) {
    clipped = bm.SubBitmap(Rect{0, 0, region.w, region.h});
  }
  fb_.Blit(clipped, region.x, region.y);
}

void Screen::BlendBitmap(const Bitmap& bm, const Rect& region) {
  Bitmap clipped = bm;
  if (bm.width() > region.w || bm.height() > region.h) {
    clipped = bm.SubBitmap(Rect{0, 0, region.w, region.h});
  }
  fb_.BlendOver(clipped, region.x, region.y);
}

void Screen::OverwriteBitmap(const Bitmap& bm, const Rect& region) {
  Bitmap clipped = bm;
  if (bm.width() > region.w || bm.height() > region.h) {
    clipped = bm.SubBitmap(Rect{0, 0, region.w, region.h});
  }
  fb_.OverwriteBy(clipped, region.x, region.y);
}

void Screen::SetMenu(const std::vector<std::string>& options) {
  const Rect menu = MenuArea();
  ClearRegion(menu);
  // Separator line between page and menu.
  for (int y = 0; y < menu.h; ++y) fb_.Set(menu.x, y, 255);
  const int row_height = Font5x7::kCellHeight + 6;
  int y = menu.y + 4;
  for (const std::string& option : options) {
    if (y + row_height > menu.y + menu.h) break;
    // Option box.
    const Rect box{menu.x + 3, y, menu.w - 6, row_height - 2};
    for (int x = box.x; x < box.x + box.w; ++x) {
      fb_.Blend(x, box.y, 120);
      fb_.Blend(x, box.y + box.h - 1, 120);
    }
    for (int by = box.y; by < box.y + box.h; ++by) {
      fb_.Blend(box.x, by, 120);
      fb_.Blend(box.x + box.w - 1, by, 120);
    }
    const int max_cols = (box.w - 4) / Font5x7::kCellWidth;
    std::string_view label = option;
    if (static_cast<int>(label.size()) > max_cols) {
      label = label.substr(0, static_cast<size_t>(std::max(0, max_cols)));
    }
    DrawText(box.x + 2, box.y + 2, label, 255);
    y += row_height;
  }
}

void Screen::DrawStatusLine(std::string_view status) {
  const Rect page = PageArea();
  const int y = page.y + page.h - Font5x7::kCellHeight;
  ClearRegion(Rect{page.x, y, page.w, Font5x7::kCellHeight});
  DrawText(page.x + 2, y, status, 200);
}

image::Bitmap Screen::PageSnapshot() const {
  return fb_.SubBitmap(PageArea());
}

}  // namespace minos::render
