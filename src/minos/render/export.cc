#include "minos/render/export.h"

#include <algorithm>
#include <cstdio>

namespace minos::render {

Status WritePgm(const image::Bitmap& bm, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open " + path + " for writing");
  }
  std::fprintf(f, "P5\n%d %d\n255\n", bm.width(), bm.height());
  for (int y = 0; y < bm.height(); ++y) {
    for (int x = 0; x < bm.width(); ++x) {
      // Invert: ink 255 -> black (0) on white paper.
      const unsigned char v =
          static_cast<unsigned char>(255 - bm.At(x, y));
      std::fputc(v, f);
    }
  }
  std::fclose(f);
  return Status::OK();
}

std::string ToAscii(const image::Bitmap& bm, int max_width) {
  std::string out;
  if (bm.empty() || max_width <= 0) return out;
  static const char kRamp[] = " .:-=+*#%@";
  const int levels = static_cast<int>(sizeof(kRamp)) - 1;  // 10 glyphs.
  const int step = std::max(1, (bm.width() + max_width - 1) / max_width);
  // Character cells are roughly twice as tall as wide.
  const int ystep = step * 2;
  for (int y = 0; y < bm.height(); y += ystep) {
    for (int x = 0; x < bm.width(); x += step) {
      uint32_t sum = 0;
      int n = 0;
      for (int dy = 0; dy < ystep && y + dy < bm.height(); ++dy) {
        for (int dx = 0; dx < step && x + dx < bm.width(); ++dx) {
          sum += bm.At(x + dx, y + dy);
          ++n;
        }
      }
      const int avg = n > 0 ? static_cast<int>(sum / n) : 0;
      out.push_back(kRamp[avg * levels / 256]);
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace minos::render
