#ifndef MINOS_RENDER_EXPORT_H_
#define MINOS_RENDER_EXPORT_H_

#include <string>

#include "minos/image/bitmap.h"
#include "minos/util/status.h"

namespace minos::render {

/// Writes a bitmap as a binary PGM (grayscale; ink 255 renders black so
/// pages look like paper).
Status WritePgm(const image::Bitmap& bm, const std::string& path);

/// Renders a bitmap as ASCII art, downsampled so the output is at most
/// `max_width` characters wide. Used by examples to show pages in a
/// terminal.
std::string ToAscii(const image::Bitmap& bm, int max_width = 96);

}  // namespace minos::render

#endif  // MINOS_RENDER_EXPORT_H_
