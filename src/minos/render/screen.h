#ifndef MINOS_RENDER_SCREEN_H_
#define MINOS_RENDER_SCREEN_H_

#include <string>
#include <vector>

#include "minos/image/bitmap.h"
#include "minos/text/formatter.h"

namespace minos::render {

/// Pixel layout of the simulated workstation display. The figures in the
/// paper show the page content on the left and "some menu options
/// displayed ... in the right hand side of the screen" plus, for objects
/// with visual logical messages, a pinned strip at the top of the page.
struct ScreenLayout {
  int width = 512;
  int height = 400;
  int menu_width = 116;      ///< Right-hand menu strip.
  int message_height = 180;  ///< Top strip when a visual message is pinned.
};

/// The simulated workstation screen: a framebuffer with the MINOS screen
/// regions, text rendering through the built-in font, and deterministic
/// digests for the figure-reproduction benches. This is the substitute
/// for the SUN-3 bitmap display.
class Screen {
 public:
  explicit Screen(ScreenLayout layout = {});

  const ScreenLayout& layout() const { return layout_; }

  /// Blanks the whole framebuffer.
  void Clear();

  /// Blanks one region.
  void ClearRegion(const image::Rect& region);

  /// Screen regions -----------------------------------------------------

  /// Everything left of the menu strip.
  image::Rect PageArea() const;
  /// The right-hand menu strip.
  image::Rect MenuArea() const;
  /// Top strip of the page area (visual logical messages live here).
  image::Rect MessageArea() const;
  /// Page area minus the message strip.
  image::Rect LowerPageArea() const;

  /// Drawing ------------------------------------------------------------

  /// Renders a formatted text page into `region` (one font cell per
  /// character; content beyond the region is clipped). Emphasis runs are
  /// drawn bold/underlined/italic (italic renders as underline in the
  /// 5x7 font).
  void DrawTextPage(const text::TextPage& page, const image::Rect& region);

  /// Draws a single text line at a pixel position.
  void DrawText(int x, int y, std::string_view line, uint8_t ink = 255,
                bool bold = false, bool underline = false);

  /// Draws a line at an integer letter-size scale (§3: "various character
  /// fonts, letter sizes"); used for message headlines and titles.
  void DrawTextScaled(int x, int y, std::string_view line, int scale,
                      uint8_t ink = 255);

  /// Copies a bitmap into a region (top-left anchored, clipped).
  void DrawBitmap(const image::Bitmap& bm, const image::Rect& region);

  /// Lays bitmap ink over a region (transparency compositing).
  void BlendBitmap(const image::Bitmap& bm, const image::Rect& region);

  /// Replaces only inked pixels (overwrite compositing).
  void OverwriteBitmap(const image::Bitmap& bm, const image::Rect& region);

  /// Draws the menu strip with one boxed option per row. The option list
  /// is exactly the set of operations available for the current object
  /// ("the presentation and browsing functions ... are presented in the
  /// form of menu options", §2).
  void SetMenu(const std::vector<std::string>& options);

  /// Draws a one-line status at the bottom of the page area.
  void DrawStatusLine(std::string_view status);

  /// Inspection ----------------------------------------------------------

  const image::Bitmap& framebuffer() const { return fb_; }

  /// Copy of the page area pixels (what a user "sees" apart from menus).
  image::Bitmap PageSnapshot() const;

  /// Deterministic digest of the full framebuffer.
  uint64_t Digest() const { return fb_.Digest(); }

 private:
  ScreenLayout layout_;
  image::Bitmap fb_;
};

}  // namespace minos::render

#endif  // MINOS_RENDER_SCREEN_H_
