#ifndef MINOS_SESSION_SESSION_MANAGER_H_
#define MINOS_SESSION_SESSION_MANAGER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "minos/obs/metrics.h"
#include "minos/obs/trace.h"
#include "minos/runtime/task_pool.h"
#include "minos/server/object_store.h"
#include "minos/server/prefetch.h"
#include "minos/util/clock.h"
#include "minos/util/statusor.h"

namespace minos::session {

using SessionId = uint64_t;

/// Where one session is in its lifecycle. MINOS's presentation manager
/// (§5) binds one workstation to one user; the SessionManager multiplexes
/// thousands of such users over one shard fabric, so each gets an
/// explicit state machine instead of a dedicated Workstation:
///
///   kQueued --admit--> kIdle --search--> kSearching --> kBrowsing
///                        |                                  |
///                        +---------- open object -----------+
///                                        |
///                                     kReading  (page turns / jumps)
///                                        |
///                          close / idle-reap --> kClosed
enum class SessionState : uint8_t {
  kQueued = 0,     ///< Waiting for an admission slot.
  kIdle = 1,       ///< Admitted, no activity yet.
  kSearching = 2,  ///< A ranked query is in flight.
  kBrowsing = 3,   ///< Holding a result strip, nothing open.
  kReading = 4,    ///< An object is open; page events apply.
  kClosed = 5,     ///< Terminal (explicit close or idle reap).
};

/// One user action submitted to a PumpEpoch batch.
struct SessionEvent {
  enum class Kind : uint8_t {
    kSearch = 0,    ///< Ranked content query (`words`).
    kOpen = 1,      ///< Open `object` and deliver its first page.
    kPageTurn = 2,  ///< Move the cursor by `delta` pages.
    kJump = 3,      ///< Move the cursor to absolute `page`.
    kAppend = 4,    ///< Append `append_text` to `object` (writer flow).
    kClose = 5,     ///< End the session.
  };

  SessionId session = 0;
  Kind kind = Kind::kPageTurn;
  std::vector<std::string> words;  ///< kSearch.
  storage::ObjectId object = 0;    ///< kOpen / kAppend.
  int delta = 1;                   ///< kPageTurn.
  int page = 0;                    ///< kJump (1-based).
  std::string append_text;         ///< kAppend.
};

/// Per-event result of one PumpEpoch.
struct SessionOutcome {
  SessionId session = 0;
  SessionEvent::Kind kind = SessionEvent::Kind::kPageTurn;
  Status status = Status::OK();
  /// What the user waited for this event: prefetch residual plus any
  /// foreground staging time, including queueing behind earlier events
  /// bound for the same shard this epoch.
  Micros latency_us = 0;
  bool prefetch_hit = false;  ///< Page came out of the prefetch queue.
  size_t results = 0;         ///< Hit count (kSearch only).
};

/// Tuning knobs.
struct SessionOptions {
  /// Admission cap: sessions beyond it queue FIFO (never dropped) and
  /// admit as slots free up (close or reap).
  size_t max_concurrent = 256;
  /// A session with no event for this long is reaped at the next epoch:
  /// leases released, speculation cancelled, state kClosed.
  Micros idle_deadline_us = SecondsToMicros(30);
  /// Per-session cap on speculative bytes outstanding in the prefetch
  /// queue. A skimmer that hits its budget simply stops speculating
  /// until entries are consumed or evicted — it cannot starve readers.
  uint64_t prefetch_budget_bytes = 256 * 1024;
  /// Pages speculated per settled event, spaced by the learned stride.
  int speculate_depth = 2;
  /// Link leases per affinity group (shard). An Open that finds its
  /// shard's pool exhausted is deferred (retry next epoch), so one
  /// shard's fan-in is bounded.
  int streams_per_shard = 16;
  /// Top-k for ranked searches.
  size_t search_k = 8;
  /// Knobs for the shared prefetch queue the manager owns.
  server::PrefetchOptions prefetch;
  /// Statistics registry (the process default when null).
  obs::MetricsRegistry* registry = nullptr;
};

/// Event-driven front-end multiplexing thousands of concurrent
/// browse/search sessions over one ObjectStore (pazpar2's event loop +
/// session-object idiom, on virtual time). Admission control, idle
/// reaping, per-shard link leases, a shared PrefetchQueue with
/// per-session budgets, and a learned per-session stride replacing the
/// fixed pages-ahead speculation.
///
/// ## Epoch model
///
/// Events arrive in batches (PumpEpoch). Each epoch runs three phases:
///
///  1. Serial pre-pass, in submission order: reap idle sessions, admit
///     queued ones into freed slots, update cursors and learned strides,
///     and consume prefetched pages (each event's residual wait measured
///     in a private clock frame, so concurrent waits overlap).
///  2. Staging: events that missed prefetch stage their page bytes in
///     the foreground, grouped by shard affinity — groups run as one
///     TaskPool epoch (or inline frames without a pool), so different
///     shards overlap while one shard's arm serializes. Searches,
///     appends and closes run serially in a "front-end" frame.
///  3. Serial post-pass, in submission order: book per-event latency,
///     finish event spans at their virtual completion time, schedule
///     new speculation within each session's budget, and pump the
///     prefetch queue once.
///
/// Phase membership and every latency are pure functions of the event
/// order, so a storm of thousands of sessions is bit-identical at any
/// --workers count.
///
/// ## Tracing
///
/// Each admitted session roots one span (`session#<id>`), subject to the
/// tracer's SetSampleRate; every event of a sampled session is a child
/// span and its fabric work (staging, query scatter) hangs below that.
/// Sampled-out sessions record nothing.
class SessionManager {
 public:
  /// Writer-flow hook: the manager is store-topology-blind, so appends
  /// are delegated (a bench wires ShardRouter::Append here). Returns the
  /// status of the append.
  using AppendHandler =
      std::function<Status(storage::ObjectId, const std::string& text)>;

  /// `store` and `clock` are borrowed and must outlive the manager.
  SessionManager(server::ObjectStore* store, SimClock* clock,
                 SessionOptions options = {});
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Attaches the tracer (borrowed; null detaches) to the manager and
  /// the store underneath, so one session is one connected span tree.
  void SetTracer(obs::Tracer* tracer);

  /// Attaches a task pool (borrowed; null restores serial epochs) to
  /// the manager, the store and the prefetch queue.
  void SetTaskPool(runtime::TaskPool* pool);

  void SetAppendHandler(AppendHandler handler);

  /// Registers a session under `profile` (a free-form class label:
  /// "reader", "skimmer", ... — per-class latency histograms key on it).
  /// Admits immediately when a slot is free, else queues FIFO.
  SessionId Open(std::string profile);

  /// Runs one batch of events; outcome i corresponds to events[i].
  /// Idle sessions are reaped and queued sessions admitted first.
  std::vector<SessionOutcome> PumpEpoch(
      const std::vector<SessionEvent>& events);

  /// Introspection -------------------------------------------------------

  SessionState state(SessionId id) const;
  size_t active_count() const { return active_count_; }
  size_t queued_count() const;
  /// The learned stride (pages per turn) speculation uses for `id`.
  int stride(SessionId id) const;
  /// Whether the session's trace root was sampled in.
  bool sampled(SessionId id) const;
  /// Current page / page count of the session's open object (0 = none).
  int page(SessionId id) const;
  int page_count(SessionId id) const;
  /// Live link leases held against affinity group `affinity`.
  int lease_count(uint64_t affinity) const;
  /// The shared prefetch queue (owned by the manager).
  server::PrefetchQueue* prefetch() { return queue_.get(); }
  /// Total admitted-to-closed lifetime of sampled (traced) sessions —
  /// the measured_us a bench reconciles the trace snapshot against.
  Micros traced_active_us() const { return traced_active_us_; }

 private:
  struct PageRange {
    std::string part;
    uint64_t offset = 0;
    uint64_t length = 0;
  };

  /// Delivery plan of one object: per-page byte ranges derived from the
  /// skeleton descriptor, shared across sessions (each session keeps its
  /// own delivered-page set). `stamp` bumps on append invalidation.
  struct Plan {
    uint64_t stamp = 0;
    std::vector<std::vector<PageRange>> pages;  ///< [page-1] -> ranges.
    std::vector<uint64_t> page_bytes;           ///< [page-1] -> total.
  };

  struct Session {
    SessionId id = 0;
    std::string profile;
    SessionState state = SessionState::kQueued;
    Micros last_activity = 0;
    Micros admitted_at = 0;
    storage::ObjectId object = 0;  ///< Open object (0 = none).
    int page = 0;                  ///< 1-based cursor.
    int page_count = 0;
    uint64_t plan_stamp = 0;        ///< Plan generation delivered against.
    std::set<int> delivered;        ///< Pages of `object` at the terminal.
    double stride_ewma = 1.0;       ///< Learned pages-per-turn.
    std::set<uint64_t> leases;      ///< Affinity groups leased.
    obs::TraceContext root_ctx;     ///< Invalid when sampled out.
    std::optional<obs::TraceSpan> root;
  };

  Session* Find(SessionId id);
  const Session* Find(SessionId id) const;

  /// Moves a session into the active set: slot accounting, root span
  /// (sampled), admission metrics.
  void Admit(Session& s);
  /// Admits queued sessions while slots are free.
  void AdmitFromQueue(Micros now);
  /// Reaps every active session idle past the deadline.
  void ReapIdle(Micros now);
  /// Terminal teardown: releases leases, cancels speculation, ends the
  /// root span at the clock's current (frame-aware) time.
  void CloseSession(Session& s, bool reaped);

  bool AcquireLease(Session& s, uint64_t affinity);
  void ReleaseLeases(Session& s);

  /// The effective integer stride speculation uses.
  int EffectiveStride(const Session& s) const;
  void LearnStride(Session& s, int delta);

  /// Copy of the plan for `object` (fetching the skeleton to build it on
  /// first need). Thread-safe: tasks staging different shards race only
  /// on the cache map, which is mutex-guarded.
  StatusOr<Plan> EnsurePlan(storage::ObjectId object,
                            const obs::TraceContext& ctx);
  /// Drops the plan (append invalidation) and resets delivery
  /// bookkeeping of every session reading `object`.
  void InvalidateObject(storage::ObjectId object);

  /// Foreground-stages page `page` of the session's object: plan ranges
  /// through the archiver, then the payload over the routed link.
  Status StagePage(Session& s, int page, const obs::TraceContext& ctx);
  /// Background flavor for prefetch work: same ranges, no session state.
  Status StagePageBackground(storage::ObjectId object, int page);

  /// Schedules up to speculate_depth pages ahead at the learned stride,
  /// within the session's prefetch budget.
  void Speculate(Session& s);

  obs::Histogram* ProfileTurnHistogram(const std::string& profile);

  server::ObjectStore* store_;
  SimClock* clock_;
  SessionOptions options_;
  obs::MetricsRegistry* registry_;
  runtime::TaskPool* pool_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  AppendHandler append_;
  std::unique_ptr<server::PrefetchQueue> queue_;

  SessionId next_id_ = 1;
  std::map<SessionId, Session> sessions_;
  std::deque<SessionId> admission_queue_;
  size_t active_count_ = 0;
  std::map<uint64_t, int> lease_use_;  ///< Affinity -> live leases.
  Micros traced_active_us_ = 0;

  /// Guards plans_: read/built from staging tasks and prefetch work.
  mutable std::mutex plans_mu_;
  std::map<storage::ObjectId, Plan> plans_;
  uint64_t next_plan_stamp_ = 1;

  obs::Counter* opened_;  // Owned by the registry.
  obs::Counter* admitted_;
  obs::Counter* admission_queued_;
  obs::Counter* queue_admitted_;
  obs::Counter* closed_;
  obs::Counter* reaped_;
  obs::Counter* events_;
  obs::Counter* deferred_events_;
  obs::Counter* page_turns_;
  obs::Counter* opens_;
  obs::Counter* searches_;
  obs::Counter* appends_;
  obs::Counter* link_waits_;
  obs::Counter* budget_deferred_;
  obs::Counter* plan_invalidations_;
  obs::Gauge* active_gauge_;
  obs::Gauge* queued_gauge_;
  obs::Histogram* page_turn_us_;
  obs::Histogram* open_us_;
  obs::Histogram* search_us_;
  obs::Histogram* append_us_;
  std::map<std::string, obs::Histogram*> profile_turn_us_;
};

}  // namespace minos::session

#endif  // MINOS_SESSION_SESSION_MANAGER_H_
