#include "minos/session/session_manager.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <utility>

#include "minos/object/descriptor.h"
#include "minos/server/link.h"
#include "minos/server/workstation.h"

namespace minos::session {

namespace {

const char* SpanNameFor(SessionEvent::Kind kind) {
  switch (kind) {
    case SessionEvent::Kind::kSearch: return "session.search";
    case SessionEvent::Kind::kOpen: return "session.open";
    case SessionEvent::Kind::kPageTurn: return "session.page_turn";
    case SessionEvent::Kind::kJump: return "session.jump";
    case SessionEvent::Kind::kAppend: return "session.append";
    case SessionEvent::Kind::kClose: return "session.close";
  }
  return "session.event";
}

}  // namespace

SessionManager::SessionManager(server::ObjectStore* store, SimClock* clock,
                               SessionOptions options)
    : store_(store), clock_(clock), options_(options) {
  registry_ = options_.registry != nullptr ? options_.registry
                                           : &obs::MetricsRegistry::Default();
  if (options_.prefetch.registry == nullptr) {
    options_.prefetch.registry = registry_;
  }
  queue_ = std::make_unique<server::PrefetchQueue>(clock_, store_->links(),
                                                   options_.prefetch);
  opened_ = registry_->counter("session.opened_total");
  admitted_ = registry_->counter("session.admitted_total");
  admission_queued_ = registry_->counter("session.admission_queued_total");
  queue_admitted_ = registry_->counter("session.queue_admitted_total");
  closed_ = registry_->counter("session.closed_total");
  reaped_ = registry_->counter("session.reaped_total");
  events_ = registry_->counter("session.events_total");
  deferred_events_ = registry_->counter("session.deferred_events_total");
  page_turns_ = registry_->counter("session.page_turns_total");
  opens_ = registry_->counter("session.opens_total");
  searches_ = registry_->counter("session.searches_total");
  appends_ = registry_->counter("session.appends_total");
  link_waits_ = registry_->counter("session.link_waits_total");
  budget_deferred_ = registry_->counter("session.budget_deferred_total");
  plan_invalidations_ =
      registry_->counter("session.plan_invalidations_total");
  active_gauge_ = registry_->gauge("session.active");
  queued_gauge_ = registry_->gauge("session.queued");
  page_turn_us_ = registry_->histogram("session.page_turn_us");
  open_us_ = registry_->histogram("session.open_us");
  search_us_ = registry_->histogram("session.search_us");
  append_us_ = registry_->histogram("session.append_us");
}

SessionManager::~SessionManager() = default;

void SessionManager::SetTracer(obs::Tracer* tracer) {
  tracer_ = tracer;
  store_->SetTracer(tracer);
}

void SessionManager::SetTaskPool(runtime::TaskPool* pool) {
  pool_ = pool;
  store_->SetTaskPool(pool);
  if (pool != nullptr) {
    queue_->SetTaskPool(pool, [this](uint64_t object_id) {
      return store_->PrefetchAffinity(object_id);
    });
  } else {
    queue_->SetTaskPool(nullptr, nullptr);
  }
}

void SessionManager::SetAppendHandler(AppendHandler handler) {
  append_ = std::move(handler);
}

SessionManager::Session* SessionManager::Find(SessionId id) {
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : &it->second;
}

const SessionManager::Session* SessionManager::Find(SessionId id) const {
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : &it->second;
}

SessionId SessionManager::Open(std::string profile) {
  const SessionId id = next_id_++;
  Session s;
  s.id = id;
  s.profile = std::move(profile);
  s.last_activity = clock_->Now();
  auto [it, inserted] = sessions_.emplace(id, std::move(s));
  (void)inserted;
  opened_->Increment();
  if (active_count_ < options_.max_concurrent) {
    Admit(it->second);
  } else {
    admission_queue_.push_back(id);
    admission_queued_->Increment();
  }
  active_gauge_->Set(static_cast<double>(active_count_));
  queued_gauge_->Set(static_cast<double>(queued_count()));
  return id;
}

void SessionManager::Admit(Session& s) {
  s.state = SessionState::kIdle;
  s.admitted_at = clock_->Now();
  ++active_count_;
  admitted_->Increment();
  if (tracer_ != nullptr) {
    // Explicit-invalid parent: the root must not join whatever ambient
    // span the caller has open, and thousands of concurrent session
    // roots cannot share the ambient stack. SetSampleRate decides here:
    // a suppressed root leaves root_ctx invalid and the whole session
    // records nothing.
    s.root = tracer_->StartSpan("session#" + std::to_string(s.id),
                                obs::TraceContext{});
    s.root_ctx = s.root->context();
  }
}

void SessionManager::AdmitFromQueue(Micros now) {
  while (active_count_ < options_.max_concurrent &&
         !admission_queue_.empty()) {
    const SessionId id = admission_queue_.front();
    admission_queue_.pop_front();
    Session* s = Find(id);
    if (s == nullptr || s->state != SessionState::kQueued) continue;
    Admit(*s);
    s->last_activity = now;  // Fresh slot: the idle clock starts now.
    queue_admitted_->Increment();
  }
}

void SessionManager::ReapIdle(Micros now) {
  for (auto& [id, s] : sessions_) {
    if (s.state == SessionState::kQueued ||
        s.state == SessionState::kClosed) {
      continue;
    }
    if (now - s.last_activity >= options_.idle_deadline_us) {
      CloseSession(s, /*reaped=*/true);
    }
  }
}

void SessionManager::CloseSession(Session& s, bool reaped) {
  if (s.state == SessionState::kClosed) return;
  const bool was_active = s.state != SessionState::kQueued;
  if (was_active) {
    ReleaseLeases(s);
    queue_->CancelOwner(s.id);
    if (s.root.has_value()) {
      if (reaped) s.root->AddTag("reaped", "1");
      s.root->End();
    }
    if (s.root_ctx.valid()) {
      traced_active_us_ +=
          std::max<Micros>(0, clock_->Now() - s.admitted_at);
    }
    --active_count_;
    (reaped ? reaped_ : closed_)->Increment();
  } else {
    closed_->Increment();
  }
  s.state = SessionState::kClosed;
  s.root.reset();
  s.delivered.clear();
  s.object = 0;
}

bool SessionManager::AcquireLease(Session& s, uint64_t affinity) {
  if (s.leases.count(affinity) > 0) return true;
  int& in_use = lease_use_[affinity];
  if (in_use >= options_.streams_per_shard) return false;
  ++in_use;
  s.leases.insert(affinity);
  return true;
}

void SessionManager::ReleaseLeases(Session& s) {
  for (uint64_t affinity : s.leases) {
    auto it = lease_use_.find(affinity);
    if (it != lease_use_.end() && it->second > 0) --it->second;
  }
  s.leases.clear();
}

int SessionManager::EffectiveStride(const Session& s) const {
  const double rounded = std::round(s.stride_ewma);
  int stride = static_cast<int>(rounded);
  if (stride == 0) stride = s.stride_ewma >= 0 ? 1 : -1;
  return std::clamp(stride, -16, 16);
}

void SessionManager::LearnStride(Session& s, int delta) {
  if (delta == 0) return;
  // EWMA over observed cursor movement: a skimmer turning 3 pages at a
  // time converges to stride 3 within a few turns, a reader stays at 1,
  // so speculation targets the pages this user will actually visit —
  // the learned replacement for a fixed pages-ahead radius.
  s.stride_ewma = 0.7 * s.stride_ewma + 0.3 * static_cast<double>(delta);
}

StatusOr<SessionManager::Plan> SessionManager::EnsurePlan(
    storage::ObjectId object, const obs::TraceContext& ctx) {
  {
    std::lock_guard<std::mutex> lock(plans_mu_);
    auto it = plans_.find(object);
    if (it != plans_.end()) return it->second;
  }
  MINOS_ASSIGN_OR_RETURN(
      object::MultimediaObject obj,
      store_->Fetch(object, server::FetchGranularity::kSkeleton, ctx));
  const object::ObjectDescriptor& desc = obj.descriptor();
  Plan plan;
  auto part_length = [&](const std::string& name) -> uint64_t {
    StatusOr<uint64_t> len = store_->PartLength(object, name);
    return len.ok() ? *len : 0;
  };
  uint32_t text_pages = 0;
  for (const object::VisualPageSpec& page : desc.pages) {
    text_pages = std::max(text_pages, page.text_page);
  }
  const uint64_t text_len = text_pages > 0 ? part_length("text") : 0;
  plan.pages.reserve(desc.pages.size());
  plan.page_bytes.reserve(desc.pages.size());
  for (const object::VisualPageSpec& page : desc.pages) {
    std::vector<PageRange> ranges;
    if (page.text_page > 0 && text_pages > 0 && text_len > 0) {
      const auto [offset, length] =
          server::ApportionStream(text_len, static_cast<int>(page.text_page),
                                  static_cast<int>(text_pages));
      if (length > 0) ranges.push_back(PageRange{"text", offset, length});
    }
    for (const object::PlacedImage& placed : page.images) {
      std::string part = "image:" + std::to_string(placed.image_index);
      const uint64_t length = part_length(part);
      if (length > 0) {
        ranges.push_back(PageRange{std::move(part), 0, length});
      }
    }
    uint64_t total = 0;
    for (const PageRange& r : ranges) total += r.length;
    plan.pages.push_back(std::move(ranges));
    plan.page_bytes.push_back(total);
  }
  std::lock_guard<std::mutex> lock(plans_mu_);
  auto it = plans_.find(object);
  if (it == plans_.end()) {
    plan.stamp = next_plan_stamp_++;
    it = plans_.emplace(object, std::move(plan)).first;
  }
  return it->second;
}

void SessionManager::InvalidateObject(storage::ObjectId object) {
  {
    std::lock_guard<std::mutex> lock(plans_mu_);
    plans_.erase(object);
  }
  plan_invalidations_->Increment();
  // Appended content re-apportions every page's byte ranges, so staged
  // speculation for the object — whoever owns it — is stale, and every
  // reading session re-delivers against the fresh plan.
  queue_->CancelWhere([&](const server::PrefetchKey& key) {
    return key.kind != server::PrefetchKind::kMiniature &&
           key.object_id == object;
  });
  for (auto& [id, s] : sessions_) {
    if (s.object == object) {
      s.delivered.clear();
      s.plan_stamp = 0;
    }
  }
}

Status SessionManager::StagePage(Session& s, int page,
                                 const obs::TraceContext& ctx) {
  MINOS_ASSIGN_OR_RETURN(Plan plan, EnsurePlan(s.object, ctx));
  s.page_count = static_cast<int>(plan.pages.size());
  if (s.plan_stamp != plan.stamp) {
    s.delivered.clear();
    s.plan_stamp = plan.stamp;
  }
  if (s.page_count == 0) return Status::OK();
  if (page > s.page_count) {
    page = s.page_count;
    s.page = page;
  }
  uint64_t total = 0;
  for (const PageRange& r : plan.pages[static_cast<size_t>(page - 1)]) {
    MINOS_RETURN_IF_ERROR(
        store_->StagePartRange(s.object, r.part, r.offset, r.length, ctx));
    total += r.length;
  }
  if (total > 0) {
    server::Link* link = store_->RouteLink(s.object);
    if (link != nullptr) {
      MINOS_RETURN_IF_ERROR(link->Transfer(total, ctx).status());
    }
  }
  return Status::OK();
}

Status SessionManager::StagePageBackground(storage::ObjectId object,
                                           int page) {
  Plan plan;
  {
    std::lock_guard<std::mutex> lock(plans_mu_);
    auto it = plans_.find(object);
    if (it == plans_.end()) {
      return Status::NotFound("plan invalidated before issue");
    }
    plan = it->second;
  }
  if (page < 1 || page > static_cast<int>(plan.pages.size())) {
    return Status::OutOfRange("page beyond plan");
  }
  uint64_t total = 0;
  for (const PageRange& r : plan.pages[static_cast<size_t>(page - 1)]) {
    MINOS_RETURN_IF_ERROR(
        store_->StagePartRange(object, r.part, r.offset, r.length));
    total += r.length;
  }
  if (total > 0) {
    server::Link* link = store_->RouteLink(object);
    if (link != nullptr) {
      MINOS_RETURN_IF_ERROR(link->Transfer(total).status());
    }
  }
  return Status::OK();
}

void SessionManager::Speculate(Session& s) {
  if (s.object == 0 || s.page_count <= 0 || s.plan_stamp == 0) return;
  std::vector<uint64_t> page_bytes;
  {
    std::lock_guard<std::mutex> lock(plans_mu_);
    auto it = plans_.find(s.object);
    if (it == plans_.end() || it->second.stamp != s.plan_stamp) return;
    page_bytes = it->second.page_bytes;
  }
  const int stride = EffectiveStride(s);
  for (int k = 1; k <= options_.speculate_depth; ++k) {
    const int p = s.page + stride * k;
    if (p < 1 || p > s.page_count) break;
    if (s.delivered.count(p) > 0) continue;
    const uint64_t bytes = page_bytes[static_cast<size_t>(p - 1)];
    if (bytes == 0) continue;
    if (queue_->OutstandingBytes(s.id) + bytes >
        options_.prefetch_budget_bytes) {
      // Over budget: this session stops speculating until its staged
      // entries are consumed. Readers' entries stay untouched.
      budget_deferred_->Increment();
      break;
    }
    server::PrefetchKey key{server::PrefetchKind::kVisualPage, s.object, p,
                            s.id};
    const storage::ObjectId object = s.object;
    queue_->WantPage(
        key, k,
        [this, object, p]() { return StagePageBackground(object, p); },
        bytes);
  }
}

obs::Histogram* SessionManager::ProfileTurnHistogram(
    const std::string& profile) {
  auto it = profile_turn_us_.find(profile);
  if (it == profile_turn_us_.end()) {
    it = profile_turn_us_
             .emplace(profile, registry_->histogram(
                                   "session." + profile + ".page_turn_us"))
             .first;
  }
  return it->second;
}

std::vector<SessionOutcome> SessionManager::PumpEpoch(
    const std::vector<SessionEvent>& events) {
  const Micros now0 = clock_->Now();
  ReapIdle(now0);
  AdmitFromQueue(now0);

  struct Prep {
    bool handled = false;  ///< Outcome settled in the pre-pass.
    bool stage = false;    ///< Needs foreground staging this epoch.
    bool global = false;   ///< Runs in the serial front-end phase.
    int target = 0;        ///< Page to stage.
    Micros consume_us = 0; ///< Prefetch residual paid in the pre-pass.
  };
  std::vector<SessionOutcome> outcomes(events.size());
  std::vector<Prep> prep(events.size());
  std::vector<std::optional<obs::TraceSpan>> spans(events.size());
  std::vector<obs::TraceContext> span_ctx(events.size());
  std::vector<Micros> stage_end(events.size(), 0);
  std::vector<Status> stage_status(events.size(), Status::OK());
  std::vector<uint64_t> group_ids;
  std::vector<std::vector<size_t>> groups;
  std::map<SessionId, size_t> session_group;
  std::vector<size_t> global_events;

  // A session's staging events all ride the group of its first one, so
  // no Session object is ever touched by two concurrent tasks.
  auto assign_group = [&](size_t i, Session& s) {
    size_t g;
    auto it = session_group.find(s.id);
    if (it != session_group.end()) {
      g = it->second;
    } else {
      const uint64_t affinity = store_->PrefetchAffinity(s.object);
      g = 0;
      while (g < group_ids.size() && group_ids[g] != affinity) ++g;
      if (g == group_ids.size()) {
        group_ids.push_back(affinity);
        groups.emplace_back();
      }
      session_group.emplace(s.id, g);
    }
    groups[g].push_back(i);
  };

  // Phase 1: serial pre-pass, in submission order.
  for (size_t i = 0; i < events.size(); ++i) {
    const SessionEvent& ev = events[i];
    SessionOutcome& out = outcomes[i];
    out.session = ev.session;
    out.kind = ev.kind;
    Session* s = Find(ev.session);
    if (s == nullptr || s->state == SessionState::kClosed) {
      out.status = Status::NotFound("no such session");
      prep[i].handled = true;
      continue;
    }
    if (s->state == SessionState::kQueued) {
      if (ev.kind == SessionEvent::Kind::kClose) {
        CloseSession(*s, /*reaped=*/false);
      } else {
        out.status = Status::Unavailable("session queued for admission");
        deferred_events_->Increment();
      }
      prep[i].handled = true;
      continue;
    }
    events_->Increment();
    s->last_activity = now0;
    spans[i] = obs::MaybeStartSpan(tracer_, SpanNameFor(ev.kind),
                                   s->root_ctx);
    span_ctx[i] = obs::ContextOf(spans[i]);
    switch (ev.kind) {
      case SessionEvent::Kind::kSearch:
      case SessionEvent::Kind::kAppend:
      case SessionEvent::Kind::kClose:
        prep[i].global = true;
        global_events.push_back(i);
        break;
      case SessionEvent::Kind::kOpen: {
        const uint64_t affinity = store_->PrefetchAffinity(ev.object);
        if (!AcquireLease(*s, affinity)) {
          // Shard's stream pool exhausted: defer, never drop — the
          // caller resubmits next epoch, by when a close or reap may
          // have released a lease.
          out.status = Status::Unavailable("link lease pool exhausted");
          link_waits_->Increment();
          prep[i].handled = true;
          continue;
        }
        queue_->CancelOwner(s->id);  // Prior object's speculation.
        s->object = ev.object;
        s->page = 1;
        s->page_count = 0;
        s->plan_stamp = 0;
        s->delivered.clear();
        s->state = SessionState::kReading;
        opens_->Increment();
        prep[i].stage = true;
        prep[i].target = 1;
        assign_group(i, *s);
        break;
      }
      case SessionEvent::Kind::kPageTurn:
      case SessionEvent::Kind::kJump: {
        if (s->object == 0 || s->state != SessionState::kReading) {
          out.status = Status::FailedPrecondition("no open object");
          prep[i].handled = true;
          continue;
        }
        const int count = std::max(1, s->page_count);
        int target = ev.kind == SessionEvent::Kind::kJump
                         ? ev.page
                         : s->page + ev.delta;
        target = std::clamp(target, 1, count);
        if (ev.kind == SessionEvent::Kind::kJump) {
          const int radius = std::max(1, std::abs(EffectiveStride(*s))) *
                             std::max(1, options_.speculate_depth);
          queue_->CancelWhere([&](const server::PrefetchKey& key) {
            return key.owner == s->id &&
                   key.kind == server::PrefetchKind::kVisualPage &&
                   key.object_id == s->object &&
                   std::abs(key.index - target) > radius;
          });
          LearnStride(*s, target - s->page);
        } else {
          LearnStride(*s, ev.delta);
        }
        s->page = target;
        page_turns_->Increment();
        if (s->delivered.count(target) > 0) {
          out.prefetch_hit = true;  // Already at the terminal: free.
          break;
        }
        const server::PrefetchKey key{server::PrefetchKind::kVisualPage,
                                      s->object, target, s->id};
        // Measure the consume (residual wait on a partial hit) in a
        // private frame: concurrent sessions' waits overlap instead of
        // serializing on the base clock.
        SimClock::Frame frame(clock_, now0);
        if (queue_->TakePage(key)) {
          prep[i].consume_us = frame.elapsed();
          s->delivered.insert(target);
          out.prefetch_hit = true;
        } else {
          prep[i].consume_us = frame.elapsed();
          prep[i].stage = true;
          prep[i].target = target;
          assign_group(i, *s);
        }
        break;
      }
    }
  }

  // Phase 2a: foreground staging, one task per shard group.
  if (!groups.empty()) {
    auto run_group = [&](const std::vector<size_t>& group) {
      for (size_t i : group) {
        Session& s = *Find(events[i].session);
        stage_status[i] = StagePage(s, prep[i].target, span_ctx[i]);
        // Cumulative offset within the group: later events queue behind
        // earlier ones bound for the same shard arm.
        stage_end[i] = clock_->Now() - now0;
        if (stage_status[i].ok()) s.delivered.insert(prep[i].target);
      }
    };
    if (pool_ != nullptr) {
      std::vector<runtime::TaskPool::Task> tasks;
      tasks.reserve(groups.size());
      for (const std::vector<size_t>& group : groups) {
        tasks.push_back([&run_group, &group] { run_group(group); });
      }
      pool_->RunEpoch(std::move(tasks));
    } else {
      Micros max_total = 0;
      for (const std::vector<size_t>& group : groups) {
        SimClock::Frame frame(clock_, now0);
        run_group(group);
        max_total = std::max(max_total, frame.elapsed());
      }
      clock_->AdvanceTo(now0 + max_total);
    }
  }

  // Phase 2b: the serial front-end lane (searches, appends, closes) in
  // one frame — these contend on shared state (query stats, catalog,
  // session table), so they serialize like one server thread would.
  if (!global_events.empty()) {
    Micros front_end_total = 0;
    {
      SimClock::Frame frame(clock_, now0);
      for (size_t i : global_events) {
        const SessionEvent& ev = events[i];
        Session* s = Find(ev.session);
        switch (ev.kind) {
          case SessionEvent::Kind::kSearch: {
            s->state = SessionState::kSearching;
            const std::vector<query::ScoredHit> hits = store_->QueryRanked(
                ev.words, options_.search_k, query::QueryMode::kDisjunctive,
                span_ctx[i]);
            outcomes[i].results = hits.size();
            s->state = SessionState::kBrowsing;
            searches_->Increment();
            break;
          }
          case SessionEvent::Kind::kAppend: {
            if (!append_) {
              stage_status[i] = Status::Unsupported("no append handler");
              break;
            }
            stage_status[i] = append_(ev.object, ev.append_text);
            if (stage_status[i].ok()) {
              InvalidateObject(ev.object);
              appends_->Increment();
            }
            break;
          }
          case SessionEvent::Kind::kClose:
            CloseSession(*s, /*reaped=*/false);
            break;
          default:
            break;
        }
        stage_end[i] = frame.now() - now0;
      }
      front_end_total = frame.elapsed();
    }
    clock_->AdvanceTo(now0 + front_end_total);
  }

  // Phase 3: serial post-pass, in submission order.
  Micros max_latency = 0;
  for (size_t i = 0; i < events.size(); ++i) {
    if (prep[i].handled) continue;
    const SessionEvent& ev = events[i];
    SessionOutcome& out = outcomes[i];
    if (out.status.ok() && !stage_status[i].ok()) {
      out.status = stage_status[i];
    }
    out.latency_us = prep[i].consume_us + stage_end[i];
    max_latency = std::max(max_latency, out.latency_us);
    Session* s = Find(ev.session);
    const double latency = static_cast<double>(out.latency_us);
    switch (ev.kind) {
      case SessionEvent::Kind::kPageTurn:
      case SessionEvent::Kind::kJump:
        page_turn_us_->Record(latency);
        if (s != nullptr) ProfileTurnHistogram(s->profile)->Record(latency);
        break;
      case SessionEvent::Kind::kOpen:
        open_us_->Record(latency);
        break;
      case SessionEvent::Kind::kSearch:
        search_us_->Record(latency);
        break;
      case SessionEvent::Kind::kAppend:
        append_us_->Record(latency);
        break;
      case SessionEvent::Kind::kClose:
        break;
    }
    if (spans[i].has_value()) {
      // The event completed at now0 + latency on its own timeline; a
      // scratch frame pins the end time without advancing the base.
      SimClock::Frame frame(clock_, now0 + out.latency_us);
      spans[i]->End();
    }
    if (out.status.ok() && s != nullptr &&
        s->state == SessionState::kReading &&
        (ev.kind == SessionEvent::Kind::kOpen ||
         ev.kind == SessionEvent::Kind::kPageTurn ||
         ev.kind == SessionEvent::Kind::kJump)) {
      Speculate(*s);
    }
  }
  queue_->Pump();
  clock_->AdvanceTo(now0 + max_latency);
  active_gauge_->Set(static_cast<double>(active_count_));
  queued_gauge_->Set(static_cast<double>(queued_count()));
  return outcomes;
}

SessionState SessionManager::state(SessionId id) const {
  const Session* s = Find(id);
  return s == nullptr ? SessionState::kClosed : s->state;
}

size_t SessionManager::queued_count() const {
  size_t n = 0;
  for (const auto& [id, s] : sessions_) {
    if (s.state == SessionState::kQueued) ++n;
  }
  return n;
}

int SessionManager::stride(SessionId id) const {
  const Session* s = Find(id);
  return s == nullptr ? 1 : EffectiveStride(*s);
}

bool SessionManager::sampled(SessionId id) const {
  const Session* s = Find(id);
  return s != nullptr && s->root_ctx.valid();
}

int SessionManager::page(SessionId id) const {
  const Session* s = Find(id);
  return s == nullptr ? 0 : s->page;
}

int SessionManager::page_count(SessionId id) const {
  const Session* s = Find(id);
  return s == nullptr ? 0 : s->page_count;
}

int SessionManager::lease_count(uint64_t affinity) const {
  auto it = lease_use_.find(affinity);
  return it == lease_use_.end() ? 0 : it->second;
}

}  // namespace minos::session
