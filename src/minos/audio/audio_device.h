#ifndef MINOS_AUDIO_AUDIO_DEVICE_H_
#define MINOS_AUDIO_AUDIO_DEVICE_H_

#include <string>
#include <vector>

#include "minos/util/clock.h"
#include "minos/util/status.h"
#include "minos/util/statusor.h"
#include "minos/voice/pcm.h"

namespace minos::audio {

/// One playback event (for tests and the figure benches to verify the
/// audible timeline).
struct PlaybackEvent {
  enum class Kind { kStart, kInterrupt, kResume, kSeek, kFinish };
  Kind kind;
  Micros at = 0;       ///< Simulated time of the event.
  size_t sample = 0;   ///< Playback position at the event.
};

/// Simulated voice output device under virtual time — the substitute for
/// the workstation's voice output hardware. Playback advances the
/// injected SimClock in real-time proportion; the browsing commands of §2
/// (interrupt, resume, resume from a given position) map one-to-one onto
/// this API.
class AudioDevice {
 public:
  /// `clock` must outlive the device.
  explicit AudioDevice(SimClock* clock) : clock_(clock) {}

  /// Loads a buffer (borrowed; must outlive playback) and rewinds to 0.
  void Load(const voice::PcmBuffer* pcm);

  /// True while a Play()/Resume() is conceptually sounding. Because time
  /// is simulated, "playing" means: the last command started playback and
  /// it has not been interrupted or finished.
  bool playing() const { return playing_; }

  /// Current playback sample position.
  size_t position() const { return position_; }

  /// Starts playback at the current position and plays until the end of
  /// the buffer (advancing the clock by the remaining duration).
  /// FailedPrecondition when no buffer is loaded.
  Status PlayToEnd();

  /// Plays for at most `duration` of simulated time, then pauses (used by
  /// audio pages and gated process simulation). Returns the samples
  /// actually played.
  StatusOr<size_t> PlayFor(Micros duration);

  /// Interrupts playback, freezing the position ("interrupt the voice
  /// output", §2). No-op when not playing.
  void Interrupt();

  /// Resumes from the frozen position ("resume the voice output from the
  /// current position", §2) and plays to the end.
  Status Resume();

  /// Seeks to an absolute sample (clamped to the buffer).
  Status Seek(size_t sample);

  /// Convenience: seek then play to the end.
  Status PlayFrom(size_t sample);

  /// The full event log since Load().
  const std::vector<PlaybackEvent>& events() const { return events_; }

  /// Total simulated time this device has spent sounding.
  Micros total_play_time() const { return total_play_time_; }

 private:
  void Record(PlaybackEvent::Kind kind);

  SimClock* clock_;
  const voice::PcmBuffer* pcm_ = nullptr;
  size_t position_ = 0;
  bool playing_ = false;
  Micros total_play_time_ = 0;
  std::vector<PlaybackEvent> events_;
};

}  // namespace minos::audio

#endif  // MINOS_AUDIO_AUDIO_DEVICE_H_
