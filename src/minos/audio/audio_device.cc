#include "minos/audio/audio_device.h"

#include <algorithm>

namespace minos::audio {

void AudioDevice::Load(const voice::PcmBuffer* pcm) {
  pcm_ = pcm;
  position_ = 0;
  playing_ = false;
  total_play_time_ = 0;
  events_.clear();
}

void AudioDevice::Record(PlaybackEvent::Kind kind) {
  events_.push_back(PlaybackEvent{kind, clock_->Now(), position_});
}

Status AudioDevice::PlayToEnd() {
  if (pcm_ == nullptr) {
    return Status::FailedPrecondition("no PCM buffer loaded");
  }
  playing_ = true;
  Record(PlaybackEvent::Kind::kStart);
  const size_t remaining = pcm_->size() - position_;
  const Micros duration = pcm_->SamplesToMicros(remaining);
  clock_->Advance(duration);
  total_play_time_ += duration;
  position_ = pcm_->size();
  playing_ = false;
  Record(PlaybackEvent::Kind::kFinish);
  return Status::OK();
}

StatusOr<size_t> AudioDevice::PlayFor(Micros duration) {
  if (pcm_ == nullptr) {
    return Status::FailedPrecondition("no PCM buffer loaded");
  }
  if (duration < 0) return Status::InvalidArgument("negative duration");
  playing_ = true;
  Record(PlaybackEvent::Kind::kStart);
  const size_t want = pcm_->MicrosToSamples(duration);
  const size_t play = std::min(want, pcm_->size() - position_);
  const Micros actual = pcm_->SamplesToMicros(play);
  clock_->Advance(actual);
  total_play_time_ += actual;
  position_ += play;
  playing_ = false;
  Record(position_ == pcm_->size() ? PlaybackEvent::Kind::kFinish
                                   : PlaybackEvent::Kind::kInterrupt);
  return play;
}

void AudioDevice::Interrupt() {
  if (!playing_) return;
  playing_ = false;
  Record(PlaybackEvent::Kind::kInterrupt);
}

Status AudioDevice::Resume() {
  if (pcm_ == nullptr) {
    return Status::FailedPrecondition("no PCM buffer loaded");
  }
  Record(PlaybackEvent::Kind::kResume);
  return PlayToEnd();
}

Status AudioDevice::Seek(size_t sample) {
  if (pcm_ == nullptr) {
    return Status::FailedPrecondition("no PCM buffer loaded");
  }
  position_ = std::min(sample, pcm_->size());
  Record(PlaybackEvent::Kind::kSeek);
  return Status::OK();
}

Status AudioDevice::PlayFrom(size_t sample) {
  MINOS_RETURN_IF_ERROR(Seek(sample));
  return PlayToEnd();
}

}  // namespace minos::audio
