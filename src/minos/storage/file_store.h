#ifndef MINOS_STORAGE_FILE_STORE_H_
#define MINOS_STORAGE_FILE_STORE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "minos/storage/block_device.h"
#include "minos/util/status.h"
#include "minos/util/statusor.h"

namespace minos::storage {

/// A small rewritable file store over a (magnetic) block device — the
/// workstation-side disk of §5: "The workstations may have some disk
/// devices associated with them... Multimedia objects in an editing state
/// are stored in those disks. Retrieval is done by name."
///
/// In contrast to the append-only optical Archiver, files here are
/// mutable: Put overwrites, Delete frees blocks for reuse. Allocation is
/// a simple free-list of whole blocks; each file occupies a run-length
/// list of block extents kept in an in-memory catalog (a real 1986
/// filesystem would persist it; the catalog is not the behaviour under
/// study).
class FileStore {
 public:
  /// `device` is borrowed and must outlive the store; it must not be
  /// write-once.
  explicit FileStore(BlockDevice* device);

  FileStore(const FileStore&) = delete;
  FileStore& operator=(const FileStore&) = delete;

  /// Writes (or overwrites) a named file. ResourceExhausted when the
  /// device has too few free blocks.
  Status Put(const std::string& name, std::string_view bytes);

  /// Reads a named file.
  StatusOr<std::string> Get(const std::string& name) const;

  /// Removes a file, returning its blocks to the free list.
  Status Delete(const std::string& name);

  /// True when the file exists.
  bool Contains(const std::string& name) const;

  /// Names in lexicographic order.
  std::vector<std::string> List() const;

  /// Free blocks remaining.
  uint64_t free_blocks() const { return free_.size(); }

 private:
  struct Extent {
    uint64_t block;
    uint64_t count;
  };
  struct FileEntry {
    uint64_t size = 0;
    std::vector<Extent> extents;
  };

  Status Allocate(uint64_t blocks_needed, std::vector<Extent>* out);
  void Free(const std::vector<Extent>& extents);

  BlockDevice* device_;
  std::map<std::string, FileEntry> catalog_;
  std::vector<uint64_t> free_;  // Free block numbers, descending.
};

}  // namespace minos::storage

#endif  // MINOS_STORAGE_FILE_STORE_H_
