#ifndef MINOS_STORAGE_DATA_DIRECTORY_H_
#define MINOS_STORAGE_DATA_DIRECTORY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "minos/storage/archiver.h"
#include "minos/storage/composition_file.h"
#include "minos/util/status.h"
#include "minos/util/statusor.h"

namespace minos::storage {

/// Where the payload of a data entry currently lives while an object is in
/// the editing state.
enum class DataLocation : uint8_t {
  kLocalFile = 0,  ///< A data file inside the multimedia object file (§4).
  kArchiver = 1,   ///< Extracted-but-not-copied data in the archiver.
};

/// Editing status of a data entry: "the status information describes if
/// the data in a particular file is in its final form which is to be used
/// for archiving or mailing" (§4).
enum class DataStatus : uint8_t {
  kDraft = 0,  ///< Still being edited (e.g. editable graphics form).
  kFinal = 1,  ///< Device- and package-independent archival form.
};

/// The data directory file of a multimedia object in the editing state:
/// catalog of the object's data files and of archiver data that has been
/// referenced but not copied. "Such information is the name, type,
/// location, length, and status of data." (§4)
class DataDirectory {
 public:
  struct Entry {
    std::string name;
    DataType type = DataType::kOther;
    DataLocation location = DataLocation::kLocalFile;
    DataStatus status = DataStatus::kDraft;
    uint64_t length = 0;
    /// Valid when location == kArchiver.
    ArchiveAddress archive_address;
  };

  DataDirectory() = default;

  /// Registers a local data file entry.
  void AddLocal(std::string name, DataType type, uint64_t length,
                DataStatus status);

  /// Registers a reference to archiver-resident data.
  void AddArchiverReference(std::string name, DataType type,
                            ArchiveAddress address);

  /// Looks up an entry by name.
  StatusOr<Entry> Find(std::string_view name) const;

  /// Marks an entry final (it is a FailedPrecondition to archive or mail
  /// an object while any entry is still a draft).
  Status MarkFinal(std::string_view name);

  /// True iff every entry is in final form.
  bool AllFinal() const;

  const std::vector<Entry>& entries() const { return entries_; }

  /// Serialization (the directory is itself one of the files of the
  /// multimedia object file).
  std::string Serialize() const;
  static StatusOr<DataDirectory> Deserialize(std::string_view bytes);

 private:
  std::vector<Entry> entries_;
};

}  // namespace minos::storage

#endif  // MINOS_STORAGE_DATA_DIRECTORY_H_
