#include "minos/storage/request_scheduler.h"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <cstddef>
#include <limits>
#include <string>

namespace minos::storage {

const char* SchedulingPolicyName(SchedulingPolicy policy) {
  switch (policy) {
    case SchedulingPolicy::kFcfs:
      return "FCFS";
    case SchedulingPolicy::kSstf:
      return "SSTF";
    case SchedulingPolicy::kScan:
      return "SCAN";
  }
  return "?";
}

namespace {

/// Lowercase policy tag used in metric names ("fcfs", "sstf", "scan").
std::string PolicyTag(SchedulingPolicy policy) {
  std::string tag = SchedulingPolicyName(policy);
  for (char& c : tag) c = static_cast<char>(std::tolower(c));
  return tag;
}

}  // namespace

RequestScheduler::RequestScheduler(BlockDevice* device,
                                   SchedulingPolicy policy,
                                   obs::MetricsRegistry* registry)
    : device_(device), policy_(policy) {
  obs::MetricsRegistry& reg =
      registry != nullptr ? *registry : obs::MetricsRegistry::Default();
  const std::string prefix = "scheduler." + PolicyTag(policy);
  queueing_delay_us_ = reg.histogram(prefix + ".queueing_delay_us");
  service_time_us_ = reg.histogram(prefix + ".service_time_us");
  requests_ = reg.counter(prefix + ".requests");
  background_requests_ = reg.counter(prefix + ".background_requests");
}

size_t RequestScheduler::PickNext(const std::vector<IoRequest>& pending,
                                  uint64_t head, bool sweep_up) const {
  assert(!pending.empty());
  // Foreground requests pre-empt background ones: when any foreground
  // request has arrived, the policy chooses among those only, and
  // background (prefetch) requests absorb the queueing delay.
  bool any_foreground = false;
  for (const IoRequest& r : pending) {
    if (r.priority == IoPriority::kForeground) {
      any_foreground = true;
      break;
    }
  }
  if (any_foreground) {
    bool any_background = false;
    for (const IoRequest& r : pending) {
      if (r.priority == IoPriority::kBackground) {
        any_background = true;
        break;
      }
    }
    if (any_background) {
      std::vector<IoRequest> foreground;
      std::vector<size_t> original_index;
      for (size_t i = 0; i < pending.size(); ++i) {
        if (pending[i].priority == IoPriority::kForeground) {
          foreground.push_back(pending[i]);
          original_index.push_back(i);
        }
      }
      return original_index[PickNext(foreground, head, sweep_up)];
    }
  }
  switch (policy_) {
    case SchedulingPolicy::kFcfs: {
      size_t best = 0;
      for (size_t i = 1; i < pending.size(); ++i) {
        if (pending[i].arrival_time < pending[best].arrival_time) best = i;
      }
      return best;
    }
    case SchedulingPolicy::kSstf: {
      size_t best = 0;
      uint64_t best_dist = std::numeric_limits<uint64_t>::max();
      for (size_t i = 0; i < pending.size(); ++i) {
        const uint64_t b = pending[i].block;
        const uint64_t dist = b > head ? b - head : head - b;
        if (dist < best_dist) {
          best_dist = dist;
          best = i;
        }
      }
      return best;
    }
    case SchedulingPolicy::kScan: {
      // Nearest request in the sweep direction; if none, the sweep
      // reverses (handled by the caller re-invoking with !sweep_up).
      size_t best = pending.size();
      uint64_t best_dist = std::numeric_limits<uint64_t>::max();
      for (size_t i = 0; i < pending.size(); ++i) {
        const uint64_t b = pending[i].block;
        const bool in_dir = sweep_up ? b >= head : b <= head;
        if (!in_dir) continue;
        const uint64_t dist = b > head ? b - head : head - b;
        if (dist < best_dist) {
          best_dist = dist;
          best = i;
        }
      }
      if (best == pending.size()) {
        // Nothing in the sweep direction: pick nearest overall.
        return PickNext(pending, head, !sweep_up);
      }
      return best;
    }
  }
  return 0;
}

std::vector<IoCompletion> RequestScheduler::Run(
    std::vector<IoRequest> requests) {
  std::vector<IoCompletion> done;
  done.reserve(requests.size());
  if (requests.empty()) return done;

  Micros now = 0;
  bool sweep_up = true;
  std::vector<IoRequest> waiting = std::move(requests);
  std::sort(waiting.begin(), waiting.end(),
            [](const IoRequest& a, const IoRequest& b) {
              return a.arrival_time < b.arrival_time;
            });
  now = waiting.front().arrival_time;

  std::vector<IoRequest> pending;
  size_t next_arrival = 0;
  while (!pending.empty() || next_arrival < waiting.size()) {
    // Admit everything that has arrived.
    while (next_arrival < waiting.size() &&
           waiting[next_arrival].arrival_time <= now) {
      pending.push_back(waiting[next_arrival++]);
    }
    if (pending.empty()) {
      now = waiting[next_arrival].arrival_time;
      continue;
    }
    const uint64_t head = device_->head_position();
    const size_t pick = PickNext(pending, head, sweep_up);
    const IoRequest req = pending[pick];
    pending.erase(pending.begin() + static_cast<ptrdiff_t>(pick));
    if (policy_ == SchedulingPolicy::kScan) {
      sweep_up = req.block >= head;
    }

    const Micros wait = now - req.arrival_time;
    if (wait > 0 && tracer_ != nullptr) {
      // The wait just elapsed: this request sat queued behind the
      // accesses already serviced. Rewind the shared clock over the
      // wait and record it as its own span under the request's
      // propagated context, so trace attribution separates queueing
      // (repair-vs-foreground contention at the arm) from service.
      SimClock* clock = device_->clock();
      if (clock != nullptr && clock->Now() >= wait) {
        const Micros at = clock->Now();
        clock->RewindTo(at - wait);
        {
          std::optional<obs::TraceSpan> span = obs::MaybeStartSpan(
              tracer_, "scheduler.queue_wait", req.trace);
          if (span.has_value()) {
            span->AddTag("lane",
                         req.priority == IoPriority::kBackground
                             ? "background"
                             : "foreground");
          }
          clock->Advance(wait);
        }
      }
    }
    const Micros service = device_->EstimateServiceTime(req.block, req.count);
    std::string scratch;
    // Perform the access so head position and stats advance. The device
    // clock advance equals `service`.
    device_->Read(req.block, req.count, &scratch);

    IoCompletion c;
    c.id = req.id;
    c.start_time = now;
    c.service_time = service;
    c.completion_time = now + service;
    c.queueing_delay = now - req.arrival_time;
    now = c.completion_time;
    requests_->Increment();
    if (req.priority == IoPriority::kBackground) {
      background_requests_->Increment();
    }
    queueing_delay_us_->Record(static_cast<double>(c.queueing_delay));
    service_time_us_->Record(static_cast<double>(c.service_time));
    done.push_back(c);
  }
  return done;
}

QueueingStats RequestScheduler::Summarize(
    const std::vector<IoRequest>& requests,
    const std::vector<IoCompletion>& done) {
  QueueingStats s;
  if (done.empty()) return s;
  Micros first_arrival = std::numeric_limits<Micros>::max();
  for (const IoRequest& r : requests) {
    first_arrival = std::min(first_arrival, r.arrival_time);
  }
  double sum_q = 0.0, sum_r = 0.0;
  Micros last_completion = 0;
  for (const IoCompletion& c : done) {
    sum_q += static_cast<double>(c.queueing_delay);
    const Micros resp = c.queueing_delay + c.service_time;
    sum_r += static_cast<double>(resp);
    s.max_response_time_us = std::max(s.max_response_time_us, resp);
    last_completion = std::max(last_completion, c.completion_time);
  }
  s.mean_queueing_delay_us = sum_q / static_cast<double>(done.size());
  s.mean_response_time_us = sum_r / static_cast<double>(done.size());
  s.makespan_us = last_completion - first_arrival;
  return s;
}

}  // namespace minos::storage
