#include "minos/storage/composition_file.h"

#include "minos/util/coding.h"

namespace minos::storage {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kAttributes:
      return "attributes";
    case DataType::kText:
      return "text";
    case DataType::kVoice:
      return "voice";
    case DataType::kImage:
      return "image";
    case DataType::kDescriptor:
      return "descriptor";
    case DataType::kOther:
      return "other";
  }
  return "?";
}

uint64_t CompositionFile::AppendPart(std::string name, DataType type,
                                     std::string_view payload) {
  Part p;
  p.name = std::move(name);
  p.type = type;
  p.offset = data_.size();
  p.length = payload.size();
  data_.append(payload);
  parts_.push_back(std::move(p));
  return parts_.back().offset;
}

StatusOr<CompositionFile::Part> CompositionFile::FindPart(
    std::string_view name) const {
  for (const Part& p : parts_) {
    if (p.name == name) return p;
  }
  return Status::NotFound("composition part '" + std::string(name) +
                          "' not found");
}

Status CompositionFile::ReadPart(const Part& part, std::string* out) const {
  return ReadRange(part.offset, part.length, out);
}

Status CompositionFile::ReadRange(uint64_t offset, uint64_t length,
                                  std::string* out) const {
  if (offset + length > data_.size()) {
    return Status::OutOfRange("composition file range past end");
  }
  out->assign(data_, offset, length);
  return Status::OK();
}

std::string CompositionFile::Serialize() const {
  std::string out;
  PutVarint64(&out, parts_.size());
  for (const Part& p : parts_) {
    PutLengthPrefixed(&out, p.name);
    out.push_back(static_cast<char>(p.type));
    PutVarint64(&out, p.offset);
    PutVarint64(&out, p.length);
  }
  PutLengthPrefixed(&out, data_);
  return out;
}

StatusOr<CompositionFile> CompositionFile::Deserialize(
    std::string_view bytes) {
  Decoder dec(bytes);
  uint64_t n = 0;
  MINOS_RETURN_IF_ERROR(dec.GetVarint64(&n));
  CompositionFile cf;
  cf.parts_.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Part p;
    MINOS_RETURN_IF_ERROR(dec.GetLengthPrefixed(&p.name));
    std::string type_byte;
    MINOS_RETURN_IF_ERROR(dec.GetRaw(1, &type_byte));
    const auto raw = static_cast<uint8_t>(type_byte[0]);
    if (raw > static_cast<uint8_t>(DataType::kOther)) {
      return Status::Corruption("bad composition part type");
    }
    p.type = static_cast<DataType>(raw);
    MINOS_RETURN_IF_ERROR(dec.GetVarint64(&p.offset));
    MINOS_RETURN_IF_ERROR(dec.GetVarint64(&p.length));
    cf.parts_.push_back(std::move(p));
  }
  MINOS_RETURN_IF_ERROR(dec.GetLengthPrefixed(&cf.data_));
  for (const Part& p : cf.parts_) {
    if (p.offset + p.length > cf.data_.size()) {
      return Status::Corruption("composition part out of bounds");
    }
  }
  return cf;
}

}  // namespace minos::storage
