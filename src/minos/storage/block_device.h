#ifndef MINOS_STORAGE_BLOCK_DEVICE_H_
#define MINOS_STORAGE_BLOCK_DEVICE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "minos/util/clock.h"
#include "minos/util/status.h"

namespace minos::storage {

/// Timing model for a rotating storage device. The MINOS server subsystem
/// (paper §5) is optical-disk based with optional high-performance magnetic
/// disks; we reproduce both as parameterized cost models so that the
/// queueing/caching experiments are measurable in simulated time.
struct DeviceCostModel {
  /// Fixed cost to start any seek (actuator settle).
  Micros seek_base = 0;
  /// Additional cost per block of seek distance.
  double seek_per_block = 0.0;
  /// Maximum total seek cost (full-stroke bound).
  Micros seek_max = 0;
  /// Average rotational latency charged on every access.
  Micros rotational_latency = 0;
  /// Cost to transfer one block once positioned.
  Micros transfer_per_block = 0;
  /// Seeks of at most this many blocks are "track-to-track" and cost
  /// `near_seek_cost` instead of the base model (0 disables the tier).
  uint64_t near_seek_threshold = 0;
  Micros near_seek_cost = 0;

  /// Mid-1980s write-once optical disk: slow heavy head, modest transfer.
  /// (~ 200 ms average seek, 8 ms rotation, ~ 1 MB/s at 1 KB blocks.)
  static DeviceCostModel OpticalDisk();

  /// Contemporary high-performance magnetic disk (~ 28 ms average seek,
  /// ~ 8 ms rotation, ~ 2 MB/s).
  static DeviceCostModel MagneticDisk();

  /// Zero-cost model for tests that do not care about timing.
  static DeviceCostModel Instant();

  /// Cost of moving the head from `from_block` to `to_block`.
  Micros SeekCost(uint64_t from_block, uint64_t to_block) const;

  /// Cost of transferring `n` consecutive blocks.
  Micros TransferCost(uint64_t n) const;
};

/// Cumulative device statistics, readable by benchmarks.
struct DeviceStats {
  uint64_t reads = 0;           ///< Read requests served.
  uint64_t writes = 0;          ///< Write requests served.
  uint64_t blocks_read = 0;     ///< Blocks transferred in.
  uint64_t blocks_written = 0;  ///< Blocks transferred out.
  Micros busy_time = 0;         ///< Total simulated service time.
  uint64_t seeks = 0;           ///< Head movements (non-sequential access).
};

/// An in-memory simulated block device with a cost model and optional
/// write-once (WORM) semantics, standing in for the optical and magnetic
/// disks of the MINOS server subsystem. All accesses advance the injected
/// SimClock by the modeled service time.
class BlockDevice {
 public:
  /// Creates a device of `num_blocks` blocks of `block_size` bytes.
  /// If `write_once` is true, a block can be written at most once
  /// (optical WORM media).
  BlockDevice(std::string name, uint64_t num_blocks, uint32_t block_size,
              DeviceCostModel cost, bool write_once, SimClock* clock);

  BlockDevice(const BlockDevice&) = delete;
  BlockDevice& operator=(const BlockDevice&) = delete;

  /// Device identification.
  const std::string& name() const { return name_; }
  uint64_t num_blocks() const { return num_blocks_; }
  uint32_t block_size() const { return block_size_; }
  bool write_once() const { return write_once_; }

  /// Reads `count` consecutive blocks starting at `block` into `out`
  /// (resized to count*block_size). Charges seek + rotation + transfer.
  Status Read(uint64_t block, uint64_t count, std::string* out);

  /// Fault hook consulted after every successful Read fills `out`: it may
  /// corrupt the payload in place or return a non-OK status (a media
  /// error). Layering keeps the injector type out of storage; a
  /// server::FaultInjector is the usual implementation:
  ///   device.SetReadFaultHook([&](uint64_t, uint64_t, std::string* d) {
  ///     injector.MaybeCorrupt(d);
  ///     return injector.OnOperation("device read");
  ///   });
  using ReadFaultHook =
      std::function<Status(uint64_t block, uint64_t count, std::string* out)>;

  /// Installs (or clears, with nullptr) the read fault hook.
  void SetReadFaultHook(ReadFaultHook hook) { read_fault_ = std::move(hook); }

  /// Fault hook consulted before every Write lands: it may tear the
  /// payload in place (a partial/garbled write that still commits — the
  /// checksums must catch it at read time) or return a non-OK status (a
  /// media error; nothing is written). `block` is the first block of the
  /// write.
  using WriteFaultHook =
      std::function<Status(uint64_t block, std::string* data)>;

  /// Installs (or clears, with nullptr) the write fault hook.
  void SetWriteFaultHook(WriteFaultHook hook) {
    write_fault_ = std::move(hook);
  }

  /// Writes `data` (must be a whole number of blocks) starting at `block`.
  /// On a WORM device rewriting a written block fails with
  /// FailedPrecondition.
  Status Write(uint64_t block, std::string_view data);

  /// Number of blocks ever written (high-water mark for append-only use).
  uint64_t blocks_used() const { return blocks_used_; }

  /// Pure timing query: service time of a hypothetical access at the
  /// current head position, without performing it. Used by the scheduler.
  Micros EstimateServiceTime(uint64_t block, uint64_t count) const;

  /// Current head position (block index after the last access).
  uint64_t head_position() const { return head_; }

  /// The shared simulated clock every access advances.
  SimClock* clock() const { return clock_; }

  /// Cumulative statistics.
  const DeviceStats& stats() const { return stats_; }

  /// Zeroes the statistics (not the data).
  void ResetStats() { stats_ = DeviceStats(); }

 private:
  Micros ChargeAccess(uint64_t block, uint64_t count);

  std::string name_;
  uint64_t num_blocks_;
  uint32_t block_size_;
  DeviceCostModel cost_;
  bool write_once_;
  SimClock* clock_;

  std::vector<std::string> blocks_;   // Lazily sized; empty = never written.
  std::vector<bool> written_;
  ReadFaultHook read_fault_;          // Null when fault-free.
  WriteFaultHook write_fault_;        // Null when fault-free.
  uint64_t blocks_used_ = 0;
  uint64_t head_ = 0;
  DeviceStats stats_;
};

}  // namespace minos::storage

#endif  // MINOS_STORAGE_BLOCK_DEVICE_H_
