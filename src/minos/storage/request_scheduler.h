#ifndef MINOS_STORAGE_REQUEST_SCHEDULER_H_
#define MINOS_STORAGE_REQUEST_SCHEDULER_H_

#include <cstdint>
#include <vector>

#include "minos/obs/metrics.h"
#include "minos/obs/trace.h"
#include "minos/storage/block_device.h"
#include "minos/util/clock.h"

namespace minos::storage {

/// Disk-arm scheduling policy for the server subsystem experiments.
enum class SchedulingPolicy {
  kFcfs,  ///< First come, first served.
  kSstf,  ///< Shortest seek time first.
  kScan,  ///< Elevator: sweep up then down.
};

/// Returns "FCFS" / "SSTF" / "SCAN".
const char* SchedulingPolicyName(SchedulingPolicy policy);

/// Urgency class of one I/O request. Foreground requests (the page the
/// user is looking at) are always served before background ones,
/// regardless of arm position: a cheap seek never justifies stalling
/// the user behind speculation. The live prefetch path exercises both
/// lanes: ObjectServer::SetScheduler routes every StagePartRange cache
/// miss through here, tagging it kBackground whenever a prefetch
/// BackgroundScope is active on the server's Link and kForeground for
/// synchronous page stalls. Contention across concurrent sessions
/// remains the ROADMAP "Prefetch beyond one session" item.
enum class IoPriority : uint8_t { kForeground = 0, kBackground = 1 };

/// One queued I/O request.
struct IoRequest {
  uint64_t id = 0;           ///< Caller-chosen identifier.
  uint64_t block = 0;        ///< First block of the access.
  uint64_t count = 1;        ///< Number of consecutive blocks.
  Micros arrival_time = 0;   ///< When the request entered the queue.
  IoPriority priority = IoPriority::kForeground;
  /// Propagated trace context of the operation that booked the request.
  /// With a tracer attached to the scheduler, a request that waits in
  /// the queue records a "scheduler.queue_wait" span under this parent
  /// (tagged with its lane), so attribution separates time spent behind
  /// other requests — background repair or prefetch staging vs the
  /// foreground page — from device service time.
  obs::TraceContext trace;
};

/// Outcome of one request after simulation.
struct IoCompletion {
  uint64_t id = 0;
  Micros start_time = 0;       ///< When service began.
  Micros completion_time = 0;  ///< When the transfer finished.
  Micros queueing_delay = 0;   ///< start_time - arrival_time.
  Micros service_time = 0;     ///< completion_time - start_time.
};

/// Aggregate queueing statistics over a batch of completions.
struct QueueingStats {
  double mean_queueing_delay_us = 0.0;
  double mean_response_time_us = 0.0;  ///< Queueing delay + service time.
  Micros max_response_time_us = 0;
  Micros makespan_us = 0;  ///< Last completion - first arrival.
};

/// Simulates the service of a batch of read requests against a device
/// under a given arm-scheduling policy. This reproduces the §5 concern:
/// "Performance may be crucial due to queueing delays that may be
/// experienced when several users try to access data from the same
/// device."
///
/// The simulation is event driven: at each step the scheduler picks among
/// the requests that have arrived by the current time (or, if none, jumps
/// to the next arrival), charges the device cost model, and records the
/// completion. The device's clock is advanced to the makespan.
/// Every completion is also recorded into registry-backed per-policy
/// summaries — histograms "scheduler.<policy>.queueing_delay_us" and
/// "scheduler.<policy>.service_time_us" plus the request counters
/// "scheduler.<policy>.requests" and
/// "scheduler.<policy>.background_requests" — so queueing-delay percentiles
/// accumulate across batches and export with every metrics snapshot.
/// The one-off Summarize() aggregation remains for per-batch views.
class RequestScheduler {
 public:
  /// The device must outlive the scheduler. Statistics register in
  /// `registry` (the process default when null).
  RequestScheduler(BlockDevice* device, SchedulingPolicy policy,
                   obs::MetricsRegistry* registry = nullptr);

  /// Attaches the request tracer (borrowed; null detaches). Queue waits
  /// then record "scheduler.queue_wait" spans under each waiting
  /// request's propagated context.
  void SetTracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Runs all `requests` to completion and returns per-request outcomes
  /// ordered by completion time. Requests must fit the device.
  std::vector<IoCompletion> Run(std::vector<IoRequest> requests);

  /// Computes aggregate statistics for a batch of completions.
  static QueueingStats Summarize(const std::vector<IoRequest>& requests,
                                 const std::vector<IoCompletion>& done);

 private:
  size_t PickNext(const std::vector<IoRequest>& pending, uint64_t head,
                  bool sweep_up) const;

  BlockDevice* device_;
  SchedulingPolicy policy_;
  obs::Tracer* tracer_ = nullptr;      // Borrowed; may be null.
  obs::Histogram* queueing_delay_us_;  // Owned by the registry.
  obs::Histogram* service_time_us_;    // Owned by the registry.
  obs::Counter* requests_;             // Owned by the registry.
  obs::Counter* background_requests_;  // Owned by the registry.
};

}  // namespace minos::storage

#endif  // MINOS_STORAGE_REQUEST_SCHEDULER_H_
