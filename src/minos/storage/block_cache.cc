#include "minos/storage/block_cache.h"

namespace minos::storage {

BlockCache::BlockCache(size_t capacity_blocks,
                       obs::MetricsRegistry* registry)
    : capacity_(capacity_blocks) {
  obs::MetricsRegistry& reg =
      registry != nullptr ? *registry : obs::MetricsRegistry::Default();
  const std::string scope = reg.MakeScope("block_cache");
  hits_ = reg.counter(scope + ".hits");
  misses_ = reg.counter(scope + ".misses");
  evictions_ = reg.counter(scope + ".evictions");
}

bool BlockCache::Lookup(uint64_t block, std::string* out) {
  auto it = map_.find(block);
  if (it == map_.end()) {
    misses_->Increment();
    return false;
  }
  hits_->Increment();
  lru_.splice(lru_.begin(), lru_, it->second);
  *out = it->second->payload;
  return true;
}

void BlockCache::Insert(uint64_t block, std::string payload) {
  if (capacity_ == 0) return;
  auto it = map_.find(block);
  if (it != map_.end()) {
    it->second->payload = std::move(payload);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{block, std::move(payload)});
  map_[block] = lru_.begin();
  while (map_.size() > capacity_) {
    map_.erase(lru_.back().block);
    lru_.pop_back();
    evictions_->Increment();
  }
}

void BlockCache::Erase(uint64_t block) {
  auto it = map_.find(block);
  if (it == map_.end()) return;
  lru_.erase(it->second);
  map_.erase(it);
}

void BlockCache::Clear() {
  lru_.clear();
  map_.clear();
}

double BlockCache::HitRate() const {
  const uint64_t total = hits() + misses();
  return total == 0 ? 0.0 : static_cast<double>(hits()) / total;
}

}  // namespace minos::storage
