#include "minos/storage/block_cache.h"

#include <algorithm>

namespace minos::storage {

BlockCache::BlockCache(size_t capacity_blocks,
                       obs::MetricsRegistry* registry, size_t stripes)
    : capacity_(capacity_blocks),
      shards_(std::max<size_t>(stripes, 1)) {
  // Split the budget evenly; remainder blocks go to the low stripes so
  // the total always equals `capacity_blocks`.
  const size_t n = shards_.size();
  for (size_t i = 0; i < n; ++i) {
    shards_[i].capacity = capacity_blocks / n + (i < capacity_blocks % n);
  }
  obs::MetricsRegistry& reg =
      registry != nullptr ? *registry : obs::MetricsRegistry::Default();
  const std::string scope = reg.MakeScope("block_cache");
  hits_ = reg.counter(scope + ".hits");
  misses_ = reg.counter(scope + ".misses");
  evictions_ = reg.counter(scope + ".evictions");
}

bool BlockCache::Lookup(uint64_t block, std::string* out) {
  Shard& s = ShardFor(block);
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.map.find(block);
  if (it == s.map.end()) {
    misses_->Increment();
    return false;
  }
  hits_->Increment();
  s.lru.splice(s.lru.begin(), s.lru, it->second);
  *out = it->second->payload;
  return true;
}

void BlockCache::Insert(uint64_t block, std::string payload) {
  if (capacity_ == 0) return;
  Shard& s = ShardFor(block);
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.map.find(block);
  if (it != s.map.end()) {
    it->second->payload = std::move(payload);
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    return;
  }
  s.lru.push_front(Entry{block, std::move(payload)});
  s.map[block] = s.lru.begin();
  while (s.map.size() > s.capacity) {
    s.map.erase(s.lru.back().block);
    s.lru.pop_back();
    evictions_->Increment();
  }
}

void BlockCache::Erase(uint64_t block) {
  Shard& s = ShardFor(block);
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.map.find(block);
  if (it == s.map.end()) return;
  s.lru.erase(it->second);
  s.map.erase(it);
}

void BlockCache::Clear() {
  for (Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    s.lru.clear();
    s.map.clear();
  }
}

size_t BlockCache::size() const {
  size_t total = 0;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    total += s.map.size();
  }
  return total;
}

double BlockCache::HitRate() const {
  const uint64_t total = hits() + misses();
  return total == 0 ? 0.0 : static_cast<double>(hits()) / total;
}

}  // namespace minos::storage
