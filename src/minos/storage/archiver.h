#ifndef MINOS_STORAGE_ARCHIVER_H_
#define MINOS_STORAGE_ARCHIVER_H_

#include <cstdint>
#include <string>

#include "minos/storage/block_cache.h"
#include "minos/storage/block_device.h"
#include "minos/util/status.h"
#include "minos/util/statusor.h"

namespace minos::storage {

/// A byte range inside the archiver's append-only address space.
/// Object descriptors hold ArchiveAddresses when they point at data that
/// lives in the archiver rather than in the object's own composition file
/// (paper §4: "the object descriptor points either to offsets within the
/// composition file or to offsets within the archiver").
struct ArchiveAddress {
  uint64_t offset = 0;
  uint64_t length = 0;

  friend bool operator==(const ArchiveAddress& a,
                         const ArchiveAddress& b) = default;
};

/// Append-only object archiver over a (typically WORM optical) block
/// device, with an LRU block cache in front. This is the archived-state
/// store of MINOS: archived objects are immutable, written once as
/// descriptor + composition file, and later read back wholly or in part
/// (partial reads are what make views over large images cheap).
class Archiver {
 public:
  /// `device` and `cache` must outlive the archiver. `cache` may be null
  /// to bypass caching.
  Archiver(BlockDevice* device, BlockCache* cache);

  Archiver(const Archiver&) = delete;
  Archiver& operator=(const Archiver&) = delete;

  /// Appends `bytes` to the archive and returns their address.
  /// Data becomes durable (device-resident) once the covering blocks
  /// fill or Flush() is called; reads see it immediately either way.
  StatusOr<ArchiveAddress> Append(std::string_view bytes);

  /// Pads and writes the partially filled tail block, if any.
  Status Flush();

  /// Reads `address.length` bytes at `address.offset`. Touches only the
  /// covering blocks; cached blocks cost no device time.
  Status Read(const ArchiveAddress& address, std::string* out) const;

  /// Reads an arbitrary sub-range [offset, offset+length).
  Status ReadRange(uint64_t offset, uint64_t length, std::string* out) const;

  /// Cache-bypassing read of `address`: every flushed covering block
  /// comes off the device itself (the volatile tail is served from
  /// memory as usual), and nothing is inserted into the cache.
  /// Integrity scrubs use this to audit the medium rather than the
  /// cache's memory of it — a cached read cannot see media rot.
  Status ReadUncached(const ArchiveAddress& address, std::string* out) const;

  /// Total bytes appended so far (the archiver write head).
  uint64_t size() const { return size_; }

  /// The underlying device (for statistics inspection).
  const BlockDevice& device() const { return *device_; }

 private:
  Status ReadBlock(uint64_t block, std::string* out) const;
  Status ReadBlockFromDevice(uint64_t block, std::string* out,
                             bool use_cache) const;
  Status ReadRangeImpl(uint64_t offset, uint64_t length, std::string* out,
                       bool use_cache) const;

  BlockDevice* device_;
  BlockCache* cache_;
  uint64_t size_ = 0;           // Logical bytes appended.
  uint64_t flushed_blocks_ = 0; // Blocks durably written.
  std::string tail_;            // Partial last block not yet on device.
};

}  // namespace minos::storage

#endif  // MINOS_STORAGE_ARCHIVER_H_
