#include "minos/storage/archiver.h"

#include <algorithm>

namespace minos::storage {

Archiver::Archiver(BlockDevice* device, BlockCache* cache)
    : device_(device), cache_(cache) {}

StatusOr<ArchiveAddress> Archiver::Append(std::string_view bytes) {
  const uint32_t bs = device_->block_size();
  ArchiveAddress addr{size_, bytes.size()};
  tail_.append(bytes);
  size_ += bytes.size();
  // Write out every full block accumulated in the tail.
  while (tail_.size() >= bs) {
    MINOS_RETURN_IF_ERROR(device_->Write(
        flushed_blocks_, std::string_view(tail_).substr(0, bs)));
    if (cache_ != nullptr) {
      cache_->Insert(flushed_blocks_, tail_.substr(0, bs));
    }
    tail_.erase(0, bs);
    ++flushed_blocks_;
  }
  return addr;
}

Status Archiver::Flush() {
  if (tail_.empty()) return Status::OK();
  const uint32_t bs = device_->block_size();
  std::string padded = tail_;
  padded.resize(bs, '\0');
  MINOS_RETURN_IF_ERROR(device_->Write(flushed_blocks_, padded));
  if (cache_ != nullptr) cache_->Insert(flushed_blocks_, padded);
  // On a WORM device the tail block can never be extended after this, so
  // subsequent appends start on the next block.
  size_ = (flushed_blocks_ + 1) * static_cast<uint64_t>(bs);
  ++flushed_blocks_;
  tail_.clear();
  return Status::OK();
}

Status Archiver::ReadBlock(uint64_t block, std::string* out) const {
  return ReadBlockFromDevice(block, out, /*use_cache=*/true);
}

Status Archiver::ReadBlockFromDevice(uint64_t block, std::string* out,
                                     bool use_cache) const {
  if (use_cache && cache_ != nullptr && cache_->Lookup(block, out)) {
    return Status::OK();
  }
  if (block >= flushed_blocks_) {
    // Block only exists in the volatile tail.
    const uint32_t bs = device_->block_size();
    const uint64_t tail_start = flushed_blocks_ * bs;
    const uint64_t rel = block * static_cast<uint64_t>(bs) - tail_start;
    out->assign(bs, '\0');
    if (rel < tail_.size()) {
      const size_t n = std::min<size_t>(bs, tail_.size() - rel);
      out->replace(0, n, tail_, rel, n);
    }
    return Status::OK();
  }
  MINOS_RETURN_IF_ERROR(device_->Read(block, 1, out));
  if (use_cache && cache_ != nullptr) cache_->Insert(block, *out);
  return Status::OK();
}

Status Archiver::Read(const ArchiveAddress& address, std::string* out) const {
  return ReadRange(address.offset, address.length, out);
}

Status Archiver::ReadUncached(const ArchiveAddress& address,
                              std::string* out) const {
  return ReadRangeImpl(address.offset, address.length, out,
                       /*use_cache=*/false);
}

Status Archiver::ReadRange(uint64_t offset, uint64_t length,
                           std::string* out) const {
  return ReadRangeImpl(offset, length, out, /*use_cache=*/true);
}

Status Archiver::ReadRangeImpl(uint64_t offset, uint64_t length,
                               std::string* out, bool use_cache) const {
  out->clear();
  if (length == 0) return Status::OK();
  if (offset + length > size_) {
    return Status::OutOfRange("archiver read past end");
  }
  const uint32_t bs = device_->block_size();
  const uint64_t first = offset / bs;
  const uint64_t last = (offset + length - 1) / bs;
  std::string block;
  for (uint64_t b = first; b <= last; ++b) {
    MINOS_RETURN_IF_ERROR(ReadBlockFromDevice(b, &block, use_cache));
    uint64_t lo = (b == first) ? offset - first * bs : 0;
    uint64_t hi = (b == last) ? offset + length - last * bs : bs;
    out->append(block, lo, hi - lo);
  }
  return Status::OK();
}

}  // namespace minos::storage
