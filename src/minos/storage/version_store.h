#ifndef MINOS_STORAGE_VERSION_STORE_H_
#define MINOS_STORAGE_VERSION_STORE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "minos/storage/archiver.h"
#include "minos/util/clock.h"
#include "minos/util/status.h"
#include "minos/util/statusor.h"

namespace minos::storage {

/// Identifier of an archived multimedia object. The paper assigns each
/// multimedia object a unique object identifier (§2).
using ObjectId = uint64_t;

/// One archived version of an object.
struct ObjectVersion {
  uint32_t version = 0;          ///< 1-based, monotonically increasing.
  ArchiveAddress address;        ///< Where descriptor+composition live.
  Micros archived_at = 0;        ///< Simulated archive time.
};

/// Version-control catalog of the server subsystem (§5: "The subsystem
/// provides access methods, scheduling, cashing, version control").
/// Because the optical archive is write-once, a new version of an object
/// is a new appended image; the store records the lineage.
class VersionStore {
 public:
  VersionStore() = default;

  /// Records a new version; returns the assigned version number (one
  /// past the latest recorded version).
  uint32_t Record(ObjectId id, ArchiveAddress address, Micros archived_at);

  /// Records a version under an explicit number — the replica-ingest
  /// path, where the version was assigned by the object's origin and a
  /// replica that missed intermediate versions catches up directly to
  /// the latest. `version` must be greater than the latest recorded
  /// one (lineages stay ascending; a repaired replica's lineage may be
  /// sparse where it was dark). InvalidArgument otherwise.
  Status RecordAs(ObjectId id, uint32_t version, ArchiveAddress address,
                  Micros archived_at);

  /// Re-points an existing version at a new archive address — the
  /// same-version repair path, where a replica's copy failed its
  /// content checksum and a freshly shipped image replaces it (the
  /// write-once archive appends; the lineage entry moves to the clean
  /// image). NotFound when the version was never recorded.
  Status Repoint(ObjectId id, uint32_t version, ArchiveAddress address,
                 Micros archived_at);

  /// Latest version of an object.
  StatusOr<ObjectVersion> Current(ObjectId id) const;

  /// A specific version (looked up by its recorded number, which on a
  /// repaired replica need not equal its lineage position).
  StatusOr<ObjectVersion> Get(ObjectId id, uint32_t version) const;

  /// Full lineage (oldest first); NotFound if the object was never seen.
  StatusOr<std::vector<ObjectVersion>> History(ObjectId id) const;

  /// Number of distinct objects tracked.
  size_t object_count() const { return versions_.size(); }

 private:
  std::map<ObjectId, std::vector<ObjectVersion>> versions_;
};

}  // namespace minos::storage

#endif  // MINOS_STORAGE_VERSION_STORE_H_
