#include "minos/storage/version_store.h"

namespace minos::storage {

uint32_t VersionStore::Record(ObjectId id, ArchiveAddress address,
                              Micros archived_at) {
  std::vector<ObjectVersion>& lineage = versions_[id];
  ObjectVersion v;
  v.version = static_cast<uint32_t>(lineage.size()) + 1;
  v.address = address;
  v.archived_at = archived_at;
  lineage.push_back(v);
  return v.version;
}

StatusOr<ObjectVersion> VersionStore::Current(ObjectId id) const {
  auto it = versions_.find(id);
  if (it == versions_.end() || it->second.empty()) {
    return Status::NotFound("object has no archived versions");
  }
  return it->second.back();
}

StatusOr<ObjectVersion> VersionStore::Get(ObjectId id,
                                          uint32_t version) const {
  auto it = versions_.find(id);
  if (it == versions_.end()) {
    return Status::NotFound("object has no archived versions");
  }
  if (version == 0 || version > it->second.size()) {
    return Status::NotFound("no such version");
  }
  return it->second[version - 1];
}

StatusOr<std::vector<ObjectVersion>> VersionStore::History(
    ObjectId id) const {
  auto it = versions_.find(id);
  if (it == versions_.end()) {
    return Status::NotFound("object has no archived versions");
  }
  return it->second;
}

}  // namespace minos::storage
