#include "minos/storage/version_store.h"

namespace minos::storage {

uint32_t VersionStore::Record(ObjectId id, ArchiveAddress address,
                              Micros archived_at) {
  std::vector<ObjectVersion>& lineage = versions_[id];
  ObjectVersion v;
  v.version = lineage.empty() ? 1 : lineage.back().version + 1;
  v.address = address;
  v.archived_at = archived_at;
  lineage.push_back(v);
  return v.version;
}

Status VersionStore::RecordAs(ObjectId id, uint32_t version,
                              ArchiveAddress address, Micros archived_at) {
  if (version == 0) {
    return Status::InvalidArgument("versions are 1-based");
  }
  std::vector<ObjectVersion>& lineage = versions_[id];
  if (!lineage.empty() && version <= lineage.back().version) {
    return Status::InvalidArgument(
        "version " + std::to_string(version) +
        " does not advance the lineage (latest is " +
        std::to_string(lineage.back().version) + ")");
  }
  ObjectVersion v;
  v.version = version;
  v.address = address;
  v.archived_at = archived_at;
  lineage.push_back(v);
  return Status::OK();
}

Status VersionStore::Repoint(ObjectId id, uint32_t version,
                             ArchiveAddress address, Micros archived_at) {
  auto it = versions_.find(id);
  if (it != versions_.end()) {
    for (ObjectVersion& v : it->second) {
      if (v.version == version) {
        v.address = address;
        v.archived_at = archived_at;
        return Status::OK();
      }
    }
  }
  return Status::NotFound("no such version to re-point");
}

StatusOr<ObjectVersion> VersionStore::Current(ObjectId id) const {
  auto it = versions_.find(id);
  if (it == versions_.end() || it->second.empty()) {
    return Status::NotFound("object has no archived versions");
  }
  return it->second.back();
}

StatusOr<ObjectVersion> VersionStore::Get(ObjectId id,
                                          uint32_t version) const {
  auto it = versions_.find(id);
  if (it == versions_.end()) {
    return Status::NotFound("object has no archived versions");
  }
  for (const ObjectVersion& v : it->second) {
    if (v.version == version) return v;
  }
  return Status::NotFound("no such version");
}

StatusOr<std::vector<ObjectVersion>> VersionStore::History(
    ObjectId id) const {
  auto it = versions_.find(id);
  if (it == versions_.end()) {
    return Status::NotFound("object has no archived versions");
  }
  return it->second;
}

}  // namespace minos::storage
