#ifndef MINOS_STORAGE_BLOCK_CACHE_H_
#define MINOS_STORAGE_BLOCK_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "minos/obs/metrics.h"

namespace minos::storage {

/// LRU cache of device blocks, standing in for the magnetic-disk / main
/// memory caching layer of the MINOS server subsystem ("the subsystem
/// provides access methods, scheduling, cashing, version control", §5).
/// Keys are (device-local) block numbers; values are block payloads.
///
/// The cache is thread-safe: concurrent pool tasks (shard scatters,
/// prefetch staging) may hit one cache at once. Internally it is split
/// into `stripes` independently locked LRU shards keyed by block
/// number. The default single stripe preserves the exact global LRU
/// recency order of the original cache; more stripes trade that for
/// less lock contention. Block-to-stripe placement is a pure function
/// of the block number, so hit/miss/eviction totals are deterministic
/// for a given stripe count regardless of thread interleaving.
///
/// Hit/miss/eviction counters live in a MetricsRegistry under a unique
/// instance scope ("block_cache0.hits", ...); the accessors below are
/// thin views over those registry counters.
class BlockCache {
 public:
  /// Creates a cache holding at most `capacity_blocks` blocks, divided
  /// evenly over `stripes` (>= 1) independently locked LRU shards.
  /// Capacity 0 disables caching (every lookup misses).
  /// Statistics register in `registry` (the process default when null).
  explicit BlockCache(size_t capacity_blocks,
                      obs::MetricsRegistry* registry = nullptr,
                      size_t stripes = 1);

  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  /// Looks up a block; on hit copies the payload into `out`, refreshes
  /// recency and returns true.
  bool Lookup(uint64_t block, std::string* out);

  /// Inserts (or refreshes) a block, evicting the least recently used
  /// entries as needed.
  void Insert(uint64_t block, std::string payload);

  /// Removes a block if present (used on rewrite of magnetic blocks).
  void Erase(uint64_t block);

  /// Drops everything.
  void Clear();

  size_t size() const;
  size_t capacity() const { return capacity_; }
  size_t stripes() const { return shards_.size(); }

  /// Hit/miss/eviction counters for the caching experiments (views over
  /// the registry-backed counters).
  uint64_t hits() const { return static_cast<uint64_t>(hits_->value()); }
  uint64_t misses() const {
    return static_cast<uint64_t>(misses_->value());
  }
  uint64_t evictions() const {
    return static_cast<uint64_t>(evictions_->value());
  }

  /// Fraction of lookups that hit (0 when no lookups yet).
  double HitRate() const;

 private:
  struct Entry {
    uint64_t block;
    std::string payload;
  };

  /// One independently locked LRU shard.
  struct Shard {
    mutable std::mutex mu;
    size_t capacity = 0;
    std::list<Entry> lru;  // Front = most recently used.
    std::unordered_map<uint64_t, std::list<Entry>::iterator> map;
  };

  Shard& ShardFor(uint64_t block) {
    return shards_[block % shards_.size()];
  }

  size_t capacity_;
  std::vector<Shard> shards_;
  obs::Counter* hits_;       // Owned by the registry.
  obs::Counter* misses_;     // Owned by the registry.
  obs::Counter* evictions_;  // Owned by the registry.
};

}  // namespace minos::storage

#endif  // MINOS_STORAGE_BLOCK_CACHE_H_
