#ifndef MINOS_STORAGE_COMPOSITION_FILE_H_
#define MINOS_STORAGE_COMPOSITION_FILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "minos/util/status.h"
#include "minos/util/statusor.h"

namespace minos::storage {

/// Kind of data stored in one part of a multimedia object (paper §2: a
/// multimedia object is composed of attributes, text segments, voice
/// segments, and images).
enum class DataType : uint8_t {
  kAttributes = 0,
  kText = 1,
  kVoice = 2,
  kImage = 3,
  kDescriptor = 4,
  kOther = 5,
};

/// Returns "text", "voice", ... for diagnostics.
const char* DataTypeName(DataType type);

/// The composition file of a multimedia object: "the concatenation of
/// several data files each one of which contains a certain part of the
/// multimedia object (text parts, images, etc.)" (§4). Parts are named,
/// typed, and addressed by byte offset within the file; the object
/// descriptor stores those offsets.
class CompositionFile {
 public:
  /// One part's catalog entry.
  struct Part {
    std::string name;
    DataType type = DataType::kOther;
    uint64_t offset = 0;  ///< Byte offset of the payload within the file.
    uint64_t length = 0;
  };

  CompositionFile() = default;

  /// Appends a part; returns its byte offset within the composition file.
  uint64_t AppendPart(std::string name, DataType type,
                      std::string_view payload);

  /// Number of parts.
  size_t part_count() const { return parts_.size(); }

  /// Catalog access.
  const std::vector<Part>& parts() const { return parts_; }

  /// Finds a part by name.
  StatusOr<Part> FindPart(std::string_view name) const;

  /// Reads the payload of a catalogued part.
  Status ReadPart(const Part& part, std::string* out) const;

  /// Reads an arbitrary byte range of the concatenated payload.
  Status ReadRange(uint64_t offset, uint64_t length, std::string* out) const;

  /// Total payload size in bytes.
  uint64_t size() const { return data_.size(); }

  /// Serializes catalog + payload into a single byte string (the form in
  /// which the composition file is concatenated with the descriptor for
  /// archiving or mailing).
  std::string Serialize() const;

  /// Parses a byte string produced by Serialize().
  static StatusOr<CompositionFile> Deserialize(std::string_view bytes);

  /// The raw concatenated payload (used when rebasing into the archiver).
  const std::string& raw_data() const { return data_; }

 private:
  std::vector<Part> parts_;
  std::string data_;
};

}  // namespace minos::storage

#endif  // MINOS_STORAGE_COMPOSITION_FILE_H_
