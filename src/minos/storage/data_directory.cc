#include "minos/storage/data_directory.h"

#include "minos/util/coding.h"

namespace minos::storage {

void DataDirectory::AddLocal(std::string name, DataType type,
                             uint64_t length, DataStatus status) {
  Entry e;
  e.name = std::move(name);
  e.type = type;
  e.location = DataLocation::kLocalFile;
  e.status = status;
  e.length = length;
  entries_.push_back(std::move(e));
}

void DataDirectory::AddArchiverReference(std::string name, DataType type,
                                         ArchiveAddress address) {
  Entry e;
  e.name = std::move(name);
  e.type = type;
  e.location = DataLocation::kArchiver;
  e.status = DataStatus::kFinal;  // Archived data is final by definition.
  e.length = address.length;
  e.archive_address = address;
  entries_.push_back(std::move(e));
}

StatusOr<DataDirectory::Entry> DataDirectory::Find(
    std::string_view name) const {
  for (const Entry& e : entries_) {
    if (e.name == name) return e;
  }
  return Status::NotFound("data directory entry '" + std::string(name) +
                          "' not found");
}

Status DataDirectory::MarkFinal(std::string_view name) {
  for (Entry& e : entries_) {
    if (e.name == name) {
      e.status = DataStatus::kFinal;
      return Status::OK();
    }
  }
  return Status::NotFound("data directory entry '" + std::string(name) +
                          "' not found");
}

bool DataDirectory::AllFinal() const {
  for (const Entry& e : entries_) {
    if (e.status != DataStatus::kFinal) return false;
  }
  return true;
}

std::string DataDirectory::Serialize() const {
  std::string out;
  PutVarint64(&out, entries_.size());
  for (const Entry& e : entries_) {
    PutLengthPrefixed(&out, e.name);
    out.push_back(static_cast<char>(e.type));
    out.push_back(static_cast<char>(e.location));
    out.push_back(static_cast<char>(e.status));
    PutVarint64(&out, e.length);
    PutVarint64(&out, e.archive_address.offset);
    PutVarint64(&out, e.archive_address.length);
  }
  return out;
}

StatusOr<DataDirectory> DataDirectory::Deserialize(std::string_view bytes) {
  Decoder dec(bytes);
  uint64_t n = 0;
  MINOS_RETURN_IF_ERROR(dec.GetVarint64(&n));
  DataDirectory dir;
  dir.entries_.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Entry e;
    MINOS_RETURN_IF_ERROR(dec.GetLengthPrefixed(&e.name));
    std::string b;
    MINOS_RETURN_IF_ERROR(dec.GetRaw(3, &b));
    e.type = static_cast<DataType>(static_cast<uint8_t>(b[0]));
    e.location = static_cast<DataLocation>(static_cast<uint8_t>(b[1]));
    e.status = static_cast<DataStatus>(static_cast<uint8_t>(b[2]));
    MINOS_RETURN_IF_ERROR(dec.GetVarint64(&e.length));
    MINOS_RETURN_IF_ERROR(dec.GetVarint64(&e.archive_address.offset));
    MINOS_RETURN_IF_ERROR(dec.GetVarint64(&e.archive_address.length));
    dir.entries_.push_back(std::move(e));
  }
  return dir;
}

}  // namespace minos::storage
