#include "minos/storage/file_store.h"

#include <algorithm>

namespace minos::storage {

FileStore::FileStore(BlockDevice* device) : device_(device) {
  free_.reserve(device->num_blocks());
  // Descending so pop_back hands out low block numbers first (keeps
  // files near the outer tracks, like a fresh disk).
  for (uint64_t b = device->num_blocks(); b > 0; --b) {
    free_.push_back(b - 1);
  }
}

Status FileStore::Allocate(uint64_t blocks_needed,
                           std::vector<Extent>* out) {
  if (blocks_needed > free_.size()) {
    return Status::ResourceExhausted("workstation disk full");
  }
  // Take blocks and coalesce consecutive ones into extents.
  std::vector<uint64_t> taken;
  taken.reserve(blocks_needed);
  for (uint64_t i = 0; i < blocks_needed; ++i) {
    taken.push_back(free_.back());
    free_.pop_back();
  }
  std::sort(taken.begin(), taken.end());
  for (uint64_t b : taken) {
    if (!out->empty() &&
        out->back().block + out->back().count == b) {
      ++out->back().count;
    } else {
      out->push_back(Extent{b, 1});
    }
  }
  return Status::OK();
}

void FileStore::Free(const std::vector<Extent>& extents) {
  for (const Extent& e : extents) {
    for (uint64_t i = 0; i < e.count; ++i) {
      free_.push_back(e.block + i);
    }
  }
  // Keep descending order so low blocks are reused first.
  std::sort(free_.begin(), free_.end(), std::greater<uint64_t>());
}

Status FileStore::Put(const std::string& name, std::string_view bytes) {
  const uint32_t bs = device_->block_size();
  const uint64_t blocks_needed = (bytes.size() + bs - 1) / bs;

  // Allocate the new space first so a full disk leaves the old file
  // intact; then free the old extents.
  FileEntry entry;
  entry.size = bytes.size();
  MINOS_RETURN_IF_ERROR(Allocate(std::max<uint64_t>(blocks_needed, 0),
                                 &entry.extents));
  std::string padded(bytes);
  padded.resize(blocks_needed * bs, '\0');
  uint64_t written = 0;
  for (const Extent& e : entry.extents) {
    MINOS_RETURN_IF_ERROR(device_->Write(
        e.block,
        std::string_view(padded).substr(written * bs, e.count * bs)));
    written += e.count;
  }
  auto it = catalog_.find(name);
  if (it != catalog_.end()) Free(it->second.extents);
  catalog_[name] = std::move(entry);
  return Status::OK();
}

StatusOr<std::string> FileStore::Get(const std::string& name) const {
  auto it = catalog_.find(name);
  if (it == catalog_.end()) {
    return Status::NotFound("no file named '" + name + "'");
  }
  std::string out;
  std::string chunk;
  for (const Extent& e : it->second.extents) {
    MINOS_RETURN_IF_ERROR(device_->Read(e.block, e.count, &chunk));
    out += chunk;
  }
  out.resize(it->second.size);
  return out;
}

Status FileStore::Delete(const std::string& name) {
  auto it = catalog_.find(name);
  if (it == catalog_.end()) {
    return Status::NotFound("no file named '" + name + "'");
  }
  Free(it->second.extents);
  catalog_.erase(it);
  return Status::OK();
}

bool FileStore::Contains(const std::string& name) const {
  return catalog_.count(name) > 0;
}

std::vector<std::string> FileStore::List() const {
  std::vector<std::string> names;
  names.reserve(catalog_.size());
  for (const auto& [name, entry] : catalog_) names.push_back(name);
  return names;
}

}  // namespace minos::storage
