#include "minos/storage/block_device.h"

#include <algorithm>
#include <cstring>

namespace minos::storage {

DeviceCostModel DeviceCostModel::OpticalDisk() {
  DeviceCostModel m;
  m.seek_base = 50000;        // 50 ms settle for the heavy optical head.
  m.seek_per_block = 1.0;     // + 1 us per block of travel distance.
  m.seek_max = 400000;        // 400 ms full stroke.
  m.rotational_latency = 8300;
  m.transfer_per_block = 1000;  // 1 ms per 1 KB block ~ 1 MB/s.
  m.near_seek_threshold = 64;   // Same-track repositioning.
  m.near_seek_cost = 4000;
  return m;
}

DeviceCostModel DeviceCostModel::MagneticDisk() {
  DeviceCostModel m;
  m.seek_base = 8000;         // 8 ms settle.
  m.seek_per_block = 0.2;
  m.seek_max = 55000;         // 55 ms full stroke.
  m.rotational_latency = 8300;
  m.transfer_per_block = 500;   // ~ 2 MB/s at 1 KB blocks.
  m.near_seek_threshold = 64;
  m.near_seek_cost = 2000;
  return m;
}

DeviceCostModel DeviceCostModel::Instant() { return DeviceCostModel(); }

Micros DeviceCostModel::SeekCost(uint64_t from_block,
                                 uint64_t to_block) const {
  if (from_block == to_block) return 0;
  const uint64_t dist =
      from_block > to_block ? from_block - to_block : to_block - from_block;
  if (near_seek_threshold > 0 && dist <= near_seek_threshold) {
    return near_seek_cost;
  }
  Micros cost = seek_base + static_cast<Micros>(seek_per_block *
                                                static_cast<double>(dist));
  if (seek_max > 0) cost = std::min(cost, seek_max);
  return cost;
}

Micros DeviceCostModel::TransferCost(uint64_t n) const {
  return transfer_per_block * static_cast<Micros>(n);
}

BlockDevice::BlockDevice(std::string name, uint64_t num_blocks,
                         uint32_t block_size, DeviceCostModel cost,
                         bool write_once, SimClock* clock)
    : name_(std::move(name)),
      num_blocks_(num_blocks),
      block_size_(block_size),
      cost_(cost),
      write_once_(write_once),
      clock_(clock),
      blocks_(num_blocks),
      written_(num_blocks, false) {}

Micros BlockDevice::ChargeAccess(uint64_t block, uint64_t count) {
  const Micros seek = cost_.SeekCost(head_, block);
  if (seek > 0) ++stats_.seeks;
  const Micros total =
      seek + cost_.rotational_latency + cost_.TransferCost(count);
  if (clock_ != nullptr) clock_->Advance(total);
  stats_.busy_time += total;
  head_ = block + count;
  return total;
}

Status BlockDevice::Read(uint64_t block, uint64_t count, std::string* out) {
  if (block + count > num_blocks_) {
    return Status::OutOfRange("read past end of device " + name_);
  }
  ChargeAccess(block, count);
  ++stats_.reads;
  stats_.blocks_read += count;
  out->clear();
  out->reserve(count * block_size_);
  for (uint64_t i = 0; i < count; ++i) {
    const std::string& b = blocks_[block + i];
    if (b.size() == block_size_) {
      out->append(b);
    } else {
      out->append(block_size_, '\0');  // Unwritten blocks read as zeros.
    }
  }
  if (read_fault_) return read_fault_(block, count, out);
  return Status::OK();
}

Status BlockDevice::Write(uint64_t block, std::string_view data) {
  if (data.size() % block_size_ != 0) {
    return Status::InvalidArgument("write is not a whole number of blocks");
  }
  const uint64_t count = data.size() / block_size_;
  if (block + count > num_blocks_) {
    return Status::OutOfRange("write past end of device " + name_);
  }
  if (write_once_) {
    for (uint64_t i = 0; i < count; ++i) {
      if (written_[block + i]) {
        return Status::FailedPrecondition(
            "WORM device " + name_ + " block already written");
      }
    }
  }
  std::string faulted;
  if (write_fault_) {
    faulted.assign(data);
    MINOS_RETURN_IF_ERROR(write_fault_(block, &faulted));
    if (faulted.size() != data.size()) {
      return Status::InvalidArgument(
          "write fault hook changed the payload size");
    }
    data = faulted;
  }
  ChargeAccess(block, count);
  ++stats_.writes;
  stats_.blocks_written += count;
  for (uint64_t i = 0; i < count; ++i) {
    blocks_[block + i].assign(data.data() + i * block_size_, block_size_);
    if (!written_[block + i]) {
      written_[block + i] = true;
      ++blocks_used_;
    }
  }
  return Status::OK();
}

Micros BlockDevice::EstimateServiceTime(uint64_t block,
                                        uint64_t count) const {
  return cost_.SeekCost(head_, block) + cost_.rotational_latency +
         cost_.TransferCost(count);
}

}  // namespace minos::storage
