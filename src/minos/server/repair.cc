#include "minos/server/repair.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "minos/server/link.h"
#include "minos/server/object_server.h"
#include "minos/server/shard_router.h"
#include "minos/util/coding.h"

namespace minos::server {

using storage::ObjectId;

namespace {

/// Digest document magic: "MDG1", little-endian.
constexpr uint32_t kDigestMagic = 0x3147444Du;

}  // namespace

std::string CatalogDigest::Serialize() const {
  std::string out;
  PutFixed32(&out, kDigestMagic);
  PutVarint32(&out, static_cast<uint32_t>(entries.size()));
  for (const DigestEntry& e : entries) {
    PutVarint64(&out, e.id);
    PutVarint32(&out, e.version);
    PutFixed32(&out, e.content_crc);
  }
  PutFixed32(&out, Crc32(out));
  return out;
}

StatusOr<CatalogDigest> CatalogDigest::Deserialize(std::string_view bytes) {
  // The trailing CRC-32 guards the whole document; verify it before
  // believing a single field.
  // Minimum wire size: 4-byte magic, 1-byte varint count of zero, and
  // the 4-byte trailing checksum — the empty catalog's digest.
  if (bytes.size() < 9) {
    return Status::Corruption("catalog digest truncated");
  }
  const std::string_view body = bytes.substr(0, bytes.size() - 4);
  Decoder trailer(bytes.substr(bytes.size() - 4));
  uint32_t claimed = 0;
  MINOS_RETURN_IF_ERROR(trailer.GetFixed32(&claimed));
  if (claimed != Crc32(body)) {
    return Status::Corruption("catalog digest checksum mismatch");
  }
  Decoder dec(body);
  uint32_t magic = 0;
  MINOS_RETURN_IF_ERROR(dec.GetFixed32(&magic));
  if (magic != kDigestMagic) {
    return Status::Corruption("catalog digest bad magic");
  }
  uint32_t count = 0;
  MINOS_RETURN_IF_ERROR(dec.GetVarint32(&count));
  CatalogDigest digest;
  uint64_t prev_id = 0;
  for (uint32_t i = 0; i < count; ++i) {
    DigestEntry e;
    uint64_t id = 0;
    MINOS_RETURN_IF_ERROR(dec.GetVarint64(&id));
    MINOS_RETURN_IF_ERROR(dec.GetVarint32(&e.version));
    MINOS_RETURN_IF_ERROR(dec.GetFixed32(&e.content_crc));
    if (i > 0 && id <= prev_id) {
      return Status::Corruption("catalog digest ids out of order");
    }
    if (e.version == 0) {
      return Status::Corruption("catalog digest entry with version 0");
    }
    prev_id = id;
    e.id = id;
    digest.entries.push_back(e);
  }
  if (!dec.empty()) {
    return Status::Corruption("catalog digest trailing garbage");
  }
  return digest;
}

RepairManager::RepairManager(ShardRouter* router, SimClock* clock,
                             RepairOptions options)
    : router_(router),
      clock_(clock),
      options_(options),
      rng_(options.seed) {
  assert(router_ != nullptr && clock_ != nullptr);
  obs::MetricsRegistry& reg = options_.registry != nullptr
                                  ? *options_.registry
                                  : obs::MetricsRegistry::Default();
  syncs_ = reg.counter("repair.syncs_total");
  digest_exchanges_ = reg.counter("repair.digest_exchanges_total");
  digest_rejects_ = reg.counter("repair.digest_rejects_total");
  repaired_ = reg.counter("repair.replicas_repaired_total");
  requests_ = reg.counter("repair.requests_total");
  errors_ = reg.counter("repair.errors_total");
  bytes_ = reg.counter("repair.bytes_total");
  failures_ = reg.counter("repair.failures_total");
  migrations_ = reg.counter("repair.migrations_total");
  scrubs_ = reg.counter("repair.scrubs_total");
  pending_ = reg.gauge("repair.pending");
  duration_us_ = reg.histogram("repair.duration_us");
  router_->SetHealListener([this](size_t) { heal_pending_ = true; });
}

bool RepairManager::sync_pending() const {
  return heal_pending_ || scrub_due() ||
         !router_->under_replicated().empty();
}

bool RepairManager::scrub_due() const {
  return options_.scrub_interval > 0 &&
         clock_->Now() - last_scrub_ >= options_.scrub_interval;
}

RepairReport RepairManager::Sync(const obs::TraceContext& ctx) {
  // A due patrol cycle upgrades this round to scrub digests: every
  // image re-read off the platter, checksummed against the catalog.
  bool scrub = options_.scrub;
  if (scrub_due()) {
    scrub = true;
    last_scrub_ = clock_->Now();
    scrubs_->Increment();
  }
  std::set<ObjectId> under;
  RepairReport report =
      SyncUnder(router_->active_count_, &under, scrub, ctx);
  router_->ReplaceUnderReplicated(std::move(under));
  return report;
}

std::optional<RepairReport> RepairManager::SyncIfPending(
    const obs::TraceContext& ctx) {
  if (!sync_pending()) return std::nullopt;
  return Sync(ctx);
}

RepairReport RepairManager::SyncUnder(size_t placement_count,
                                      std::set<ObjectId>* out_under,
                                      bool scrub,
                                      const obs::TraceContext& ctx) {
  RepairReport report;
  syncs_->Increment();
  const Micros start = clock_->Now();
  // Unlike fabric-layer spans, a sync roots its own trace when the
  // caller is untraced: repair rounds are top-level work, not a detail
  // of some request.
  std::optional<obs::TraceSpan> sync_span;
  if (router_->tracer_ != nullptr) {
    sync_span.emplace(router_->tracer_->StartSpan("repair.sync", ctx));
  }
  const obs::TraceContext sync_ctx = obs::ContextOf(sync_span);

  router_->RefreshLiveness();
  heal_pending_ = false;

  // Phase 1 — digest exchange. Every live shard (staged ones included:
  // their copies are legitimate sources) summarizes its catalog; the
  // wire document ships over the shard's link in the background lane —
  // after a heal this transfer doubles as the half-open probe — and is
  // verified strictly on receipt. A shard whose digest cannot be
  // fetched or verified contributes nothing this round.
  const size_t shard_count = router_->shards_.size();
  std::vector<std::optional<CatalogDigest>> digests(shard_count);
  for (size_t i = 0; i < shard_count; ++i) {
    if (!router_->live_[i]) continue;
    std::string wire =
        router_->shards_[i]->BuildCatalogDigest(scrub).Serialize();
    if (digest_tap_) digest_tap_(i, &wire);
    Link* link = router_->shards_[i]->link();
    if (link != nullptr) {
      Link::BackgroundScope bg(link);
      StatusOr<Micros> sent = RetryWithBackoff<Micros>(
          options_.retry, clock_, &rng_,
          [&] { return link->Transfer(wire.size(), sync_ctx); });
      if (!sent.ok()) continue;
    }
    bytes_->Increment(static_cast<int64_t>(wire.size()));
    report.bytes_shipped += wire.size();
    StatusOr<CatalogDigest> parsed = CatalogDigest::Deserialize(wire);
    if (!parsed.ok()) {
      digest_rejects_->Increment();
      ++report.digests_rejected;
      continue;
    }
    digest_exchanges_->Increment();
    ++report.digests_exchanged;
    digests[i] = *std::move(parsed);
  }

  // Union the digests: latest version per id, then the truth checksum
  // among that version's holders — majority wins, ties break toward the
  // checksum whose quorum completed on the lowest shard indexes.
  std::vector<std::map<ObjectId, DigestEntry>> holds(shard_count);
  std::map<ObjectId, uint32_t> latest;
  for (size_t i = 0; i < shard_count; ++i) {
    if (!digests[i].has_value()) continue;
    for (const DigestEntry& e : digests[i]->entries) {
      holds[i].emplace(e.id, e);
      uint32_t& v = latest[e.id];
      v = std::max(v, e.version);
    }
  }
  std::map<ObjectId, uint32_t> truth;
  for (const auto& [id, version] : latest) {
    std::map<uint32_t, int> votes;
    uint32_t best_crc = 0;
    int best_votes = 0;
    for (size_t i = 0; i < shard_count; ++i) {
      auto it = holds[i].find(id);
      if (it == holds[i].end() || it->second.version != version) continue;
      const int n = ++votes[it->second.content_crc];
      if (n > best_votes) {
        best_votes = n;
        best_crc = it->second.content_crc;
      }
    }
    truth[id] = best_crc;
  }

  const auto up_to_date = [&](size_t shard, ObjectId id) {
    if (!digests[shard].has_value()) return false;
    const auto it = holds[shard].find(id);
    return it != holds[shard].end() &&
           it->second.version == latest[id] &&
           it->second.content_crc == truth[id];
  };

  // Phase 2 — re-replication, ascending id order, chain order per
  // object. Only live shards with verified digests are repair targets;
  // a dark shard's deficit waits for its heal.
  for (const auto& [id, version] : latest) {
    ++report.objects_checked;
    const std::vector<size_t> chain =
        router_->ReplicaChainUnder(id, placement_count);
    std::vector<size_t> holders;
    for (size_t i = 0; i < shard_count; ++i) {
      if (up_to_date(i, id)) holders.push_back(i);
    }
    for (size_t target : chain) {
      if (!router_->live_[target]) continue;
      if (!digests[target].has_value()) continue;
      if (up_to_date(target, id)) continue;
      bool repaired = false;
      for (size_t src : holders) {
        StatusOr<std::string> payload =
            router_->shards_[src]->ReadObjectBytes(id);
        if (!payload.ok()) continue;  // Unreadable source: next holder.
        requests_->Increment();
        std::optional<obs::TraceSpan> t_span = obs::MaybeStartSpan(
            router_->tracer_, "repair.transfer", sync_ctx);
        if (t_span.has_value()) {
          t_span->AddTag("object", static_cast<int64_t>(id));
          t_span->AddTag("src", static_cast<int64_t>(src));
          t_span->AddTag("dst", static_cast<int64_t>(target));
          t_span->AddTag("bytes", static_cast<int64_t>(payload->size()));
        }
        Link* link = router_->shards_[target]->link();
        if (link != nullptr) {
          Link::BackgroundScope bg(link);
          StatusOr<Micros> sent = RetryWithBackoff<Micros>(
              options_.retry, clock_, &rng_, [&] {
                return link->Transfer(payload->size(),
                                      obs::ContextOf(t_span));
              });
          if (!sent.ok()) {
            errors_->Increment();
            if (t_span.has_value()) {
              t_span->AddTag("outcome", "transfer_failed");
            }
            // Every holder would ride this same dead link: give up on
            // the target for this round.
            break;
          }
        }
        StatusOr<bool> accepted = router_->shards_[target]->AcceptReplica(
            id, latest[id], *payload);
        if (!accepted.ok()) {
          errors_->Increment();
          if (t_span.has_value()) t_span->AddTag("outcome", "rejected");
          continue;  // Rotten source copy: try the next holder.
        }
        bytes_->Increment(static_cast<int64_t>(payload->size()));
        report.bytes_shipped += payload->size();
        repaired_->Increment();
        ++report.replicas_repaired;
        if (t_span.has_value()) t_span->AddTag("outcome", "ok");
        holds[target][id] = DigestEntry{id, latest[id], truth[id]};
        repaired = true;
        break;
      }
      if (!repaired) {
        failures_->Increment();
        ++report.repair_failures;
      }
    }
  }

  // Phase 3 — recount against the post-repair picture. An id is
  // under-replicated while any chain slot lacks a live up-to-date copy;
  // the live slots among those are `pending` (retried next sync), the
  // dark ones wait for their shard's heal.
  for (const auto& [id, version] : latest) {
    const std::vector<size_t> chain =
        router_->ReplicaChainUnder(id, placement_count);
    int good = 0;
    uint64_t live_missing = 0;
    for (size_t target : chain) {
      if (up_to_date(target, id)) {
        ++good;
      } else if (router_->live_[target] && digests[target].has_value()) {
        ++live_missing;
      }
    }
    if (good < static_cast<int>(chain.size())) {
      out_under->insert(id);
      ++report.under_replicated;
      report.pending += live_missing;
    }
  }
  // Ids the router knew were under-replicated but no digest named:
  // every holder is dark this round. Keep them flagged for the heal.
  for (ObjectId id : router_->under_replicated_) {
    if (latest.find(id) != latest.end()) continue;
    out_under->insert(id);
    ++report.under_replicated;
  }

  pending_->Set(static_cast<double>(report.pending));
  duration_us_->Record(static_cast<double>(clock_->Now() - start));
  if (sync_span.has_value()) {
    sync_span->AddTag("objects",
                      static_cast<int64_t>(report.objects_checked));
    sync_span->AddTag("repaired",
                      static_cast<int64_t>(report.replicas_repaired));
    sync_span->AddTag("under_replicated",
                      static_cast<int64_t>(report.under_replicated));
    sync_span->AddTag("pending", static_cast<int64_t>(report.pending));
  }
  return report;
}

StatusOr<RepairReport> RepairManager::ExpandShards(
    ObjectServer* shard, const obs::TraceContext& ctx) {
  if (shard == nullptr) {
    return Status::InvalidArgument("ExpandShards: null shard");
  }
  router_->RefreshLiveness();
  for (size_t i = 0; i < router_->active_count_; ++i) {
    if (!router_->live_[i]) {
      return Status::Unavailable(
          "shard expansion requires every active shard live; shard " +
          std::to_string(i) + " is dark");
    }
  }
  router_->AddShard(shard);
  // Migrate under the expanded placement while routing still uses the
  // old one: the staged shard fills up invisibly, and every live chain
  // member of the new layout gets its copy too.
  std::set<ObjectId> under;
  RepairReport report =
      SyncUnder(router_->shards_.size(), &under, options_.scrub, ctx);
  if (report.digests_rejected > 0 || report.under_replicated > 0) {
    // Fail closed: the staged shard stays staged and no routing
    // decision changes. Retrying after the fabric heals resumes the
    // migration — copies already shipped verify up to date and are
    // skipped.
    return Status::Unavailable(
        "shard migration incomplete; routing table unchanged");
  }
  router_->CommitExpansion();
  router_->ReplaceUnderReplicated(std::move(under));
  migrations_->Increment();
  return report;
}

}  // namespace minos::server
