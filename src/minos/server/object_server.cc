#include "minos/server/object_server.h"

#include <algorithm>
#include <utility>

#include "minos/format/archive_mailer.h"
#include "minos/obs/metrics.h"
#include "minos/query/query_engine.h"
#include "minos/render/screen.h"
#include "minos/util/coding.h"
#include "minos/util/string_util.h"

namespace minos::server {

using object::MultimediaObject;
using object::ObjectDescriptor;
using storage::ArchiveAddress;
using storage::ObjectId;

ObjectServer::ObjectServer(storage::Archiver* archiver,
                           storage::VersionStore* versions, SimClock* clock,
                           Link* link)
    : archiver_(archiver), versions_(versions), clock_(clock), link_(link) {}

void ObjectServer::IndexWords(ObjectId id, std::string_view text) {
  for (const std::string& w : SplitWords(text)) {
    std::string folded = FoldWord(w);
    if (folded.empty()) continue;
    index_[std::move(folded)].insert(id);
  }
}

StatusOr<ArchiveAddress> ObjectServer::Store(const MultimediaObject& obj) {
  MINOS_ASSIGN_OR_RETURN(std::string bytes, obj.SerializeArchived());
  MINOS_ASSIGN_OR_RETURN(ArchiveAddress addr, archiver_->Append(bytes));
  MINOS_RETURN_IF_ERROR(archiver_->Flush());
  const uint32_t version = versions_->Record(obj.id(), addr, clock_->Now());
  MINOS_RETURN_IF_ERROR(CatalogObject(obj, bytes, addr, version,
                                      Crc32(bytes), /*reindex=*/true));
  return addr;
}

Status ObjectServer::CatalogObject(const MultimediaObject& obj,
                                   const std::string& bytes,
                                   ArchiveAddress addr, uint32_t version,
                                   uint32_t content_crc, bool reindex) {
  // Catalog: the serialized descriptor (its parts carry composition
  // offsets) plus the payload base within the object bytes.
  Decoder dec(bytes);
  std::string desc_bytes;
  MINOS_RETURN_IF_ERROR(dec.GetLengthPrefixed(&desc_bytes));
  MINOS_ASSIGN_OR_RETURN(ObjectDescriptor desc,
                         ObjectDescriptor::Deserialize(desc_bytes));
  uint64_t data_len = 0;
  for (const object::PartPointer& p : desc.parts) {
    if (!p.in_archiver) data_len += p.length;
  }
  CatalogEntry entry;
  entry.address = addr;
  entry.descriptor = std::move(desc);
  entry.payload_base = bytes.size() - data_len;
  entry.version = version;
  entry.content_crc = content_crc;
  catalog_[obj.id()] = std::move(entry);

  if (reindex) {
    // Content index: text words, attribute values, and the words the
    // voice recognizer produced at insertion time (we index the
    // spoken-word ground truth; a limited-vocabulary deployment would
    // index the Recognizer's output instead).
    if (obj.has_text()) IndexWords(obj.id(), obj.text_part().contents());
    for (const auto& [k, v] : obj.attributes()) {
      IndexWords(obj.id(), v);
    }
    if (obj.has_voice()) {
      for (const voice::WordAlignment& w :
           obj.voice_part().track().words) {
        IndexWords(obj.id(), w.word);
      }
    }

    // Scored index: the same two sources, but with term frequencies and
    // media provenance kept, voice postings weighted by the recognizer
    // profile's confidence. Built here — at insertion time — so ranked
    // browsing never pays recognition or indexing cost.
    scored_index_.Add(obj, query::VoiceConfidence(recognizer_profile_));
  }
  ++catalog_version_;
  return Status::OK();
}

StatusOr<ObjectServer::AppendResult> ObjectServer::Append(
    ObjectId id, const AppendParts& parts) {
  const bool voice_appended =
      !parts.voice.words.empty() || !parts.voice.pcm.empty();
  if (parts.text.empty() && !voice_appended) {
    return Status::InvalidArgument("append carries no content");
  }
  MINOS_ASSIGN_OR_RETURN(const CatalogEntry* entry, Lookup(id));
  // Materialize the current version server-side (no link charge).
  MINOS_ASSIGN_OR_RETURN(
      MultimediaObject current,
      FetchAt(id, entry->address, /*over_link=*/false));

  // Archived objects are immutable (§2): the append builds the
  // successor version as a fresh editing-state object — every prior
  // part plus the new content — and archives it whole.
  MultimediaObject next(id);
  for (const auto& [name, value] : current.attributes()) {
    MINOS_RETURN_IF_ERROR(next.SetAttribute(name, value));
  }
  const size_t text_base =
      current.has_text() ? current.text_part().size() : 0;
  if (current.has_text() || !parts.text.empty()) {
    text::Document doc;
    if (current.has_text()) {
      const text::Document& old = current.text_part();
      doc.AppendText(old.contents());
      for (int u = 0; u < 8; ++u) {
        const auto unit = static_cast<text::LogicalUnit>(u);
        for (const text::LogicalComponent& c : old.Components(unit)) {
          doc.AddComponentSpan(c);
        }
      }
      for (const text::EmphasisSpan& e : old.emphasis()) {
        doc.AddEmphasis(e);
      }
    }
    if (!parts.text.empty()) {
      const size_t at = doc.AppendText(parts.text);
      // The appended run reads as one new paragraph so logical browsing
      // and page formatting can reach it.
      doc.AddComponentSpan(text::LogicalComponent{
          text::LogicalUnit::kParagraph, {at, doc.size()}, ""});
    }
    MINOS_RETURN_IF_ERROR(next.SetTextPart(std::move(doc)));
  }
  if (current.has_voice() || voice_appended) {
    voice::VoiceTrack track;
    size_t sample_base = 0;
    if (current.has_voice()) {
      track = current.voice_part().track();
      sample_base = track.pcm.size();
    } else {
      track.pcm = voice::PcmBuffer(parts.voice.pcm.sample_rate());
    }
    track.pcm.Append(parts.voice.pcm.samples());
    for (voice::WordAlignment w : parts.voice.words) {
      w.text_offset += text_base;
      w.samples.begin += sample_base;
      w.samples.end += sample_base;
      track.words.push_back(std::move(w));
    }
    for (voice::SilenceTruth s : parts.voice.silences) {
      s.samples.begin += sample_base;
      s.samples.end += sample_base;
      track.silences.push_back(s);
    }
    voice::VoiceDocument vdoc(std::move(track));
    if (current.has_voice()) {
      const voice::VoiceDocument& old = current.voice_part();
      for (int u = 0; u < 8; ++u) {
        const auto unit = static_cast<text::LogicalUnit>(u);
        for (const voice::VoiceComponent& c : old.Components(unit)) {
          vdoc.TagComponent(c.unit, c.span, c.title);
        }
      }
    }
    MINOS_RETURN_IF_ERROR(next.SetVoicePart(std::move(vdoc)));
  }
  for (const image::Image& img : current.images()) {
    MINOS_RETURN_IF_ERROR(next.AddImage(img).status());
  }
  // SerializeArchived regenerates part pointers from the parts, so the
  // prior descriptor carries over verbatim; its anchors stay in bounds
  // because both media only grew.
  next.descriptor() = current.descriptor();
  MINOS_RETURN_IF_ERROR(next.Archive());
  MINOS_ASSIGN_OR_RETURN(std::string bytes, next.SerializeArchived());

  // Device write FIRST. Nothing — catalog, version lineage, word
  // index, scored index, catalog_version_ — has been touched yet, so a
  // write fault rolls the whole Append back by construction: no
  // phantom df entries, no stale-address catalog entry.
  MINOS_ASSIGN_OR_RETURN(ArchiveAddress addr, archiver_->Append(bytes));
  MINOS_RETURN_IF_ERROR(archiver_->Flush());

  const uint32_t version = versions_->Record(id, addr, clock_->Now());
  MINOS_RETURN_IF_ERROR(CatalogObject(next, bytes, addr, version,
                                      Crc32(bytes), /*reindex=*/false));
  // Incremental content indexing: only the appended words are walked —
  // the existing postings keep their weights untouched. The scored
  // index hands back the df/length delta the router's catalog-wide
  // statistics apply in place of a full re-add.
  IndexWords(id, parts.text);
  for (const voice::WordAlignment& w : parts.voice.words) {
    IndexWords(id, w.word);
  }
  query::AppendedContent content;
  content.text = parts.text;
  content.voice_words = parts.voice.words;
  AppendResult result;
  result.address = addr;
  result.version = version;
  result.delta = scored_index_.Append(
      id, content, query::VoiceConfidence(recognizer_profile_));
  obs::MetricsRegistry::Default().counter("server.appends")->Increment();
  return result;
}

CatalogDigest ObjectServer::BuildCatalogDigest(bool scrub) const {
  CatalogDigest digest;
  digest.entries.reserve(catalog_.size());
  for (const auto& [id, entry] : catalog_) {
    DigestEntry e;
    e.id = id;
    e.version = entry.version;
    e.content_crc = entry.content_crc;
    if (scrub) {
      // Re-read the archived image off the platter — past the block
      // cache, which still remembers the bytes as written — and
      // recompute the checksum, so a replica whose media rotted
      // advertises the divergent bytes it actually holds. An unreadable
      // image advertises the complement of its cataloged checksum —
      // guaranteed divergent.
      std::string bytes;
      if (archiver_->ReadUncached(entry.address, &bytes).ok()) {
        e.content_crc = Crc32(bytes);
      } else {
        e.content_crc = ~entry.content_crc;
      }
    }
    digest.entries.push_back(e);
  }
  // Digest assembly is server-side catalog work, charged like scoring.
  clock_->Advance(static_cast<Micros>(2 + catalog_.size() / 8));
  return digest;
}

StatusOr<bool> ObjectServer::AcceptReplica(ObjectId id, uint32_t version,
                                           std::string_view bytes) {
  if (version == 0) {
    return Status::InvalidArgument("replica versions are 1-based");
  }
  // Strict validation before any mutation: every part checksum must
  // verify. A corrupt or truncated replica is rejected, never archived
  // — repair must not propagate damage.
  MINOS_ASSIGN_OR_RETURN(MultimediaObject obj,
                         MultimediaObject::DeserializeArchived(id, bytes));
  const uint32_t crc = Crc32(bytes);
  bool reindex = true;
  auto it = catalog_.find(id);
  if (it != catalog_.end()) {
    if (version < it->second.version) return false;  // Never regress.
    if (version == it->second.version) {
      if (crc == it->second.content_crc) {
        // The catalog claims this exact image — but the claim is a
        // cache stamped at ingest. Verify the archived bytes — off the
        // platter, not the cache — before declaring the replica
        // redundant: rot under an unchanged catalog entry (what scrub
        // digests surface) must fall through to the re-archive below,
        // not be skipped.
        std::string current;
        if (archiver_->ReadUncached(it->second.address, &current).ok() &&
            Crc32(current) == crc) {
          return false;  // Already held, image verified.
        }
      }
      // Same version, divergent bytes: the local image failed its
      // checksum somewhere (media rot). Replace the image, keep the
      // indexes — the logical content is unchanged.
      reindex = false;
    }
  }
  std::string owned(bytes);
  MINOS_ASSIGN_OR_RETURN(ArchiveAddress addr, archiver_->Append(owned));
  MINOS_RETURN_IF_ERROR(archiver_->Flush());
  if (!reindex) {
    MINOS_RETURN_IF_ERROR(
        versions_->Repoint(id, version, addr, clock_->Now()));
  } else if (versions_->Get(id, version).ok()) {
    // The lineage already knows this version (e.g. the catalog lagged a
    // crash); move it to the fresh image.
    MINOS_RETURN_IF_ERROR(
        versions_->Repoint(id, version, addr, clock_->Now()));
  } else {
    MINOS_RETURN_IF_ERROR(
        versions_->RecordAs(id, version, addr, clock_->Now()));
  }
  MINOS_RETURN_IF_ERROR(
      CatalogObject(obj, owned, addr, version, crc, reindex));
  obs::MetricsRegistry::Default()
      .counter("server.replicas_accepted")
      ->Increment();
  return true;
}

StatusOr<std::string> ObjectServer::ReadObjectBytes(ObjectId id) const {
  MINOS_ASSIGN_OR_RETURN(const CatalogEntry* entry, Lookup(id));
  // Repair sources self-verify: the raw image comes off the platter
  // (the cache may remember a clean write the media has since lost) and
  // must match the checksum stamped at ingest. Part checksums alone
  // cannot cover descriptor-region rot, so a whole-image mismatch here
  // is the only guard that keeps a lying platter from seeding replicas.
  std::string bytes;
  MINOS_RETURN_IF_ERROR(archiver_->ReadUncached(entry->address, &bytes));
  if (Crc32(bytes) != entry->content_crc) {
    return Status::Corruption("archived image fails its checksum; refusing "
                              "to serve it as a repair source");
  }
  format::ArchiveMailer mailer(archiver_, versions_, clock_);
  return mailer.ResolvePointers(bytes);
}

std::vector<ObjectId> ObjectServer::Query(std::string_view word) const {
  obs::MetricsRegistry::Default().counter("server.queries")->Increment();
  std::vector<ObjectId> out;
  // Fold with the routine the index was built with, so "Chapter" and
  // "chapter," hit the "chapter" posting list alike.
  auto it = index_.find(FoldWord(word));
  if (it == index_.end()) return out;
  out.assign(it->second.begin(), it->second.end());
  return out;
}

std::vector<ObjectId> ObjectServer::QueryAll(
    const std::vector<std::string>& words) const {
  std::vector<ObjectId> result;
  bool first = true;
  for (const std::string& w : words) {
    std::vector<ObjectId> hits = Query(w);
    if (first) {
      result = std::move(hits);
      first = false;
    } else {
      std::vector<ObjectId> merged;
      std::set_intersection(result.begin(), result.end(), hits.begin(),
                            hits.end(), std::back_inserter(merged));
      result = std::move(merged);
    }
    if (result.empty()) break;
  }
  return result;
}

std::vector<query::ScoredHit> ObjectServer::QueryRankedWith(
    const std::vector<std::string>& words, size_t k, query::QueryMode mode,
    const query::ScoredIndex& global, const obs::TraceContext& ctx) const {
  std::optional<obs::TraceSpan> span =
      obs::MaybeStartSpan(tracer_, "server.score", ctx);
  obs::MetricsRegistry::Default()
      .counter("query.ranked_queries")
      ->Increment();
  query::QueryEngine engine;
  query::RankedQuery ranked =
      engine.TopK(scored_index_, global, words, k, mode, pool_);
  // Scoring is server-side CPU work; unlike card gathers it never rides
  // the link, so the clock charge is the whole latency story here.
  clock_->Advance(
      query::ScoringCost(ranked.terms_scored, ranked.postings_scanned));
  if (span.has_value()) {
    span->AddTag("terms", static_cast<int64_t>(ranked.terms_scored));
    span->AddTag("postings", static_cast<int64_t>(ranked.postings_scanned));
  }
  return std::move(ranked.hits);
}

std::vector<query::ScoredHit> ObjectServer::QueryRanked(
    const std::vector<std::string>& words, size_t k, query::QueryMode mode,
    const obs::TraceContext& ctx) const {
  return QueryRankedWith(words, k, mode, scored_index_, ctx);
}

StatusOr<std::vector<MiniatureCard>> ObjectServer::GatherCards(
    const std::vector<std::string>& words, int thumb_width,
    const obs::TraceContext& ctx) {
  std::optional<obs::TraceSpan> span =
      obs::MaybeStartSpan(tracer_, "server.gather_cards", ctx);
  std::vector<MiniatureCard> cards;
  for (ObjectId id : QueryAll(words)) {
    StatusOr<MiniatureCard> card =
        FetchMiniature(id, thumb_width, obs::ContextOf(span));
    if (!card.ok()) {
      // One unbuildable card must not sink the strip: drop it and let
      // the caller present the partial strip degraded.
      obs::MetricsRegistry::Default()
          .counter("server.cards_dropped")
          ->Increment();
      continue;
    }
    cards.push_back(*std::move(card));
  }
  return cards;
}

StatusOr<std::vector<MiniatureCard>> ObjectServer::GatherCardsRanked(
    const std::vector<std::string>& words, size_t k, int thumb_width,
    const obs::TraceContext& ctx) {
  std::optional<obs::TraceSpan> span =
      obs::MaybeStartSpan(tracer_, "server.gather_ranked", ctx);
  std::vector<MiniatureCard> cards;
  for (const query::ScoredHit& hit :
       QueryRanked(words, k, query::QueryMode::kConjunctive,
                   obs::ContextOf(span))) {
    StatusOr<MiniatureCard> card =
        FetchMiniature(hit.id, thumb_width, obs::ContextOf(span));
    if (!card.ok()) {
      obs::MetricsRegistry::Default()
          .counter("server.cards_dropped")
          ->Increment();
      continue;
    }
    card->score = hit.score;
    cards.push_back(*std::move(card));
  }
  return cards;
}

StatusOr<const ObjectServer::CatalogEntry*> ObjectServer::Lookup(
    ObjectId id) const {
  auto it = catalog_.find(id);
  if (it == catalog_.end()) {
    return Status::NotFound("object " + std::to_string(id) +
                            " is not archived at this server");
  }
  return &it->second;
}

StatusOr<std::string> ObjectServer::ReadAndDeliver(
    const storage::ArchiveAddress& address, bool over_link,
    uint64_t transfer_discount, const obs::TraceContext& ctx) {
  std::string bytes;
  MINOS_RETURN_IF_ERROR(archiver_->Read(address, &bytes));
  format::ArchiveMailer mailer(archiver_, versions_, clock_);
  MINOS_ASSIGN_OR_RETURN(std::string resolved,
                         mailer.ResolvePointers(bytes));
  if (over_link && link_ != nullptr) {
    uint64_t charge = resolved.size();
    charge -= std::min<uint64_t>(transfer_discount, charge);
    MINOS_RETURN_IF_ERROR(link_->Transfer(charge, ctx).status());
    if (injector_ != nullptr) injector_->MaybeCorrupt(&resolved);
  }
  return resolved;
}

StatusOr<MultimediaObject> ObjectServer::FetchAt(
    ObjectId id, const storage::ArchiveAddress& address, bool over_link,
    uint64_t transfer_discount, obs::TraceSpan* span) {
  const obs::TraceContext ctx =
      span != nullptr ? span->context() : obs::TraceContext{};
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  StatusOr<MultimediaObject> got = RetryWithBackoff<MultimediaObject>(
      retry_policy_, clock_, &retry_rng_, backoff_sleeper_,
      [&]() -> StatusOr<MultimediaObject> {
        MINOS_ASSIGN_OR_RETURN(
            std::string resolved,
            ReadAndDeliver(address, over_link, transfer_discount, ctx));
        MINOS_ASSIGN_OR_RETURN(MultimediaObject obj,
                               MultimediaObject::DeserializeArchived(
                                   id, resolved));
        reg.counter("server.fetches")->Increment();
        reg.histogram("server.fetch_bytes")
            ->Record(static_cast<double>(resolved.size()));
        return obj;
      },
      RetryTrace{tracer_, ctx});
  if (got.ok() || !got.status().IsCorruption()) return got;
  // Persistent corruption survived every retry (bad media or a poisoned
  // cache block, not a wire glitch). Salvage the parts whose checksums
  // still verify; the presentation manager degrades the rest.
  StatusOr<std::string> resolved =
      ReadAndDeliver(address, over_link, transfer_discount, ctx);
  if (!resolved.ok()) return got;
  object::MultimediaObject::PartSalvageReport report;
  StatusOr<MultimediaObject> salvaged =
      MultimediaObject::DeserializeArchivedLenient(id, *resolved, &report);
  if (!salvaged.ok()) return got;  // Nothing presentable survived.
  reg.counter("server.fetches")->Increment();
  reg.counter("server.fetch_salvages")->Increment();
  reg.histogram("server.fetch_bytes")
      ->Record(static_cast<double>(resolved->size()));
  if (span != nullptr) span->AddTag("degraded", "salvage");
  return salvaged;
}

uint64_t ObjectServer::DeferredBytesOf(const ObjectDescriptor& desc) {
  std::set<uint32_t> page_images;
  bool pages_show_text = false;
  for (const object::VisualPageSpec& page : desc.pages) {
    if (page.text_page > 0) pages_show_text = true;
    for (const object::PlacedImage& placed : page.images) {
      page_images.insert(placed.image_index);
    }
  }
  auto part_length = [&](const std::string& name) -> uint64_t {
    for (const object::PartPointer& p : desc.parts) {
      if (p.name == name) return p.length;
    }
    return 0;
  };
  uint64_t deferred = 0;
  for (uint32_t index : page_images) {
    deferred += part_length("image:" + std::to_string(index));
  }
  if (pages_show_text) deferred += part_length("text");
  if (desc.driving_mode == object::DrivingMode::kAudio) {
    deferred += part_length("voice");
  }
  return deferred;
}

StatusOr<uint64_t> ObjectServer::DeferredPageBytes(ObjectId id) const {
  MINOS_ASSIGN_OR_RETURN(const CatalogEntry* entry, Lookup(id));
  return DeferredBytesOf(entry->descriptor);
}

StatusOr<uint64_t> ObjectServer::PartLength(
    ObjectId id, std::string_view part_name) const {
  MINOS_ASSIGN_OR_RETURN(const CatalogEntry* entry, Lookup(id));
  MINOS_ASSIGN_OR_RETURN(object::PartPointer part,
                         entry->descriptor.FindPart(part_name));
  return part.length;
}

Status ObjectServer::StagePartRange(ObjectId id, std::string_view part_name,
                                    uint64_t offset, uint64_t length,
                                    const obs::TraceContext& ctx) {
  std::optional<obs::TraceSpan> span =
      obs::MaybeStartSpan(tracer_, "server.stage", ctx);
  if (span.has_value()) span->AddTag("part", std::string(part_name));
  MINOS_ASSIGN_OR_RETURN(const CatalogEntry* entry, Lookup(id));
  MINOS_ASSIGN_OR_RETURN(object::PartPointer part,
                         entry->descriptor.FindPart(part_name));
  if (offset >= part.length) return Status::OK();
  length = std::min(length, part.length - offset);
  if (length == 0) return Status::OK();
  const uint64_t base =
      part.in_archiver
          ? part.offset
          : entry->address.offset + entry->payload_base + part.offset;
  const uint64_t abs_offset = base + offset;
  if (scheduler_ == nullptr) {
    std::string scratch;
    return archiver_->ReadRange(abs_offset, length, &scratch);
  }
  // Scheduler installed: replace the archiver's naive device charge with
  // a lane-scheduled one. The read runs inline to learn which blocks
  // actually missed the cache; the clock then rewinds and the miss, if
  // any, is re-booked as an IoRequest in the lane the live Link scope
  // implies — kBackground while a prefetch BackgroundScope is active,
  // kForeground otherwise — so foreground page deliveries preempt
  // speculative staging at the disk arm.
  const bool background = link_ != nullptr && link_->in_background();
  if (span.has_value()) {
    span->AddTag("lane", background ? "background" : "foreground");
  }
  const Micros before = clock_->Now();
  const uint64_t blocks_before = archiver_->device().stats().blocks_read;
  std::string scratch;
  MINOS_RETURN_IF_ERROR(archiver_->ReadRange(abs_offset, length, &scratch));
  const uint64_t fetched =
      archiver_->device().stats().blocks_read - blocks_before;
  clock_->RewindTo(before);
  if (fetched == 0) return Status::OK();  // Pure cache hit: no arm time.
  storage::IoRequest req;
  req.id = ++stage_io_seq_;
  req.block = abs_offset / archiver_->device().block_size();
  req.count = fetched;
  req.arrival_time = before;
  req.priority = background ? storage::IoPriority::kBackground
                            : storage::IoPriority::kForeground;
  // The scheduler records a "scheduler.queue_wait" child span under this
  // context whenever the request actually waits behind other accesses.
  req.trace = obs::ContextOf(span);
  scheduler_->SetTracer(tracer_);
  std::vector<storage::IoCompletion> done = scheduler_->Run({req});
  if (span.has_value() && !done.empty()) {
    span->AddTag("queue_wait_us", done.front().queueing_delay);
  }
  return Status::OK();
}

StatusOr<MultimediaObject> ObjectServer::Fetch(
    ObjectId id, FetchGranularity granularity,
    const obs::TraceContext& ctx) {
  std::optional<obs::TraceSpan> span =
      obs::MaybeStartSpan(tracer_, "server.fetch", ctx);
  if (span.has_value()) {
    span->AddTag("object", static_cast<int64_t>(id));
    span->AddTag("granularity",
                 granularity == FetchGranularity::kSkeleton ? "skeleton"
                                                            : "whole");
  }
  MINOS_ASSIGN_OR_RETURN(const CatalogEntry* entry, Lookup(id));
  uint64_t discount = 0;
  if (granularity == FetchGranularity::kSkeleton) {
    discount = DeferredBytesOf(entry->descriptor);
  }
  return FetchAt(id, entry->address, /*over_link=*/true, discount,
                 span.has_value() ? &*span : nullptr);
}

StatusOr<MultimediaObject> ObjectServer::FetchVersion(ObjectId id,
                                                      uint32_t version) {
  MINOS_ASSIGN_OR_RETURN(storage::ObjectVersion v,
                         versions_->Get(id, version));
  return FetchAt(id, v.address, /*over_link=*/true);
}

StatusOr<MiniatureCard> ObjectServer::FetchMiniature(
    ObjectId id, int thumb_width, const obs::TraceContext& ctx) {
  std::optional<obs::TraceSpan> span =
      obs::MaybeStartSpan(tracer_, "server.miniature", ctx);
  if (span.has_value()) span->AddTag("object", static_cast<int64_t>(id));
  MINOS_ASSIGN_OR_RETURN(const CatalogEntry* entry, Lookup(id));
  // The server renders the miniature locally (no link charge for the
  // object itself), then ships the small card.
  MINOS_ASSIGN_OR_RETURN(MultimediaObject obj,
                         FetchAt(id, entry->address, /*over_link=*/false, 0,
                                 span.has_value() ? &*span : nullptr));

  MiniatureCard card;
  card.id = id;
  card.audio_mode =
      obj.descriptor().driving_mode == object::DrivingMode::kAudio;
  if (card.audio_mode) {
    // "an indication that an object is an audio mode object and some
    // voice segments which are played as the miniature passes" (§5).
    // A salvaged object may have lost its voice part; its card then
    // carries the audio marker with no preview.
    std::string preview;
    if (obj.has_voice()) {
      const auto& words = obj.voice_part().track().words;
      for (size_t i = 0; i < words.size() && i < 6; ++i) {
        if (!preview.empty()) preview += ' ';
        preview += words[i].word;
      }
    }
    card.preview_transcript = std::move(preview);
    card.thumb = image::Bitmap(thumb_width, thumb_width / 2);
    // Simple loudspeaker glyph so audio cards are visually distinct.
    card.thumb.FillRect(image::Rect{thumb_width / 4, thumb_width / 8,
                                    thumb_width / 2, thumb_width / 4},
                        180);
  } else if (!obj.descriptor().pages.empty()) {
    render::Screen page_screen(render::ScreenLayout{320, 240, 0, 0});
    core::PageCompositor compositor(&page_screen);
    MINOS_ASSIGN_OR_RETURN(core::FormattedText formatted,
                           core::FormatObjectText(obj));
    MINOS_RETURN_IF_ERROR(compositor.ComposePage(
        obj, formatted, 0, image::Rect{0, 0, 320, 240}));
    const int scale = std::max(1, 320 / thumb_width);
    MINOS_ASSIGN_OR_RETURN(
        image::Miniature mini,
        image::Miniature::Build(
            image::Image::FromBitmap(page_screen.framebuffer()), scale));
    card.thumb = mini.raster();
  } else {
    card.thumb = image::Bitmap(thumb_width, thumb_width / 2);
  }
  card.byte_size = card.thumb.ByteSize() + card.preview_transcript.size();
  if (link_ != nullptr) {
    const obs::TraceContext sctx = obs::ContextOf(span);
    MINOS_RETURN_IF_ERROR(
        RetryWithBackoff<Micros>(retry_policy_, clock_, &retry_rng_,
                                 backoff_sleeper_,
                                 [&] {
                                   return link_->Transfer(card.byte_size,
                                                          sctx);
                                 },
                                 RetryTrace{tracer_, sctx}).status());
  }
  return card;
}

StatusOr<image::Image> ObjectServer::FetchImage(ObjectId id,
                                                uint32_t image_index) {
  MINOS_ASSIGN_OR_RETURN(const CatalogEntry* entry, Lookup(id));
  MINOS_ASSIGN_OR_RETURN(
      object::PartPointer part,
      entry->descriptor.FindPart("image:" + std::to_string(image_index)));
  std::string payload;
  if (part.in_archiver) {
    MINOS_RETURN_IF_ERROR(
        archiver_->ReadRange(part.offset, part.length, &payload));
  } else {
    MINOS_RETURN_IF_ERROR(archiver_->ReadRange(
        entry->address.offset + entry->payload_base + part.offset,
        part.length, &payload));
  }
  if (link_ != nullptr) {
    MINOS_RETURN_IF_ERROR(
        RetryWithBackoff<Micros>(retry_policy_, clock_, &retry_rng_,
                                 backoff_sleeper_, [&] {
                                   return link_->Transfer(payload.size());
                                 }).status());
  }
  return image::Image::Deserialize(payload);
}

StatusOr<image::Bitmap> ObjectServer::FetchImageRegion(
    ObjectId id, uint32_t image_index, const image::Rect& r,
    const obs::TraceContext& ctx) {
  std::optional<obs::TraceSpan> span =
      obs::MaybeStartSpan(tracer_, "server.region", ctx);
  if (span.has_value()) span->AddTag("object", static_cast<int64_t>(id));
  MINOS_ASSIGN_OR_RETURN(const CatalogEntry* entry, Lookup(id));
  MINOS_ASSIGN_OR_RETURN(
      object::PartPointer part,
      entry->descriptor.FindPart("image:" + std::to_string(image_index)));
  const uint64_t part_base =
      part.in_archiver
          ? part.offset
          : entry->address.offset + entry->payload_base + part.offset;

  // Decode the serialized-image header: [kind][varint w][varint h].
  std::string header;
  const uint64_t header_probe = std::min<uint64_t>(part.length, 16);
  MINOS_RETURN_IF_ERROR(
      archiver_->ReadRange(part_base, header_probe, &header));
  if (header.empty() || header[0] != 0) {
    return Status::Unsupported(
        "region fetch is only defined for bitmap images");
  }
  Decoder dec(std::string_view(header).substr(1));
  uint32_t w = 0, h = 0;
  MINOS_RETURN_IF_ERROR(dec.GetVarint32(&w));
  MINOS_RETURN_IF_ERROR(dec.GetVarint32(&h));
  const uint64_t header_size = header_probe - dec.remaining();

  const image::Rect clipped =
      r.Intersect(image::Rect{0, 0, static_cast<int>(w),
                              static_cast<int>(h)});
  image::Bitmap out(clipped.w, clipped.h);
  std::string row;
  for (int y = 0; y < clipped.h; ++y) {
    const uint64_t row_offset =
        header_size +
        static_cast<uint64_t>(clipped.y + y) * w + clipped.x;
    MINOS_RETURN_IF_ERROR(archiver_->ReadRange(
        part_base + row_offset, static_cast<uint64_t>(clipped.w), &row));
    for (int x = 0; x < clipped.w; ++x) {
      out.Set(x, y, static_cast<uint8_t>(row[static_cast<size_t>(x)]));
    }
  }
  if (link_ != nullptr) {
    const obs::TraceContext sctx = obs::ContextOf(span);
    MINOS_RETURN_IF_ERROR(RetryWithBackoff<Micros>(
                              retry_policy_, clock_, &retry_rng_,
                              backoff_sleeper_,
                              [&] {
                                return link_->Transfer(
                                    static_cast<uint64_t>(clipped.area()),
                                    sctx);
                              },
                              RetryTrace{tracer_, sctx})
                              .status());
  }
  return out;
}

}  // namespace minos::server
