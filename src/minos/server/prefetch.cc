#include "minos/server/prefetch.h"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <utility>
#include <vector>

namespace minos::server {

PrefetchQueue::PrefetchQueue(SimClock* clock, Link* link,
                             PrefetchOptions options)
    : PrefetchQueue(clock,
                    link != nullptr ? std::vector<Link*>{link}
                                    : std::vector<Link*>{},
                    options) {}

PrefetchQueue::PrefetchQueue(SimClock* clock, std::vector<Link*> links,
                             PrefetchOptions options)
    : clock_(clock), links_(std::move(links)), options_(options) {
  obs::MetricsRegistry& reg = options_.registry != nullptr
                                  ? *options_.registry
                                  : obs::MetricsRegistry::Default();
  enqueued_ = reg.counter("prefetch.enqueued");
  issued_ = reg.counter("prefetch.issued");
  hits_ = reg.counter("prefetch.hits");
  partial_hits_ = reg.counter("prefetch.partial_hits");
  misses_ = reg.counter("prefetch.misses");
  wasted_ = reg.counter("prefetch.wasted");
  cancelled_ = reg.counter("prefetch.cancelled");
  errors_ = reg.counter("prefetch.errors");
  wait_us_ = reg.histogram("prefetch.wait_us");
  issue_cost_us_ = reg.histogram("prefetch.issue_cost_us");
  queue_depth_ = reg.gauge("prefetch.queue_depth");
}

PrefetchQueue::~PrefetchQueue() {
  for (const auto& [key, entry] : entries_) {
    if (entry.ready) wasted_->Increment();
  }
}

void PrefetchQueue::UpdateDepth() {
  queue_depth_->Set(static_cast<double>(entries_.size()));
}

void PrefetchQueue::SetTaskPool(runtime::TaskPool* pool,
                                AffinityFn affinity) {
  pool_ = pool;
  affinity_ = std::move(affinity);
}

void PrefetchQueue::Enqueue(const PrefetchKey& key, int distance,
                            PageWork work, uint64_t affinity_object,
                            uint64_t bytes) {
  if (!work || entries_.count(key) > 0) return;
  Entry entry;
  entry.distance = std::abs(distance);
  entry.seq = next_seq_++;
  entry.affinity_object = affinity_object;
  entry.bytes = bytes;
  entry.run = std::move(work);
  entries_.emplace(key, std::move(entry));
  enqueued_->Increment();
  UpdateDepth();
}

void PrefetchQueue::WantPage(const PrefetchKey& key, int distance,
                             PageWork work, uint64_t bytes) {
  Enqueue(key, distance, std::move(work), key.object_id, bytes);
}

void PrefetchQueue::WantObject(uint64_t object_id, int distance,
                               ObjectWork work) {
  if (!work) return;
  PrefetchKey key{PrefetchKind::kObject, object_id, 0};
  auto shared =
      std::make_shared<ObjectWork>(std::move(work));
  WantPage(key, distance,
           [this, key, shared]() -> Status {
             StatusOr<object::MultimediaObject> got = (*shared)();
             if (!got.ok()) return got.status();
             entries_[key].object = *std::move(got);
             return Status::OK();
           });
}

void PrefetchQueue::WantMiniature(int position, int distance, CardWork work,
                                  uint64_t affinity_object) {
  if (!work) return;
  PrefetchKey key{PrefetchKind::kMiniature, 0, position};
  auto shared = std::make_shared<CardWork>(std::move(work));
  Enqueue(key, distance,
          [this, key, shared]() -> Status {
            StatusOr<MiniatureCard> got = (*shared)();
            if (!got.ok()) return got.status();
            entries_[key].card = *std::move(got);
            return Status::OK();
          },
          affinity_object);
}

bool PrefetchQueue::Issue(Entry& entry) {
  const Micros start = clock_->Now();
  Status verdict = Status::OK();
  {
    // One scope per link: a sharded fetch may fail over mid-work, and
    // every link it touches must see the access as speculative.
    std::vector<std::unique_ptr<Link::BackgroundScope>> background;
    background.reserve(links_.size());
    for (Link* link : links_) {
      background.push_back(std::make_unique<Link::BackgroundScope>(link));
    }
    verdict = entry.run();
  }
  const Micros cost = clock_->Now() - start;
  // The foreground never saw this work: rewind and book the cost on the
  // serialized background channel instead.
  clock_->RewindTo(start);
  issued_->Increment();
  issue_cost_us_->Record(static_cast<double>(cost));
  if (!verdict.ok()) {
    errors_->Increment();
    // Failed speculative work still occupied the channel while it tried.
    bg_free_at_ = std::max(bg_free_at_, start) + cost;
    return false;
  }
  entry.ready = true;
  entry.ready_at = std::max(bg_free_at_, start) + cost;
  bg_free_at_ = entry.ready_at;
  entry.run = nullptr;
  return true;
}

void PrefetchQueue::Pump() {
  if (pumping_) return;  // A pumped transfer's retry is pumping us.
  pumping_ = true;
  // Pick phase: nearest cursor distance first, FIFO among equals, at
  // most max_inflight_per_pump entries. Issue outcomes never affect
  // candidacy (issued entries turn ready, failed ones are erased —
  // both leave the pick pool), so picking everything up front is the
  // same sequence the issue-as-you-go loop produced.
  std::vector<PrefetchKey> picked;
  for (int slot = 0; slot < options_.max_inflight_per_pump; ++slot) {
    const PrefetchKey* pick = nullptr;
    for (const auto& [key, entry] : entries_) {
      if (entry.ready) continue;
      if (std::find(picked.begin(), picked.end(), key) != picked.end()) {
        continue;
      }
      if (pick == nullptr) {
        pick = &key;
        continue;
      }
      const Entry& best = entries_.at(*pick);
      if (entry.distance < best.distance ||
          (entry.distance == best.distance && entry.seq < best.seq)) {
        pick = &key;
      }
    }
    if (pick == nullptr) break;
    picked.push_back(*pick);
  }
  if (pool_ != nullptr && picked.size() > 1) {
    IssuePooled(picked);
  } else {
    for (const PrefetchKey& key : picked) {
      if (!Issue(entries_.at(key))) entries_.erase(key);
    }
  }
  EvictOverCapacity();
  UpdateDepth();
  pumping_ = false;
}

void PrefetchQueue::IssuePooled(const std::vector<PrefetchKey>& picked) {
  // Group the picks by staging affinity: entries bound for different
  // shards ride different arms and may stage concurrently; entries of
  // one group — and every pick when no affinity oracle is installed —
  // run sequentially inside one task. Group membership is a pure
  // function of pick order and affinity, never of worker count.
  std::vector<uint64_t> group_ids;
  std::vector<std::vector<size_t>> groups;
  for (size_t i = 0; i < picked.size(); ++i) {
    const uint64_t affinity =
        affinity_ ? affinity_(entries_.at(picked[i]).affinity_object) : 0;
    size_t g = 0;
    for (; g < group_ids.size(); ++g) {
      if (group_ids[g] == affinity) break;
    }
    if (g == group_ids.size()) {
      group_ids.push_back(affinity);
      groups.emplace_back();
    }
    groups[g].push_back(i);
  }

  struct IssueOutcome {
    Micros cost = 0;
    Status verdict = Status::OK();
  };
  std::vector<IssueOutcome> outcomes(picked.size());
  {
    // The background scopes span the whole epoch from this thread: the
    // per-link flag is a plain bool, so it must be set before any task
    // runs and cleared after the barrier, never toggled mid-epoch.
    std::vector<std::unique_ptr<Link::BackgroundScope>> background;
    background.reserve(links_.size());
    for (Link* link : links_) {
      background.push_back(std::make_unique<Link::BackgroundScope>(link));
    }
    std::vector<runtime::TaskPool::Task> tasks;
    tasks.reserve(groups.size());
    for (const std::vector<size_t>& group : groups) {
      tasks.push_back([this, &picked, &outcomes, &group] {
        for (size_t i : group) {
          Entry& entry = entries_.at(picked[i]);
          const Micros start = clock_->Now();
          outcomes[i].verdict = entry.run();
          outcomes[i].cost = clock_->Now() - start;
          // The frame never advances: staging time is booked on the
          // background channel below, exactly like the serial pump.
          clock_->RewindTo(start);
        }
      });
    }
    pool_->RunEpoch(std::move(tasks));
  }

  // Booking pass, in pick order: identical channel math and metric
  // order to issuing serially (every serial issue started at this same
  // virtual instant — each Issue rewinds before the next one runs).
  const Micros start = clock_->Now();
  for (size_t i = 0; i < picked.size(); ++i) {
    issued_->Increment();
    issue_cost_us_->Record(static_cast<double>(outcomes[i].cost));
    if (!outcomes[i].verdict.ok()) {
      errors_->Increment();
      bg_free_at_ = std::max(bg_free_at_, start) + outcomes[i].cost;
      entries_.erase(picked[i]);
      continue;
    }
    Entry& entry = entries_.at(picked[i]);
    entry.ready = true;
    entry.ready_at = std::max(bg_free_at_, start) + outcomes[i].cost;
    bg_free_at_ = entry.ready_at;
    entry.run = nullptr;
  }
}

void PrefetchQueue::EvictOverCapacity() {
  size_t ready = 0;
  for (const auto& [key, entry] : entries_) {
    if (entry.ready) ++ready;
  }
  while (ready > options_.ready_capacity) {
    // Pick the victim owner first — whoever holds the most ready bytes
    // pays for the overflow, so a budget-capped session's staged pages
    // survive a greedy neighbor's flood. Ties (including the all-bytes-
    // untracked legacy case, where every owner holds 0) fall back to
    // the owner of the globally stalest ready entry, which with a
    // single owner degenerates to the original evict-stalest rule.
    struct OwnerStat {
      uint64_t bytes = 0;
      uint64_t stalest_seq = ~0ull;
    };
    std::map<uint64_t, OwnerStat> owners;
    for (const auto& [key, entry] : entries_) {
      if (!entry.ready) continue;
      OwnerStat& stat = owners[key.owner];
      stat.bytes += entry.bytes;
      stat.stalest_seq = std::min(stat.stalest_seq, entry.seq);
    }
    uint64_t victim_owner = 0;
    const OwnerStat* best = nullptr;
    for (const auto& [owner, stat] : owners) {
      if (best == nullptr || stat.bytes > best->bytes ||
          (stat.bytes == best->bytes &&
           stat.stalest_seq < best->stalest_seq)) {
        victim_owner = owner;
        best = &stat;
      }
    }
    // Within the victim owner, evict the stalest ready entry.
    const PrefetchKey* victim = nullptr;
    for (const auto& [key, entry] : entries_) {
      if (!entry.ready || key.owner != victim_owner) continue;
      if (victim == nullptr || entry.seq < entries_.at(*victim).seq) {
        victim = &key;
      }
    }
    entries_.erase(*victim);
    wasted_->Increment();
    --ready;
  }
}

bool PrefetchQueue::TakePage(const PrefetchKey& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    misses_->Increment();
    return false;
  }
  if (!it->second.ready) {
    // Queued but never issued: the foreground fetch supersedes it.
    entries_.erase(it);
    misses_->Increment();
    UpdateDepth();
    return false;
  }
  const Micros now = clock_->Now();
  if (it->second.ready_at > now) {
    // Early consumer: wait out the residual background time only.
    const Micros residual = it->second.ready_at - now;
    if (key.kind != PrefetchKind::kObject &&
        residual > options_.max_page_wait_us) {
      // The channel is backed up behind other speculation; a foreground
      // transfer is cheaper than waiting. The work was done for nothing.
      entries_.erase(it);
      wasted_->Increment();
      misses_->Increment();
      UpdateDepth();
      return false;
    }
    clock_->Advance(residual);
    wait_us_->Record(static_cast<double>(residual));
    partial_hits_->Increment();
  } else {
    wait_us_->Record(0.0);
    hits_->Increment();
  }
  entries_.erase(it);
  UpdateDepth();
  return true;
}

std::optional<object::MultimediaObject> PrefetchQueue::TakeObject(
    uint64_t object_id) {
  PrefetchKey key{PrefetchKind::kObject, object_id, 0};
  auto it = entries_.find(key);
  std::optional<object::MultimediaObject> payload;
  if (it != entries_.end() && it->second.ready) {
    payload = std::move(it->second.object);
  }
  if (!TakePage(key)) return std::nullopt;
  return payload;
}

std::optional<MiniatureCard> PrefetchQueue::TakeMiniature(
    int position, uint64_t expected_id) {
  PrefetchKey key{PrefetchKind::kMiniature, 0, position};
  auto it = entries_.find(key);
  if (it != entries_.end() && it->second.ready &&
      it->second.card.has_value() && it->second.card->id != expected_id) {
    // Staged for another query's strip: the same position now names a
    // different object, and its card must never be delivered here.
    entries_.erase(it);
    wasted_->Increment();
    misses_->Increment();
    UpdateDepth();
    return std::nullopt;
  }
  std::optional<MiniatureCard> payload;
  if (it != entries_.end() && it->second.ready) {
    payload = std::move(it->second.card);
  }
  if (!TakePage(key)) return std::nullopt;
  return payload;
}

int PrefetchQueue::KeepRadius(PrefetchKind kind) const {
  if (kind == PrefetchKind::kMiniature) return options_.miniature_radius;
  return std::max(options_.pages_ahead, options_.pages_behind);
}

void PrefetchQueue::CancelIf(
    const std::function<bool(const PrefetchKey&)>& stale) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (!stale(it->first)) {
      ++it;
      continue;
    }
    if (it->second.ready) {
      wasted_->Increment();
    } else {
      cancelled_->Increment();
    }
    it = entries_.erase(it);
  }
  UpdateDepth();
}

void PrefetchQueue::OnJump(PrefetchKind kind, uint64_t object_id,
                           int new_cursor) {
  const int radius = KeepRadius(kind);
  CancelIf([&](const PrefetchKey& key) {
    return key.kind == kind && key.object_id == object_id &&
           std::abs(key.index - new_cursor) > radius;
  });
}

void PrefetchQueue::Cancel(PrefetchKind kind) {
  CancelIf([&](const PrefetchKey& key) { return key.kind == kind; });
}

void PrefetchQueue::CancelObject(uint64_t object_id) {
  CancelIf([&](const PrefetchKey& key) {
    return key.kind != PrefetchKind::kMiniature &&
           key.object_id == object_id;
  });
}

void PrefetchQueue::CancelAll() {
  CancelIf([](const PrefetchKey&) { return true; });
}

void PrefetchQueue::CancelOwner(uint64_t owner) {
  CancelIf([&](const PrefetchKey& key) { return key.owner == owner; });
}

void PrefetchQueue::CancelWhere(
    const std::function<bool(const PrefetchKey&)>& stale) {
  CancelIf(stale);
}

BackoffSleeper PrefetchQueue::MakeBackoffSleeper() {
  return [this](Micros delay) {
    // Spend the backoff window starting background transfers, then let
    // the foreground wait out its delay as before. The pumped work books
    // onto the background channel, so the window is not double-charged.
    Pump();
    clock_->Advance(delay);
  };
}

size_t PrefetchQueue::queued_count() const {
  size_t n = 0;
  for (const auto& [key, entry] : entries_) {
    if (!entry.ready) ++n;
  }
  return n;
}

size_t PrefetchQueue::ready_count() const {
  size_t n = 0;
  for (const auto& [key, entry] : entries_) {
    if (entry.ready) ++n;
  }
  return n;
}

uint64_t PrefetchQueue::OutstandingBytes(uint64_t owner) const {
  uint64_t bytes = 0;
  for (const auto& [key, entry] : entries_) {
    if (key.owner == owner) bytes += entry.bytes;
  }
  return bytes;
}

}  // namespace minos::server
