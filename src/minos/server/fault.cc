#include "minos/server/fault.h"

namespace minos::server {

FaultInjector::FaultInjector(FaultProfile profile, uint64_t seed,
                             SimClock* clock,
                             obs::MetricsRegistry* registry)
    : profile_(profile), rng_(seed), clock_(clock) {
  obs::MetricsRegistry& reg =
      registry != nullptr ? *registry : obs::MetricsRegistry::Default();
  const std::string scope = reg.MakeScope("fault");
  injected_ = reg.counter(scope + ".injected_total");
  drops_ = reg.counter(scope + ".drops");
  timeouts_ = reg.counter(scope + ".timeouts");
  corruptions_ = reg.counter(scope + ".corruptions");
  latency_hits_ = reg.counter(scope + ".latency_hits");
  latency_us_ = reg.histogram(scope + ".latency_us");
  total_injected_ = reg.counter("faults.injected_total");
}

Status FaultInjector::OnOperation(std::string_view op) {
  if (!profile_.op_filter.empty() &&
      op.find(profile_.op_filter) == std::string_view::npos) {
    // Out of scope for this injector: pass through without consuming
    // randomness or the bring-up countdown, so filtered runs replay the
    // unfiltered fault sequence on the operations that do match.
    return Status::OK();
  }
  const int op_index = ops_seen_++;
  if (op_index < profile_.fail_first_n) {
    injected_->Increment();
    drops_->Increment();
    total_injected_->Increment();
    return Status::Unavailable(std::string(op) + " failed (bring-up fault " +
                               std::to_string(op_index + 1) + "/" +
                               std::to_string(profile_.fail_first_n) + ")");
  }
  // One uniform draw per fault class keeps the stream layout stable when
  // a rate is zero: toggling one knob does not reshuffle the others.
  const bool drop = rng_.Bernoulli(profile_.drop_rate);
  const bool timeout = rng_.Bernoulli(profile_.timeout_rate);
  const bool latency = rng_.Bernoulli(profile_.latency_rate);
  if (drop) {
    injected_->Increment();
    drops_->Increment();
    total_injected_->Increment();
    return Status::Unavailable(std::string(op) + " dropped (injected)");
  }
  if (timeout) {
    injected_->Increment();
    timeouts_->Increment();
    total_injected_->Increment();
    clock_->Advance(profile_.timeout_us);
    return Status::DeadlineExceeded(std::string(op) +
                                    " timed out (injected)");
  }
  if (latency) {
    const Micros span =
        std::max<Micros>(0, profile_.latency_max_us - profile_.latency_min_us);
    const Micros extra =
        profile_.latency_min_us +
        (span > 0 ? static_cast<Micros>(
                        rng_.Uniform(static_cast<uint64_t>(span) + 1))
                  : 0);
    injected_->Increment();
    latency_hits_->Increment();
    total_injected_->Increment();
    latency_us_->Record(static_cast<double>(extra));
    clock_->Advance(extra);
  }
  return Status::OK();
}

bool FaultInjector::MaybeCorrupt(std::string* payload) {
  if (payload == nullptr || payload->empty()) return false;
  if (!rng_.Bernoulli(profile_.corrupt_rate)) return false;
  const size_t pos = static_cast<size_t>(rng_.Uniform(payload->size()));
  // XOR with a non-zero mask guarantees the byte actually changes.
  (*payload)[pos] = static_cast<char>(
      static_cast<unsigned char>((*payload)[pos]) ^
      static_cast<unsigned char>(1 + rng_.Uniform(255)));
  injected_->Increment();
  corruptions_->Increment();
  total_injected_->Increment();
  return true;
}

Micros RetryPolicy::BackoffFor(int attempt, Random* rng) const {
  double backoff = static_cast<double>(initial_backoff_us);
  for (int i = 1; i < attempt; ++i) backoff *= backoff_multiplier;
  backoff = std::min(backoff, static_cast<double>(max_backoff_us));
  if (rng != nullptr && jitter > 0) {
    // Uniform in [-jitter, +jitter), seeded: equal seeds, equal schedule.
    backoff *= 1.0 + jitter * (2.0 * rng->NextDouble() - 1.0);
  }
  return std::max<Micros>(0, static_cast<Micros>(backoff));
}

bool IsRetryable(const Status& status) {
  return status.IsUnavailable() || status.IsDeadlineExceeded() ||
         status.IsCorruption() || status.IsResourceExhausted();
}

CircuitBreaker::CircuitBreaker(Options options, SimClock* clock,
                               const std::string& scope,
                               obs::MetricsRegistry* registry)
    : options_(options), clock_(clock) {
  obs::MetricsRegistry& reg =
      registry != nullptr ? *registry : obs::MetricsRegistry::Default();
  open_gauge_ = reg.gauge(scope + ".breaker_open");
  opens_total_ = reg.counter(scope + ".breaker_opens_total");
  closes_total_ = reg.counter(scope + ".breaker_closes_total");
  fast_fails_ = reg.counter(scope + ".breaker_fast_fails");
}

Status CircuitBreaker::Admit() {
  if (state_ == State::kOpen) {
    if (clock_->Now() - opened_at_ >= options_.cooldown_us) {
      state_ = State::kHalfOpen;  // Admit one probe.
      open_gauge_->Set(0);
    } else {
      fast_fails_->Increment();
      return Status::Unavailable("circuit breaker open; failing fast");
    }
  }
  return Status::OK();
}

void CircuitBreaker::RecordSuccess() {
  consecutive_failures_ = 0;
  if (state_ != State::kClosed) Close();
}

void CircuitBreaker::RecordFailure() {
  ++consecutive_failures_;
  if (state_ == State::kHalfOpen) {
    Open();  // The probe failed; re-open for another cooldown.
  } else if (state_ == State::kClosed &&
             consecutive_failures_ >= options_.failure_threshold) {
    Open();
  }
}

void CircuitBreaker::Open() {
  state_ = State::kOpen;
  opened_at_ = clock_->Now();
  open_gauge_->Set(1);
  opens_total_->Increment();
}

void CircuitBreaker::Close() {
  state_ = State::kClosed;
  open_gauge_->Set(0);
  closes_total_->Increment();
}

}  // namespace minos::server
