#ifndef MINOS_SERVER_WORKSTATION_H_
#define MINOS_SERVER_WORKSTATION_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "minos/core/presentation_manager.h"
#include "minos/server/object_server.h"
#include "minos/util/statusor.h"

namespace minos::server {

/// Sequential miniature-browsing interface (§5): the user pages through
/// the miniature cards of qualifying objects and selects one to open.
class MiniatureBrowser {
 public:
  explicit MiniatureBrowser(std::vector<MiniatureCard> cards)
      : cards_(std::move(cards)) {}

  bool empty() const { return cards_.empty(); }
  size_t size() const { return cards_.size(); }

  /// Attaches a message player: audio-mode cards then play their voice
  /// preview as they pass under the cursor ("some voice segments which
  /// are played as the miniature passes through the screen", §5).
  /// Both pointers are borrowed; `log` may be null.
  void AttachPlayer(core::MessagePlayer* player, core::EventLog* log) {
    player_ = player;
    log_ = log;
  }

  /// The card under the cursor.
  StatusOr<const MiniatureCard*> Current() const;

  /// Sequential movement; clamped at the ends (OutOfRange when already
  /// at the boundary). With a player attached, arriving on an audio-mode
  /// card plays its preview.
  Status Next();
  Status Previous();

  /// Selecting the current miniature yields its object id.
  StatusOr<storage::ObjectId> Select() const;

 private:
  void PlayPreviewIfAudio();

  std::vector<MiniatureCard> cards_;
  size_t cursor_ = 0;
  core::MessagePlayer* player_ = nullptr;
  core::EventLog* log_ = nullptr;
};

/// A user workstation session: issues content queries to the object
/// server, browses the returned miniatures, and hands selected objects to
/// the presentation manager ("When the user selects the miniature of an
/// object the multimedia object presentation manager undertakes the
/// responsibility to present the information of the selected object",
/// §5). The user may interrupt presentation and return to the query or
/// sequential-browsing interfaces at any time.
class Workstation {
 public:
  /// `server`, `screen` and `clock` are borrowed.
  Workstation(ObjectServer* server, render::Screen* screen, SimClock* clock);

  /// Evaluates a conjunctive content query at the server and returns the
  /// miniature browser over the qualifying objects.
  StatusOr<MiniatureBrowser> Query(const std::vector<std::string>& words);

  /// Opens the selected object in the presentation manager.
  Status Present(storage::ObjectId id);

  /// View retrieval with graceful degradation: fetches only the covering
  /// region of a stored image; when the server cannot deliver it (link
  /// down, persistent corruption), falls back to the miniature thumbnail
  /// cached during Query — a coarse surrogate the user already saw — and
  /// records the substitution with the presentation manager.
  StatusOr<image::Bitmap> FetchImageRegion(storage::ObjectId id,
                                           uint32_t image_index,
                                           const image::Rect& r);

  /// The presentation manager of this workstation.
  core::PresentationManager& presentation() { return presentation_; }

 private:
  ObjectServer* server_;
  core::PresentationManager presentation_;
  /// Miniature thumbs by object id, kept from the last Query: the
  /// degraded fallback for failed region fetches.
  std::map<storage::ObjectId, image::Bitmap> thumb_cache_;
};

}  // namespace minos::server

#endif  // MINOS_SERVER_WORKSTATION_H_
