#ifndef MINOS_SERVER_WORKSTATION_H_
#define MINOS_SERVER_WORKSTATION_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "minos/core/presentation_manager.h"
#include "minos/query/result_cache.h"
#include "minos/server/object_store.h"
#include "minos/server/prefetch.h"
#include "minos/util/random.h"
#include "minos/util/statusor.h"

namespace minos::server {

/// Splits an even apportionment of `total_len` bytes over `page_count`
/// pages and returns the {offset, length} slice that page `page`
/// (1-based) owns. The last page absorbs the rounding remainder; a
/// stream smaller than the page count rides whole with every page
/// (offset 0, full length) so that the first page visited delivers it —
/// delivery bookkeeping keeps later pages from re-transferring it.
/// {0, 0} when the stream is empty or `page` is out of range.
std::pair<uint64_t, uint64_t> ApportionStream(uint64_t total_len, int page,
                                              int page_count);

/// Sequential miniature-browsing interface (§5): the user pages through
/// the miniature cards of qualifying objects and selects one to open.
///
/// Two construction modes: eager (a ready vector of cards — the classic
/// form) and lazy (object ids plus a card fetcher; cards materialize as
/// the cursor reaches them, which is what lets the prefetch pipeline
/// fetch the flanking cards in the background instead of the whole strip
/// up front).
class MiniatureBrowser {
 public:
  /// Fetches the card of `id` at strip position `position` (consulted
  /// on first need of each card in lazy mode).
  using CardFetcher =
      std::function<StatusOr<MiniatureCard>(storage::ObjectId id,
                                            int position)>;

  /// Cursor listener: fired after each Next/Previous lands (position is
  /// 0-based; jump is always false for single-step movement).
  using CursorListener =
      std::function<void(int position, int count, bool jump)>;

  /// Eager mode over ready cards.
  explicit MiniatureBrowser(std::vector<MiniatureCard> cards);

  /// Lazy mode over ids; `fetcher` must be callable for every id.
  MiniatureBrowser(std::vector<storage::ObjectId> ids, CardFetcher fetcher);

  bool empty() const { return slots_.empty(); }
  size_t size() const { return slots_.size(); }
  int position() const { return static_cast<int>(cursor_); }

  /// Attaches a message player: audio-mode cards then play their voice
  /// preview as they pass under the cursor ("some voice segments which
  /// are played as the miniature passes through the screen", §5).
  /// Both pointers are borrowed; `log` may be null.
  void AttachPlayer(core::MessagePlayer* player, core::EventLog* log) {
    player_ = player;
    log_ = log;
  }

  void SetCursorListener(CursorListener listener) {
    cursor_listener_ = std::move(listener);
  }

  /// The card under the cursor (fetched on first need in lazy mode).
  StatusOr<const MiniatureCard*> Current();

  /// Sequential movement; clamped at the ends (OutOfRange when already
  /// at the boundary). With a player attached, arriving on an audio-mode
  /// card plays its preview.
  Status Next();
  Status Previous();

  /// Selecting the current miniature yields its object id (known without
  /// fetching the card).
  StatusOr<storage::ObjectId> Select() const;

 private:
  struct Slot {
    storage::ObjectId id = 0;
    std::optional<MiniatureCard> card;
  };

  /// Materializes the card in `slot` (no-op in eager mode / when cached).
  StatusOr<const MiniatureCard*> Ensure(size_t slot);

  Status MoveTo(size_t target);
  void PlayPreviewIfAudio();

  std::vector<Slot> slots_;
  CardFetcher fetcher_;
  CursorListener cursor_listener_;
  size_t cursor_ = 0;
  core::MessagePlayer* player_ = nullptr;
  core::EventLog* log_ = nullptr;
};

/// A user workstation session: issues content queries to the object
/// server, browses the returned miniatures, and hands selected objects to
/// the presentation manager ("When the user selects the miniature of an
/// object the multimedia object presentation manager undertakes the
/// responsibility to present the information of the selected object",
/// §5). The user may interrupt presentation and return to the query or
/// sequential-browsing interfaces at any time.
///
/// With EnablePrefetch the workstation becomes the driver of the
/// asynchronous prefetch pipeline: objects fetch at skeleton granularity,
/// page content transfers on demand as the browsing cursor lands on each
/// page, and the PrefetchQueue keeps the next/previous pages, upcoming
/// audio segments, miniature neighbours and the object under the
/// miniature cursor staged in the background.
class Workstation {
 public:
  /// `server`, `screen` and `clock` are borrowed. `server` is any
  /// ObjectStore: one ObjectServer or a ShardRouter over several — the
  /// session logic is identical either way.
  Workstation(ObjectStore* server, render::Screen* screen, SimClock* clock);

  /// The server outlives the workstation by contract, so anything this
  /// session installed into it — the prefetch queue's backoff sleeper in
  /// particular — is uninstalled here; a retried fetch after this
  /// session ends must not reach back into the dead queue.
  ~Workstation();

  /// Turns on the prefetch pipeline (idempotent; the last options win).
  /// Installs the queue's backoff sleeper into the server, switches
  /// object resolution to skeleton granularity with demand paging, makes
  /// Query lazy, and subscribes to browsing-cursor events.
  void EnablePrefetch(PrefetchOptions options = {});

  /// The pipeline (null until EnablePrefetch).
  PrefetchQueue* prefetch() { return prefetch_.get(); }

  /// Evaluates a conjunctive content query at the server and returns the
  /// miniature browser over the qualifying objects (unranked, id order).
  /// Matches whose card the store could not build are dropped from the
  /// strip and noted degraded with the presentation manager.
  StatusOr<MiniatureBrowser> Query(const std::vector<std::string>& words);

  /// Ranked query: the miniature browser over the top `k` matches in
  /// relevance order, each card carrying its score. The ranked hit list
  /// is served from a workstation-side cache when the archive has not
  /// changed since it was computed (entries are stamped with the store's
  /// catalog version, so any Store invalidates them); the scatter/merge
  /// only re-runs on a miss. Unfetchable cards degrade the strip.
  StatusOr<MiniatureBrowser> QueryRanked(
      const std::vector<std::string>& words, size_t k);

  /// The ranked-result cache (introspection for tests).
  const query::QueryResultCache& ranked_cache() const {
    return ranked_cache_;
  }

  /// Opens the selected object in the presentation manager.
  Status Present(storage::ObjectId id);

  /// View retrieval with graceful degradation: fetches only the covering
  /// region of a stored image; when the server cannot deliver it (link
  /// down, persistent corruption), falls back to the miniature thumbnail
  /// cached during Query — a coarse surrogate the user already saw — and
  /// records the substitution with the presentation manager.
  StatusOr<image::Bitmap> FetchImageRegion(storage::ObjectId id,
                                           uint32_t image_index,
                                           const image::Rect& r);

  /// The presentation manager of this workstation.
  core::PresentationManager& presentation() { return presentation_; }

  /// Attaches the session-wide request tracer: installed into the store
  /// (and through it every shard and its link) and the presentation
  /// manager, so one browse action or query yields one connected span
  /// tree across the whole fabric. Borrowed; null detaches. The
  /// destructor detaches from the borrowed server automatically.
  void SetTracer(obs::Tracer* tracer);

  /// Attaches a task pool (borrowed; null detaches): installed into the
  /// store (shard scatters, partitioned scoring) and the prefetch queue
  /// (affinity-grouped background staging keyed by the store's
  /// PrefetchAffinity). Survives EnablePrefetch in either order.
  void SetTaskPool(runtime::TaskPool* pool);

 private:
  /// One contiguous byte range of a part, staged/transferred per page.
  struct PageRange {
    std::string part;
    uint64_t offset = 0;
    uint64_t length = 0;
  };

  /// Per-object paging info captured when the resolver delivers a
  /// skeleton: what each page needs, what has been delivered.
  struct ObjectPlan {
    bool audio_mode = false;
    uint64_t text_len = 0;
    uint32_t text_pages = 0;  ///< Highest formatted text page used.
    uint64_t voice_len = 0;
    /// Per visual page: formatted text page shown (0 = none).
    std::vector<uint32_t> page_text;
    /// Per visual page: (image part name, byte length) placed on it.
    std::vector<std::vector<std::pair<std::string, uint64_t>>> page_images;
    /// Range keys ("part:offset") already transferred.
    std::set<std::string> delivered;
  };

  StatusOr<object::MultimediaObject> Resolve(storage::ObjectId id);
  void BuildPlan(storage::ObjectId id,
                 const object::ObjectDescriptor& desc);

  /// Byte ranges page `page` (1-based) still needs.
  std::vector<PageRange> UndeliveredRanges(const ObjectPlan& plan,
                                           PrefetchKind kind, int page,
                                           int page_count) const;

  /// Stages the ranges and charges the link once for their total size.
  /// With a valid `ctx` the work records a "ws.transfer" span under it.
  Status StageAndTransfer(storage::ObjectId id,
                          const std::vector<PageRange>& ranges,
                          bool with_retries,
                          const obs::TraceContext& ctx = {});

  /// Queues a speculative staging transfer for `page` of `id`. The
  /// transfer, whenever the pipeline issues it, attributes to `ctx` —
  /// the page turn that scheduled the speculation.
  void ScheduleWantPage(PrefetchKind kind, storage::ObjectId id, int page,
                        int page_count, int distance,
                        const obs::TraceContext& ctx = {});

  /// Ambient context of the innermost open session span (invalid when
  /// untraced) — the bridge into the explicitly-propagated fabric.
  obs::TraceContext CurCtx() const {
    return tracer_ != nullptr ? tracer_->current_context()
                              : obs::TraceContext{};
  }

  void MarkDelivered(ObjectPlan& plan, const std::vector<PageRange>& ranges);

  /// Cursor-event handlers (prefetch enabled only).
  void OnBrowse(const core::PresentationManager::BrowseEvent& event);
  void OnMiniatureCursor(const std::vector<storage::ObjectId>& ids,
                         int position, bool jump);

  ObjectStore* server_;
  SimClock* clock_;
  obs::Tracer* tracer_ = nullptr;  ///< Borrowed; may be null.
  runtime::TaskPool* pool_ = nullptr;  ///< Borrowed; may be null.
  core::PresentationManager presentation_;
  std::unique_ptr<PrefetchQueue> prefetch_;
  PrefetchOptions prefetch_options_;
  std::map<storage::ObjectId, ObjectPlan> plans_;
  Random page_rng_{0x9A6EBEEF};  ///< Jitter for demand-page retries.
  /// Miniature thumbs by object id, kept from the last Query: the
  /// degraded fallback for failed region fetches.
  std::map<storage::ObjectId, image::Bitmap> thumb_cache_;
  /// Ranked hit lists by canonical query key, catalog-version stamped.
  query::QueryResultCache ranked_cache_;
};

}  // namespace minos::server

#endif  // MINOS_SERVER_WORKSTATION_H_
