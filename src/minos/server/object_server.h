#ifndef MINOS_SERVER_OBJECT_SERVER_H_
#define MINOS_SERVER_OBJECT_SERVER_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "minos/core/page_compositor.h"
#include "minos/image/miniature.h"
#include "minos/object/multimedia_object.h"
#include "minos/query/scored_index.h"
#include "minos/server/fault.h"
#include "minos/server/link.h"
#include "minos/server/object_store.h"
#include "minos/server/repair.h"
#include "minos/storage/archiver.h"
#include "minos/storage/request_scheduler.h"
#include "minos/storage/version_store.h"
#include "minos/util/random.h"
#include "minos/util/statusor.h"

namespace minos::server {

/// The multimedia object server subsystem (§5): optical-disk based
/// archived-object store with access methods, caching, version control,
/// and content queries evaluated server-side. Retrievals go through the
/// link cost model so workstation-side experiments see realistic transfer
/// economics. One ObjectServer is the classic single-machine topology;
/// ShardRouter composes several into a sharded archive.
class ObjectServer : public ObjectStore {
 public:
  /// All pointers borrowed. `link` may be null (no transfer charging).
  ObjectServer(storage::Archiver* archiver, storage::VersionStore* versions,
               SimClock* clock, Link* link);

  /// Fault tolerance -------------------------------------------------------

  /// Attaches the injector that corrupts payloads in flight (borrowed;
  /// null detaches). Transport drops/timeouts belong to the Link's own
  /// injector; this one models wire corruption of delivered bytes.
  void SetFaultInjector(FaultInjector* injector) { injector_ = injector; }

  /// Replaces the retry schedule used by every Fetch* method. The
  /// default is RetryPolicy::Default(); RetryPolicy::None() restores the
  /// fail-on-first-fault behaviour of the pre-fault-model server.
  void SetRetryPolicy(const RetryPolicy& policy) { retry_policy_ = policy; }
  const RetryPolicy& retry_policy() const override { return retry_policy_; }

  /// Installs the sleeper every Fetch* retry spends its backoff windows
  /// in (null restores plain clock advances). The prefetch pipeline
  /// installs one that pumps queued background transfers during the
  /// window, so retries yield the link to speculative work instead of
  /// dead-sleeping the session.
  void SetBackoffSleeper(BackoffSleeper sleeper) override {
    backoff_sleeper_ = std::move(sleeper);
  }

  /// Installs the disk-arm scheduler staging reads are charged through
  /// (borrowed; null restores plain archiver charging). With a scheduler
  /// installed, each StagePartRange books its device work as an IoRequest
  /// in the lane the live Link scope implies — kBackground while a
  /// prefetch BackgroundScope is active, kForeground otherwise — so
  /// foreground page deliveries preempt speculative staging at the arm.
  void SetScheduler(storage::RequestScheduler* scheduler) {
    scheduler_ = scheduler;
  }

  /// Attaches the request tracer (borrowed; null detaches), forwarding
  /// it to the link so transfers record under this server's spans.
  void SetTracer(obs::Tracer* tracer) override {
    tracer_ = tracer;
    if (link_ != nullptr) link_->SetTracer(tracer);
  }

  /// Attaches a task pool (borrowed; null detaches) used to partition
  /// BM25 candidate accumulation across cores. Results and query.*
  /// counters are bit-identical to serial scoring.
  void SetTaskPool(runtime::TaskPool* pool) override { pool_ = pool; }

  /// Ingest ---------------------------------------------------------------

  /// Archives an object (must be in archived state) and indexes its
  /// content for queries — both the boolean word index and the scored
  /// index ranked retrieval reads. Returns the archive address.
  StatusOr<storage::ArchiveAddress> Store(
      const object::MultimediaObject& obj) override;

  /// Content appended to an archived object: characters appended to the
  /// text part's flat contents and/or audio appended to the voice part
  /// (samples plus word alignments, with offsets relative to the
  /// appended content — the rebuild shifts them into place). Either
  /// medium may be empty; both empty is InvalidArgument.
  struct AppendParts {
    std::string text;
    voice::VoiceTrack voice;
  };

  /// One successful Append: the new archive image, the version it
  /// cataloged as, and the stats-only index delta a catalog-wide
  /// statistics index (the ShardRouter's) applies instead of a rebuild.
  struct AppendResult {
    storage::ArchiveAddress address;
    uint32_t version = 0;
    query::IndexDelta delta;
  };

  /// Appends content to an archived object. Archived objects are
  /// immutable (§2), so the append builds the successor version — the
  /// prior parts plus the new content — archives it whole, and records
  /// it in the version lineage; FetchVersion still serves the old one.
  ///
  /// Ordering is write-first: the device write happens before any
  /// catalog, index, or version mutation, so a write fault rolls back
  /// by construction — a failed Append leaves the word index, the
  /// scored index (no phantom df entries), the catalog, and
  /// catalog_version() exactly as they were. After a successful write
  /// the indexes update *incrementally*: only the appended words are
  /// walked, never the whole object, and the returned delta carries the
  /// df/length changes global statistics need. Bumps catalog_version()
  /// so workstation ranked-result caches invalidate.
  StatusOr<AppendResult> Append(storage::ObjectId id,
                                const AppendParts& parts);

  /// The recognizer accuracy profile voice postings are confidence-
  /// weighted with at Store time (§2: recognition happens at insertion).
  /// Every shard of one archive must share one profile, or replica
  /// scores diverge. Takes effect for subsequent Stores.
  void SetRecognizerProfile(const voice::RecognizerParams& profile) {
    recognizer_profile_ = profile;
  }
  const voice::RecognizerParams& recognizer_profile() const {
    return recognizer_profile_;
  }

  /// Anti-entropy ----------------------------------------------------------

  /// Summarizes the catalog for the repair protocol: one (id, version,
  /// content checksum) entry per object, ascending by id. The checksum
  /// is the CRC-32 cached at ingest over the serialized object bytes,
  /// so replicas of one version agree byte-for-byte. With `scrub`, the
  /// bytes are re-read from the archive (device time charged) and the
  /// checksum recomputed: silent media rot then shows up as replica
  /// divergence instead of waiting for a fetch to trip on it.
  CatalogDigest BuildCatalogDigest(bool scrub = false) const;

  /// Replica ingest — the receiving half of a repair transfer. `bytes`
  /// is validated strictly first (every part checksum must verify; a
  /// malformed replica is rejected with Corruption, never archived),
  /// then archived, cataloged under `version` and content-indexed
  /// exactly like Store. Returns false without mutating anything when
  /// the catalog already holds `version` with the same checksum, and
  /// never regresses a newer local copy. The caller owns transfer
  /// accounting: repair charges the link itself, in the background
  /// lane.
  StatusOr<bool> AcceptReplica(storage::ObjectId id, uint32_t version,
                               std::string_view bytes);

  /// The self-contained serialized bytes of a cataloged object (pointer
  /// parts resolved) — what repair ships to a peer. The raw image is
  /// read off the platter (not the cache) and verified against the
  /// cataloged checksum first: a rotten local copy returns Corruption
  /// rather than seeding replicas with damage. Charges device read
  /// time; the link charge belongs to the shipping side.
  StatusOr<std::string> ReadObjectBytes(storage::ObjectId id) const;

  /// Queries --------------------------------------------------------------

  /// Objects whose text content, attribute values, or recognized voice
  /// words contain `word` (case-insensitive whole-word match).
  std::vector<storage::ObjectId> Query(std::string_view word) const;

  /// Conjunctive query: objects matching all words (unranked, id order).
  std::vector<storage::ObjectId> QueryAll(
      const std::vector<std::string>& words) const override;

  /// Ranked query over the local scored index, best first. Charges the
  /// SimClock for the scoring work (index probes + postings scanned).
  std::vector<query::ScoredHit> QueryRanked(
      const std::vector<std::string>& words, size_t k,
      query::QueryMode mode = query::QueryMode::kConjunctive,
      const obs::TraceContext& ctx = {}) const override;

  /// Ranked query scored against externally supplied corpus statistics
  /// — the scatter path: the ShardRouter passes its catalog-wide stats
  /// index so every shard (and every replica) scores identically.
  std::vector<query::ScoredHit> QueryRankedWith(
      const std::vector<std::string>& words, size_t k,
      query::QueryMode mode, const query::ScoredIndex& global,
      const obs::TraceContext& ctx = {}) const;

  uint64_t catalog_version() const override { return catalog_version_; }

  /// The local scored index (introspection / stats for tests).
  const query::ScoredIndex& scored_index() const { return scored_index_; }

  /// Builds the miniature card of an object (rendered server-side,
  /// transferred over the link).
  StatusOr<MiniatureCard> FetchMiniature(
      storage::ObjectId id, int thumb_width = 96,
      const obs::TraceContext& ctx = {}) override;

  /// Evaluates the query and gathers the cards of every match, serially
  /// (one machine, one arm: card costs add up). Cards that cannot be
  /// built — a storm that outlasts the retry budget — are dropped from
  /// the strip (counted in "server.cards_dropped") instead of failing
  /// the whole query; the caller presents the partial strip degraded.
  StatusOr<std::vector<MiniatureCard>> GatherCards(
      const std::vector<std::string>& words, int thumb_width = 96,
      const obs::TraceContext& ctx = {}) override;

  /// Ranked gather, serially: top-k query, then cards best-first.
  StatusOr<std::vector<MiniatureCard>> GatherCardsRanked(
      const std::vector<std::string>& words, size_t k,
      int thumb_width = 96, const obs::TraceContext& ctx = {}) override;

  /// Retrieval ------------------------------------------------------------

  /// How much of an object one Fetch transfers over the link (the
  /// namespace-scope enum, re-exported for existing call sites).
  using FetchGranularity = server::FetchGranularity;

  /// Fetches a whole object (descriptor + composition) over the link.
  StatusOr<object::MultimediaObject> Fetch(
      storage::ObjectId id,
      FetchGranularity granularity = FetchGranularity::kWhole,
      const obs::TraceContext& ctx = {}) override;

  /// Fetches a specific archived version (§5 version control). The
  /// catalog tracks the latest version; older versions decode from their
  /// recorded archive address.
  StatusOr<object::MultimediaObject> FetchVersion(storage::ObjectId id,
                                                  uint32_t version);

  /// Fetches only rows [r.y, r.y+r.h) x [r.x, r.x+r.w) of a stored bitmap
  /// image part — the view-retrieval path that touches only the covering
  /// archive blocks and transfers only the region bytes ("The system will
  /// only retrieve the relevant data", §2). Unsupported for graphics
  /// images (those transfer their intersecting objects instead).
  StatusOr<image::Bitmap> FetchImageRegion(
      storage::ObjectId id, uint32_t image_index, const image::Rect& r,
      const obs::TraceContext& ctx = {}) override;

  /// Fetches one whole image part over the link.
  StatusOr<image::Image> FetchImage(storage::ObjectId id,
                                    uint32_t image_index);

  /// Demand paging --------------------------------------------------------

  /// Reads `length` bytes at `offset` within part `part_name` of the
  /// cataloged object through the archiver, landing the covering blocks
  /// in the block cache, without charging the link: the caller owns the
  /// transfer accounting (a synchronous stall or a background prefetch).
  /// The range is clamped to the part; a zero-length clamp is a no-op.
  Status StagePartRange(storage::ObjectId id, std::string_view part_name,
                        uint64_t offset, uint64_t length,
                        const obs::TraceContext& ctx = {}) override;

  /// Bytes a skeleton fetch of `id` defers to page-granular transfers:
  /// image parts placed on visual pages, plus the text or voice stream
  /// the pages present. Zero for objects with no pageable content.
  StatusOr<uint64_t> DeferredPageBytes(storage::ObjectId id) const;

  /// Byte length of one named part of a cataloged object (the transfer
  /// cost of delivering it in full).
  StatusOr<uint64_t> PartLength(storage::ObjectId id,
                                std::string_view part_name) const override;

  /// Introspection ---------------------------------------------------------

  size_t object_count() const { return catalog_.size(); }
  const storage::Archiver& archiver() const { return *archiver_; }

  /// The workstation-facing link (borrowed; null when transfers are not
  /// charged). The prefetch pipeline shares it for background traffic.
  Link* link() const { return link_; }

  /// A single server routes everything over its one link.
  Link* RouteLink(storage::ObjectId) const override { return link_; }
  std::vector<Link*> links() const override {
    return link_ != nullptr ? std::vector<Link*>{link_} : std::vector<Link*>{};
  }

 private:
  /// Per-object catalog entry built at Store time.
  struct CatalogEntry {
    storage::ArchiveAddress address;   ///< Whole serialized object.
    object::ObjectDescriptor descriptor;
    /// Byte offset of the composition payload within the object bytes.
    uint64_t payload_base = 0;
    uint32_t version = 0;      ///< Cataloged version (1-based).
    uint32_t content_crc = 0;  ///< CRC-32 of the serialized bytes.
  };

  StatusOr<const CatalogEntry*> Lookup(storage::ObjectId id) const;
  void IndexWords(storage::ObjectId id, std::string_view text);

  /// Shared Store / AcceptReplica tail: parses the descriptor out of
  /// the serialized bytes, installs the catalog entry and (when
  /// `reindex` is set) feeds the word and scored indexes.
  Status CatalogObject(const object::MultimediaObject& obj,
                       const std::string& bytes,
                       storage::ArchiveAddress addr, uint32_t version,
                       uint32_t content_crc, bool reindex);

  /// One delivery attempt: archive read, pointer resolution, link
  /// transfer (skipped when `over_link` is false — server-side reads),
  /// and injected wire corruption of the delivered bytes. A skeleton
  /// fetch discounts `transfer_discount` deferred payload bytes from
  /// the link charge.
  StatusOr<std::string> ReadAndDeliver(const storage::ArchiveAddress& address,
                                       bool over_link,
                                       uint64_t transfer_discount = 0,
                                       const obs::TraceContext& ctx = {});

  /// Full object materialization with retry/backoff; on persistent
  /// corruption falls back to a lenient decode that drops unreadable
  /// voice/attribute parts (the degraded-presentation path).
  /// `span` (may be null) is the caller's span: its context parents the
  /// retry/backoff and transfer children, and a salvage fallback tags it
  /// degraded=salvage.
  StatusOr<object::MultimediaObject> FetchAt(
      storage::ObjectId id, const storage::ArchiveAddress& address,
      bool over_link, uint64_t transfer_discount = 0,
      obs::TraceSpan* span = nullptr);

  /// Deferred-byte math over a catalog entry's descriptor.
  static uint64_t DeferredBytesOf(const object::ObjectDescriptor& desc);

  storage::Archiver* archiver_;
  storage::VersionStore* versions_;
  SimClock* clock_;
  Link* link_;
  FaultInjector* injector_ = nullptr;  // Borrowed; wire corruption only.
  obs::Tracer* tracer_ = nullptr;      // Borrowed; may be null.
  runtime::TaskPool* pool_ = nullptr;  // Borrowed; null scores serially.
  storage::RequestScheduler* scheduler_ = nullptr;  // Borrowed; see above.
  uint64_t stage_io_seq_ = 0;  // IoRequest ids for scheduled staging reads.
  RetryPolicy retry_policy_;
  BackoffSleeper backoff_sleeper_;  // Null: backoff advances the clock.
  Random retry_rng_{0x5EED0FCA};  // Seeded backoff jitter: replayable.
  std::map<storage::ObjectId, CatalogEntry> catalog_;
  std::map<std::string, std::set<storage::ObjectId>, std::less<>> index_;
  query::ScoredIndex scored_index_;      // Ranked-retrieval postings.
  voice::RecognizerParams recognizer_profile_;
  uint64_t catalog_version_ = 0;  // Bumped per successful Store.
};

}  // namespace minos::server

#endif  // MINOS_SERVER_OBJECT_SERVER_H_
