#ifndef MINOS_SERVER_OBJECT_SERVER_H_
#define MINOS_SERVER_OBJECT_SERVER_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "minos/core/page_compositor.h"
#include "minos/image/miniature.h"
#include "minos/object/multimedia_object.h"
#include "minos/server/fault.h"
#include "minos/server/link.h"
#include "minos/storage/archiver.h"
#include "minos/storage/version_store.h"
#include "minos/util/random.h"
#include "minos/util/statusor.h"

namespace minos::server {

/// A miniature card returned by content queries: "Miniatures of qualifying
/// objects may be returned to the user using a sequential browsing
/// interface ... They can for example contain a small bitmap of the first
/// visual page or an indication that an object is an audio mode object and
/// some voice segments which are played as the miniature passes through
/// the screen." (§5)
struct MiniatureCard {
  storage::ObjectId id = 0;
  bool audio_mode = false;
  image::Bitmap thumb;            ///< Small bitmap of the first visual page.
  std::string preview_transcript; ///< First spoken words (audio objects).
  uint64_t byte_size = 0;         ///< Transfer cost of this card.
};

/// The multimedia object server subsystem (§5): optical-disk based
/// archived-object store with access methods, caching, version control,
/// and content queries evaluated server-side. Retrievals go through the
/// link cost model so workstation-side experiments see realistic transfer
/// economics.
class ObjectServer {
 public:
  /// All pointers borrowed. `link` may be null (no transfer charging).
  ObjectServer(storage::Archiver* archiver, storage::VersionStore* versions,
               SimClock* clock, Link* link);

  /// Fault tolerance -------------------------------------------------------

  /// Attaches the injector that corrupts payloads in flight (borrowed;
  /// null detaches). Transport drops/timeouts belong to the Link's own
  /// injector; this one models wire corruption of delivered bytes.
  void SetFaultInjector(FaultInjector* injector) { injector_ = injector; }

  /// Replaces the retry schedule used by every Fetch* method. The
  /// default is RetryPolicy::Default(); RetryPolicy::None() restores the
  /// fail-on-first-fault behaviour of the pre-fault-model server.
  void SetRetryPolicy(const RetryPolicy& policy) { retry_policy_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_policy_; }

  /// Ingest ---------------------------------------------------------------

  /// Archives an object (must be in archived state) and indexes its
  /// content for queries. Returns the archive address.
  StatusOr<storage::ArchiveAddress> Store(
      const object::MultimediaObject& obj);

  /// Queries --------------------------------------------------------------

  /// Objects whose text content, attribute values, or recognized voice
  /// words contain `word` (case-insensitive whole-word match).
  std::vector<storage::ObjectId> Query(std::string_view word) const;

  /// Conjunctive query: objects matching all words.
  std::vector<storage::ObjectId> QueryAll(
      const std::vector<std::string>& words) const;

  /// Builds the miniature card of an object (rendered server-side,
  /// transferred over the link).
  StatusOr<MiniatureCard> FetchMiniature(storage::ObjectId id,
                                         int thumb_width = 96);

  /// Retrieval ------------------------------------------------------------

  /// Fetches a whole object (descriptor + composition) over the link.
  StatusOr<object::MultimediaObject> Fetch(storage::ObjectId id);

  /// Fetches a specific archived version (§5 version control). The
  /// catalog tracks the latest version; older versions decode from their
  /// recorded archive address.
  StatusOr<object::MultimediaObject> FetchVersion(storage::ObjectId id,
                                                  uint32_t version);

  /// Fetches only rows [r.y, r.y+r.h) x [r.x, r.x+r.w) of a stored bitmap
  /// image part — the view-retrieval path that touches only the covering
  /// archive blocks and transfers only the region bytes ("The system will
  /// only retrieve the relevant data", §2). Unsupported for graphics
  /// images (those transfer their intersecting objects instead).
  StatusOr<image::Bitmap> FetchImageRegion(storage::ObjectId id,
                                           uint32_t image_index,
                                           const image::Rect& r);

  /// Fetches one whole image part over the link.
  StatusOr<image::Image> FetchImage(storage::ObjectId id,
                                    uint32_t image_index);

  /// Introspection ---------------------------------------------------------

  size_t object_count() const { return catalog_.size(); }
  const storage::Archiver& archiver() const { return *archiver_; }

 private:
  /// Per-object catalog entry built at Store time.
  struct CatalogEntry {
    storage::ArchiveAddress address;   ///< Whole serialized object.
    object::ObjectDescriptor descriptor;
    /// Byte offset of the composition payload within the object bytes.
    uint64_t payload_base = 0;
  };

  StatusOr<const CatalogEntry*> Lookup(storage::ObjectId id) const;
  void IndexWords(storage::ObjectId id, std::string_view text);

  /// One delivery attempt: archive read, pointer resolution, link
  /// transfer (skipped when `over_link` is false — server-side reads),
  /// and injected wire corruption of the delivered bytes.
  StatusOr<std::string> ReadAndDeliver(const storage::ArchiveAddress& address,
                                       bool over_link);

  /// Full object materialization with retry/backoff; on persistent
  /// corruption falls back to a lenient decode that drops unreadable
  /// voice/attribute parts (the degraded-presentation path).
  StatusOr<object::MultimediaObject> FetchAt(
      storage::ObjectId id, const storage::ArchiveAddress& address,
      bool over_link);

  storage::Archiver* archiver_;
  storage::VersionStore* versions_;
  SimClock* clock_;
  Link* link_;
  FaultInjector* injector_ = nullptr;  // Borrowed; wire corruption only.
  RetryPolicy retry_policy_;
  Random retry_rng_{0x5EED0FCA};  // Seeded backoff jitter: replayable.
  std::map<storage::ObjectId, CatalogEntry> catalog_;
  std::map<std::string, std::set<storage::ObjectId>, std::less<>> index_;
};

}  // namespace minos::server

#endif  // MINOS_SERVER_OBJECT_SERVER_H_
