#include "minos/server/link.h"

namespace minos::server {

Micros Link::Transfer(uint64_t bytes) {
  const Micros elapsed =
      latency_ + static_cast<Micros>(static_cast<double>(bytes) /
                                     bytes_per_second_ * 1e6);
  clock_->Advance(elapsed);
  bytes_transferred_ += bytes;
  ++transfer_count_;
  busy_time_ += elapsed;
  return elapsed;
}

void Link::ResetStats() {
  bytes_transferred_ = 0;
  transfer_count_ = 0;
  busy_time_ = 0;
}

}  // namespace minos::server
