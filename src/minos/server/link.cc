#include "minos/server/link.h"

namespace minos::server {

Link::Link(double bytes_per_second, Micros latency, SimClock* clock,
           obs::MetricsRegistry* registry)
    : bytes_per_second_(bytes_per_second), latency_(latency), clock_(clock) {
  registry_ =
      registry != nullptr ? registry : &obs::MetricsRegistry::Default();
  scope_ = registry_->MakeScope("link");
  breaker_ = std::make_unique<CircuitBreaker>(CircuitBreaker::Options{},
                                              clock_, scope_, registry_);
  bytes_transferred_ = registry_->counter(scope_ + ".bytes_total");
  transfer_count_ = registry_->counter(scope_ + ".transfers");
  busy_time_ = registry_->counter(scope_ + ".busy_time_us");
  transfer_us_ = registry_->histogram(scope_ + ".transfer_us");
}

void Link::ConfigureBreaker(CircuitBreaker::Options options) {
  breaker_ = std::make_unique<CircuitBreaker>(options, clock_, scope_,
                                              registry_);
}

StatusOr<Micros> Link::Transfer(uint64_t bytes,
                                const obs::TraceContext& ctx) {
  std::optional<obs::TraceSpan> span =
      obs::MaybeStartSpan(tracer_, "link.transfer", ctx);
  if (span.has_value()) {
    span->AddTag("bytes", static_cast<int64_t>(bytes));
    if (background_) span->AddTag("lane", "background");
  }
  Status admitted = breaker_->Admit();
  if (!admitted.ok()) {
    // Fast fail: the breaker is open, no time is charged.
    if (span.has_value()) span->AddTag("outcome", "breaker_open");
    return admitted;
  }
  if (injector_ != nullptr) {
    // Lane-qualified operation name, so a FaultProfile::op_filter can
    // target only background (repair / prefetch) traffic or leave it be.
    Status verdict = injector_->OnOperation(
        background_ ? "link transfer background" : "link transfer");
    if (!verdict.ok()) {
      // Speculative (prefetch) failures carry no breaker weight: a
      // prefetch storm must not open the circuit for the foreground.
      if (!background_) breaker_->RecordFailure();
      if (span.has_value()) span->AddTag("outcome", "fault");
      return verdict;
    }
  }
  const Micros elapsed =
      latency_ + static_cast<Micros>(static_cast<double>(bytes) /
                                     bytes_per_second_ * 1e6);
  clock_->Advance(elapsed);
  bytes_transferred_->Increment(static_cast<int64_t>(bytes));
  transfer_count_->Increment();
  busy_time_->Increment(elapsed);
  transfer_us_->Record(static_cast<double>(elapsed));
  breaker_->RecordSuccess();
  if (span.has_value()) span->AddTag("outcome", "ok");
  return elapsed;
}

void Link::ResetStats() {
  bytes_transferred_->Reset();
  transfer_count_->Reset();
  busy_time_->Reset();
  transfer_us_->Reset();
}

}  // namespace minos::server
