#include "minos/server/link.h"

namespace minos::server {

Link::Link(double bytes_per_second, Micros latency, SimClock* clock,
           obs::MetricsRegistry* registry)
    : bytes_per_second_(bytes_per_second), latency_(latency), clock_(clock) {
  obs::MetricsRegistry& reg =
      registry != nullptr ? *registry : obs::MetricsRegistry::Default();
  const std::string scope = reg.MakeScope("link");
  bytes_transferred_ = reg.counter(scope + ".bytes_total");
  transfer_count_ = reg.counter(scope + ".transfers");
  busy_time_ = reg.counter(scope + ".busy_time_us");
  transfer_us_ = reg.histogram(scope + ".transfer_us");
}

Micros Link::Transfer(uint64_t bytes) {
  const Micros elapsed =
      latency_ + static_cast<Micros>(static_cast<double>(bytes) /
                                     bytes_per_second_ * 1e6);
  clock_->Advance(elapsed);
  bytes_transferred_->Increment(static_cast<int64_t>(bytes));
  transfer_count_->Increment();
  busy_time_->Increment(elapsed);
  transfer_us_->Record(static_cast<double>(elapsed));
  return elapsed;
}

void Link::ResetStats() {
  bytes_transferred_->Reset();
  transfer_count_->Reset();
  busy_time_->Reset();
  transfer_us_->Reset();
}

}  // namespace minos::server
