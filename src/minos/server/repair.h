#ifndef MINOS_SERVER_REPAIR_H_
#define MINOS_SERVER_REPAIR_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "minos/obs/metrics.h"
#include "minos/obs/trace.h"
#include "minos/server/fault.h"
#include "minos/storage/version_store.h"
#include "minos/util/clock.h"
#include "minos/util/random.h"
#include "minos/util/statusor.h"

namespace minos::server {

class ObjectServer;
class ShardRouter;

/// Anti-entropy repair for the sharded archive. The shard fabric (PR 5)
/// routes *around* dead replicas; this module makes the store converge
/// back to full redundancy once they return. Shards summarize their
/// catalogs as CatalogDigests; the RepairManager exchanges digests after
/// every breaker heal, computes which replicas are missing or stale, and
/// re-replicates them over background-lane link transfers — repair
/// traffic never trips a breaker and never preempts foreground pages at
/// the disk arm. The same machinery streams a new shard's placement
/// range over before a shard-count change flips the routing table.
/// Everything runs on the SimClock under seeded randomness: the same
/// seed yields the same repair schedule and identical digests.

/// One catalog line of the anti-entropy digest: what a shard claims to
/// hold for one object.
struct DigestEntry {
  storage::ObjectId id = 0;
  uint32_t version = 0;      ///< Latest cataloged version (1-based).
  uint32_t content_crc = 0;  ///< CRC-32 of the serialized object bytes.

  bool operator==(const DigestEntry&) const = default;
};

/// A shard's catalog summary: (id, version, content checksum) per
/// object, ascending by id. Digests travel between shards as bytes;
/// Deserialize is strict — a trailing CRC-32 guards the whole document,
/// and any malformation (bad magic, checksum mismatch, truncation,
/// ids out of order, trailing garbage) is Corruption. A damaged digest
/// is rejected and its shard skipped for the round; repair never acts
/// on bytes it cannot fully verify.
struct CatalogDigest {
  std::vector<DigestEntry> entries;  ///< Ascending by id.

  /// Wire format: fixed32 magic, varint entry count, per entry
  /// (varint64 id, varint32 version, fixed32 crc), fixed32 CRC-32 of
  /// everything before it.
  std::string Serialize() const;
  static StatusOr<CatalogDigest> Deserialize(std::string_view bytes);

  bool operator==(const CatalogDigest&) const = default;
};

/// Knobs of one RepairManager.
struct RepairOptions {
  /// Retry schedule for repair transfers (background lane).
  RetryPolicy retry = RetryPolicy::Default();
  /// Seed of the repair retry jitter stream.
  uint64_t seed = 0x5EEDF1C5;
  /// When set, digests re-read every object's bytes from the archive
  /// (device time charged) and recompute the checksum, so silent media
  /// rot surfaces as replica divergence instead of waiting for a fetch.
  bool scrub = false;
  /// Sim-time period of the scheduled scrub cycle (0 disables). While
  /// set, a scrub becomes due every `scrub_interval` of SimClock time:
  /// sync_pending() turns true and the next SyncIfPending() runs its
  /// round with scrub digests — a periodic patrol read of every
  /// archived image, in the background lane like all repair traffic —
  /// even when `scrub` is false for heal-driven rounds. Counted in
  /// "repair.scrubs_total".
  Micros scrub_interval = 0;
  /// Statistics registry (the process default when null).
  obs::MetricsRegistry* registry = nullptr;
};

/// Outcome of one anti-entropy round.
struct RepairReport {
  uint64_t digests_exchanged = 0;  ///< Live shards that produced digests.
  uint64_t digests_rejected = 0;   ///< Digests that failed verification.
  uint64_t objects_checked = 0;    ///< Distinct ids in the digest union.
  uint64_t replicas_repaired = 0;  ///< Copies shipped and ingested.
  uint64_t repair_failures = 0;    ///< Planned repairs that failed.
  uint64_t bytes_shipped = 0;      ///< Digest + object bytes moved.
  /// Objects with fewer than `replication` live up-to-date copies after
  /// the round (dark replicas keep objects here until their shard
  /// heals). Mirrored into the router's under-replicated set and the
  /// "router.under_replicated" gauge.
  uint64_t under_replicated = 0;
  /// Deficits on *live* shards the round could not fix (transfer or
  /// ingest failures) — work the next sync retries. Zero after a clean
  /// round even while dark shards keep under_replicated nonzero.
  uint64_t pending = 0;
};

/// Drives anti-entropy over one ShardRouter. Construction hooks the
/// router's heal events: a breaker heal (half-open readmission) marks a
/// sync pending, and the owner runs it at its next quiet point via
/// SyncIfPending() — repair never runs inline with a read. Store-time
/// under-replication (the degraded-store event) also leaves
/// sync_pending() true until a round drains the router's set.
///
/// Statistics live under "repair.*": syncs_total,
/// digest_exchanges_total, digest_rejects_total,
/// replicas_repaired_total, requests_total / errors_total (transfer
/// RED), bytes_total, failures_total and migrations_total counters; the
/// pending gauge; and the duration_us histogram (per-sync wall time on
/// the SimClock). "repair.sync" / "repair.transfer" spans record under
/// an attached tracer.
class RepairManager {
 public:
  /// `router` and `clock` borrowed, non-null; the manager installs
  /// itself as the router's heal listener.
  RepairManager(ShardRouter* router, SimClock* clock,
                RepairOptions options = {});

  RepairManager(const RepairManager&) = delete;
  RepairManager& operator=(const RepairManager&) = delete;

  /// One full anti-entropy round: exchange digests across live shards,
  /// union them, re-replicate every missing or stale copy onto the live
  /// chain shards that lack one, and install the router's
  /// under-replicated set. Deterministic: objects repair in ascending
  /// id order, chain order per object.
  RepairReport Sync(const obs::TraceContext& ctx = {});

  /// Runs Sync() only when repair has a reason to: a heal edge was
  /// observed or the router knows degraded stores. Returns the report,
  /// or nullopt when nothing was pending.
  std::optional<RepairReport> SyncIfPending(
      const obs::TraceContext& ctx = {});

  /// True when the next SyncIfPending() would run a round.
  bool sync_pending() const;

  /// True when the scheduled scrub cycle has a patrol read due: a scrub
  /// interval is configured and at least that much sim time has passed
  /// since the last scrub round (time 0 for a fresh manager).
  bool scrub_due() const;

  /// SimClock time of the last scheduled scrub round (0 before any).
  Micros last_scrub() const { return last_scrub_; }

  /// Live shard-count change: stages `shard` on the router, streams the
  /// expanded placement's ranges onto it (and every other live chain
  /// member) under the *new* shard count, then flips the routing table
  /// atomically. Fails closed — Unavailable, routing unchanged — when
  /// any active shard is dark or any migration transfer fails; the call
  /// is retryable once the fabric heals. Idempotent for a shard already
  /// staged.
  StatusOr<RepairReport> ExpandShards(ObjectServer* shard,
                                      const obs::TraceContext& ctx = {});

  /// Test hook: mutates serialized digests in transit (simulated wire
  /// damage), keyed by source shard index. Null uninstalls.
  void SetDigestTap(
      std::function<void(size_t shard, std::string* wire)> tap) {
    digest_tap_ = std::move(tap);
  }

 private:
  /// The shared round: digests, union, repairs and the recount, all
  /// under a `placement_count`-shard placement. Fills `out_under` with
  /// the ids still lacking live up-to-date copies. With `scrub`,
  /// digests re-read every image off the platter.
  RepairReport SyncUnder(size_t placement_count,
                         std::set<storage::ObjectId>* out_under, bool scrub,
                         const obs::TraceContext& ctx);

  ShardRouter* router_;
  SimClock* clock_;
  RepairOptions options_;
  Random rng_;
  bool heal_pending_ = false;
  Micros last_scrub_ = 0;  ///< SimClock time of the last scrub round.
  std::function<void(size_t, std::string*)> digest_tap_;

  obs::Counter* syncs_;             // Owned by the registry.
  obs::Counter* digest_exchanges_;
  obs::Counter* digest_rejects_;
  obs::Counter* repaired_;
  obs::Counter* requests_;
  obs::Counter* errors_;
  obs::Counter* bytes_;
  obs::Counter* failures_;
  obs::Counter* migrations_;
  obs::Counter* scrubs_;  ///< Scheduled scrub rounds run.
  obs::Gauge* pending_;
  obs::Histogram* duration_us_;
};

}  // namespace minos::server

#endif  // MINOS_SERVER_REPAIR_H_
