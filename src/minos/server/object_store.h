#ifndef MINOS_SERVER_OBJECT_STORE_H_
#define MINOS_SERVER_OBJECT_STORE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "minos/image/bitmap.h"
#include "minos/obs/trace.h"
#include "minos/object/multimedia_object.h"
#include "minos/query/query_engine.h"
#include "minos/server/fault.h"
#include "minos/storage/archiver.h"
#include "minos/storage/version_store.h"
#include "minos/util/statusor.h"

namespace minos::server {

class Link;

/// A miniature card returned by content queries: "Miniatures of qualifying
/// objects may be returned to the user using a sequential browsing
/// interface ... They can for example contain a small bitmap of the first
/// visual page or an indication that an object is an audio mode object and
/// some voice segments which are played as the miniature passes through
/// the screen." (§5)
struct MiniatureCard {
  storage::ObjectId id = 0;
  bool audio_mode = false;
  image::Bitmap thumb;            ///< Small bitmap of the first visual page.
  std::string preview_transcript; ///< First spoken words (audio objects).
  uint64_t byte_size = 0;         ///< Transfer cost of this card.
  double score = 0;               ///< Relevance (ranked gathers only).
};

/// How much of an object one Fetch transfers over the link.
enum class FetchGranularity : uint8_t {
  /// Everything: descriptor plus every part payload (the classic
  /// whole-object fetch).
  kWhole = 0,
  /// Descriptor and structure only; the page-content payloads (image
  /// parts placed on visual pages, the text/voice streams the pages
  /// present) are deferred to page-granular transfers driven by the
  /// browsing cursor. The object still materializes fully in memory —
  /// the granularity governs transfer-cost accounting, which is what
  /// the simulation measures.
  kSkeleton = 1,
};

/// The archive surface one workstation session talks to. Two
/// implementations: ObjectServer (one machine owns the whole catalog —
/// the classic MINOS topology) and ShardRouter (the catalog split across
/// N servers behind scatter/gather routing with replicated descriptors).
/// Every session-side driver — the presentation-manager resolver, the
/// prefetch pipeline, the benches — runs unchanged against either.
class ObjectStore {
 public:
  virtual ~ObjectStore() = default;

  /// Archives an object and indexes its content for queries. Returns the
  /// archive address (the primary copy's, for replicated stores). A
  /// replicated store that lands fewer copies than its replication
  /// target still succeeds, but surfaces the deficit — the router's
  /// under-replicated set and "router.under_replicated" gauge — for
  /// anti-entropy repair (RepairManager) to converge later.
  virtual StatusOr<storage::ArchiveAddress> Store(
      const object::MultimediaObject& obj) = 0;

  /// Conjunctive content query: ids of objects matching all words, in
  /// ascending id order (sharded stores scatter the query and merge).
  /// The unranked path — QueryRanked is the relevance-ordered one.
  virtual std::vector<storage::ObjectId> QueryAll(
      const std::vector<std::string>& words) const = 0;

  /// Attaches the request tracer (borrowed; null detaches). Sharded
  /// stores forward it to every shard and its link, so one tracer sees
  /// the whole fabric. The trailing TraceContext parameter each
  /// retrieval method takes below is the propagated parent span:
  /// call sites that pass a valid context get their work recorded as
  /// children of their own span; the default (invalid) context records
  /// nothing.
  virtual void SetTracer(obs::Tracer* tracer) = 0;

  /// Attaches a task pool (borrowed; null detaches) that parallel-
  /// capable stores use for their hot fan-outs — shard scatters,
  /// partitioned scoring. The default is a no-op: a store without
  /// parallel paths simply keeps running serially, with identical
  /// results.
  virtual void SetTaskPool(runtime::TaskPool* pool) { (void)pool; }

  /// Stable grouping key for prefetch staging of `id`: entries with the
  /// same non-zero affinity contend for the same backing resource (for
  /// a sharded store, the shard that would serve the object) and must
  /// stage serially; different affinities may stage concurrently.
  /// 0 means unknown — the prefetcher then serializes conservatively.
  virtual uint64_t PrefetchAffinity(storage::ObjectId id) const {
    (void)id;
    return 0;
  }

  /// Ranked content query: the top `k` objects matching `words` with
  /// their BM25-style relevance scores, best first (ties break by
  /// ascending id). A sharded store scatters per-shard top-k requests,
  /// merges by score with replica dedup, and advances the clock by the
  /// slowest shard.
  virtual std::vector<query::ScoredHit> QueryRanked(
      const std::vector<std::string>& words, size_t k,
      query::QueryMode mode = query::QueryMode::kConjunctive,
      const obs::TraceContext& ctx = {}) const = 0;

  /// Monotonic catalog version: bumped by every successful Store. The
  /// workstation's query-result cache stamps entries with it, so an
  /// insertion invalidates every strip ranked before it.
  virtual uint64_t catalog_version() const = 0;

  /// Builds and transfers the miniature card of one object.
  virtual StatusOr<MiniatureCard> FetchMiniature(
      storage::ObjectId id, int thumb_width = 96,
      const obs::TraceContext& ctx = {}) = 0;

  /// Evaluates the query and gathers the miniature cards of every match,
  /// ordered by ascending object id. A sharded store scatters the
  /// per-shard card work and overlaps it (the clock advances by the
  /// slowest shard, not the sum); a single server does it serially.
  virtual StatusOr<std::vector<MiniatureCard>> GatherCards(
      const std::vector<std::string>& words, int thumb_width = 96,
      const obs::TraceContext& ctx = {}) = 0;

  /// Ranked gather: evaluates QueryRanked and returns the miniature
  /// cards of the top `k` matches in relevance order (each card carries
  /// its score), so the presentation layer browses best-first. Cards
  /// that cannot be built are dropped from the strip — a partial,
  /// degraded answer beats no answer.
  virtual StatusOr<std::vector<MiniatureCard>> GatherCardsRanked(
      const std::vector<std::string>& words, size_t k,
      int thumb_width = 96, const obs::TraceContext& ctx = {}) = 0;

  /// Fetches an object (descriptor + composition) over the link.
  virtual StatusOr<object::MultimediaObject> Fetch(
      storage::ObjectId id,
      FetchGranularity granularity = FetchGranularity::kWhole,
      const obs::TraceContext& ctx = {}) = 0;

  /// Fetches only the covering region of a stored bitmap image part.
  virtual StatusOr<image::Bitmap> FetchImageRegion(
      storage::ObjectId id, uint32_t image_index, const image::Rect& r,
      const obs::TraceContext& ctx = {}) = 0;

  /// Reads `length` bytes at `offset` within part `part_name` through the
  /// owning archiver without charging the link: the caller owns the
  /// transfer accounting (a synchronous stall or a background prefetch).
  virtual Status StagePartRange(storage::ObjectId id,
                                std::string_view part_name, uint64_t offset,
                                uint64_t length,
                                const obs::TraceContext& ctx = {}) = 0;

  /// Byte length of one named part of a cataloged object.
  virtual StatusOr<uint64_t> PartLength(storage::ObjectId id,
                                        std::string_view part_name) const = 0;

  /// The retry schedule the store's fetch paths run under.
  virtual const RetryPolicy& retry_policy() const = 0;

  /// Installs the sleeper every fetch retry spends its backoff windows in
  /// (null restores plain clock advances).
  virtual void SetBackoffSleeper(BackoffSleeper sleeper) = 0;

  /// The link a fetch of `id` would travel right now (null when transfers
  /// are not charged, or no live route serves the object).
  virtual Link* RouteLink(storage::ObjectId id) const = 0;

  /// Every link this store may use. The prefetch pipeline spans its
  /// background scopes over all of them, so speculative failures on any
  /// shard stay off that shard's foreground breaker accounting.
  virtual std::vector<Link*> links() const = 0;
};

}  // namespace minos::server

#endif  // MINOS_SERVER_OBJECT_STORE_H_
