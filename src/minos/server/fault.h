#ifndef MINOS_SERVER_FAULT_H_
#define MINOS_SERVER_FAULT_H_

#include <algorithm>
#include <functional>
#include <string>
#include <string_view>

#include "minos/obs/metrics.h"
#include "minos/obs/trace.h"
#include "minos/util/clock.h"
#include "minos/util/random.h"
#include "minos/util/statusor.h"

namespace minos::server {

/// Deterministic fault injection and recovery for the workstation-server
/// path. The paper assumes "high capacity links" that never fail (§5); a
/// production-scale deployment cannot. This module makes every transfer
/// and device read fallible under a seeded, policy-driven injector, and
/// provides the recovery vocabulary — retry with backoff, per-link circuit
/// breaking — that the fetch path uses to hide those faults from the user.
/// All delays advance the SimClock, so every chaos run is replayable.

/// What the injector may do to one operation or payload.
enum class FaultKind : uint8_t {
  kNone = 0,
  kDrop = 1,     ///< Operation lost; fails immediately (Unavailable).
  kTimeout = 2,  ///< Operation hangs for `timeout_us`, then fails.
  kLatency = 3,  ///< Operation succeeds after added latency.
  kCorrupt = 4,  ///< Payload delivered with flipped bytes.
  kFailN = 5,    ///< Deterministic bring-up fault: first N operations fail.
};

/// Probability-driven fault policy. Rates are per-operation probabilities
/// in [0, 1]; the same seed always yields the same fault sequence.
struct FaultProfile {
  double drop_rate = 0.0;     ///< P(operation dropped).
  double timeout_rate = 0.0;  ///< P(operation times out).
  Micros timeout_us = MillisToMicros(200);  ///< Cost of a timeout.
  double corrupt_rate = 0.0;  ///< P(payload byte-flipped in flight).
  double latency_rate = 0.0;  ///< P(extra latency added).
  Micros latency_min_us = MillisToMicros(5);
  Micros latency_max_us = MillisToMicros(50);
  /// The first `fail_first_n` operations fail unconditionally, then the
  /// probabilistic model takes over (fail-N-then-succeed bring-up fault).
  int fail_first_n = 0;
  /// When non-empty, only operations whose name contains this substring
  /// are eligible for injection; every other operation passes unharmed
  /// and consumes neither randomness nor the fail-first-N countdown, so
  /// the matching operations see the exact fault sequence an unfiltered
  /// profile would deal them. Lets chaos target one traffic class — the
  /// Link names its background-lane transfers "link transfer
  /// background", so `op_filter = "background"` faults only repair and
  /// prefetch traffic while the foreground path stays clean.
  std::string op_filter;

  /// No faults at all (the default-constructed profile).
  static FaultProfile None() { return FaultProfile{}; }

  /// The acceptance-gate profile: 10% drops plus 1% payload corruption.
  static FaultProfile Flaky() {
    FaultProfile p;
    p.drop_rate = 0.10;
    p.corrupt_rate = 0.01;
    return p;
  }

  /// Heavy weather: drops, timeouts, corruption and added latency at
  /// rates that exercise the circuit breaker.
  static FaultProfile Storm() {
    FaultProfile p;
    p.drop_rate = 0.30;
    p.timeout_rate = 0.10;
    p.corrupt_rate = 0.05;
    p.latency_rate = 0.25;
    return p;
  }

  /// True when any fault can fire.
  bool active() const {
    return drop_rate > 0 || timeout_rate > 0 || corrupt_rate > 0 ||
           latency_rate > 0 || fail_first_n > 0;
  }
};

/// Seeded fault source. One injector typically wraps one transport
/// (a Link, a BlockDevice); components consult it before (OnOperation)
/// and after (MaybeCorrupt) the modeled work. Injected timeouts and
/// latency advance the shared SimClock, so faulty runs cost simulated
/// time exactly like real ones would.
///
/// Statistics live under an injector instance scope in the registry
/// ("fault0.injected_total", "fault0.drops", ...) plus process-wide
/// aggregates ("faults.injected_total").
class FaultInjector {
 public:
  FaultInjector(FaultProfile profile, uint64_t seed, SimClock* clock,
                obs::MetricsRegistry* registry = nullptr);

  /// Swaps the live policy (the chaos toggle); the random stream and the
  /// fail-first-N countdown continue.
  void set_profile(const FaultProfile& profile) { profile_ = profile; }
  const FaultProfile& profile() const { return profile_; }

  /// Decides the fate of one operation. OK (possibly after advancing the
  /// clock for added latency), Unavailable for a drop / bring-up fault,
  /// or DeadlineExceeded after charging `timeout_us` for a timeout.
  /// `op` names the operation in failure messages ("link transfer").
  Status OnOperation(std::string_view op);

  /// Flips one deterministic byte of `payload` with `corrupt_rate`
  /// probability. Returns true when corruption was injected.
  bool MaybeCorrupt(std::string* payload);

  /// Total faults injected by this instance (all kinds).
  uint64_t faults_injected() const {
    return static_cast<uint64_t>(injected_->value());
  }

 private:
  FaultProfile profile_;
  Random rng_;
  SimClock* clock_;
  int ops_seen_ = 0;
  obs::Counter* injected_;      // Owned by the registry.
  obs::Counter* drops_;
  obs::Counter* timeouts_;
  obs::Counter* corruptions_;
  obs::Counter* latency_hits_;
  obs::Histogram* latency_us_;  // Added-latency distribution.
  obs::Counter* total_injected_;  // Process-wide "faults.injected_total".
};

/// Exponential-backoff retry schedule with seeded jitter and a
/// per-request deadline budget, advanced on SimClock.
struct RetryPolicy {
  int max_attempts = 6;
  Micros initial_backoff_us = MillisToMicros(2);
  double backoff_multiplier = 2.0;
  Micros max_backoff_us = MillisToMicros(250);
  /// Backoff is perturbed by up to +/- this fraction (seeded jitter).
  double jitter = 0.25;
  /// Total simulated-time budget per request; 0 disables the deadline.
  Micros deadline_us = SecondsToMicros(10);

  /// The fetch-path default (above).
  static RetryPolicy Default() { return RetryPolicy{}; }

  /// Exactly one attempt, no waiting: faults surface immediately.
  static RetryPolicy None() {
    RetryPolicy p;
    p.max_attempts = 1;
    p.deadline_us = 0;
    return p;
  }

  /// Backoff before retry number `attempt` (1-based: the delay after the
  /// first failure is BackoffFor(1, ...)). Deterministic given the rng
  /// state; `rng` may be null for the unjittered schedule.
  Micros BackoffFor(int attempt, Random* rng) const;
};

/// True for transient failures a retry may cure: Unavailable (drops,
/// breaker-open fast-fails), DeadlineExceeded (injected timeouts),
/// Corruption (a re-transfer delivers clean bytes) and ResourceExhausted
/// (queue pressure). Everything else is permanent.
bool IsRetryable(const Status& status);

/// Per-link circuit breaker: after `failure_threshold` consecutive
/// failures the breaker opens and fails fast (Unavailable) until
/// `cooldown_us` of simulated time passes; it then admits a single
/// half-open probe whose outcome closes or re-opens the circuit.
///
/// State is observable under the owner's scope: "<scope>.breaker_open"
/// gauge (1 while open) and "<scope>.breaker_opens_total" /
/// "<scope>.breaker_closes_total" transition counters.
class CircuitBreaker {
 public:
  struct Options {
    int failure_threshold = 8;
    Micros cooldown_us = MillisToMicros(500);
  };

  enum class State : uint8_t { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

  CircuitBreaker(Options options, SimClock* clock, const std::string& scope,
                 obs::MetricsRegistry* registry = nullptr);

  /// Gate before an operation: OK when closed (or when admitting the
  /// half-open probe), Unavailable while open.
  Status Admit();

  /// Outcome reporting after an admitted operation.
  void RecordSuccess();
  void RecordFailure();

  State state() const { return state_; }
  int consecutive_failures() const { return consecutive_failures_; }
  const Options& options() const { return options_; }

  /// True when an open breaker has sat out its cooldown, so the next
  /// Admit() would let a half-open probe through. Routing layers use
  /// this to tell "dead, skip" from "dead, but due a probe" without
  /// consuming the probe slot themselves.
  bool CooldownElapsed() const {
    return state_ == State::kOpen &&
           clock_->Now() - opened_at_ >= options_.cooldown_us;
  }

 private:
  void Open();
  void Close();

  Options options_;
  SimClock* clock_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  Micros opened_at_ = 0;
  obs::Gauge* open_gauge_;       // Owned by the registry.
  obs::Counter* opens_total_;
  obs::Counter* closes_total_;
  obs::Counter* fast_fails_;
};

/// Sleeper invoked once per backoff window (the ROADMAP's
/// "scheduler-integrated retries"). The sleeper owns the window: it MUST
/// advance `clock` by exactly `delay`, but may do useful work first —
/// the prefetch pipeline's sleeper pumps queued background transfers so
/// speculative fetches progress while the foreground request waits out
/// its backoff instead of dead-sleeping the whole session.
using BackoffSleeper = std::function<void(Micros delay)>;

/// Trace hookup for RetryWithBackoff. When `tracer` is set and `parent`
/// is a valid propagated context, every backoff window records a
/// "retry.backoff" span under `parent`, tagged with the attempt number
/// it follows and the delay spent — so a trace shows exactly how much
/// of a slow request was retry backoff rather than useful work.
struct RetryTrace {
  obs::Tracer* tracer = nullptr;  ///< Borrowed; null disables.
  obs::TraceContext parent;
};

/// Runs `attempt` until it succeeds, fails permanently, exhausts
/// `policy.max_attempts`, or would overrun the deadline budget. Backoff
/// delays advance `clock` — through `sleeper` when one is installed —
/// and record under "retry.*" ("retry.attempts_total",
/// "retry.retries_total", "retry.exhausted_total", "retry.delay_us"),
/// plus a "retry.backoff" span per window when `trace` is wired.
/// On exhaustion the last underlying error is returned unchanged so
/// callers can still classify it (e.g. salvage a Corruption); when the
/// budget forbids another try, DeadlineExceeded.
template <typename T, typename Fn>
StatusOr<T> RetryWithBackoff(const RetryPolicy& policy, SimClock* clock,
                             Random* rng, const BackoffSleeper& sleeper,
                             Fn&& attempt, const RetryTrace& trace = {}) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  obs::Counter* attempts_total = reg.counter("retry.attempts_total");
  obs::Counter* retries_total = reg.counter("retry.retries_total");
  obs::Counter* exhausted_total = reg.counter("retry.exhausted_total");
  obs::Histogram* delay_us = reg.histogram("retry.delay_us");

  const Micros start = clock->Now();
  const int max_attempts = std::max(1, policy.max_attempts);
  for (int attempt_no = 1;; ++attempt_no) {
    attempts_total->Increment();
    StatusOr<T> result = attempt();
    if (result.ok()) return result;
    if (!IsRetryable(result.status())) return result;
    if (attempt_no >= max_attempts) {
      exhausted_total->Increment();
      return result;
    }
    const Micros delay = policy.BackoffFor(attempt_no, rng);
    if (policy.deadline_us > 0 &&
        (clock->Now() - start) + delay > policy.deadline_us) {
      exhausted_total->Increment();
      return Status::DeadlineExceeded(
          "retry budget exhausted; last error: " +
          result.status().ToString());
    }
    delay_us->Record(static_cast<double>(delay));
    retries_total->Increment();
    std::optional<obs::TraceSpan> backoff_span =
        obs::MaybeStartSpan(trace.tracer, "retry.backoff", trace.parent);
    if (backoff_span.has_value()) {
      backoff_span->AddTag("attempt", static_cast<int64_t>(attempt_no));
      backoff_span->AddTag("backoff_us", delay);
    }
    if (sleeper) {
      sleeper(delay);
    } else {
      clock->Advance(delay);
    }
  }
}

/// Convenience overload without a backoff sleeper: the backoff window is
/// spent advancing the clock, exactly as before sleepers existed.
template <typename T, typename Fn>
StatusOr<T> RetryWithBackoff(const RetryPolicy& policy, SimClock* clock,
                             Random* rng, Fn&& attempt) {
  return RetryWithBackoff<T>(policy, clock, rng, BackoffSleeper(),
                             std::forward<Fn>(attempt));
}

}  // namespace minos::server

#endif  // MINOS_SERVER_FAULT_H_
