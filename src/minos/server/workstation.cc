#include "minos/server/workstation.h"

#include <algorithm>
#include <utility>

namespace minos::server {

std::pair<uint64_t, uint64_t> ApportionStream(uint64_t total_len, int page,
                                              int page_count) {
  if (total_len == 0 || page < 1 || page > page_count) return {0, 0};
  const uint64_t chunk = total_len / static_cast<uint64_t>(page_count);
  // Fewer bytes than pages: zero-byte chunks would never deliver the
  // stream, so the whole of it rides with the first page visited.
  if (chunk == 0) return {0, total_len};
  const uint64_t offset = static_cast<uint64_t>(page - 1) * chunk;
  const uint64_t length =
      page == page_count ? total_len - offset : chunk;
  return {offset, length};
}

MiniatureBrowser::MiniatureBrowser(std::vector<MiniatureCard> cards) {
  slots_.reserve(cards.size());
  for (MiniatureCard& card : cards) {
    Slot slot;
    slot.id = card.id;
    slot.card = std::move(card);
    slots_.push_back(std::move(slot));
  }
}

MiniatureBrowser::MiniatureBrowser(std::vector<storage::ObjectId> ids,
                                   CardFetcher fetcher)
    : fetcher_(std::move(fetcher)) {
  slots_.reserve(ids.size());
  for (storage::ObjectId id : ids) {
    Slot slot;
    slot.id = id;
    slots_.push_back(std::move(slot));
  }
}

StatusOr<const MiniatureCard*> MiniatureBrowser::Ensure(size_t slot) {
  Slot& s = slots_[slot];
  if (!s.card.has_value()) {
    if (!fetcher_) {
      return Status::FailedPrecondition("lazy miniature without a fetcher");
    }
    MINOS_ASSIGN_OR_RETURN(MiniatureCard card,
                           fetcher_(s.id, static_cast<int>(slot)));
    s.card = std::move(card);
  }
  return &*s.card;
}

StatusOr<const MiniatureCard*> MiniatureBrowser::Current() {
  if (slots_.empty()) return Status::NotFound("no qualifying objects");
  return Ensure(cursor_);
}

void MiniatureBrowser::PlayPreviewIfAudio() {
  if (player_ == nullptr || cursor_ >= slots_.size()) return;
  StatusOr<const MiniatureCard*> card = Ensure(cursor_);
  if (!card.ok()) return;  // An unfetchable card stays silent.
  if (!(*card)->audio_mode || (*card)->preview_transcript.empty()) return;
  player_->Play((*card)->preview_transcript, log_,
                core::EventKind::kVoicePlayed,
                static_cast<int64_t>((*card)->id));
}

Status MiniatureBrowser::MoveTo(size_t target) {
  cursor_ = target;
  if (cursor_listener_) {
    cursor_listener_(static_cast<int>(cursor_),
                     static_cast<int>(slots_.size()), /*jump=*/false);
  }
  PlayPreviewIfAudio();
  return Status::OK();
}

Status MiniatureBrowser::Next() {
  if (cursor_ + 1 >= slots_.size()) {
    return Status::OutOfRange("already at the last miniature");
  }
  return MoveTo(cursor_ + 1);
}

Status MiniatureBrowser::Previous() {
  if (cursor_ == 0) {
    return Status::OutOfRange("already at the first miniature");
  }
  return MoveTo(cursor_ - 1);
}

StatusOr<storage::ObjectId> MiniatureBrowser::Select() const {
  if (slots_.empty()) return Status::NotFound("no qualifying objects");
  return slots_[cursor_].id;
}

Workstation::Workstation(ObjectStore* server, render::Screen* screen,
                         SimClock* clock)
    : server_(server), clock_(clock), presentation_(screen, clock) {
  presentation_.SetResolver(
      [this](storage::ObjectId id) { return Resolve(id); });
}

Workstation::~Workstation() {
  // The borrowed server keeps serving other sessions after this one
  // ends; anything the session installed into it comes back out here:
  // the tracer must not outlive its owner, and the sleeper must not
  // pump a destroyed queue.
  if (tracer_ != nullptr) {
    server_->SetTracer(nullptr);
    if (pool_ != nullptr) pool_->SetTracer(nullptr);
  }
  if (prefetch_ == nullptr) return;
  server_->SetBackoffSleeper(BackoffSleeper());
  presentation_.SetBrowseListener(nullptr);
  prefetch_->CancelAll();
}

void Workstation::SetTracer(obs::Tracer* tracer) {
  tracer_ = tracer;
  server_->SetTracer(tracer);
  presentation_.SetTracer(tracer);
  if (pool_ != nullptr) pool_->SetTracer(tracer);
}

void Workstation::SetTaskPool(runtime::TaskPool* pool) {
  pool_ = pool;
  if (pool != nullptr && tracer_ != nullptr) pool->SetTracer(tracer_);
  server_->SetTaskPool(pool);
  if (prefetch_ != nullptr) {
    prefetch_->SetTaskPool(
        pool, [this](uint64_t id) { return server_->PrefetchAffinity(id); });
  }
}

void Workstation::EnablePrefetch(PrefetchOptions options) {
  prefetch_options_ = options;
  prefetch_ =
      std::make_unique<PrefetchQueue>(clock_, server_->links(), options);
  if (pool_ != nullptr) {
    prefetch_->SetTaskPool(
        pool_,
        [this](uint64_t id) { return server_->PrefetchAffinity(id); });
  }
  server_->SetBackoffSleeper(prefetch_->MakeBackoffSleeper());
  presentation_.SetBrowseListener(
      [this](const core::PresentationManager::BrowseEvent& event) {
        OnBrowse(event);
      });
}

StatusOr<object::MultimediaObject> Workstation::Resolve(
    storage::ObjectId id) {
  // The resolver runs inside the presentation manager's ambient
  // "open#<id>" span; CurCtx() bridges it into the fabric.
  if (prefetch_ == nullptr) {
    return server_->Fetch(id, FetchGranularity::kWhole, CurCtx());
  }
  // Prefetching mode: a staged skeleton is a free open; otherwise fetch
  // the skeleton in the foreground and let pages transfer on demand.
  if (std::optional<object::MultimediaObject> staged =
          prefetch_->TakeObject(id)) {
    BuildPlan(id, staged->descriptor());
    return *std::move(staged);
  }
  MINOS_ASSIGN_OR_RETURN(
      object::MultimediaObject obj,
      server_->Fetch(id, FetchGranularity::kSkeleton, CurCtx()));
  BuildPlan(id, obj.descriptor());
  return obj;
}

void Workstation::BuildPlan(storage::ObjectId id,
                            const object::ObjectDescriptor& desc) {
  // A fresh plan restarts delivery accounting, so entries staged for a
  // previous open of this object must not satisfy ranges the new
  // skeleton fetch discounted again.
  if (prefetch_ != nullptr) prefetch_->CancelObject(id);
  ObjectPlan plan;
  plan.audio_mode = desc.driving_mode == object::DrivingMode::kAudio;
  plan.page_text.reserve(desc.pages.size());
  plan.page_images.reserve(desc.pages.size());
  auto part_length = [&](const std::string& name) -> uint64_t {
    StatusOr<uint64_t> len = server_->PartLength(id, name);
    return len.ok() ? *len : 0;
  };
  for (const object::VisualPageSpec& page : desc.pages) {
    plan.page_text.push_back(page.text_page);
    plan.text_pages = std::max(plan.text_pages, page.text_page);
    std::vector<std::pair<std::string, uint64_t>> images;
    for (const object::PlacedImage& placed : page.images) {
      std::string part = "image:" + std::to_string(placed.image_index);
      uint64_t length = part_length(part);
      images.emplace_back(std::move(part), length);
    }
    plan.page_images.push_back(std::move(images));
  }
  if (plan.text_pages > 0) plan.text_len = part_length("text");
  if (plan.audio_mode) plan.voice_len = part_length("voice");
  // Re-resolving (a fresh Open of the same object) restarts delivery:
  // the skeleton fetch deferred the page bytes again.
  plans_[id] = std::move(plan);
}

std::vector<Workstation::PageRange> Workstation::UndeliveredRanges(
    const ObjectPlan& plan, PrefetchKind kind, int page,
    int page_count) const {
  std::vector<PageRange> out;
  auto want = [&](std::string part, uint64_t offset, uint64_t length) {
    if (length == 0) return;
    if (plan.delivered.count(part + ":" + std::to_string(offset)) > 0) {
      return;
    }
    out.push_back(PageRange{std::move(part), offset, length});
  };
  if (kind == PrefetchKind::kAudioPage) {
    // The voice stream apportioned over the audio pages the pager built.
    const auto [offset, length] =
        ApportionStream(plan.voice_len, page, page_count);
    want("voice", offset, length);
    return out;
  }
  const size_t index = static_cast<size_t>(page - 1);
  if (index >= plan.page_text.size()) return out;
  const uint32_t text_page = plan.page_text[index];
  if (text_page > 0 && plan.text_pages > 0) {
    // The text stream apportioned over its formatted pages.
    const auto [offset, length] =
        ApportionStream(plan.text_len, static_cast<int>(text_page),
                        static_cast<int>(plan.text_pages));
    want("text", offset, length);
  }
  for (const auto& [part, length] : plan.page_images[index]) {
    want(part, 0, length);
  }
  return out;
}

Status Workstation::StageAndTransfer(storage::ObjectId id,
                                     const std::vector<PageRange>& ranges,
                                     bool with_retries,
                                     const obs::TraceContext& ctx) {
  std::optional<obs::TraceSpan> span =
      obs::MaybeStartSpan(tracer_, "ws.transfer", ctx);
  const obs::TraceContext sctx = obs::ContextOf(span);
  uint64_t bytes = 0;
  for (const PageRange& range : ranges) {
    MINOS_RETURN_IF_ERROR(server_->StagePartRange(
        id, range.part, range.offset, range.length, sctx));
    bytes += range.length;
  }
  // The link the object travels is a routing decision (a sharded store
  // may fail over between attempts), so it is re-asked per transfer.
  Link* link = server_->RouteLink(id);
  if (bytes == 0 || link == nullptr) return Status::OK();
  if (span.has_value()) {
    span->AddTag("bytes", static_cast<int64_t>(bytes));
    if (link->in_background()) span->AddTag("lane", "background");
  }
  if (!with_retries) return link->Transfer(bytes, sctx).status();
  return RetryWithBackoff<Micros>(
             server_->retry_policy(), clock_, &page_rng_,
             prefetch_ != nullptr ? prefetch_->MakeBackoffSleeper()
                                  : BackoffSleeper(),
             [&]() -> StatusOr<Micros> {
               Link* routed = server_->RouteLink(id);
               if (routed == nullptr) {
                 return Status::Unavailable("no live route for transfer");
               }
               return routed->Transfer(bytes, sctx);
             },
             RetryTrace{tracer_, sctx})
      .status();
}

void Workstation::MarkDelivered(ObjectPlan& plan,
                                const std::vector<PageRange>& ranges) {
  for (const PageRange& range : ranges) {
    plan.delivered.insert(range.part + ":" + std::to_string(range.offset));
  }
}

void Workstation::OnBrowse(
    const core::PresentationManager::BrowseEvent& event) {
  if (prefetch_ == nullptr) return;
  auto plan_it = plans_.find(event.object_id);
  if (plan_it == plans_.end()) return;  // Opened before prefetch enabled.
  // Each page turn roots its own trace: the delivery stall, the
  // speculative staging it schedules, and any retries all attribute to
  // this one user action.
  std::optional<obs::TraceSpan> span;
  if (tracer_ != nullptr) span = tracer_->StartSpan("ws.page_turn");
  if (span.has_value()) {
    span->AddTag("object", static_cast<int64_t>(event.object_id));
    span->AddTag("page", static_cast<int64_t>(event.page));
  }
  ObjectPlan& plan = plan_it->second;
  const PrefetchKind kind = event.mode == object::DrivingMode::kAudio
                                ? PrefetchKind::kAudioPage
                                : PrefetchKind::kVisualPage;
  const uint64_t id = event.object_id;
  if (event.jump) {
    // Random seek: entries around the old cursor are stale.
    prefetch_->OnJump(kind, id, event.page);
  }

  // Deliver the page under the cursor: claim the staged transfer, or do
  // it in the foreground (this runs inside the browser's page-turn
  // measurement, so the stall is charged to this turn).
  std::vector<PageRange> ranges =
      UndeliveredRanges(plan, kind, event.page, event.page_count);
  if (!ranges.empty()) {
    PrefetchKey key{kind, id, event.page};
    bool have = prefetch_->TakePage(key);
    if (span.has_value()) span->AddTag("prefetch", have ? "hit" : "miss");
    if (!have) {
      Status fetched = StageAndTransfer(id, ranges, /*with_retries=*/true,
                                        obs::ContextOf(span));
      have = fetched.ok();
      if (!have) {
        if (span.has_value()) span->AddTag("degraded", "skeleton");
        presentation_.NoteDegraded(
            id, "page:" + std::to_string(event.page),
            "page content not delivered (" + fetched.message() +
                "); presenting skeleton");
      }
    }
    if (have) MarkDelivered(plan, ranges);
  }

  // Speculate around the new cursor: next pages first, then previous.
  for (int step = 1; step <= prefetch_options_.pages_ahead; ++step) {
    ScheduleWantPage(kind, id, event.page + step, event.page_count, step,
                     obs::ContextOf(span));
  }
  for (int step = 1; step <= prefetch_options_.pages_behind; ++step) {
    ScheduleWantPage(kind, id, event.page - step, event.page_count, step,
                     obs::ContextOf(span));
  }
  prefetch_->Pump();
}

void Workstation::ScheduleWantPage(PrefetchKind kind, storage::ObjectId id,
                                   int page, int page_count, int distance,
                                   const obs::TraceContext& ctx) {
  if (page < 1 || page > page_count) return;
  PrefetchKey key{kind, id, page};
  prefetch_->WantPage(key, distance,
                      [this, kind, id, page, page_count, ctx] {
    // Resolved at issue time: ranges another page already delivered
    // (e.g. a shared image) are skipped, not re-transferred. The
    // captured context keeps the eventual background transfer
    // attributed to the page turn that scheduled the speculation,
    // however much later the pipeline issues it.
    auto plan_it = plans_.find(id);
    if (plan_it == plans_.end()) {
      return Status::FailedPrecondition("object closed before prefetch");
    }
    return StageAndTransfer(
        id, UndeliveredRanges(plan_it->second, kind, page, page_count),
        /*with_retries=*/false, ctx);
  });
}

StatusOr<MiniatureBrowser> Workstation::Query(
    const std::vector<std::string>& words) {
  std::optional<obs::TraceSpan> span;
  if (tracer_ != nullptr) span = tracer_->StartSpan("ws.query");
  if (prefetch_ == nullptr) {
    // The store owns the gather: a single server builds cards serially,
    // a sharded one scatters the work and overlaps the shards.
    const std::vector<storage::ObjectId> matches = server_->QueryAll(words);
    MINOS_ASSIGN_OR_RETURN(
        std::vector<MiniatureCard> cards,
        server_->GatherCards(words, 96, obs::ContextOf(span)));
    std::set<storage::ObjectId> built;
    for (const MiniatureCard& card : cards) {
      thumb_cache_[card.id] = card.thumb;
      built.insert(card.id);
    }
    // The store drops unbuildable cards rather than failing the strip;
    // surface each gap so the session knows the answer is partial.
    for (storage::ObjectId id : matches) {
      if (built.count(id) == 0) {
        presentation_.NoteDegraded(id, "miniature",
                                   "card not delivered; dropped from strip");
      }
    }
    return MiniatureBrowser(std::move(cards));
  }
  const std::vector<storage::ObjectId> ids = server_->QueryAll(words);
  // A new query builds a new strip: cards staged for the old strip are
  // keyed by position only and would otherwise be delivered as the
  // cards of whatever objects now occupy those positions.
  prefetch_->Cancel(PrefetchKind::kMiniature);
  // Lazy strip: cards materialize under the cursor (claiming staged ones
  // first), and the cursor steers the pipeline at the flanks.
  MiniatureBrowser browser(
      ids, [this](storage::ObjectId id, int position) {
        if (std::optional<MiniatureCard> staged =
                prefetch_->TakeMiniature(position, id)) {
          thumb_cache_[id] = staged->thumb;
          return StatusOr<MiniatureCard>(*std::move(staged));
        }
        StatusOr<MiniatureCard> card =
            server_->FetchMiniature(id, 96, CurCtx());
        if (card.ok()) thumb_cache_[id] = card->thumb;
        return card;
      });
  browser.SetCursorListener([this, ids](int position, int count, bool jump) {
    (void)count;
    OnMiniatureCursor(ids, position, jump);
  });
  OnMiniatureCursor(ids, 0, /*jump=*/false);
  return browser;
}

StatusOr<MiniatureBrowser> Workstation::QueryRanked(
    const std::vector<std::string>& words, size_t k) {
  std::optional<obs::TraceSpan> span;
  if (tracer_ != nullptr) span = tracer_->StartSpan("ws.query_ranked");
  if (span.has_value()) span->AddTag("k", static_cast<int64_t>(k));
  const query::QueryMode mode = query::QueryMode::kConjunctive;
  const std::string key = query::QueryResultCache::Key(words, k, mode);
  std::vector<query::ScoredHit> hits;
  if (std::optional<std::vector<query::ScoredHit>> cached =
          ranked_cache_.Lookup(key, server_->catalog_version())) {
    if (span.has_value()) span->AddTag("cache", "hit");
    hits = *std::move(cached);
  } else {
    if (span.has_value()) span->AddTag("cache", "miss");
    hits = server_->QueryRanked(words, k, mode, obs::ContextOf(span));
    ranked_cache_.Insert(key, server_->catalog_version(), hits);
  }

  if (prefetch_ == nullptr) {
    // Eager: cards best-first, each carrying its score. An unfetchable
    // hit leaves the strip (noted degraded) rather than failing it.
    std::vector<MiniatureCard> cards;
    cards.reserve(hits.size());
    for (const query::ScoredHit& hit : hits) {
      StatusOr<MiniatureCard> card =
          server_->FetchMiniature(hit.id, 96, obs::ContextOf(span));
      if (!card.ok()) {
        presentation_.NoteDegraded(hit.id, "miniature",
                                   "ranked card not delivered (" +
                                       card.status().message() +
                                       "); dropped from strip");
        continue;
      }
      card->score = hit.score;
      thumb_cache_[hit.id] = card->thumb;
      cards.push_back(*std::move(card));
    }
    return MiniatureBrowser(std::move(cards));
  }

  // Prefetching: lazy strip over the ranked ids, best first. Cards claim
  // staged fetches like the unranked path and pick their score up here.
  std::vector<storage::ObjectId> ids;
  std::map<storage::ObjectId, double> scores;
  ids.reserve(hits.size());
  for (const query::ScoredHit& hit : hits) {
    ids.push_back(hit.id);
    scores.emplace(hit.id, hit.score);
  }
  prefetch_->Cancel(PrefetchKind::kMiniature);
  MiniatureBrowser browser(
      ids, [this, scores](storage::ObjectId id, int position) {
        auto scored = scores.find(id);
        const double score = scored != scores.end() ? scored->second : 0;
        if (std::optional<MiniatureCard> staged =
                prefetch_->TakeMiniature(position, id)) {
          staged->score = score;
          thumb_cache_[id] = staged->thumb;
          return StatusOr<MiniatureCard>(*std::move(staged));
        }
        StatusOr<MiniatureCard> card =
            server_->FetchMiniature(id, 96, CurCtx());
        if (card.ok()) {
          card->score = score;
          thumb_cache_[id] = card->thumb;
        }
        return card;
      });
  browser.SetCursorListener([this, ids](int position, int count, bool jump) {
    (void)count;
    OnMiniatureCursor(ids, position, jump);
  });
  OnMiniatureCursor(ids, 0, /*jump=*/false);
  return browser;
}

void Workstation::OnMiniatureCursor(
    const std::vector<storage::ObjectId>& ids, int position, bool jump) {
  if (prefetch_ == nullptr || ids.empty()) return;
  if (jump) prefetch_->OnJump(PrefetchKind::kMiniature, 0, position);
  const int count = static_cast<int>(ids.size());
  for (int step = 1; step <= prefetch_options_.miniature_radius; ++step) {
    for (int sign : {+1, -1}) {
      const int neighbour = position + sign * step;
      if (neighbour < 0 || neighbour >= count) continue;
      const storage::ObjectId id = ids[static_cast<size_t>(neighbour)];
      prefetch_->WantMiniature(
          neighbour, step, [this, id] { return server_->FetchMiniature(id); },
          /*affinity_object=*/id);
    }
  }
  // The object under the cursor is the one about to be opened.
  const storage::ObjectId under = ids[static_cast<size_t>(position)];
  prefetch_->WantObject(under, 0, [this, under] {
    return server_->Fetch(under, FetchGranularity::kSkeleton);
  });
  prefetch_->Pump();
}

Status Workstation::Present(storage::ObjectId id) {
  // The manager's ambient "open#<id>" span nests under this root, and
  // the resolver's fabric spans hang off it through CurCtx().
  std::optional<obs::TraceSpan> span;
  if (tracer_ != nullptr) span = tracer_->StartSpan("ws.present");
  return presentation_.Open(id);
}

StatusOr<image::Bitmap> Workstation::FetchImageRegion(storage::ObjectId id,
                                                      uint32_t image_index,
                                                      const image::Rect& r) {
  std::optional<obs::TraceSpan> span;
  if (tracer_ != nullptr) span = tracer_->StartSpan("ws.region");
  StatusOr<image::Bitmap> region =
      server_->FetchImageRegion(id, image_index, r, obs::ContextOf(span));
  if (region.ok()) return region;
  auto cached = thumb_cache_.find(id);
  if (cached == thumb_cache_.end()) return region;
  if (span.has_value()) span->AddTag("degraded", "thumbnail");
  presentation_.NoteDegraded(id, "image:" + std::to_string(image_index),
                             "region fetch failed (" +
                                 region.status().message() +
                                 "); showing cached miniature");
  return cached->second;
}

}  // namespace minos::server
