#include "minos/server/workstation.h"

namespace minos::server {

StatusOr<const MiniatureCard*> MiniatureBrowser::Current() const {
  if (cards_.empty()) return Status::NotFound("no qualifying objects");
  return &cards_[cursor_];
}

void MiniatureBrowser::PlayPreviewIfAudio() {
  if (player_ == nullptr || cursor_ >= cards_.size()) return;
  const MiniatureCard& card = cards_[cursor_];
  if (!card.audio_mode || card.preview_transcript.empty()) return;
  player_->Play(card.preview_transcript, log_,
                core::EventKind::kVoicePlayed,
                static_cast<int64_t>(card.id));
}

Status MiniatureBrowser::Next() {
  if (cursor_ + 1 >= cards_.size()) {
    return Status::OutOfRange("already at the last miniature");
  }
  ++cursor_;
  PlayPreviewIfAudio();
  return Status::OK();
}

Status MiniatureBrowser::Previous() {
  if (cursor_ == 0) {
    return Status::OutOfRange("already at the first miniature");
  }
  --cursor_;
  PlayPreviewIfAudio();
  return Status::OK();
}

StatusOr<storage::ObjectId> MiniatureBrowser::Select() const {
  MINOS_ASSIGN_OR_RETURN(const MiniatureCard* card, Current());
  return card->id;
}

Workstation::Workstation(ObjectServer* server, render::Screen* screen,
                         SimClock* clock)
    : server_(server), presentation_(screen, clock) {
  presentation_.SetResolver(
      [this](storage::ObjectId id) { return server_->Fetch(id); });
}

StatusOr<MiniatureBrowser> Workstation::Query(
    const std::vector<std::string>& words) {
  const std::vector<storage::ObjectId> ids = server_->QueryAll(words);
  std::vector<MiniatureCard> cards;
  cards.reserve(ids.size());
  for (storage::ObjectId id : ids) {
    MINOS_ASSIGN_OR_RETURN(MiniatureCard card, server_->FetchMiniature(id));
    thumb_cache_[id] = card.thumb;
    cards.push_back(std::move(card));
  }
  return MiniatureBrowser(std::move(cards));
}

Status Workstation::Present(storage::ObjectId id) {
  return presentation_.Open(id);
}

StatusOr<image::Bitmap> Workstation::FetchImageRegion(storage::ObjectId id,
                                                      uint32_t image_index,
                                                      const image::Rect& r) {
  StatusOr<image::Bitmap> region =
      server_->FetchImageRegion(id, image_index, r);
  if (region.ok()) return region;
  auto cached = thumb_cache_.find(id);
  if (cached == thumb_cache_.end()) return region;
  presentation_.NoteDegraded(id, "image:" + std::to_string(image_index),
                             "region fetch failed (" +
                                 region.status().message() +
                                 "); showing cached miniature");
  return cached->second;
}

}  // namespace minos::server
