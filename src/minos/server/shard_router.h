#ifndef MINOS_SERVER_SHARD_ROUTER_H_
#define MINOS_SERVER_SHARD_ROUTER_H_

#include <cstdint>
#include <functional>
#include <set>
#include <vector>

#include "minos/obs/metrics.h"
#include "minos/server/object_server.h"
#include "minos/server/object_store.h"
#include "minos/server/repair.h"
#include "minos/util/clock.h"
#include "minos/util/statusor.h"

namespace minos::server {

/// Maps an ObjectId to its primary shard among `shard_count` shards.
/// Must be pure: the router calls it on every route and assumes the
/// answer never changes for a given (id, count) pair.
using ShardPlacement =
    std::function<size_t(storage::ObjectId id, size_t shard_count)>;

/// Default placement: Fibonacci multiplicative hash of the id. Spreads
/// consecutive ids across shards with no coordination.
ShardPlacement HashPlacement();

/// Contiguous-range placement: ids [0, ids_per_shard) on shard 0,
/// [ids_per_shard, 2*ids_per_shard) on shard 1, ... (overflow clamps to
/// the last shard). The pluggable alternative for workloads whose ids
/// carry locality (e.g. a filing system numbering folders densely).
ShardPlacement RangePlacement(uint64_t ids_per_shard);

struct ShardRouterOptions {
  /// Copies of every object, including the primary (clamped to the shard
  /// count). With replication 2 each object is stored on its primary
  /// shard and the next shard in ring order, so single-shard loss never
  /// loses descriptors.
  int replication = 2;
  /// Statistics registry (the process default when null).
  obs::MetricsRegistry* registry = nullptr;
};

/// Scatter/gather router over N ObjectServer shards — the sharded-archive
/// topology. Placement hashes each ObjectId to a primary shard; Store
/// replicates onto the next `replication - 1` shards in ring order.
///
/// ## Routing table and failover
///
/// Each shard's health is read off its Link's CircuitBreaker: an open
/// breaker is shard loss, a closed (or half-open, or open-but-cooled-down)
/// breaker is a routable shard. The table refreshes lazily before every
/// routing decision, so a breaker tripped by foreground traffic takes the
/// shard out of scatter sets immediately, and a cooled-down breaker gets
/// routed one probe (its Admit() half-open slot) to earn its way back.
/// Reads walk the replica ring: primary first, then successors, skipping
/// dead shards and failing over past retryable errors. When every replica
/// of an object is unreachable the read fails Unavailable and the
/// presentation layer degrades (thumbnail fallback, NoteDegraded) exactly
/// as for corrupt parts.
///
/// ## Scatter/gather time model
///
/// Shards answer queries in parallel in the modeled system, but all work
/// runs on one SimClock. GatherCards therefore runs each live shard's
/// share inline, measures its cost, rewinds, and finally advances the
/// clock by the slowest shard's cost — the gather barrier. QueryAll
/// merges the per-shard id lists into one ascending, deduplicated result
/// (replicas report the same id).
///
/// Statistics live under "router.*": scatter_queries, failovers_total,
/// shards_lost_total, shards_healed_total, rebalances_total,
/// dropped_results_total, replica_store_errors_total and
/// degraded_stores_total counters; live_shards, under_replicated and
/// routing_epoch gauges; gather_us histogram. Ranked scatters add
/// "query.ranked_scatters" and the per-shard "query.merge_depth"
/// histogram. Each shard additionally keeps RED metrics —
/// "router.shard<k>.requests_total", ".errors_total" and the
/// ".duration_us" histogram — fed by every routed read and scatter
/// share, so per-shard rate / errors / duration read straight off the
/// registry.
class ShardRouter : public ObjectStore {
 public:
  /// All shard pointers borrowed, non-null, non-empty. Shards should be
  /// constructed with distinct Links (a shared Link would share one
  /// breaker, collapsing per-shard health into one signal).
  ShardRouter(std::vector<ObjectServer*> shards, SimClock* clock,
              ShardPlacement placement = HashPlacement(),
              ShardRouterOptions options = {});

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// ObjectStore ----------------------------------------------------------

  /// Stores onto every live shard of the id's replica chain. Succeeds
  /// when at least one copy lands (under-replication is not fatal);
  /// returns the first successful copy's address. A store that lands
  /// fewer copies than the replication target is *surfaced*, not
  /// silent: the id enters the under-replicated set (the
  /// "router.under_replicated" gauge), "router.degraded_stores_total"
  /// counts the event, and the degraded-store listener fires — so
  /// anti-entropy repair (and tests) can see the redundancy debt.
  StatusOr<storage::ArchiveAddress> Store(
      const object::MultimediaObject& obj) override;

  /// Appends content onto every live replica of `id` (see
  /// ObjectServer::Append). Succeeds when at least one replica takes
  /// the append, returning its new version; replicas that miss it lag
  /// a version and enter the under-replicated set for anti-entropy to
  /// catch up. The catalog-wide statistics index absorbs the append as
  /// a *delta* — the df/length changes of the new words, applied once
  /// per logical object ("router.stats_delta_applies_total") — never a
  /// full re-add ("router.stats_full_adds_total" stays flat), and
  /// catalog_version() bumps so ranked-result caches invalidate.
  StatusOr<uint32_t> Append(storage::ObjectId id,
                            const ObjectServer::AppendParts& parts);

  /// Scatters to every live shard, gathers, merges ascending, dedups.
  std::vector<storage::ObjectId> QueryAll(
      const std::vector<std::string>& words) const override;

  /// Ranked scatter/gather: every live shard evaluates the top-k over
  /// its own postings against the router's catalog-wide statistics (so
  /// replicas score identically), the clock advances by the slowest
  /// shard, and the per-shard lists k-way merge by score — replica
  /// duplicates keep the max-score copy, ties break by ascending id.
  /// Identical to a single server's QueryRanked when all shards live.
  std::vector<query::ScoredHit> QueryRanked(
      const std::vector<std::string>& words, size_t k,
      query::QueryMode mode = query::QueryMode::kConjunctive,
      const obs::TraceContext& ctx = {}) const override;

  uint64_t catalog_version() const override { return catalog_version_; }

  /// The catalog-wide stats-only index every shard scores against
  /// (exposed read-only so tests can assert delta-sync exactness).
  const query::ScoredIndex& corpus_stats() const { return corpus_stats_; }

  StatusOr<MiniatureCard> FetchMiniature(
      storage::ObjectId id, int thumb_width = 96,
      const obs::TraceContext& ctx = {}) override;

  /// Scatter/gather card fetch: each live shard builds the cards of the
  /// matches it is the first live replica for, the clock advances by the
  /// slowest shard. Cards whose every replica is unreachable are dropped
  /// from the strip (counted dropped_results_total) — a degraded but
  /// non-empty answer beats no answer.
  StatusOr<std::vector<MiniatureCard>> GatherCards(
      const std::vector<std::string>& words, int thumb_width = 96,
      const obs::TraceContext& ctx = {}) override;

  /// Ranked scatter/gather card fetch: QueryRanked picks the top-k,
  /// each live shard builds the cards of the hits it is the first live
  /// replica for (clock advances by the slowest shard), and the strip
  /// comes back in relevance order with scores attached. Hits whose
  /// every replica is unreachable are dropped (dropped_results_total).
  StatusOr<std::vector<MiniatureCard>> GatherCardsRanked(
      const std::vector<std::string>& words, size_t k,
      int thumb_width = 96, const obs::TraceContext& ctx = {}) override;

  StatusOr<object::MultimediaObject> Fetch(
      storage::ObjectId id,
      FetchGranularity granularity = FetchGranularity::kWhole,
      const obs::TraceContext& ctx = {}) override;

  StatusOr<image::Bitmap> FetchImageRegion(
      storage::ObjectId id, uint32_t image_index, const image::Rect& r,
      const obs::TraceContext& ctx = {}) override;

  Status StagePartRange(storage::ObjectId id, std::string_view part_name,
                        uint64_t offset, uint64_t length,
                        const obs::TraceContext& ctx = {}) override;

  StatusOr<uint64_t> PartLength(storage::ObjectId id,
                                std::string_view part_name) const override;

  const RetryPolicy& retry_policy() const override;

  /// Forwards to every shard: a retry on any shard's fetch path spends
  /// its backoff in the same sleeper.
  void SetBackoffSleeper(BackoffSleeper sleeper) override;

  /// Attaches the request tracer to the router and every shard (and,
  /// through each shard, its link), so one tracer sees the whole fabric.
  void SetTracer(obs::Tracer* tracer) override;

  /// Attaches a task pool (borrowed; null restores serial scatters).
  /// QueryRanked / QueryAll / ScatterCards then issue one task per live
  /// shard instead of sequential measure-and-rewind passes: each share
  /// runs in its own virtual-time frame and the gather barrier advances
  /// the clock by the slowest share — the identical time model, now on
  /// real cores. The pool is forwarded to every shard (partitioned
  /// scoring) and, while a router task runs, the routing table is
  /// pinned: liveness refreshes and failover demotions are deferred to
  /// the submitting thread, so every share of one scatter routes
  /// against one table.
  void SetTaskPool(runtime::TaskPool* pool) override;

  /// Prefetch staging affinity: 1 + the first live replica shard of
  /// `id`, or 0 when no live replica serves it (the prefetcher then
  /// serializes conservatively). Shares of distinct shards may stage
  /// concurrently; entries behind one shard contend for one arm and
  /// must not.
  uint64_t PrefetchAffinity(storage::ObjectId id) const override;

  /// The first live replica's link; null when the whole chain is down.
  Link* RouteLink(storage::ObjectId id) const override;

  /// Every shard's link, in shard order (null links omitted).
  std::vector<Link*> links() const override;

  /// Self-healing ----------------------------------------------------------

  /// Degraded-store event: a Store landed only `live_copies` of its
  /// replication target. Fired from Store, after the id entered the
  /// under-replicated set.
  using DegradedStoreListener =
      std::function<void(storage::ObjectId id, int live_copies)>;
  void SetDegradedStoreListener(DegradedStoreListener listener) {
    degraded_store_listener_ = std::move(listener);
  }

  /// Heal event: a shard's breaker heal (cooldown elapsed — the
  /// half-open readmission) put it back in the routing table. Fired
  /// from the lazy liveness refresh, so the listener MUST only flag
  /// work (the RepairManager marks a sync pending), never repair
  /// inline with the read that triggered the refresh.
  void SetHealListener(std::function<void(size_t shard)> listener) {
    heal_listener_ = std::move(listener);
  }

  /// Objects the router knows hold fewer than `replication` live
  /// up-to-date copies, mirrored by the "router.under_replicated"
  /// gauge. Stores add ids; each anti-entropy round replaces the set
  /// with what the digest exchange actually proved.
  const std::set<storage::ObjectId>& under_replicated() const {
    return under_replicated_;
  }

  /// Monotonic routing-table epoch: bumps whenever liveness crosses an
  /// edge or a shard-count change commits. Equal epochs observed at two
  /// points mean every routing decision between them used one table.
  uint64_t routing_epoch() const { return routing_epoch_; }

  /// Stages `shard` for a shard-count change. The placement modulus —
  /// and with it every replica chain, scatter set and routing decision
  /// — is unchanged until CommitExpansion(): the staged shard takes no
  /// traffic while the RepairManager streams its placement range over.
  /// Idempotent for an already-staged pointer. Returns the shard index.
  size_t AddShard(ObjectServer* shard);

  /// True while staged shards await CommitExpansion().
  bool expansion_staged() const { return active_count_ < shards_.size(); }

  /// Atomically flips the routing table to the expanded shard set: the
  /// placement modulus becomes the full shard count in one step (no
  /// reads ever see a half-migrated table) and the epoch bumps.
  /// Normally called through RepairManager::ExpandShards, which streams
  /// the data over first and fails closed on any gap.
  void CommitExpansion();

  /// Introspection --------------------------------------------------------

  /// Shards attached, including any staged for expansion.
  size_t shard_count() const { return shards_.size(); }

  /// Shards routing decisions currently consider (the placement
  /// modulus; excludes staged shards).
  size_t active_count() const { return active_count_; }

  /// Primary shard of an id under the current placement.
  size_t PrimaryOf(storage::ObjectId id) const {
    return placement_(id, active_count_);
  }

  /// Refreshes the routing table and reports shard liveness.
  bool IsLive(size_t shard) const;

  /// Live-shard count after a refresh (active shards only).
  size_t live_count() const;

 private:
  friend class RepairManager;
  /// Shared scatter engine of both gathers: partitions `matches` by
  /// first live replica, builds each shard's share inline (clock
  /// rewound, gather barrier = slowest shard), serially fails over ids
  /// whose shard died mid-gather, and drops unreachable ids
  /// (dropped_results_total). Returns cards in arbitrary order.
  std::vector<MiniatureCard> ScatterCards(
      const std::vector<storage::ObjectId>& matches, int thumb_width,
      const obs::TraceContext& ctx = {});

  /// Replica ring of an id: primary, then successors mod shard count,
  /// `replication` entries total (clamped to the shard count). The
  /// `Under` variant evaluates the ring as it would look with
  /// `shard_count` shards — the RepairManager uses it to plan a staged
  /// expansion's placement before the table flips.
  std::vector<size_t> ReplicaChain(storage::ObjectId id) const;
  std::vector<size_t> ReplicaChainUnder(storage::ObjectId id,
                                        size_t shard_count) const;

  /// Store-time under-replication bookkeeping + event fan-out.
  void NoteUnderReplicated(storage::ObjectId id, int live_copies);

  /// Installs the set anti-entropy proved (RepairManager, post-sync).
  void ReplaceUnderReplicated(std::set<storage::ObjectId> remaining);

  /// Re-derives liveness from breaker state; counts losses, heals and
  /// rebalances as edges are crossed.
  void RefreshLiveness() const;

  /// Walks the id's replica chain calling `op(shard)` on each live
  /// shard until one answers; retryable failures mark the shard lost
  /// and fail over to the next replica. Unavailable when the chain is
  /// exhausted; non-retryable errors (NotFound, Corruption the server
  /// could not salvage, ...) return as-is — another replica would only
  /// repeat them.
  /// `op` receives the per-attempt trace context (the "router.attempt"
  /// span when tracing is live), so the shard's own spans nest under the
  /// attempt that invoked them. Every attempt feeds the attempted
  /// shard's RED metrics.
  template <typename T>
  StatusOr<T> RouteRead(
      storage::ObjectId id,
      const std::function<StatusOr<T>(ObjectServer*,
                                      const obs::TraceContext&)>& op,
      const obs::TraceContext& ctx = {}) const;

  std::vector<ObjectServer*> shards_;
  SimClock* clock_;
  ShardPlacement placement_;
  ShardRouterOptions options_;
  obs::MetricsRegistry* reg_;  // Resolved in the ctor; never null.
  /// Placement modulus: shards_[active_count_..) are staged, invisible
  /// to routing until CommitExpansion().
  size_t active_count_;
  /// Bumped on liveness edges and expansion commits (mutable: the lazy
  /// liveness refresh crosses edges during reads).
  mutable uint64_t routing_epoch_ = 1;
  std::set<storage::ObjectId> under_replicated_;
  DegradedStoreListener degraded_store_listener_;
  std::function<void(size_t shard)> heal_listener_;
  /// Catalog-wide BM25 statistics (each object counted once, not per
  /// replica), handed to every shard so scatter scores agree globally.
  query::ScoredIndex corpus_stats_{/*stats_only=*/true};
  uint64_t catalog_version_ = 0;
  /// Routing table, re-derived lazily from breaker state (mutable: reads
  /// refresh it).
  mutable std::vector<bool> live_;

  obs::Tracer* tracer_ = nullptr;  // Borrowed; may be null.
  runtime::TaskPool* pool_ = nullptr;  // Borrowed; null scatters serially.

  /// Per-shard RED metrics (rate / errors / duration), registry-owned.
  struct ShardRed {
    obs::Counter* requests;
    obs::Counter* errors;
    obs::Histogram* duration_us;
  };
  std::vector<ShardRed> red_;

  obs::Counter* scatter_queries_;   // Owned by the registry.
  obs::Counter* ranked_scatters_;
  obs::Histogram* merge_depth_;     // Hits merged per live shard.
  obs::Counter* failovers_;
  obs::Counter* shards_lost_;
  obs::Counter* shards_healed_;
  obs::Counter* rebalances_;
  obs::Counter* dropped_results_;
  obs::Counter* replica_store_errors_;
  obs::Counter* degraded_stores_;
  obs::Counter* stats_full_adds_;      // corpus_stats_ full re-adds (Store).
  obs::Counter* stats_delta_applies_;  // corpus_stats_ delta syncs (Append).
  obs::Gauge* live_shards_;
  obs::Gauge* under_replicated_g_;
  obs::Gauge* epoch_g_;
  obs::Histogram* gather_us_;
};

}  // namespace minos::server

#endif  // MINOS_SERVER_SHARD_ROUTER_H_
