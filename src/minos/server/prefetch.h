#ifndef MINOS_SERVER_PREFETCH_H_
#define MINOS_SERVER_PREFETCH_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "minos/obs/metrics.h"
#include "minos/object/multimedia_object.h"
#include "minos/runtime/task_pool.h"
#include "minos/server/fault.h"
#include "minos/server/link.h"
#include "minos/server/object_store.h"
#include "minos/util/clock.h"
#include "minos/util/statusor.h"

namespace minos::server {

/// What one speculative fetch targets.
enum class PrefetchKind : uint8_t {
  kMiniature = 0,   ///< A browsing card adjacent to the miniature cursor.
  kObject = 1,      ///< A whole object (skeleton) about to be opened.
  kVisualPage = 2,  ///< Deferred bytes of one visual page.
  kAudioPage = 3,   ///< Voice samples of one upcoming audio segment.
};

/// Identity of one prefetchable unit: pages and audio segments index
/// within their object; miniatures index by cursor position in the
/// result strip (object_id 0 — the strip, not any one object, is the
/// cursor's home); whole objects use index 0. `owner` names the session
/// (or other budget domain) speculating — 0 for single-session callers —
/// so two sessions staging the same page hold distinct entries and
/// per-owner budgets/cancellation have an identity to act on.
struct PrefetchKey {
  PrefetchKind kind = PrefetchKind::kVisualPage;
  uint64_t object_id = 0;
  int index = 0;
  uint64_t owner = 0;

  friend auto operator<=>(const PrefetchKey&, const PrefetchKey&) = default;
};

/// Tuning knobs for the pipeline. The defaults model a page-turn reader:
/// a couple of pages ahead, one behind (back-turns are common), and the
/// miniatures flanking the cursor.
struct PrefetchOptions {
  int pages_ahead = 2;
  int pages_behind = 1;
  int miniature_radius = 2;
  /// Background transfers issued per Pump call; bounds how much
  /// speculative work one idle window can start.
  int max_inflight_per_pump = 2;
  /// Completed-but-unconsumed entries kept before eviction starts
  /// (evictions count as wasted prefetch). The victim is the stalest
  /// ready entry of the owner holding the most ready bytes, so one
  /// greedy session sheds its own pages before touching anyone else's;
  /// with a single owner (all keys owner 0) this is exactly
  /// evict-global-stalest.
  size_t ready_capacity = 32;
  /// Longest residual background time a page or miniature consumer will
  /// wait on a partial hit. Beyond it the entry is dropped (wasted) and
  /// the caller does the cheap foreground transfer instead — speculation
  /// must never block the foreground behind a backed-up channel. Whole
  /// objects are exempt: their foreground refetch costs at least the
  /// residual, so waiting is always the better deal.
  Micros max_page_wait_us = 30'000;
  /// Statistics registry (the process default when null).
  obs::MetricsRegistry* registry = nullptr;
};

/// The asynchronous prefetch pipeline (tentpole of the continuous-browsing
/// story): the browsing cursor announces where it is, the queue
/// speculatively runs the transfers the user is about to need, and the
/// foreground path consumes them as cache hits. §6 of the paper overlaps
/// "the time that it takes for a user to browse through a page" with
/// fetching the next one; this class is that overlap, made measurable.
///
/// ## Time model
///
/// Everything runs on one SimClock, so a background transfer would
/// normally stall the foreground. Instead the queue runs each speculative
/// work item inline, measures its cost, rewinds the clock to the start,
/// and books the cost on a serialized background channel: entry i is
/// ready at `max(issue_time, channel_free_time) + cost`. A consumer that
/// arrives after `ready_at` gets a free hit; one that arrives early waits
/// only the residual (a partial hit). The foreground clock only ever
/// advances by time the user would genuinely have waited.
///
/// ## Fault posture
///
/// Work runs under Link::BackgroundScope, so speculative failures never
/// trip the circuit breaker for the foreground path; an open breaker
/// still fast-fails prefetches (no point prefetching over a dead link).
/// Failed entries are dropped — the foreground retry machinery, not the
/// prefetcher, owns recovery.
///
/// Statistics live under "prefetch.*": enqueued, issued, hits,
/// partial_hits, misses, wasted, cancelled, errors counters; wait_us and
/// issue_cost_us histograms; queue_depth gauge.
class PrefetchQueue {
 public:
  using PageWork = std::function<Status()>;
  using ObjectWork = std::function<StatusOr<object::MultimediaObject>()>;
  using CardWork = std::function<StatusOr<MiniatureCard>()>;

  /// `clock` borrowed, required. `link` borrowed, may be null (work then
  /// runs without a background scope).
  PrefetchQueue(SimClock* clock, Link* link, PrefetchOptions options = {});

  /// Multi-link form for sharded stores: speculative work enters a
  /// background scope on every link it might travel, so a prefetch that
  /// fails over between shards never trips a foreground breaker.
  PrefetchQueue(SimClock* clock, std::vector<Link*> links,
                PrefetchOptions options = {});

  /// Unconsumed ready entries die wasted.
  ~PrefetchQueue();

  PrefetchQueue(const PrefetchQueue&) = delete;
  PrefetchQueue& operator=(const PrefetchQueue&) = delete;

  /// Enqueue -------------------------------------------------------------

  /// Requests a page-granular staging transfer. `distance` is how many
  /// cursor steps away the target is (nearer issues first). Duplicate
  /// keys (already queued or ready) are ignored. `bytes` is the
  /// estimated payload size charged against key.owner's outstanding
  /// budget (0 = untracked).
  void WantPage(const PrefetchKey& key, int distance, PageWork work,
                uint64_t bytes = 0);

  /// Requests a whole-object fetch (e.g. the object under the miniature
  /// cursor, about to be opened).
  void WantObject(uint64_t object_id, int distance, ObjectWork work);

  /// Requests the miniature card at strip position `position`.
  /// `affinity_object` optionally names the object the card belongs to,
  /// so a pooled pump can group the work by the shard that will serve
  /// it (the key's object_id is always 0 — the strip owns the cursor).
  void WantMiniature(int position, int distance, CardWork work,
                     uint64_t affinity_object = 0);

  /// Consume -------------------------------------------------------------

  /// Claims a prefetched page. True on a hit (the staging transfer
  /// already ran; an early consumer waits only the residual background
  /// time, up to max_page_wait_us). False on a miss — the caller must do
  /// the foreground transfer. A queued-but-unissued entry is dropped and
  /// counts as a miss (the foreground fetch supersedes it); a ready entry
  /// whose residual exceeds the wait cap is dropped as wasted.
  bool TakePage(const PrefetchKey& key);

  /// Claims a prefetched object / miniature card; nullopt on miss.
  std::optional<object::MultimediaObject> TakeObject(uint64_t object_id);

  /// Claims the card staged at strip position `position`, but only if it
  /// is the card of `expected_id`: positions are relative to one query's
  /// strip, so a card staged for an earlier strip at the same position
  /// belongs to a different object. A mismatched card is dropped (wasted
  /// + miss) and the caller fetches in the foreground.
  std::optional<MiniatureCard> TakeMiniature(int position,
                                             uint64_t expected_id);

  /// Steer ---------------------------------------------------------------

  /// The cursor jumped (goto-page / random seek) to `new_cursor` within
  /// `object_id`. Stale entries of `kind` for that object outside the
  /// prefetch radius are dropped: queued ones count cancelled, ready
  /// ones count wasted. A stale ready page can therefore never be
  /// delivered after a jump — it no longer exists.
  void OnJump(PrefetchKind kind, uint64_t object_id, int new_cursor);

  /// Drops every entry of `kind` (queued → cancelled, ready → wasted).
  /// A new Query must cancel kMiniature this way: positions in the old
  /// strip mean nothing in the new one.
  void Cancel(PrefetchKind kind);

  /// Drops every page/object entry of `object_id` (miniatures, whose
  /// object_id is always 0, are untouched). Re-opening an object resets
  /// its delivery plan, so entries staged for the previous open must not
  /// satisfy ranges the fresh skeleton fetch discounted again.
  void CancelObject(uint64_t object_id);

  /// Drops every entry (queued → cancelled, ready → wasted). The
  /// workstation calls this when the session shuts down.
  void CancelAll();

  /// Drops every entry whose key.owner matches (queued → cancelled,
  /// ready → wasted). A reaped or closed session releases its whole
  /// speculative footprint this way.
  void CancelOwner(uint64_t owner);

  /// Drops every entry matching `stale` (queued → cancelled, ready →
  /// wasted) — the generic steer hook for callers whose staleness rule
  /// is not one of the canned cancels (e.g. a session jump cancelling
  /// only its own out-of-radius pages).
  void CancelWhere(const std::function<bool(const PrefetchKey&)>& stale);

  /// Issues up to max_inflight_per_pump queued entries, nearest cursor
  /// distance first. Reentrant calls (a pumped transfer's retry sleeper
  /// pumping again) are no-ops.
  void Pump();

  /// Maps an affinity-object id to the staging group it contends with
  /// (for a sharded store, 1 + the serving shard; 0 = unknown).
  using AffinityFn = std::function<uint64_t(uint64_t object_id)>;

  /// Attaches a task pool (borrowed; null restores serial pumping).
  /// Pump then stages this pump's picks as one epoch: entries of
  /// different affinity groups run concurrently on real cores, entries
  /// of one group (one shard's arm) — and every entry when `affinity`
  /// is null or answers 0 — stay sequential. Pick order, virtual-time
  /// booking on the background channel, and every prefetch.* metric
  /// are identical to the serial pump.
  void SetTaskPool(runtime::TaskPool* pool, AffinityFn affinity = nullptr);

  /// A BackoffSleeper that spends retry backoff windows pumping this
  /// queue before advancing the clock — the ROADMAP's
  /// "scheduler-integrated retries": a foreground retry wait becomes
  /// background prefetch progress.
  BackoffSleeper MakeBackoffSleeper();

  /// Introspection --------------------------------------------------------

  size_t queued_count() const;
  size_t ready_count() const;
  /// Sum of `bytes` over every live (queued or ready) entry whose
  /// key.owner matches — the budget-enforcement view: a manager refuses
  /// new speculation for an owner once this crosses its budget.
  uint64_t OutstandingBytes(uint64_t owner) const;
  /// Simulated time at which the background channel frees up.
  Micros background_free_at() const { return bg_free_at_; }

 private:
  struct Entry {
    int distance = 0;
    uint64_t seq = 0;
    bool ready = false;
    Micros ready_at = 0;
    uint64_t affinity_object = 0;  ///< Grouping hint for pooled pumps.
    uint64_t bytes = 0;            ///< Budget charge for key.owner.
    PageWork run;  ///< Null once ready.
    std::optional<object::MultimediaObject> object;
    std::optional<MiniatureCard> card;
  };

  /// Radius inside which entries of `kind` survive a jump.
  int KeepRadius(PrefetchKind kind) const;

  /// Drops every entry whose key matches `stale` (queued → cancelled,
  /// ready → wasted).
  void CancelIf(const std::function<bool(const PrefetchKey&)>& stale);

  /// Shared enqueue path: `affinity_object` is the grouping hint a
  /// pooled pump reads (pages use their own object id).
  void Enqueue(const PrefetchKey& key, int distance, PageWork work,
               uint64_t affinity_object, uint64_t bytes = 0);

  /// Runs one entry's work on the background channel; true when the
  /// entry became ready.
  bool Issue(Entry& entry);

  /// Stages `picked` (in pick order) as one pool epoch grouped by
  /// affinity, then books costs and outcomes serially in pick order.
  void IssuePooled(const std::vector<PrefetchKey>& picked);

  /// Sheds ready entries down to ready_capacity: victim owner is the
  /// one with the most ready bytes (ties broken toward the globally
  /// stalest entry), victim entry is that owner's stalest.
  void EvictOverCapacity();
  void UpdateDepth();

  SimClock* clock_;
  std::vector<Link*> links_;  ///< Borrowed; background scopes span all.
  PrefetchOptions options_;
  std::map<PrefetchKey, Entry> entries_;
  uint64_t next_seq_ = 0;
  Micros bg_free_at_ = 0;  ///< Background channel horizon.
  bool pumping_ = false;   ///< Reentrancy guard.
  runtime::TaskPool* pool_ = nullptr;  ///< Borrowed; null pumps serially.
  AffinityFn affinity_;                ///< Null: serialize pooled picks.

  obs::Counter* enqueued_;  // Owned by the registry.
  obs::Counter* issued_;
  obs::Counter* hits_;
  obs::Counter* partial_hits_;
  obs::Counter* misses_;
  obs::Counter* wasted_;
  obs::Counter* cancelled_;
  obs::Counter* errors_;
  obs::Histogram* wait_us_;
  obs::Histogram* issue_cost_us_;
  obs::Gauge* queue_depth_;
};

}  // namespace minos::server

#endif  // MINOS_SERVER_PREFETCH_H_
