#ifndef MINOS_SERVER_LINK_H_
#define MINOS_SERVER_LINK_H_

#include <cstdint>

#include "minos/util/clock.h"

namespace minos::server {

/// Cost model of the workstation <-> server interconnect ("a number of
/// workstations interconnected through high capacity links", §5; the
/// Waterloo implementation used Ethernet). Transfers advance the shared
/// simulated clock.
class Link {
 public:
  /// `bytes_per_second` > 0; `latency` charged per transfer.
  Link(double bytes_per_second, Micros latency, SimClock* clock)
      : bytes_per_second_(bytes_per_second),
        latency_(latency),
        clock_(clock) {}

  /// 10 Mbit/s Ethernet with 1 ms request latency.
  static Link Ethernet(SimClock* clock) {
    return Link(10.0 * 1000 * 1000 / 8, MillisToMicros(1), clock);
  }

  /// Transfers `bytes`; advances the clock and returns the elapsed time.
  Micros Transfer(uint64_t bytes);

  uint64_t bytes_transferred() const { return bytes_transferred_; }
  uint64_t transfer_count() const { return transfer_count_; }
  Micros busy_time() const { return busy_time_; }
  void ResetStats();

 private:
  double bytes_per_second_;
  Micros latency_;
  SimClock* clock_;
  uint64_t bytes_transferred_ = 0;
  uint64_t transfer_count_ = 0;
  Micros busy_time_ = 0;
};

}  // namespace minos::server

#endif  // MINOS_SERVER_LINK_H_
