#ifndef MINOS_SERVER_LINK_H_
#define MINOS_SERVER_LINK_H_

#include <cstdint>
#include <memory>

#include "minos/obs/metrics.h"
#include "minos/server/fault.h"
#include "minos/util/clock.h"
#include "minos/util/statusor.h"

namespace minos::server {

/// Cost model of the workstation <-> server interconnect ("a number of
/// workstations interconnected through high capacity links", §5; the
/// Waterloo implementation used Ethernet). Transfers advance the shared
/// simulated clock.
///
/// Transfers are fallible: an attached FaultInjector may drop, delay or
/// time out any transfer, and a per-link circuit breaker fails fast after
/// consecutive failures so a dead link stops charging timeouts. Without
/// an injector every transfer succeeds (the breaker never trips).
///
/// Transfer statistics live in a MetricsRegistry under a unique instance
/// scope ("link0.bytes_total", "link0.transfers", "link0.busy_time_us",
/// "link0.breaker_open"); the accessors below are thin views over those
/// registry counters and behave exactly like the hand-rolled members
/// they replaced.
class Link {
 public:
  /// `bytes_per_second` > 0; `latency` charged per transfer. Statistics
  /// register in `registry` (the process default when null).
  Link(double bytes_per_second, Micros latency, SimClock* clock,
       obs::MetricsRegistry* registry = nullptr);

  /// 10 Mbit/s Ethernet with 1 ms request latency.
  static Link Ethernet(SimClock* clock,
                       obs::MetricsRegistry* registry = nullptr) {
    return Link(10.0 * 1000 * 1000 / 8, MillisToMicros(1), clock, registry);
  }

  /// Transfers `bytes`; advances the clock and returns the elapsed time.
  /// Unavailable / DeadlineExceeded when the injector or the open
  /// breaker fails the transfer (failed transfers still advance the
  /// clock by whatever time the fault consumed). With a tracer attached
  /// and a valid propagated `ctx`, the transfer records a
  /// "link.transfer" span under the caller's span, tagged with the byte
  /// count, lane, and outcome (ok / fault / breaker_open).
  StatusOr<Micros> Transfer(uint64_t bytes,
                            const obs::TraceContext& ctx = {});

  /// Attaches a fault source (borrowed; null detaches).
  void SetFaultInjector(FaultInjector* injector) { injector_ = injector; }

  /// Attaches the request tracer (borrowed; null detaches).
  void SetTracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// While a BackgroundScope is live, transfers model speculative
  /// (prefetch) traffic: failures are not recorded against the circuit
  /// breaker, so a bad prefetch burst can never open the circuit for the
  /// foreground path. Open-breaker fast-fails still apply — prefetching
  /// over a link that is already known dead is pointless — and
  /// successful background transfers still count as evidence of link
  /// health (they can close a half-open probe).
  class BackgroundScope {
   public:
    explicit BackgroundScope(Link* link)
        : link_(link), prev_(link != nullptr && link->background_) {
      if (link_ != nullptr) link_->background_ = true;
    }
    ~BackgroundScope() {
      if (link_ != nullptr) link_->background_ = prev_;
    }
    BackgroundScope(const BackgroundScope&) = delete;
    BackgroundScope& operator=(const BackgroundScope&) = delete;

   private:
    Link* link_;
    bool prev_;
  };

  /// True while a BackgroundScope is live.
  bool in_background() const { return background_; }

  /// Replaces the breaker policy (state resets to closed).
  void ConfigureBreaker(CircuitBreaker::Options options);

  /// The per-link circuit breaker (always present; trips only when an
  /// injector produces consecutive failures).
  CircuitBreaker& breaker() { return *breaker_; }

  uint64_t bytes_transferred() const {
    return static_cast<uint64_t>(bytes_transferred_->value());
  }
  uint64_t transfer_count() const {
    return static_cast<uint64_t>(transfer_count_->value());
  }
  Micros busy_time() const { return busy_time_->value(); }
  void ResetStats();

 private:
  double bytes_per_second_;
  Micros latency_;
  SimClock* clock_;
  FaultInjector* injector_ = nullptr;  // Borrowed; may be null.
  obs::Tracer* tracer_ = nullptr;      // Borrowed; may be null.
  bool background_ = false;            // A BackgroundScope is live.
  std::string scope_;
  obs::MetricsRegistry* registry_;
  std::unique_ptr<CircuitBreaker> breaker_;
  obs::Counter* bytes_transferred_;  // Owned by the registry.
  obs::Counter* transfer_count_;     // Owned by the registry.
  obs::Counter* busy_time_;          // Owned by the registry; micros.
  obs::Histogram* transfer_us_;      // Owned by the registry.
};

}  // namespace minos::server

#endif  // MINOS_SERVER_LINK_H_
