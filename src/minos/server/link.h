#ifndef MINOS_SERVER_LINK_H_
#define MINOS_SERVER_LINK_H_

#include <cstdint>

#include "minos/obs/metrics.h"
#include "minos/util/clock.h"

namespace minos::server {

/// Cost model of the workstation <-> server interconnect ("a number of
/// workstations interconnected through high capacity links", §5; the
/// Waterloo implementation used Ethernet). Transfers advance the shared
/// simulated clock.
///
/// Transfer statistics live in a MetricsRegistry under a unique instance
/// scope ("link0.bytes_total", "link0.transfers", "link0.busy_time_us");
/// the accessors below are thin views over those registry counters and
/// behave exactly like the hand-rolled members they replaced.
class Link {
 public:
  /// `bytes_per_second` > 0; `latency` charged per transfer. Statistics
  /// register in `registry` (the process default when null).
  Link(double bytes_per_second, Micros latency, SimClock* clock,
       obs::MetricsRegistry* registry = nullptr);

  /// 10 Mbit/s Ethernet with 1 ms request latency.
  static Link Ethernet(SimClock* clock,
                       obs::MetricsRegistry* registry = nullptr) {
    return Link(10.0 * 1000 * 1000 / 8, MillisToMicros(1), clock, registry);
  }

  /// Transfers `bytes`; advances the clock and returns the elapsed time.
  Micros Transfer(uint64_t bytes);

  uint64_t bytes_transferred() const {
    return static_cast<uint64_t>(bytes_transferred_->value());
  }
  uint64_t transfer_count() const {
    return static_cast<uint64_t>(transfer_count_->value());
  }
  Micros busy_time() const { return busy_time_->value(); }
  void ResetStats();

 private:
  double bytes_per_second_;
  Micros latency_;
  SimClock* clock_;
  obs::Counter* bytes_transferred_;  // Owned by the registry.
  obs::Counter* transfer_count_;     // Owned by the registry.
  obs::Counter* busy_time_;          // Owned by the registry; micros.
  obs::Histogram* transfer_us_;      // Owned by the registry.
};

}  // namespace minos::server

#endif  // MINOS_SERVER_LINK_H_
