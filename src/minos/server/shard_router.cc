#include "minos/server/shard_router.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <utility>

#include "minos/runtime/task_pool.h"
#include "minos/server/link.h"

namespace minos::server {

using object::MultimediaObject;
using storage::ArchiveAddress;
using storage::ObjectId;

ShardPlacement HashPlacement() {
  return [](ObjectId id, size_t shard_count) -> size_t {
    // Fibonacci multiplicative hash: golden-ratio constant scrambles
    // consecutive ids before the mod, so dense id ranges still spread.
    const uint64_t mixed = (id * 0x9E3779B97F4A7C15ull) >> 17;
    return static_cast<size_t>(mixed % shard_count);
  };
}

ShardPlacement RangePlacement(uint64_t ids_per_shard) {
  return [ids_per_shard](ObjectId id, size_t shard_count) -> size_t {
    const uint64_t slot = ids_per_shard > 0 ? id / ids_per_shard : 0;
    return static_cast<size_t>(
        std::min<uint64_t>(slot, shard_count - 1));
  };
}

ShardRouter::ShardRouter(std::vector<ObjectServer*> shards, SimClock* clock,
                         ShardPlacement placement, ShardRouterOptions options)
    : shards_(std::move(shards)),
      clock_(clock),
      placement_(std::move(placement)),
      options_(options),
      active_count_(shards_.size()),
      live_(shards_.size(), true) {
  assert(!shards_.empty());
  options_.replication =
      std::clamp<int>(options_.replication, 1,
                      static_cast<int>(shards_.size()));
  reg_ = options_.registry != nullptr ? options_.registry
                                      : &obs::MetricsRegistry::Default();
  obs::MetricsRegistry& reg = *reg_;
  scatter_queries_ = reg.counter("router.scatter_queries");
  ranked_scatters_ = reg.counter("query.ranked_scatters");
  merge_depth_ = reg.histogram("query.merge_depth");
  failovers_ = reg.counter("router.failovers_total");
  shards_lost_ = reg.counter("router.shards_lost_total");
  shards_healed_ = reg.counter("router.shards_healed_total");
  rebalances_ = reg.counter("router.rebalances_total");
  dropped_results_ = reg.counter("router.dropped_results_total");
  replica_store_errors_ = reg.counter("router.replica_store_errors_total");
  degraded_stores_ = reg.counter("router.degraded_stores_total");
  stats_full_adds_ = reg.counter("router.stats_full_adds_total");
  stats_delta_applies_ = reg.counter("router.stats_delta_applies_total");
  live_shards_ = reg.gauge("router.live_shards");
  under_replicated_g_ = reg.gauge("router.under_replicated");
  epoch_g_ = reg.gauge("router.routing_epoch");
  gather_us_ = reg.histogram("router.gather_us");
  live_shards_->Set(static_cast<double>(shards_.size()));
  epoch_g_->Set(static_cast<double>(routing_epoch_));
  red_.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    const std::string scope = "router.shard" + std::to_string(i);
    red_.push_back(ShardRed{reg.counter(scope + ".requests_total"),
                            reg.counter(scope + ".errors_total"),
                            reg.histogram(scope + ".duration_us")});
  }
}

void ShardRouter::SetTracer(obs::Tracer* tracer) {
  tracer_ = tracer;
  if (pool_ != nullptr) pool_->SetTracer(tracer);
  for (ObjectServer* shard : shards_) {
    shard->SetTracer(tracer);
  }
}

void ShardRouter::SetTaskPool(runtime::TaskPool* pool) {
  pool_ = pool;
  // The pool buffers every span a scatter share records, so it needs
  // the same tracer the fabric reports to.
  if (pool_ != nullptr && tracer_ != nullptr) pool_->SetTracer(tracer_);
  for (ObjectServer* shard : shards_) {
    shard->SetTaskPool(pool);
  }
}

void ShardRouter::RefreshLiveness() const {
  // A pool task never mutates the routing table: the submitting thread
  // refreshed it before the epoch, and every share of one scatter must
  // route against that single pinned table (also, live_ is a
  // vector<bool> — concurrent writes would race).
  if (runtime::TaskPool::InTask()) return;
  size_t live = 0;
  std::vector<size_t> healed;
  for (size_t i = 0; i < shards_.size(); ++i) {
    Link* link = shards_[i]->link();
    // No link means no breaker signal: the shard is local and always
    // reachable. An open breaker is shard loss — except once its
    // cooldown has elapsed, when the shard is routable again so the
    // next read performs the half-open probe that can heal it.
    const bool eligible =
        link == nullptr ||
        link->breaker().state() != CircuitBreaker::State::kOpen ||
        link->breaker().CooldownElapsed();
    if (eligible && !live_[i]) {
      shards_healed_->Increment();
      rebalances_->Increment();
      ++routing_epoch_;
      healed.push_back(i);
    } else if (!eligible && live_[i]) {
      shards_lost_->Increment();
      rebalances_->Increment();
      ++routing_epoch_;
    }
    live_[i] = eligible;
    if (eligible && i < active_count_) ++live;
  }
  live_shards_->Set(static_cast<double>(live));
  epoch_g_->Set(static_cast<double>(routing_epoch_));
  // Heal events fire after the whole liveness vector settles, so a
  // listener that inspects the router sees the post-heal picture. The
  // listener contract forbids repairing inline; it only flags work.
  if (heal_listener_) {
    for (size_t shard : healed) heal_listener_(shard);
  }
}

bool ShardRouter::IsLive(size_t shard) const {
  RefreshLiveness();
  return shard < live_.size() && live_[shard];
}

size_t ShardRouter::live_count() const {
  RefreshLiveness();
  size_t n = 0;
  for (bool b : live_) {
    if (b) ++n;
  }
  return n;
}

std::vector<size_t> ShardRouter::ReplicaChain(ObjectId id) const {
  return ReplicaChainUnder(id, active_count_);
}

std::vector<size_t> ShardRouter::ReplicaChainUnder(
    ObjectId id, size_t shard_count) const {
  std::vector<size_t> chain;
  const size_t primary = placement_(id, shard_count);
  const int replicas =
      std::min(options_.replication, static_cast<int>(shard_count));
  for (int r = 0; r < replicas; ++r) {
    chain.push_back((primary + static_cast<size_t>(r)) % shard_count);
  }
  return chain;
}

template <typename T>
StatusOr<T> ShardRouter::RouteRead(
    ObjectId id,
    const std::function<StatusOr<T>(ObjectServer*,
                                    const obs::TraceContext&)>& op,
    const obs::TraceContext& ctx) const {
  RefreshLiveness();
  Status last = Status::Unavailable(
      "no live replica serves object " + std::to_string(id));
  const std::vector<size_t> chain = ReplicaChain(id);
  for (size_t shard : chain) {
    if (!live_[shard]) continue;
    // Any routing away from the primary — whether the primary was
    // skipped dead or just failed the attempt — is a failover.
    if (shard != chain.front()) failovers_->Increment();
    std::optional<obs::TraceSpan> span =
        obs::MaybeStartSpan(tracer_, "router.attempt", ctx);
    if (span.has_value()) span->AddTag("shard", static_cast<int64_t>(shard));
    const Micros start = clock_->Now();
    StatusOr<T> got = op(shards_[shard], obs::ContextOf(span));
    red_[shard].requests->Increment();
    red_[shard].duration_us->Record(
        static_cast<double>(clock_->Now() - start));
    if (got.ok()) {
      if (span.has_value()) span->AddTag("outcome", "ok");
      return got;
    }
    red_[shard].errors->Increment();
    if (!IsRetryable(got.status())) {
      if (span.has_value()) span->AddTag("outcome", "error");
      return got;
    }
    // Retryable exhaustion: the shard (or its link) is sick. Take it
    // out of this routing decision and try the next replica; the
    // breaker-driven refresh decides whether it stays out. Inside a
    // pool task the demotion is skipped — the table is pinned for the
    // epoch (the failover within this read still walks the chain) and
    // the breaker state drives the next refresh anyway.
    if (span.has_value()) span->AddTag("outcome", "failover");
    if (!runtime::TaskPool::InTask()) live_[shard] = false;
    last = got.status();
  }
  return last;
}

StatusOr<ArchiveAddress> ShardRouter::Store(const MultimediaObject& obj) {
  RefreshLiveness();
  StatusOr<ArchiveAddress> first =
      Status::Unavailable("no live replica accepted store");
  const std::vector<size_t> chain = ReplicaChain(obj.id());
  int copies = 0;
  for (size_t shard : chain) {
    if (!live_[shard]) {
      replica_store_errors_->Increment();
      continue;
    }
    StatusOr<ArchiveAddress> got = shards_[shard]->Store(obj);
    if (got.ok()) {
      ++copies;
      if (!first.ok()) first = got;
    } else {
      replica_store_errors_->Increment();
      if (!first.ok()) first = got;
    }
  }
  if (first.ok()) {
    // Catalog-wide statistics count the object once, however many
    // replicas hold it; weight voice postings with the shard profile.
    corpus_stats_.Add(obj, query::VoiceConfidence(
                               shards_.front()->recognizer_profile()));
    stats_full_adds_->Increment();
    ++catalog_version_;
    if (copies < static_cast<int>(chain.size())) {
      // The store succeeded somewhere but not everywhere: the object is
      // durable yet under-replicated until anti-entropy repairs it.
      NoteUnderReplicated(obj.id(), copies);
    }
  }
  return first;
}

StatusOr<uint32_t> ShardRouter::Append(ObjectId id,
                                       const ObjectServer::AppendParts& parts) {
  RefreshLiveness();
  StatusOr<uint32_t> first =
      Status::Unavailable("no live replica accepted append");
  const std::vector<size_t> chain = ReplicaChain(id);
  query::IndexDelta delta;
  bool have_delta = false;
  int copies = 0;
  for (size_t shard : chain) {
    if (!live_[shard]) {
      replica_store_errors_->Increment();
      continue;
    }
    StatusOr<ObjectServer::AppendResult> got =
        shards_[shard]->Append(id, parts);
    if (got.ok()) {
      ++copies;
      if (!have_delta) {
        // Every replica folds the identical content, so every replica
        // reports the identical stats delta: keep the first.
        delta = std::move(got->delta);
        have_delta = true;
        first = got->version;
      }
    } else {
      replica_store_errors_->Increment();
      if (!first.ok()) first = got.status();
    }
  }
  if (have_delta) {
    // Delta sync, not rebuild: the catalog-wide statistics index takes
    // exactly the df/length changes of the appended words — counted
    // once per logical object, never per replica, never a re-walk of
    // the whole object. stats_delta_applies_total vs
    // stats_full_adds_total is the observable proof the cheap path ran.
    corpus_stats_.ApplyDelta(delta);
    stats_delta_applies_->Increment();
    ++catalog_version_;
    if (copies < static_cast<int>(chain.size())) {
      // Replicas that missed the append now lag a version: surfaced as
      // redundancy debt for anti-entropy to repair, like a degraded
      // Store.
      NoteUnderReplicated(id, copies);
    }
  }
  return first;
}

std::vector<query::ScoredHit> ShardRouter::QueryRanked(
    const std::vector<std::string>& words, size_t k, query::QueryMode mode,
    const obs::TraceContext& ctx) const {
  std::optional<obs::TraceSpan> scatter =
      obs::MaybeStartSpan(tracer_, "router.ranked_scatter", ctx);
  RefreshLiveness();
  ranked_scatters_->Increment();

  // Scatter: each live shard evaluates its local top-k against the
  // catalog-wide statistics. All shards run on the one SimClock, so
  // each share is measured inline, rewound, and the gather barrier
  // advances by the slowest — exactly the GatherCards time model.
  // Every share records its own "shard.query" span, ended before the
  // rewind so the trace keeps the true per-shard interval: in the
  // finished trace the shares overlap, exactly as the modeled parallel
  // shards do.
  std::vector<size_t> targets;
  for (size_t shard = 0; shard < active_count_; ++shard) {
    if (live_[shard]) targets.push_back(shard);
  }
  std::vector<std::vector<query::ScoredHit>> per_shard(targets.size());
  if (pool_ != nullptr) {
    // Pooled scatter: one task per live shard, each share scoring in
    // its own virtual-time frame on a real core. The epoch barrier
    // advances the clock by the slowest frame — the same charge the
    // rewind loop below computes — and commits every share's spans in
    // shard order. Registry bookkeeping stays on this thread, post-
    // barrier, in shard order, so metrics are schedule-independent.
    std::vector<runtime::TaskPool::Task> tasks;
    tasks.reserve(targets.size());
    for (size_t t = 0; t < targets.size(); ++t) {
      const size_t shard = targets[t];
      tasks.push_back([&, t, shard] {
        std::optional<obs::TraceSpan> shard_span = obs::MaybeStartSpan(
            tracer_, "shard.query", obs::ContextOf(scatter));
        if (shard_span.has_value()) {
          shard_span->AddTag("shard", static_cast<int64_t>(shard));
        }
        std::vector<query::ScoredHit> hits =
            shards_[shard]->QueryRankedWith(words, k, mode, corpus_stats_,
                                            obs::ContextOf(shard_span));
        if (shard_span.has_value()) {
          shard_span->AddTag("hits", static_cast<int64_t>(hits.size()));
          shard_span->End();
        }
        per_shard[t] = std::move(hits);
      });
    }
    const std::vector<Micros> costs = pool_->RunEpoch(std::move(tasks));
    for (size_t t = 0; t < targets.size(); ++t) {
      const size_t shard = targets[t];
      red_[shard].requests->Increment();
      red_[shard].duration_us->Record(static_cast<double>(costs[t]));
      merge_depth_->Record(static_cast<double>(per_shard[t].size()));
    }
  } else {
    Micros slowest = 0;
    for (size_t t = 0; t < targets.size(); ++t) {
      const size_t shard = targets[t];
      std::optional<obs::TraceSpan> shard_span = obs::MaybeStartSpan(
          tracer_, "shard.query", obs::ContextOf(scatter));
      if (shard_span.has_value()) {
        shard_span->AddTag("shard", static_cast<int64_t>(shard));
      }
      const Micros start = clock_->Now();
      std::vector<query::ScoredHit> hits =
          shards_[shard]->QueryRankedWith(words, k, mode, corpus_stats_,
                                          obs::ContextOf(shard_span));
      const Micros cost = clock_->Now() - start;
      if (shard_span.has_value()) {
        shard_span->AddTag("hits", static_cast<int64_t>(hits.size()));
        shard_span->End();
      }
      red_[shard].requests->Increment();
      red_[shard].duration_us->Record(static_cast<double>(cost));
      clock_->RewindTo(start);
      slowest = std::max(slowest, cost);
      merge_depth_->Record(static_cast<double>(hits.size()));
      per_shard[t] = std::move(hits);
    }
    clock_->Advance(slowest);
  }

  // Gather: k-way merge by score. Replicas of one object scored against
  // the same global statistics produce identical scores; dedup keeps
  // the max-score copy anyway, so a replica pair diverging under a
  // mid-query re-store still resolves deterministically.
  std::map<ObjectId, double> best;
  for (const std::vector<query::ScoredHit>& hits : per_shard) {
    for (const query::ScoredHit& hit : hits) {
      auto [it, inserted] = best.emplace(hit.id, hit.score);
      if (!inserted && hit.score > it->second) it->second = hit.score;
    }
  }
  std::vector<query::ScoredHit> merged;
  merged.reserve(best.size());
  for (const auto& [id, score] : best) {
    merged.push_back(query::ScoredHit{id, score});
  }
  std::sort(merged.begin(), merged.end(), query::Outranks);
  if (merged.size() > k) merged.resize(k);
  return merged;
}

std::vector<ObjectId> ShardRouter::QueryAll(
    const std::vector<std::string>& words) const {
  RefreshLiveness();
  scatter_queries_->Increment();
  std::vector<size_t> targets;
  for (size_t i = 0; i < active_count_; ++i) {
    if (live_[i]) targets.push_back(i);
  }
  std::vector<std::vector<ObjectId>> per_shard(targets.size());
  if (pool_ != nullptr && targets.size() > 1) {
    // Pooled scatter: the boolean evaluation is pure index CPU (no
    // clock charges), so the epoch advances the clock by zero and the
    // fan-out buys only wall-clock parallelism.
    std::vector<runtime::TaskPool::Task> tasks;
    tasks.reserve(targets.size());
    for (size_t t = 0; t < targets.size(); ++t) {
      const size_t shard = targets[t];
      tasks.push_back(
          [&, t, shard] { per_shard[t] = shards_[shard]->QueryAll(words); });
    }
    pool_->RunEpoch(std::move(tasks));
  } else {
    for (size_t t = 0; t < targets.size(); ++t) {
      per_shard[t] = shards_[targets[t]]->QueryAll(words);
    }
  }
  // Gather: fold in shard order into one ascending, deduplicated list.
  std::vector<ObjectId> merged;
  for (std::vector<ObjectId>& hits : per_shard) {
    std::vector<ObjectId> out;
    out.reserve(merged.size() + hits.size());
    std::merge(merged.begin(), merged.end(), hits.begin(), hits.end(),
               std::back_inserter(out));
    merged = std::move(out);
  }
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  return merged;
}

StatusOr<MiniatureCard> ShardRouter::FetchMiniature(
    ObjectId id, int thumb_width, const obs::TraceContext& ctx) {
  std::optional<obs::TraceSpan> span =
      obs::MaybeStartSpan(tracer_, "router.miniature", ctx);
  return RouteRead<MiniatureCard>(
      id,
      [&](ObjectServer* s, const obs::TraceContext& c) {
        return s->FetchMiniature(id, thumb_width, c);
      },
      obs::ContextOf(span));
}

std::vector<MiniatureCard> ShardRouter::ScatterCards(
    const std::vector<ObjectId>& matches, int thumb_width,
    const obs::TraceContext& ctx) {
  std::optional<obs::TraceSpan> scatter =
      obs::MaybeStartSpan(tracer_, "router.scatter_cards", ctx);
  RefreshLiveness();
  // Partition the matches by their first live replica — the shard whose
  // card-building work they will ride.
  std::vector<std::vector<ObjectId>> share(shards_.size());
  std::vector<ObjectId> unrouted;
  for (ObjectId id : matches) {
    bool placed = false;
    for (size_t shard : ReplicaChain(id)) {
      if (!live_[shard]) continue;
      share[shard].push_back(id);
      placed = true;
      break;
    }
    if (!placed) unrouted.push_back(id);
  }

  // Scatter: every shard builds its share in its own virtual-time frame
  // (pooled: on a real core; serial: inline while the clock rewinds),
  // then the gather barrier advances by the slowest shard — the fan-out
  // runs in parallel in the modeled system.
  std::vector<MiniatureCard> cards;
  std::vector<ObjectId> retry_elsewhere = std::move(unrouted);
  std::vector<size_t> targets;
  for (size_t shard = 0; shard < shards_.size(); ++shard) {
    if (!share[shard].empty()) targets.push_back(shard);
  }
  Micros slowest = 0;
  if (pool_ != nullptr) {
    // Each share collects its cards, failed ids and error count into
    // its own slot; the post-barrier pass folds them — and the RED
    // bookkeeping — in shard order, so results and metrics match the
    // serial pass exactly.
    struct ShareResult {
      std::vector<MiniatureCard> cards;
      std::vector<ObjectId> retry;
      int64_t errors = 0;
    };
    std::vector<ShareResult> results(targets.size());
    std::vector<runtime::TaskPool::Task> tasks;
    tasks.reserve(targets.size());
    for (size_t t = 0; t < targets.size(); ++t) {
      const size_t shard = targets[t];
      tasks.push_back([&, t, shard] {
        std::optional<obs::TraceSpan> shard_span = obs::MaybeStartSpan(
            tracer_, "shard.cards", obs::ContextOf(scatter));
        if (shard_span.has_value()) {
          shard_span->AddTag("shard", static_cast<int64_t>(shard));
          shard_span->AddTag("cards",
                             static_cast<int64_t>(share[shard].size()));
        }
        ShareResult& result = results[t];
        for (ObjectId id : share[shard]) {
          StatusOr<MiniatureCard> got = shards_[shard]->FetchMiniature(
              id, thumb_width, obs::ContextOf(shard_span));
          if (got.ok()) {
            result.cards.push_back(*std::move(got));
          } else {
            ++result.errors;
            result.retry.push_back(id);
          }
        }
        if (shard_span.has_value()) shard_span->End();
      });
    }
    const std::vector<Micros> costs = pool_->RunEpoch(std::move(tasks));
    for (size_t t = 0; t < targets.size(); ++t) {
      const size_t shard = targets[t];
      ShareResult& result = results[t];
      if (result.errors > 0) red_[shard].errors->Increment(result.errors);
      red_[shard].requests->Increment();
      red_[shard].duration_us->Record(static_cast<double>(costs[t]));
      slowest = std::max(slowest, costs[t]);
      for (MiniatureCard& card : result.cards) {
        cards.push_back(std::move(card));
      }
      retry_elsewhere.insert(retry_elsewhere.end(), result.retry.begin(),
                             result.retry.end());
    }
  } else {
    for (size_t t = 0; t < targets.size(); ++t) {
      const size_t shard = targets[t];
      std::optional<obs::TraceSpan> shard_span = obs::MaybeStartSpan(
          tracer_, "shard.cards", obs::ContextOf(scatter));
      if (shard_span.has_value()) {
        shard_span->AddTag("shard", static_cast<int64_t>(shard));
        shard_span->AddTag("cards",
                           static_cast<int64_t>(share[shard].size()));
      }
      const Micros start = clock_->Now();
      for (ObjectId id : share[shard]) {
        StatusOr<MiniatureCard> got = shards_[shard]->FetchMiniature(
            id, thumb_width, obs::ContextOf(shard_span));
        if (got.ok()) {
          cards.push_back(*std::move(got));
        } else {
          red_[shard].errors->Increment();
          retry_elsewhere.push_back(id);
        }
      }
      const Micros cost = clock_->Now() - start;
      if (shard_span.has_value()) shard_span->End();
      red_[shard].requests->Increment();
      red_[shard].duration_us->Record(static_cast<double>(cost));
      clock_->RewindTo(start);
      slowest = std::max(slowest, cost);
    }
    clock_->Advance(slowest);
  }
  gather_us_->Record(static_cast<double>(slowest));

  // Failover pass, serial (the scatter already ended): ids whose shard
  // failed mid-gather retry through the replica chain; ids no replica
  // can serve drop out of the strip rather than failing the query.
  uint64_t dropped = 0;
  for (ObjectId id : retry_elsewhere) {
    StatusOr<MiniatureCard> got =
        FetchMiniature(id, thumb_width, obs::ContextOf(scatter));
    if (got.ok()) {
      cards.push_back(*std::move(got));
    } else {
      dropped_results_->Increment();
      ++dropped;
    }
  }
  if (scatter.has_value() && dropped > 0) {
    scatter->AddTag("dropped", static_cast<int64_t>(dropped));
  }

  return cards;
}

StatusOr<std::vector<MiniatureCard>> ShardRouter::GatherCards(
    const std::vector<std::string>& words, int thumb_width,
    const obs::TraceContext& ctx) {
  std::optional<obs::TraceSpan> span =
      obs::MaybeStartSpan(tracer_, "router.gather_cards", ctx);
  const std::vector<ObjectId> matches = QueryAll(words);
  std::vector<MiniatureCard> cards =
      ScatterCards(matches, thumb_width, obs::ContextOf(span));
  std::sort(cards.begin(), cards.end(),
            [](const MiniatureCard& a, const MiniatureCard& b) {
              return a.id < b.id;
            });
  return cards;
}

StatusOr<std::vector<MiniatureCard>> ShardRouter::GatherCardsRanked(
    const std::vector<std::string>& words, size_t k, int thumb_width,
    const obs::TraceContext& ctx) {
  std::optional<obs::TraceSpan> span =
      obs::MaybeStartSpan(tracer_, "router.gather_ranked", ctx);
  const std::vector<query::ScoredHit> hits = QueryRanked(
      words, k, query::QueryMode::kConjunctive, obs::ContextOf(span));
  std::vector<ObjectId> ids;
  ids.reserve(hits.size());
  for (const query::ScoredHit& hit : hits) ids.push_back(hit.id);

  std::vector<MiniatureCard> cards =
      ScatterCards(ids, thumb_width, obs::ContextOf(span));
  std::map<ObjectId, MiniatureCard> by_id;
  for (MiniatureCard& card : cards) {
    by_id.emplace(card.id, std::move(card));
  }

  // Reassemble in relevance order; hits whose card got dropped leave a
  // gap the presentation layer reports as a degraded strip.
  std::vector<MiniatureCard> strip;
  strip.reserve(hits.size());
  for (const query::ScoredHit& hit : hits) {
    auto it = by_id.find(hit.id);
    if (it == by_id.end()) continue;
    it->second.score = hit.score;
    strip.push_back(std::move(it->second));
  }
  return strip;
}

StatusOr<MultimediaObject> ShardRouter::Fetch(
    ObjectId id, FetchGranularity granularity,
    const obs::TraceContext& ctx) {
  std::optional<obs::TraceSpan> span =
      obs::MaybeStartSpan(tracer_, "router.fetch", ctx);
  return RouteRead<MultimediaObject>(
      id,
      [&](ObjectServer* s, const obs::TraceContext& c) {
        return s->Fetch(id, granularity, c);
      },
      obs::ContextOf(span));
}

StatusOr<image::Bitmap> ShardRouter::FetchImageRegion(
    ObjectId id, uint32_t image_index, const image::Rect& r,
    const obs::TraceContext& ctx) {
  std::optional<obs::TraceSpan> span =
      obs::MaybeStartSpan(tracer_, "router.region", ctx);
  return RouteRead<image::Bitmap>(
      id,
      [&](ObjectServer* s, const obs::TraceContext& c) {
        return s->FetchImageRegion(id, image_index, r, c);
      },
      obs::ContextOf(span));
}

Status ShardRouter::StagePartRange(ObjectId id, std::string_view part_name,
                                   uint64_t offset, uint64_t length,
                                   const obs::TraceContext& ctx) {
  std::optional<obs::TraceSpan> span =
      obs::MaybeStartSpan(tracer_, "router.stage", ctx);
  return RouteRead<bool>(
             id,
             [&](ObjectServer* s,
                 const obs::TraceContext& c) -> StatusOr<bool> {
               MINOS_RETURN_IF_ERROR(
                   s->StagePartRange(id, part_name, offset, length, c));
               return true;
             },
             obs::ContextOf(span))
      .status();
}

StatusOr<uint64_t> ShardRouter::PartLength(ObjectId id,
                                           std::string_view part_name) const {
  return RouteRead<uint64_t>(
      id, [&](ObjectServer* s, const obs::TraceContext&) {
        return s->PartLength(id, part_name);
      });
}

const RetryPolicy& ShardRouter::retry_policy() const {
  return shards_.front()->retry_policy();
}

void ShardRouter::SetBackoffSleeper(BackoffSleeper sleeper) {
  for (ObjectServer* shard : shards_) {
    shard->SetBackoffSleeper(sleeper);
  }
}

Link* ShardRouter::RouteLink(ObjectId id) const {
  RefreshLiveness();
  for (size_t shard : ReplicaChain(id)) {
    if (live_[shard]) return shards_[shard]->link();
  }
  return nullptr;
}

uint64_t ShardRouter::PrefetchAffinity(ObjectId id) const {
  RefreshLiveness();
  for (size_t shard : ReplicaChain(id)) {
    if (live_[shard]) return 1 + static_cast<uint64_t>(shard);
  }
  return 0;
}

std::vector<Link*> ShardRouter::links() const {
  std::vector<Link*> out;
  for (ObjectServer* shard : shards_) {
    if (shard->link() != nullptr) out.push_back(shard->link());
  }
  return out;
}

size_t ShardRouter::AddShard(ObjectServer* shard) {
  assert(shard != nullptr);
  // Idempotent: re-staging the same server (a retried expansion) keeps
  // its existing slot instead of growing the fleet again.
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (shards_[i] == shard) return i;
  }
  const size_t index = shards_.size();
  shards_.push_back(shard);
  live_.push_back(true);
  const std::string scope = "router.shard" + std::to_string(index);
  red_.push_back(ShardRed{reg_->counter(scope + ".requests_total"),
                          reg_->counter(scope + ".errors_total"),
                          reg_->histogram(scope + ".duration_us")});
  if (tracer_ != nullptr) shard->SetTracer(tracer_);
  // active_count_ is untouched: the staged shard takes no traffic until
  // CommitExpansion flips the placement modulus.
  return index;
}

void ShardRouter::CommitExpansion() {
  if (active_count_ == shards_.size()) return;
  active_count_ = shards_.size();
  ++routing_epoch_;
  rebalances_->Increment();
  RefreshLiveness();
}

void ShardRouter::NoteUnderReplicated(ObjectId id, int live_copies) {
  degraded_stores_->Increment();
  under_replicated_.insert(id);
  under_replicated_g_->Set(static_cast<double>(under_replicated_.size()));
  if (degraded_store_listener_) degraded_store_listener_(id, live_copies);
}

void ShardRouter::ReplaceUnderReplicated(std::set<ObjectId> ids) {
  under_replicated_ = std::move(ids);
  under_replicated_g_->Set(static_cast<double>(under_replicated_.size()));
}

}  // namespace minos::server
