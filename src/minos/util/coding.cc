#include "minos/util/coding.h"

namespace minos {

void PutFixed32(std::string* dst, uint32_t value) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>(value >> (8 * i));
  dst->append(buf, 4);
}

void PutFixed64(std::string* dst, uint64_t value) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>(value >> (8 * i));
  dst->append(buf, 8);
}

void PutVarint32(std::string* dst, uint32_t value) {
  PutVarint64(dst, value);
}

void PutVarint64(std::string* dst, uint64_t value) {
  unsigned char buf[10];
  int n = 0;
  while (value >= 0x80) {
    buf[n++] = static_cast<unsigned char>(value) | 0x80;
    value >>= 7;
  }
  buf[n++] = static_cast<unsigned char>(value);
  dst->append(reinterpret_cast<char*>(buf), n);
}

void PutLengthPrefixed(std::string* dst, std::string_view value) {
  PutVarint64(dst, value.size());
  dst->append(value.data(), value.size());
}

Status Decoder::GetFixed32(uint32_t* value) {
  if (data_.size() < 4) return Status::Corruption("truncated fixed32");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(data_[i]))
         << (8 * i);
  }
  data_.remove_prefix(4);
  *value = v;
  return Status::OK();
}

Status Decoder::GetFixed64(uint64_t* value) {
  if (data_.size() < 8) return Status::Corruption("truncated fixed64");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(data_[i]))
         << (8 * i);
  }
  data_.remove_prefix(8);
  *value = v;
  return Status::OK();
}

Status Decoder::GetVarint32(uint32_t* value) {
  uint64_t v = 0;
  MINOS_RETURN_IF_ERROR(GetVarint64(&v));
  if (v > 0xFFFFFFFFULL) return Status::Corruption("varint32 overflow");
  *value = static_cast<uint32_t>(v);
  return Status::OK();
}

Status Decoder::GetVarint64(uint64_t* value) {
  uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (data_.empty()) return Status::Corruption("truncated varint");
    const unsigned char byte = static_cast<unsigned char>(data_[0]);
    data_.remove_prefix(1);
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *value = v;
      return Status::OK();
    }
  }
  return Status::Corruption("varint too long");
}

Status Decoder::GetLengthPrefixed(std::string* value) {
  uint64_t len = 0;
  MINOS_RETURN_IF_ERROR(GetVarint64(&len));
  return GetRaw(static_cast<size_t>(len), value);
}

Status Decoder::GetRaw(size_t n, std::string* value) {
  if (data_.size() < n) return Status::Corruption("truncated raw bytes");
  value->assign(data_.data(), n);
  data_.remove_prefix(n);
  return Status::OK();
}

namespace {

struct Crc32Table {
  uint32_t entries[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      entries[i] = c;
    }
  }
};

}  // namespace

uint32_t Crc32(std::string_view bytes) {
  static const Crc32Table table;
  uint32_t crc = 0xFFFFFFFFu;
  for (const char ch : bytes) {
    crc = table.entries[(crc ^ static_cast<unsigned char>(ch)) & 0xFF] ^
          (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace minos
