#ifndef MINOS_UTIL_LOGGING_H_
#define MINOS_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace minos {

/// Severity of a log record.
enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Minimal logging sink. By default records at or above kWarning go to
/// stderr; tests can lower the threshold or capture records.
class Logger {
 public:
  /// Process-wide logger instance.
  static Logger& Get();

  /// Emits one record (thread-compatible; MINOS simulation is single
  /// threaded by design, matching a single workstation session).
  void Log(LogLevel level, std::string_view file, int line,
           const std::string& message);

  /// Only records with level >= threshold are emitted.
  void set_threshold(LogLevel level) { threshold_ = level; }
  LogLevel threshold() const { return threshold_; }

  /// Number of records emitted since construction (observable by tests).
  int emitted_count() const { return emitted_; }

 private:
  LogLevel threshold_ = LogLevel::kWarning;
  int emitted_ = 0;
};

/// Internal: stream-builder that forwards to Logger on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { Logger::Get().Log(level_, file_, line_, stream_.str()); }

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace minos

#define MINOS_LOG(level)                                              \
  ::minos::LogMessage(::minos::LogLevel::level, __FILE__, __LINE__) \
      .stream()

#endif  // MINOS_UTIL_LOGGING_H_
