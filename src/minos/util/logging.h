#ifndef MINOS_UTIL_LOGGING_H_
#define MINOS_UTIL_LOGGING_H_

#include <functional>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace minos {

/// Severity of a log record.
enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// How records render on the stderr sink.
enum class LogFormat {
  kText,      ///< "[WARN file.cc:42] message" (the historical format).
  kKeyValue,  ///< level=WARN module=storage ... msg="message" key=value ...
  kJsonLines, ///< One JSON object per record.
};

/// One structured log record. `fields` carries the key=value payload;
/// trace spans emit through the same type, so metrics, spans and log
/// records share one event stream.
struct LogRecord {
  LogLevel level = LogLevel::kInfo;
  std::string file;     ///< Basename of the emitting file.
  int line = 0;
  std::string module;   ///< Component under src/minos/ ("storage", ...).
  std::string message;
  std::vector<std::pair<std::string, std::string>> fields;
};

/// Process-wide logging sink. By default records at or above kWarning go
/// to stderr in the text format; tests can lower the threshold, switch
/// to a structured format, set per-module thresholds, or capture records
/// via SetSink. Thread-safe.
class Logger {
 public:
  /// Process-wide logger instance.
  static Logger& Get();

  /// Emits one unstructured record.
  void Log(LogLevel level, std::string_view file, int line,
           const std::string& message);

  /// Emits one structured record with key=value fields.
  void Log(LogLevel level, std::string_view file, int line,
           const std::string& message,
           std::vector<std::pair<std::string, std::string>> fields);

  /// Only records with level >= threshold are emitted; a per-module
  /// threshold (see set_module_threshold) takes precedence.
  void set_threshold(LogLevel level);
  LogLevel threshold() const;

  /// Overrides the threshold for one module — the component directory
  /// under src/minos/ ("storage", "core", ...), or the file basename
  /// stem for files outside the tree. Lowering a module to kDebug turns
  /// on its span/trace records without flooding stderr globally.
  void set_module_threshold(std::string_view module, LogLevel level);

  /// Drops all per-module overrides.
  void clear_module_thresholds();

  /// Selects the stderr rendering (ignored when a sink is installed).
  void set_format(LogFormat format);
  LogFormat format() const;

  /// Routes emitted records to `sink` instead of stderr; pass nullptr to
  /// restore stderr output. The sink runs under the logger mutex — it
  /// must not log recursively.
  void SetSink(std::function<void(const LogRecord&)> sink);

  /// Number of records emitted since construction (observable by tests).
  int emitted_count() const;

  /// The module a path maps to: the path component after "minos/"
  /// ("minos/storage/block_cache.cc" -> "storage"), else the file
  /// basename without extension.
  static std::string ModuleOf(std::string_view file);

 private:
  void Emit(const LogRecord& record);

  mutable std::mutex mu_;
  LogLevel threshold_ = LogLevel::kWarning;
  LogFormat format_ = LogFormat::kText;
  std::map<std::string, LogLevel, std::less<>> module_thresholds_;
  std::function<void(const LogRecord&)> sink_;
  int emitted_ = 0;
};

/// Internal: stream-builder that forwards to Logger on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { Logger::Get().Log(level_, file_, line_, stream_.str()); }

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace minos

#define MINOS_LOG(level)                                              \
  ::minos::LogMessage(::minos::LogLevel::level, __FILE__, __LINE__) \
      .stream()

/// Structured logging: MINOS_SLOG(kInfo, "transfer", {{"bytes","512"}}).
#define MINOS_SLOG(level, message, ...)                               \
  ::minos::Logger::Get().Log(::minos::LogLevel::level, __FILE__,      \
                             __LINE__, (message), __VA_ARGS__)

#endif  // MINOS_UTIL_LOGGING_H_
