#ifndef MINOS_UTIL_RANDOM_H_
#define MINOS_UTIL_RANDOM_H_

#include <cstdint>

namespace minos {

/// Deterministic pseudo-random generator (SplitMix64 core). Used by the
/// speech synthesizer, workload generators and device models so that every
/// experiment is reproducible from its seed.
class Random {
 public:
  /// Seeds the generator; equal seeds yield equal streams.
  explicit Random(uint64_t seed) : state_(seed + 0x9E3779B97F4A7C15ULL) {}

  /// Next raw 64-bit value.
  uint64_t Next64();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Approximately normal deviate with the given mean/stddev
  /// (12-uniform sum method; deterministic and cheap).
  double Gaussian(double mean, double stddev);

 private:
  uint64_t state_;
};

}  // namespace minos

#endif  // MINOS_UTIL_RANDOM_H_
