#include "minos/util/random.h"

namespace minos {

uint64_t Random::Next64() {
  state_ += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Random::Uniform(uint64_t bound) {
  if (bound == 0) return 0;
  // Rejection sampling to remove modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const uint64_t r = Next64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Random::UniformRange(int64_t lo, int64_t hi) {
  if (lo >= hi) return lo;
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(Uniform(span));
}

double Random::NextDouble() {
  return static_cast<double>(Next64() >> 11) * (1.0 / 9007199254740992.0);
}

bool Random::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Random::Gaussian(double mean, double stddev) {
  double sum = 0.0;
  for (int i = 0; i < 12; ++i) sum += NextDouble();
  return mean + stddev * (sum - 6.0);
}

}  // namespace minos
