#ifndef MINOS_UTIL_STRING_UTIL_H_
#define MINOS_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace minos {

/// Splits `input` on the single character `sep`. Empty fields are kept.
std::vector<std::string> SplitString(std::string_view input, char sep);

/// Splits `input` into whitespace-separated tokens (no empties).
std::vector<std::string> SplitWords(std::string_view input);

/// Removes leading and trailing ASCII whitespace.
std::string_view TrimWhitespace(std::string_view input);

/// ASCII lowercase copy.
std::string AsciiToLower(std::string_view input);

/// Canonical content-word folding, shared by every index build and every
/// query path (text::WordIndex::Build, the object server's content index,
/// the ranked query engine): trailing non-alphanumerics stripped, then
/// ASCII-lowercased. "Chapter," and "chapter" fold to the same key, so a
/// query folds exactly like the index it probes.
std::string FoldWord(std::string_view word);

/// True if `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// True if `text` ends with `suffix`.
bool EndsWith(std::string_view text, std::string_view suffix);

/// FNV-1a 64-bit hash, used for deterministic page digests in the figure
/// reproduction benches.
uint64_t Fnv1a64(std::string_view data);

/// Renders `us` microseconds as a compact human-readable duration
/// (e.g. "2.50s", "130ms", "75us").
std::string FormatDuration(int64_t us);

/// Renders a byte count as e.g. "3.2MB", "12KB", "640B".
std::string FormatBytes(uint64_t bytes);

}  // namespace minos

#endif  // MINOS_UTIL_STRING_UTIL_H_
