#ifndef MINOS_UTIL_CLOCK_H_
#define MINOS_UTIL_CLOCK_H_

#include <cstdint>

namespace minos {

/// Microseconds — the time unit used throughout the MINOS simulation.
using Micros = int64_t;

/// Converts whole milliseconds to Micros.
constexpr Micros MillisToMicros(int64_t ms) { return ms * 1000; }

/// Converts whole seconds to Micros.
constexpr Micros SecondsToMicros(int64_t s) { return s * 1000000; }

/// Converts Micros to (truncated) milliseconds.
constexpr int64_t MicrosToMillis(Micros us) { return us / 1000; }

/// Converts Micros to seconds as a double.
constexpr double MicrosToSeconds(Micros us) {
  return static_cast<double>(us) / 1e6;
}

/// Abstract clock. All time-dependent MINOS components (audio playback,
/// device models, tours, process simulation) take a Clock so that tests and
/// benchmarks run under simulated time deterministically.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time in microseconds since an arbitrary epoch.
  virtual Micros Now() const = 0;

  /// Blocks (or, for a simulated clock, advances time) for `duration`.
  virtual void Sleep(Micros duration) = 0;
};

/// Deterministic simulated clock. Now() returns a counter that only moves
/// when Sleep() or Advance() is called. This is the clock used everywhere
/// in the reproduction: the original MINOS ran against wall-clock audio
/// hardware; we substitute virtual time so that audio playback, pauses,
/// tours and queueing models are exactly reproducible.
class SimClock final : public Clock {
 public:
  /// Starts at time zero (or `start`).
  explicit SimClock(Micros start = 0) : now_(start) {}

  Micros Now() const override { return now_; }

  /// Advances simulated time; negative durations are ignored.
  void Sleep(Micros duration) override {
    if (duration > 0) now_ += duration;
  }

  /// Alias of Sleep for call sites that read better as an explicit advance.
  void Advance(Micros duration) { Sleep(duration); }

  /// Moves the clock to an absolute time, which must not be in the past.
  void AdvanceTo(Micros t) {
    if (t > now_) now_ = t;
  }

  /// Returns to an earlier absolute time (no-op when `t` is not in the
  /// past). Only the prefetch pipeline uses this: it runs speculative
  /// background work inline on the shared clock, measures its cost, and
  /// rewinds so the foreground never observes the stall — the work is
  /// modeled as overlapping presentation time on a background channel.
  void RewindTo(Micros t) {
    if (t >= 0 && t < now_) now_ = t;
  }

 private:
  Micros now_;
};

/// Real wall clock (CLOCK_MONOTONIC). Used only by benchmark harnesses that
/// want to report real elapsed time; the library itself always takes an
/// injected Clock.
class WallClock final : public Clock {
 public:
  Micros Now() const override;
  void Sleep(Micros duration) override;
};

}  // namespace minos

#endif  // MINOS_UTIL_CLOCK_H_
