#ifndef MINOS_UTIL_CLOCK_H_
#define MINOS_UTIL_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace minos {

/// Microseconds — the time unit used throughout the MINOS simulation.
using Micros = int64_t;

/// Converts whole milliseconds to Micros.
constexpr Micros MillisToMicros(int64_t ms) { return ms * 1000; }

/// Converts whole seconds to Micros.
constexpr Micros SecondsToMicros(int64_t s) { return s * 1000000; }

/// Converts Micros to (truncated) milliseconds.
constexpr int64_t MicrosToMillis(Micros us) { return us / 1000; }

/// Converts Micros to seconds as a double.
constexpr double MicrosToSeconds(Micros us) {
  return static_cast<double>(us) / 1e6;
}

/// Abstract clock. All time-dependent MINOS components (audio playback,
/// device models, tours, process simulation) take a Clock so that tests and
/// benchmarks run under simulated time deterministically.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time in microseconds since an arbitrary epoch.
  virtual Micros Now() const = 0;

  /// Blocks (or, for a simulated clock, advances time) for `duration`.
  virtual void Sleep(Micros duration) = 0;
};

/// Deterministic simulated clock. Now() returns a counter that only moves
/// when Sleep() or Advance() is called. This is the clock used everywhere
/// in the reproduction: the original MINOS ran against wall-clock audio
/// hardware; we substitute virtual time so that audio playback, pauses,
/// tours and queueing models are exactly reproducible.
///
/// ## Frames (multi-core virtual time)
///
/// The task pool (runtime::TaskPool) runs simulation work on real worker
/// threads while keeping virtual time deterministic. While a Frame is
/// installed on a thread, every clock operation that thread performs —
/// Now/Sleep/Advance/AdvanceTo/RewindTo — acts on the frame's private
/// time instead of the shared base time. Concurrent tasks therefore each
/// see an isolated timeline starting at the epoch time; the pool's
/// barrier folds the per-frame costs back into the base clock (max for
/// overlapping work, sum for serialized work). The base time is frozen
/// while an epoch runs, so frame installation is the only synchronization
/// a task needs.
class SimClock final : public Clock {
 public:
  /// Starts at time zero (or `start`).
  explicit SimClock(Micros start = 0) : now_(start) {}

  /// A private virtual timeline for the installing thread, scoped RAII:
  /// installation pushes onto a per-thread stack, destruction pops. A
  /// frame belongs to one SimClock; operations on a different clock on
  /// the same thread fall through to that clock's own innermost frame
  /// (or its base time), so nested pools over distinct clocks compose.
  class Frame {
   public:
    Frame(SimClock* clock, Micros start)
        : clock_(clock), start_(start), now_(start), prev_(t_top_) {
      t_top_ = this;
    }
    ~Frame() { t_top_ = prev_; }

    Frame(const Frame&) = delete;
    Frame& operator=(const Frame&) = delete;

    /// The frame's current virtual time.
    Micros now() const { return now_; }
    /// Virtual time consumed since installation (>= 0; rewinds below the
    /// start clamp to the start, matching RewindTo's floor of zero cost).
    Micros elapsed() const { return now_ - start_; }

   private:
    friend class SimClock;
    SimClock* clock_;
    Micros start_;
    Micros now_;
    Frame* prev_;
  };

  Micros Now() const override {
    if (const Frame* f = CurrentFrame()) return f->now_;
    return now_.load(std::memory_order_relaxed);
  }

  /// Advances simulated time; negative durations are ignored.
  void Sleep(Micros duration) override {
    if (duration <= 0) return;
    if (Frame* f = CurrentFrame()) {
      f->now_ += duration;
    } else {
      now_.store(now_.load(std::memory_order_relaxed) + duration,
                 std::memory_order_relaxed);
    }
  }

  /// Alias of Sleep for call sites that read better as an explicit advance.
  void Advance(Micros duration) { Sleep(duration); }

  /// Moves the clock to an absolute time, which must not be in the past.
  void AdvanceTo(Micros t) {
    if (Frame* f = CurrentFrame()) {
      if (t > f->now_) f->now_ = t;
      return;
    }
    if (t > now_.load(std::memory_order_relaxed))
      now_.store(t, std::memory_order_relaxed);
  }

  /// Returns to an earlier absolute time (no-op when `t` is not in the
  /// past). The prefetch pipeline and the scatter/gather router use this:
  /// they run overlapping work inline on the shared clock, measure its
  /// cost, and rewind so the foreground never observes the stall — the
  /// work is modeled as overlapping presentation time. Inside a task-pool
  /// frame a rewind never goes below the frame's start: the frame's cost
  /// contribution stays non-negative.
  void RewindTo(Micros t) {
    if (Frame* f = CurrentFrame()) {
      const Micros floor = f->start_;
      const Micros target = t < floor ? floor : t;
      if (target < f->now_) f->now_ = target;
      return;
    }
    if (t >= 0 && t < now_.load(std::memory_order_relaxed))
      now_.store(t, std::memory_order_relaxed);
  }

 private:
  /// The calling thread's innermost frame belonging to this clock, or
  /// null when the thread operates on the base time.
  Frame* CurrentFrame() const {
    for (Frame* f = t_top_; f != nullptr; f = f->prev_)
      if (f->clock_ == this) return f;
    return nullptr;
  }

  /// Base virtual time. Atomic only so worker threads that read the base
  /// (through a frame's start, or a clock without a frame) stay race-free
  /// under TSan; all base mutations happen between epochs on one thread.
  std::atomic<Micros> now_;

  /// Innermost installed frame of the calling thread (any clock).
  inline static thread_local Frame* t_top_ = nullptr;
};

/// Real wall clock (CLOCK_MONOTONIC). Used only by benchmark harnesses that
/// want to report real elapsed time; the library itself always takes an
/// injected Clock.
class WallClock final : public Clock {
 public:
  Micros Now() const override;
  void Sleep(Micros duration) override;
};

}  // namespace minos

#endif  // MINOS_UTIL_CLOCK_H_
