#ifndef MINOS_UTIL_STATUS_H_
#define MINOS_UTIL_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace minos {

/// Result of a fallible operation, in the style of RocksDB/Abseil status
/// objects. MINOS does not use C++ exceptions; every operation that can
/// fail returns a Status (or a StatusOr<T> when it also produces a value).
///
/// A Status is cheap to copy and move, and carries a machine-readable code
/// plus a human-readable message describing the failure.
class Status {
 public:
  /// Machine-readable failure category.
  enum class Code : int {
    kOk = 0,
    kNotFound = 1,         ///< Object, page, segment, or file does not exist.
    kInvalidArgument = 2,  ///< Caller passed an out-of-domain argument.
    kCorruption = 3,       ///< Stored bytes failed to decode.
    kFailedPrecondition = 4,  ///< Operation illegal in the current state.
    kOutOfRange = 5,       ///< Position past the end of a part or device.
    kUnsupported = 6,      ///< Capability not available for this object.
    kResourceExhausted = 7,  ///< Device, cache, or queue capacity exceeded.
    kInternal = 8,         ///< Invariant violation inside MINOS itself.
    kUnavailable = 9,      ///< Transient transport/server failure; retryable.
    kDeadlineExceeded = 10,  ///< Operation exceeded its time budget.
  };

  /// Constructs an OK status.
  Status() : code_(Code::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers, one per code.
  static Status OK() { return Status(); }
  static Status NotFound(std::string_view msg) {
    return Status(Code::kNotFound, msg);
  }
  static Status InvalidArgument(std::string_view msg) {
    return Status(Code::kInvalidArgument, msg);
  }
  static Status Corruption(std::string_view msg) {
    return Status(Code::kCorruption, msg);
  }
  static Status FailedPrecondition(std::string_view msg) {
    return Status(Code::kFailedPrecondition, msg);
  }
  static Status OutOfRange(std::string_view msg) {
    return Status(Code::kOutOfRange, msg);
  }
  static Status Unsupported(std::string_view msg) {
    return Status(Code::kUnsupported, msg);
  }
  static Status ResourceExhausted(std::string_view msg) {
    return Status(Code::kResourceExhausted, msg);
  }
  static Status Internal(std::string_view msg) {
    return Status(Code::kInternal, msg);
  }
  static Status Unavailable(std::string_view msg) {
    return Status(Code::kUnavailable, msg);
  }
  static Status DeadlineExceeded(std::string_view msg) {
    return Status(Code::kDeadlineExceeded, msg);
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == Code::kOk; }

  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsFailedPrecondition() const {
    return code_ == Code::kFailedPrecondition;
  }
  bool IsOutOfRange() const { return code_ == Code::kOutOfRange; }
  bool IsUnsupported() const { return code_ == Code::kUnsupported; }
  bool IsResourceExhausted() const {
    return code_ == Code::kResourceExhausted;
  }
  bool IsInternal() const { return code_ == Code::kInternal; }
  bool IsUnavailable() const { return code_ == Code::kUnavailable; }
  bool IsDeadlineExceeded() const {
    return code_ == Code::kDeadlineExceeded;
  }

  /// The failure category.
  Code code() const { return code_; }

  /// The human-readable message (empty for OK).
  const std::string& message() const { return message_; }

  /// Renders e.g. "NotFound: object 42 is not archived" or "OK".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  Status(Code code, std::string_view msg) : code_(code), message_(msg) {}

  Code code_;
  std::string message_;
};

/// Returns the canonical spelling of a status code ("NotFound", ...).
std::string_view StatusCodeName(Status::Code code);

}  // namespace minos

/// Propagates a non-OK Status to the caller. Usable only in functions that
/// themselves return Status.
#define MINOS_RETURN_IF_ERROR(expr)                \
  do {                                             \
    ::minos::Status _minos_status_ = (expr);       \
    if (!_minos_status_.ok()) return _minos_status_; \
  } while (0)

#endif  // MINOS_UTIL_STATUS_H_
