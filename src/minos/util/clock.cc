#include "minos/util/clock.h"

#include <chrono>
#include <thread>

namespace minos {

Micros WallClock::Now() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void WallClock::Sleep(Micros duration) {
  if (duration > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(duration));
  }
}

}  // namespace minos
