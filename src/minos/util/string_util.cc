#include "minos/util/string_util.h"

#include <cctype>
#include <cstdio>

namespace minos {

std::vector<std::string> SplitString(std::string_view input, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= input.size(); ++i) {
    if (i == input.size() || input[i] == sep) {
      out.emplace_back(input.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWords(std::string_view input) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < input.size()) {
    while (i < input.size() &&
           std::isspace(static_cast<unsigned char>(input[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < input.size() &&
           !std::isspace(static_cast<unsigned char>(input[i]))) {
      ++i;
    }
    if (i > start) out.emplace_back(input.substr(start, i - start));
  }
  return out;
}

std::string_view TrimWhitespace(std::string_view input) {
  while (!input.empty() &&
         std::isspace(static_cast<unsigned char>(input.front()))) {
    input.remove_prefix(1);
  }
  while (!input.empty() &&
         std::isspace(static_cast<unsigned char>(input.back()))) {
    input.remove_suffix(1);
  }
  return input;
}

std::string AsciiToLower(std::string_view input) {
  std::string out(input);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string FoldWord(std::string_view word) {
  while (!word.empty() &&
         !std::isalnum(static_cast<unsigned char>(word.back()))) {
    word.remove_suffix(1);
  }
  return AsciiToLower(word);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

uint64_t Fnv1a64(std::string_view data) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string FormatDuration(int64_t us) {
  char buf[32];
  if (us >= 1000000) {
    std::snprintf(buf, sizeof(buf), "%.2fs", static_cast<double>(us) / 1e6);
  } else if (us >= 1000) {
    std::snprintf(buf, sizeof(buf), "%lldms",
                  static_cast<long long>(us / 1000));
  } else {
    std::snprintf(buf, sizeof(buf), "%lldus", static_cast<long long>(us));
  }
  return buf;
}

std::string FormatBytes(uint64_t bytes) {
  char buf[32];
  if (bytes >= 1024ULL * 1024ULL * 1024ULL) {
    std::snprintf(buf, sizeof(buf), "%.1fGB",
                  static_cast<double>(bytes) / (1024.0 * 1024.0 * 1024.0));
  } else if (bytes >= 1024ULL * 1024ULL) {
    std::snprintf(buf, sizeof(buf), "%.1fMB",
                  static_cast<double>(bytes) / (1024.0 * 1024.0));
  } else if (bytes >= 1024ULL) {
    std::snprintf(buf, sizeof(buf), "%lluKB",
                  static_cast<unsigned long long>(bytes / 1024));
  } else {
    std::snprintf(buf, sizeof(buf), "%lluB",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

}  // namespace minos
