#ifndef MINOS_UTIL_STATUSOR_H_
#define MINOS_UTIL_STATUSOR_H_

#include <cassert>
#include <optional>
#include <utility>

#include "minos/util/status.h"

namespace minos {

/// Holds either a value of type T or a non-OK Status explaining why the
/// value could not be produced. The usual usage pattern is:
///
///   StatusOr<VisualPage> page = formatter.Paginate(doc, 3);
///   if (!page.ok()) return page.status();
///   Render(*page);
template <typename T>
class StatusOr {
 public:
  /// Constructs from a failure. `status` must not be OK; an OK status here
  /// indicates a logic error and is converted to an Internal error.
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status::Internal("StatusOr constructed from OK status");
    }
  }

  /// Constructs from a value; the StatusOr is OK.
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}

  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr(StatusOr&&) = default;
  StatusOr& operator=(StatusOr&&) = default;

  /// True iff a value is present.
  bool ok() const { return status_.ok(); }

  /// The status (OK when a value is present).
  const Status& status() const { return status_; }

  /// The contained value. Must only be called when ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }

  const T* operator->() const {
    assert(ok());
    return &*value_;
  }
  T* operator->() {
    assert(ok());
    return &*value_;
  }

  /// Returns the value if present, otherwise `fallback`.
  T value_or(T fallback) const& { return ok() ? *value_ : fallback; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace minos

/// Evaluates `rexpr` (a StatusOr<T>); on failure propagates the status,
/// on success binds the value to `lhs`.
#define MINOS_ASSIGN_OR_RETURN(lhs, rexpr)              \
  MINOS_ASSIGN_OR_RETURN_IMPL_(                         \
      MINOS_STATUS_CONCAT_(_minos_statusor_, __LINE__), lhs, rexpr)

#define MINOS_STATUS_CONCAT_INNER_(a, b) a##b
#define MINOS_STATUS_CONCAT_(a, b) MINOS_STATUS_CONCAT_INNER_(a, b)
#define MINOS_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                 \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

#endif  // MINOS_UTIL_STATUSOR_H_
