#include "minos/util/logging.h"

#include <cstdio>

namespace minos {

Logger& Logger::Get() {
  static Logger* logger = new Logger();
  return *logger;
}

void Logger::Log(LogLevel level, std::string_view file, int line,
                 const std::string& message) {
  if (level < threshold_) return;
  ++emitted_;
  const char* name = "?";
  switch (level) {
    case LogLevel::kDebug:
      name = "DEBUG";
      break;
    case LogLevel::kInfo:
      name = "INFO";
      break;
    case LogLevel::kWarning:
      name = "WARN";
      break;
    case LogLevel::kError:
      name = "ERROR";
      break;
  }
  // Strip directories from the file name for compact records.
  size_t slash = file.rfind('/');
  if (slash != std::string_view::npos) file.remove_prefix(slash + 1);
  std::fprintf(stderr, "[%s %.*s:%d] %s\n", name,
               static_cast<int>(file.size()), file.data(), line,
               message.c_str());
}

}  // namespace minos
