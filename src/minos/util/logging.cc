#include "minos/util/logging.h"

#include <cstdio>

namespace minos {

namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

std::string_view Basename(std::string_view file) {
  const size_t slash = file.rfind('/');
  if (slash != std::string_view::npos) file.remove_prefix(slash + 1);
  return file;
}

/// Minimal JSON string escaping for the kJsonLines format (duplicated
/// from obs/json.cc because util must not depend on obs).
std::string Escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

Logger& Logger::Get() {
  static Logger* logger = new Logger();
  return *logger;
}

std::string Logger::ModuleOf(std::string_view file) {
  const size_t at = file.rfind("minos/");
  if (at != std::string_view::npos) {
    std::string_view rest = file.substr(at + 6);
    const size_t slash = rest.find('/');
    if (slash != std::string_view::npos) {
      return std::string(rest.substr(0, slash));
    }
  }
  std::string_view base = Basename(file);
  const size_t dot = base.rfind('.');
  if (dot != std::string_view::npos) base = base.substr(0, dot);
  return std::string(base);
}

void Logger::Log(LogLevel level, std::string_view file, int line,
                 const std::string& message) {
  Log(level, file, line, message, {});
}

void Logger::Log(LogLevel level, std::string_view file, int line,
                 const std::string& message,
                 std::vector<std::pair<std::string, std::string>> fields) {
  LogRecord record;
  record.level = level;
  record.module = ModuleOf(file);
  record.file = std::string(Basename(file));
  record.line = line;
  record.message = message;
  record.fields = std::move(fields);
  Emit(record);
}

void Logger::Emit(const LogRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  LogLevel threshold = threshold_;
  if (auto it = module_thresholds_.find(record.module);
      it != module_thresholds_.end()) {
    threshold = it->second;
  }
  if (record.level < threshold) return;
  ++emitted_;
  if (sink_) {
    sink_(record);
    return;
  }
  switch (format_) {
    case LogFormat::kText: {
      std::string suffix;
      for (const auto& [key, value] : record.fields) {
        suffix += " " + key + "=" + value;
      }
      std::fprintf(stderr, "[%s %s:%d] %s%s\n", LevelName(record.level),
                   record.file.c_str(), record.line,
                   record.message.c_str(), suffix.c_str());
      break;
    }
    case LogFormat::kKeyValue: {
      std::string out = std::string("level=") + LevelName(record.level) +
                        " module=" + record.module + " file=" + record.file +
                        ":" + std::to_string(record.line) + " msg=\"" +
                        record.message + "\"";
      for (const auto& [key, value] : record.fields) {
        out += " " + key + "=" + value;
      }
      std::fprintf(stderr, "%s\n", out.c_str());
      break;
    }
    case LogFormat::kJsonLines: {
      std::string out = std::string("{\"level\":\"") +
                        LevelName(record.level) + "\",\"module\":\"" +
                        Escape(record.module) + "\",\"file\":\"" +
                        Escape(record.file) + "\",\"line\":" +
                        std::to_string(record.line) + ",\"msg\":\"" +
                        Escape(record.message) + "\"";
      if (!record.fields.empty()) {
        out += ",\"fields\":{";
        for (size_t i = 0; i < record.fields.size(); ++i) {
          if (i > 0) out += ",";
          out += "\"" + Escape(record.fields[i].first) + "\":\"" +
                 Escape(record.fields[i].second) + "\"";
        }
        out += "}";
      }
      out += "}";
      std::fprintf(stderr, "%s\n", out.c_str());
      break;
    }
  }
}

void Logger::set_threshold(LogLevel level) {
  std::lock_guard<std::mutex> lock(mu_);
  threshold_ = level;
}

LogLevel Logger::threshold() const {
  std::lock_guard<std::mutex> lock(mu_);
  return threshold_;
}

void Logger::set_module_threshold(std::string_view module, LogLevel level) {
  std::lock_guard<std::mutex> lock(mu_);
  module_thresholds_[std::string(module)] = level;
}

void Logger::clear_module_thresholds() {
  std::lock_guard<std::mutex> lock(mu_);
  module_thresholds_.clear();
}

void Logger::set_format(LogFormat format) {
  std::lock_guard<std::mutex> lock(mu_);
  format_ = format;
}

LogFormat Logger::format() const {
  std::lock_guard<std::mutex> lock(mu_);
  return format_;
}

void Logger::SetSink(std::function<void(const LogRecord&)> sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sink_ = std::move(sink);
}

int Logger::emitted_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return emitted_;
}

}  // namespace minos
