#ifndef MINOS_UTIL_CODING_H_
#define MINOS_UTIL_CODING_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "minos/util/status.h"

namespace minos {

/// Byte-level codec used by the object descriptor, composition file and
/// archiver formats. Little-endian fixed-width integers plus LEB128-style
/// varints and length-prefixed strings — the same vocabulary RocksDB uses
/// for its file formats.

/// Appends a little-endian 32-bit value.
void PutFixed32(std::string* dst, uint32_t value);

/// Appends a little-endian 64-bit value.
void PutFixed64(std::string* dst, uint64_t value);

/// Appends a varint-encoded 32-bit value (1-5 bytes).
void PutVarint32(std::string* dst, uint32_t value);

/// Appends a varint-encoded 64-bit value (1-10 bytes).
void PutVarint64(std::string* dst, uint64_t value);

/// Appends a varint length prefix followed by the bytes of `value`.
void PutLengthPrefixed(std::string* dst, std::string_view value);

/// CRC-32 (IEEE 802.3 polynomial, reflected) of `bytes`. Used as the part
/// checksum in the archival format so that corrupted media parts are
/// detected at decode time instead of being rendered.
uint32_t Crc32(std::string_view bytes);

/// Cursor over encoded bytes. Each Get* consumes from the front and returns
/// Corruption if the input is truncated or malformed.
class Decoder {
 public:
  /// Decodes from `data`, which must outlive the Decoder.
  explicit Decoder(std::string_view data) : data_(data) {}

  /// Bytes not yet consumed.
  size_t remaining() const { return data_.size(); }

  /// True when all input has been consumed.
  bool empty() const { return data_.empty(); }

  Status GetFixed32(uint32_t* value);
  Status GetFixed64(uint64_t* value);
  Status GetVarint32(uint32_t* value);
  Status GetVarint64(uint64_t* value);

  /// Reads a length-prefixed string into `value` (copies the bytes).
  Status GetLengthPrefixed(std::string* value);

  /// Reads exactly `n` raw bytes.
  Status GetRaw(size_t n, std::string* value);

 private:
  std::string_view data_;
};

}  // namespace minos

#endif  // MINOS_UTIL_CODING_H_
