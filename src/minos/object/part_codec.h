#ifndef MINOS_OBJECT_PART_CODEC_H_
#define MINOS_OBJECT_PART_CODEC_H_

#include <map>
#include <string>

#include "minos/text/document.h"
#include "minos/util/statusor.h"
#include "minos/voice/voice_document.h"

namespace minos::object {

/// Byte codecs for the media parts of a multimedia object: these are the
/// "final form ... device and software package independent" (§4) encodings
/// that composition files and the archiver store.
///
/// Every encoded part carries a trailing CRC-32 over its body, verified
/// before structural decoding: bytes corrupted on the device or on the
/// wire fail with Corruption (a retryable failure on the fetch path)
/// instead of being rendered to the user.

/// Encodes a text document (contents + logical components + emphasis).
std::string EncodeDocument(const text::Document& doc);

/// Decodes a text document.
StatusOr<text::Document> DecodeDocument(std::string_view bytes);

/// Encodes a voice document (PCM + word alignment + silences + tagged
/// logical components).
std::string EncodeVoiceDocument(const voice::VoiceDocument& doc);

/// Decodes a voice document.
StatusOr<voice::VoiceDocument> DecodeVoiceDocument(std::string_view bytes);

/// Attribute map used by MultimediaObject.
using AttributeMap = std::map<std::string, std::string, std::less<>>;

/// Encodes the attribute part.
std::string EncodeAttributes(const AttributeMap& attributes);

/// Decodes the attribute part.
StatusOr<AttributeMap> DecodeAttributes(std::string_view bytes);

}  // namespace minos::object

#endif  // MINOS_OBJECT_PART_CODEC_H_
