#ifndef MINOS_OBJECT_DESCRIPTOR_H_
#define MINOS_OBJECT_DESCRIPTOR_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "minos/image/bitmap.h"
#include "minos/image/graphics.h"
#include "minos/storage/composition_file.h"
#include "minos/storage/version_store.h"
#include "minos/text/formatter.h"
#include "minos/util/clock.h"
#include "minos/util/statusor.h"

namespace minos::object {

/// The principal way an object presents its information: "Each multimedia
/// object has a driving mode associated with it ... either visual or
/// audio. ... The reason for enforcing a driving mode for each multimedia
/// object is so that the users do not become confused trying to navigate
/// in two different media at the same time." (§2)
enum class DrivingMode : uint8_t { kVisual = 0, kAudio = 1 };

/// A text segment anchor: "Text is linear. Two points identify the
/// beginning and the end of a text segment. The two points may coincide."
/// (§2) Offsets are characters into the object text part.
struct TextAnchor {
  uint64_t begin = 0;
  uint64_t end = 0;
  /// A point anchor (begin == end) contains exactly its point.
  bool Contains(uint64_t pos) const {
    if (begin == end) return pos == begin;
    return pos >= begin && pos < end;
  }
  friend bool operator==(const TextAnchor&, const TextAnchor&) = default;
};

/// A voice segment anchor (sample offsets into the object voice part).
/// begin == end identifies a particular *point* within the voice part.
struct VoiceAnchor {
  uint64_t begin = 0;
  uint64_t end = 0;
  /// A point anchor (begin == end) contains exactly its point.
  bool Contains(uint64_t pos) const {
    if (begin == end) return pos == begin;
    return pos >= begin && pos < end;
  }
  friend bool operator==(const VoiceAnchor&, const VoiceAnchor&) = default;
};

/// A voice logical message: "unstructured audio segments (typically
/// short). They can be attached to either visual mode objects or audio
/// mode objects ... The semantics are that the voice logical message will
/// be played when the user first branches into the corresponding segments
/// during browsing." (§2)
struct VoiceLogicalMessage {
  std::string transcript;  ///< Words handed to the speech synthesizer.
  /// Visual-mode attachments: a text segment and/or an image (by index
  /// into the object image part). Messages may attach to overlapping
  /// segments.
  std::optional<TextAnchor> text_anchor;
  std::optional<uint32_t> image_index;
  /// Audio-mode attachment: a voice segment or point.
  std::optional<VoiceAnchor> voice_anchor;
};

/// A visual logical message: "short (at most one visual page long)
/// segments of visual information (text and/or images). They are
/// unstructured in the sense that they are always displayed in the same
/// page of the presentation form (top part)." (§2)
struct VisualLogicalMessage {
  std::string text;                     ///< Text content (may be empty).
  std::optional<uint32_t> image_index;  ///< Pinned image, if any.
  /// Audio-mode attachments: displayed for the duration of each related
  /// voice segment.
  std::vector<VoiceAnchor> voice_anchors;
  /// Visual-mode attachments: pinned at the top while the lower screen
  /// pages through the related text.
  std::vector<TextAnchor> text_anchors;
  /// "The user has the option to specify that the visual logical message
  /// is displayed only once" per branch into a related segment.
  bool display_once = false;
};

/// How the transparencies of a set are presented: "The first method is by
/// displaying every transparency on the top of one another ... The second
/// method is by displaying every transparency of the set separately, on
/// the top of the last page before the transparency set." (§2)
enum class TransparencyDisplay : uint8_t { kStacked = 0, kSeparate = 1 };

/// An image placed on a visual page.
struct PlacedImage {
  uint32_t image_index = 0;  ///< Index into the object image part.
  image::Rect placement;     ///< Where on the page it lands.
};

/// One page of the visual presentation form.
struct VisualPageSpec {
  enum class Kind : uint8_t {
    kNormal = 0,
    kTransparency = 1,  ///< Overlays the previous page.
    kOverwrite = 2,     ///< Inked pixels replace, blanks leave intact.
  };
  Kind kind = Kind::kNormal;
  /// 1-based formatted text page shown on this visual page (0 = none).
  uint32_t text_page = 0;
  std::vector<PlacedImage> images;
};

/// A transparency set: an ordered run of consecutive transparency pages.
struct TransparencySetSpec {
  uint32_t first_page = 0;  ///< Index into VisualPageSpec vector.
  uint32_t count = 0;
  TransparencyDisplay method = TransparencyDisplay::kStacked;
};

/// A process simulation: "an ordered set of consecutive visual pages which
/// is displayed one after the other automatically ... When audio messages
/// are attached the next visual page is only shown after the logical audio
/// message has been played. The relative speed ... is set at object
/// creation time but it may be altered by the user." (§2)
struct ProcessSimulationSpec {
  uint32_t first_page = 0;
  uint32_t count = 0;
  Micros page_interval = SecondsToMicros(1);
  /// Transcripts of per-page voice messages (empty string = none).
  std::vector<std::string> page_messages;
};

/// A relevance inside a relevant object: a section of its text, a part of
/// one of its images, or one of its voice segments that relates to the
/// parent section (§2).
struct Relevance {
  std::optional<TextAnchor> text_span;   ///< Begin/end indicators.
  std::optional<uint32_t> image_index;   ///< Image carrying the polygon.
  std::optional<uint32_t> image_object_id;  ///< Polygon drawn on top.
  std::optional<VoiceAnchor> voice_span; ///< Played independently.
};

/// A link from a section of this (parent) object to an independent
/// relevant object (§2). The indicator is displayed while browsing the
/// anchored section; following it suspends the parent's driving mode.
struct RelevantObjectLink {
  storage::ObjectId target = 0;
  std::string indicator_label;
  /// Where in the parent the indicator shows (text span for visual-mode
  /// parents, voice span for audio-mode parents; image anchors use
  /// parent_image_index).
  std::optional<TextAnchor> parent_text_anchor;
  std::optional<VoiceAnchor> parent_voice_anchor;
  std::optional<uint32_t> parent_image_index;
  /// Relevances within the target object.
  std::vector<Relevance> relevances;
};

/// Where the payload of one object part lives: inside the object's own
/// composition file, or at an offset within the archiver ("the object
/// descriptor points either to offsets within the composition file or to
/// offsets within the archiver", §4).
struct PartPointer {
  std::string name;
  storage::DataType type = storage::DataType::kOther;
  bool in_archiver = false;
  uint64_t offset = 0;
  uint64_t length = 0;
};

/// The multimedia object descriptor: "The data interrelationships that are
/// useful for multimedia object presentation and browsing are encoded
/// within the multimedia object descriptor. The presentation manager uses
/// the descriptor in order to navigate through various parts of an object
/// during browsing." (§4)
class ObjectDescriptor {
 public:
  ObjectDescriptor() = default;

  DrivingMode driving_mode = DrivingMode::kVisual;

  /// Text layout the formatter used; the presentation manager reformats
  /// the text part with the same layout so page numbers in `pages` match.
  text::PageLayout layout;

  std::vector<PartPointer> parts;
  std::vector<VisualPageSpec> pages;
  std::vector<VoiceLogicalMessage> voice_messages;
  std::vector<VisualLogicalMessage> visual_messages;
  std::vector<TransparencySetSpec> transparency_sets;
  std::vector<ProcessSimulationSpec> process_simulations;
  std::vector<RelevantObjectLink> relevant_objects;

  /// Tours and views are authored per image; the descriptor stores tours
  /// as (image index, serialized tour) to keep image data self-contained.
  struct TourSpec {
    uint32_t image_index = 0;
    int view_width = 0;
    int view_height = 0;
    std::vector<image::Point> positions;
    /// One per position ("" = none).
    std::vector<std::string> audio_messages;
  };
  std::vector<TourSpec> tours;

  /// Finds a part pointer by name.
  StatusOr<PartPointer> FindPart(std::string_view name) const;

  /// Rebases every composition-file offset by `delta` (used when the
  /// composition file is placed at an offset within the archiver, §4:
  /// "the offsets of the descriptor have to be incremented by the offset
  /// where the composition file is placed within the archiver").
  void RebaseCompositionOffsets(uint64_t delta);

  /// Serialization.
  std::string Serialize() const;
  static StatusOr<ObjectDescriptor> Deserialize(std::string_view bytes);
};

}  // namespace minos::object

#endif  // MINOS_OBJECT_DESCRIPTOR_H_
