#include "minos/object/multimedia_object.h"

#include "minos/object/part_codec.h"
#include "minos/storage/composition_file.h"
#include "minos/util/coding.h"

namespace minos::object {

using storage::CompositionFile;
using storage::DataType;

Status MultimediaObject::CheckEditable() const {
  if (state_ != ObjectState::kEditing) {
    return Status::FailedPrecondition(
        "object is archived and cannot be modified");
  }
  return Status::OK();
}

Status MultimediaObject::SetAttribute(std::string name, std::string value) {
  MINOS_RETURN_IF_ERROR(CheckEditable());
  attributes_[std::move(name)] = std::move(value);
  return Status::OK();
}

StatusOr<std::string> MultimediaObject::GetAttribute(
    std::string_view name) const {
  auto it = attributes_.find(name);
  if (it == attributes_.end()) {
    return Status::NotFound("no attribute '" + std::string(name) + "'");
  }
  return it->second;
}

Status MultimediaObject::SetTextPart(text::Document doc) {
  MINOS_RETURN_IF_ERROR(CheckEditable());
  text_ = std::move(doc);
  return Status::OK();
}

Status MultimediaObject::SetVoicePart(voice::VoiceDocument doc) {
  MINOS_RETURN_IF_ERROR(CheckEditable());
  voice_ = std::move(doc);
  return Status::OK();
}

StatusOr<uint32_t> MultimediaObject::AddImage(image::Image img) {
  MINOS_RETURN_IF_ERROR(CheckEditable());
  images_.push_back(std::move(img));
  return static_cast<uint32_t>(images_.size() - 1);
}

Status MultimediaObject::ValidateDescriptor() const {
  const uint32_t image_count = static_cast<uint32_t>(images_.size());
  const uint64_t text_size = text_ ? text_->size() : 0;
  const uint64_t voice_size = voice_ ? voice_->pcm().size() : 0;

  auto check_image = [&](const std::optional<uint32_t>& idx,
                         const char* what) -> Status {
    if (idx.has_value() && *idx >= image_count) {
      return Status::InvalidArgument(std::string(what) +
                                     " references a missing image");
    }
    return Status::OK();
  };
  auto check_text = [&](const std::optional<TextAnchor>& a,
                        const char* what) -> Status {
    if (a.has_value() && a->end > text_size) {
      return Status::InvalidArgument(std::string(what) +
                                     " text anchor past end of text part");
    }
    return Status::OK();
  };
  auto check_voice = [&](const std::optional<VoiceAnchor>& a,
                         const char* what) -> Status {
    if (a.has_value() && a->end > voice_size) {
      return Status::InvalidArgument(std::string(what) +
                                     " voice anchor past end of voice part");
    }
    return Status::OK();
  };

  for (const VisualPageSpec& page : descriptor_.pages) {
    for (const PlacedImage& pi : page.images) {
      if (pi.image_index >= image_count) {
        return Status::InvalidArgument(
            "page places a missing image");
      }
    }
  }
  for (const VoiceLogicalMessage& m : descriptor_.voice_messages) {
    MINOS_RETURN_IF_ERROR(check_text(m.text_anchor, "voice message"));
    MINOS_RETURN_IF_ERROR(check_image(m.image_index, "voice message"));
    MINOS_RETURN_IF_ERROR(check_voice(m.voice_anchor, "voice message"));
  }
  for (const VisualLogicalMessage& m : descriptor_.visual_messages) {
    MINOS_RETURN_IF_ERROR(check_image(m.image_index, "visual message"));
    for (const TextAnchor& a : m.text_anchors) {
      MINOS_RETURN_IF_ERROR(check_text(a, "visual message"));
    }
    for (const VoiceAnchor& a : m.voice_anchors) {
      MINOS_RETURN_IF_ERROR(check_voice(a, "visual message"));
    }
  }
  const uint32_t page_count =
      static_cast<uint32_t>(descriptor_.pages.size());
  for (const TransparencySetSpec& t : descriptor_.transparency_sets) {
    if (t.first_page + t.count > page_count || t.count == 0) {
      return Status::InvalidArgument("transparency set page range invalid");
    }
    for (uint32_t p = t.first_page; p < t.first_page + t.count; ++p) {
      if (descriptor_.pages[p].kind != VisualPageSpec::Kind::kTransparency) {
        return Status::InvalidArgument(
            "transparency set covers a non-transparency page");
      }
    }
  }
  for (const ProcessSimulationSpec& p : descriptor_.process_simulations) {
    if (p.first_page + p.count > page_count || p.count == 0) {
      return Status::InvalidArgument(
          "process simulation page range invalid");
    }
    if (!p.page_messages.empty() && p.page_messages.size() != p.count) {
      return Status::InvalidArgument(
          "process simulation message count mismatch");
    }
  }
  for (const RelevantObjectLink& r : descriptor_.relevant_objects) {
    MINOS_RETURN_IF_ERROR(
        check_text(r.parent_text_anchor, "relevant object link"));
    MINOS_RETURN_IF_ERROR(
        check_voice(r.parent_voice_anchor, "relevant object link"));
    MINOS_RETURN_IF_ERROR(
        check_image(r.parent_image_index, "relevant object link"));
  }
  for (const ObjectDescriptor::TourSpec& t : descriptor_.tours) {
    if (t.image_index >= image_count) {
      return Status::InvalidArgument("tour references a missing image");
    }
    if (!t.audio_messages.empty() &&
        t.audio_messages.size() != t.positions.size()) {
      return Status::InvalidArgument("tour message count mismatch");
    }
  }
  if (descriptor_.driving_mode == DrivingMode::kAudio && !voice_) {
    return Status::InvalidArgument(
        "audio driving mode requires a voice part");
  }
  return Status::OK();
}

Status MultimediaObject::Archive() {
  MINOS_RETURN_IF_ERROR(CheckEditable());
  MINOS_RETURN_IF_ERROR(ValidateDescriptor());
  state_ = ObjectState::kArchived;
  return Status::OK();
}

StatusOr<std::string> MultimediaObject::SerializeArchived() const {
  if (state_ != ObjectState::kArchived) {
    return Status::FailedPrecondition(
        "only archived objects serialize to the archival format");
  }
  // Build the composition file: concatenation of the data parts.
  CompositionFile comp;
  ObjectDescriptor desc = descriptor_;
  desc.parts.clear();

  auto add_part = [&](const std::string& name, DataType type,
                      const std::string& payload) {
    const uint64_t offset = comp.AppendPart(name, type, payload);
    PartPointer p;
    p.name = name;
    p.type = type;
    p.in_archiver = false;
    p.offset = offset;
    p.length = payload.size();
    desc.parts.push_back(std::move(p));
  };

  add_part("attributes", DataType::kAttributes,
           EncodeAttributes(attributes_));
  if (text_) {
    add_part("text", DataType::kText, EncodeDocument(*text_));
  }
  if (voice_) {
    add_part("voice", DataType::kVoice, EncodeVoiceDocument(*voice_));
  }
  for (size_t i = 0; i < images_.size(); ++i) {
    add_part("image:" + std::to_string(i), DataType::kImage,
             images_[i].Serialize());
  }

  std::string out;
  PutLengthPrefixed(&out, desc.Serialize());
  out += comp.Serialize();
  return out;
}

StatusOr<MultimediaObject> MultimediaObject::DeserializeArchived(
    storage::ObjectId id, std::string_view bytes) {
  return DeserializeArchivedImpl(id, bytes, nullptr);
}

StatusOr<MultimediaObject> MultimediaObject::DeserializeArchivedLenient(
    storage::ObjectId id, std::string_view bytes,
    PartSalvageReport* report) {
  return DeserializeArchivedImpl(id, bytes, report);
}

StatusOr<MultimediaObject> MultimediaObject::DeserializeArchivedImpl(
    storage::ObjectId id, std::string_view bytes,
    PartSalvageReport* report) {
  Decoder dec(bytes);
  std::string desc_bytes;
  MINOS_RETURN_IF_ERROR(dec.GetLengthPrefixed(&desc_bytes));
  MINOS_ASSIGN_OR_RETURN(ObjectDescriptor desc,
                         ObjectDescriptor::Deserialize(desc_bytes));
  std::string comp_bytes;
  MINOS_RETURN_IF_ERROR(dec.GetRaw(dec.remaining(), &comp_bytes));
  MINOS_ASSIGN_OR_RETURN(CompositionFile comp,
                         CompositionFile::Deserialize(comp_bytes));

  MultimediaObject obj(id);
  for (const PartPointer& p : desc.parts) {
    if (p.in_archiver) {
      // Mailed-outside objects have all pointers resolved; archived
      // objects with archiver pointers are reassembled by the server.
      return Status::FailedPrecondition(
          "object still has archiver pointers; resolve before decoding");
    }
    std::string payload;
    MINOS_RETURN_IF_ERROR(comp.ReadRange(p.offset, p.length, &payload));
    switch (p.type) {
      case DataType::kAttributes: {
        StatusOr<AttributeMap> attrs = DecodeAttributes(payload);
        if (!attrs.ok()) {
          // Attributes are query metadata, not presented content: a
          // lenient decode drops them rather than failing the object.
          if (report == nullptr) return attrs.status();
          report->dropped_parts.push_back(p.name);
          break;
        }
        obj.attributes_ = std::move(attrs).value();
        break;
      }
      case DataType::kText: {
        MINOS_ASSIGN_OR_RETURN(text::Document doc, DecodeDocument(payload));
        obj.text_ = std::move(doc);
        break;
      }
      case DataType::kVoice: {
        StatusOr<voice::VoiceDocument> vdoc = DecodeVoiceDocument(payload);
        if (!vdoc.ok()) {
          // Symmetry's fallback direction: the object survives without
          // its voice part; the presentation manager degrades to text.
          if (report == nullptr) return vdoc.status();
          report->dropped_parts.push_back(p.name);
          break;
        }
        obj.voice_ = std::move(vdoc).value();
        break;
      }
      case DataType::kImage: {
        MINOS_ASSIGN_OR_RETURN(image::Image img,
                               image::Image::Deserialize(payload));
        obj.images_.push_back(std::move(img));
        break;
      }
      default:
        return Status::Corruption("unexpected part type in archive");
    }
  }
  obj.descriptor_ = std::move(desc);
  obj.state_ = ObjectState::kArchived;
  return obj;
}

}  // namespace minos::object
