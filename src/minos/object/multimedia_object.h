#ifndef MINOS_OBJECT_MULTIMEDIA_OBJECT_H_
#define MINOS_OBJECT_MULTIMEDIA_OBJECT_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "minos/image/image.h"
#include "minos/object/descriptor.h"
#include "minos/storage/version_store.h"
#include "minos/text/document.h"
#include "minos/util/statusor.h"
#include "minos/voice/voice_document.h"

namespace minos::object {

/// Lifecycle state: "Multimedia objects may be in an editing state or in
/// an archived state. Objects in an editing state are allowed to be
/// modified. Objects in the archived state are not allowed to be
/// modified." (§2)
enum class ObjectState : uint8_t { kEditing = 0, kArchived = 1 };

/// The unit of information in MINOS (§2): attributes, an object text part,
/// an object voice part, an object image part, a unique identifier, and a
/// descriptor encoding how the parts interrelate. All presentation and
/// browsing in the core library operates on archived MultimediaObjects.
class MultimediaObject {
 public:
  explicit MultimediaObject(storage::ObjectId id) : id_(id) {}

  storage::ObjectId id() const { return id_; }
  ObjectState state() const { return state_; }

  /// Attributes -----------------------------------------------------------

  /// Sets an attribute (FailedPrecondition once archived).
  Status SetAttribute(std::string name, std::string value);
  StatusOr<std::string> GetAttribute(std::string_view name) const;
  const std::map<std::string, std::string, std::less<>>& attributes() const {
    return attributes_;
  }

  /// Parts ----------------------------------------------------------------

  /// Installs the object text part (FailedPrecondition once archived).
  Status SetTextPart(text::Document doc);
  /// Installs the object voice part (FailedPrecondition once archived).
  Status SetVoicePart(voice::VoiceDocument doc);
  /// Appends an image; returns its index within the image part.
  StatusOr<uint32_t> AddImage(image::Image img);

  bool has_text() const { return text_.has_value(); }
  bool has_voice() const { return voice_.has_value(); }
  const text::Document& text_part() const { return *text_; }
  const voice::VoiceDocument& voice_part() const { return *voice_; }
  const std::vector<image::Image>& images() const { return images_; }

  /// Descriptor -----------------------------------------------------------

  /// Mutable while editing; the presentation manager reads the const one.
  ObjectDescriptor& descriptor() { return descriptor_; }
  const ObjectDescriptor& descriptor() const { return descriptor_; }

  /// State transition -------------------------------------------------------

  /// Validates the descriptor against the parts (image indices, anchor
  /// bounds, page ranges) and freezes the object. InvalidArgument with a
  /// specific message on the first inconsistency found.
  Status Archive();

  /// Archival format --------------------------------------------------------

  /// Serializes the archived object: descriptor concatenated with the
  /// composition file (§4). FailedPrecondition unless archived.
  StatusOr<std::string> SerializeArchived() const;

  /// Reconstructs an archived object from SerializeArchived() bytes.
  static StatusOr<MultimediaObject> DeserializeArchived(
      storage::ObjectId id, std::string_view bytes);

  /// Parts dropped by a lenient decode, by name ("voice", "attributes").
  struct PartSalvageReport {
    std::vector<std::string> dropped_parts;
    bool degraded() const { return !dropped_parts.empty(); }
  };

  /// Best-effort decode for the degraded-presentation path: a voice or
  /// attribute part that fails its checksum (or otherwise fails to
  /// decode) is dropped and recorded in `report` instead of failing the
  /// whole object. Corruption of the descriptor, the text part, or an
  /// image part is still fatal — those have no presentable fallback.
  static StatusOr<MultimediaObject> DeserializeArchivedLenient(
      storage::ObjectId id, std::string_view bytes,
      PartSalvageReport* report);

 private:
  static StatusOr<MultimediaObject> DeserializeArchivedImpl(
      storage::ObjectId id, std::string_view bytes,
      PartSalvageReport* report);
  Status CheckEditable() const;
  Status ValidateDescriptor() const;

  storage::ObjectId id_;
  ObjectState state_ = ObjectState::kEditing;
  std::map<std::string, std::string, std::less<>> attributes_;
  std::optional<text::Document> text_;
  std::optional<voice::VoiceDocument> voice_;
  std::vector<image::Image> images_;
  ObjectDescriptor descriptor_;
};

}  // namespace minos::object

#endif  // MINOS_OBJECT_MULTIMEDIA_OBJECT_H_
