#include "minos/object/part_codec.h"

#include "minos/util/coding.h"

namespace minos::object {

namespace {

constexpr int kUnitCount = 8;

void PutSpan(std::string* out, size_t begin, size_t end) {
  PutVarint64(out, begin);
  PutVarint64(out, end);
}

Status GetSpan(Decoder* dec, size_t* begin, size_t* end) {
  uint64_t b = 0, e = 0;
  MINOS_RETURN_IF_ERROR(dec->GetVarint64(&b));
  MINOS_RETURN_IF_ERROR(dec->GetVarint64(&e));
  *begin = static_cast<size_t>(b);
  *end = static_cast<size_t>(e);
  return Status::OK();
}

/// Appends the part checksum: CRC-32 of everything encoded so far.
void AppendPartCrc(std::string* out) { PutFixed32(out, Crc32(*out)); }

/// Verifies and strips the trailing part checksum before decoding.
Status CheckAndStripPartCrc(std::string_view* bytes) {
  if (bytes->size() < 4) {
    return Status::Corruption("part too short to carry its checksum");
  }
  const std::string_view body = bytes->substr(0, bytes->size() - 4);
  Decoder tail(bytes->substr(bytes->size() - 4));
  uint32_t stored = 0;
  MINOS_RETURN_IF_ERROR(tail.GetFixed32(&stored));
  if (Crc32(body) != stored) {
    return Status::Corruption("part checksum mismatch");
  }
  *bytes = body;
  return Status::OK();
}

}  // namespace

std::string EncodeDocument(const text::Document& doc) {
  std::string out;
  PutLengthPrefixed(&out, doc.contents());
  for (int u = 0; u < kUnitCount; ++u) {
    const auto unit = static_cast<text::LogicalUnit>(u);
    const auto& cs = doc.Components(unit);
    PutVarint64(&out, cs.size());
    for (const text::LogicalComponent& c : cs) {
      PutSpan(&out, c.span.begin, c.span.end);
      PutLengthPrefixed(&out, c.title);
    }
  }
  PutVarint64(&out, doc.emphasis().size());
  for (const text::EmphasisSpan& e : doc.emphasis()) {
    PutSpan(&out, e.span.begin, e.span.end);
    out.push_back(static_cast<char>(e.kind));
  }
  AppendPartCrc(&out);
  return out;
}

StatusOr<text::Document> DecodeDocument(std::string_view bytes) {
  MINOS_RETURN_IF_ERROR(CheckAndStripPartCrc(&bytes));
  Decoder dec(bytes);
  text::Document doc;
  std::string contents;
  MINOS_RETURN_IF_ERROR(dec.GetLengthPrefixed(&contents));
  doc.AppendText(contents);
  for (int u = 0; u < kUnitCount; ++u) {
    const auto unit = static_cast<text::LogicalUnit>(u);
    uint64_t n = 0;
    MINOS_RETURN_IF_ERROR(dec.GetVarint64(&n));
    for (uint64_t i = 0; i < n; ++i) {
      text::LogicalComponent c;
      c.unit = unit;
      MINOS_RETURN_IF_ERROR(GetSpan(&dec, &c.span.begin, &c.span.end));
      MINOS_RETURN_IF_ERROR(dec.GetLengthPrefixed(&c.title));
      if (c.span.end > doc.size() || c.span.begin > c.span.end) {
        return Status::Corruption("document component span out of bounds");
      }
      doc.AddComponentSpan(std::move(c));
    }
  }
  uint64_t ne = 0;
  MINOS_RETURN_IF_ERROR(dec.GetVarint64(&ne));
  for (uint64_t i = 0; i < ne; ++i) {
    text::EmphasisSpan e;
    MINOS_RETURN_IF_ERROR(GetSpan(&dec, &e.span.begin, &e.span.end));
    std::string b;
    MINOS_RETURN_IF_ERROR(dec.GetRaw(1, &b));
    e.kind = static_cast<text::Emphasis>(static_cast<uint8_t>(b[0]));
    doc.AddEmphasis(e);
  }
  return doc;
}

std::string EncodeVoiceDocument(const voice::VoiceDocument& doc) {
  std::string out;
  const voice::PcmBuffer& pcm = doc.pcm();
  PutVarint32(&out, static_cast<uint32_t>(pcm.sample_rate()));
  PutVarint64(&out, pcm.size());
  for (int16_t s : pcm.samples()) {
    out.push_back(static_cast<char>(s & 0xFF));
    out.push_back(static_cast<char>((s >> 8) & 0xFF));
  }
  const voice::VoiceTrack& track = doc.track();
  PutVarint64(&out, track.words.size());
  for (const voice::WordAlignment& w : track.words) {
    PutLengthPrefixed(&out, w.word);
    PutVarint64(&out, w.text_offset);
    PutSpan(&out, w.samples.begin, w.samples.end);
  }
  PutVarint64(&out, track.silences.size());
  for (const voice::SilenceTruth& s : track.silences) {
    PutSpan(&out, s.samples.begin, s.samples.end);
    out.push_back(static_cast<char>(s.level));
  }
  for (int u = 0; u < kUnitCount; ++u) {
    const auto unit = static_cast<text::LogicalUnit>(u);
    const auto& cs = doc.Components(unit);
    PutVarint64(&out, cs.size());
    for (const voice::VoiceComponent& c : cs) {
      PutSpan(&out, c.span.begin, c.span.end);
      PutLengthPrefixed(&out, c.title);
    }
  }
  AppendPartCrc(&out);
  return out;
}

StatusOr<voice::VoiceDocument> DecodeVoiceDocument(std::string_view bytes) {
  MINOS_RETURN_IF_ERROR(CheckAndStripPartCrc(&bytes));
  Decoder dec(bytes);
  uint32_t rate = 0;
  uint64_t nsamples = 0;
  MINOS_RETURN_IF_ERROR(dec.GetVarint32(&rate));
  MINOS_RETURN_IF_ERROR(dec.GetVarint64(&nsamples));
  if (rate == 0) return Status::Corruption("zero sample rate");
  voice::VoiceTrack track;
  track.pcm = voice::PcmBuffer(static_cast<int>(rate));
  std::string raw;
  MINOS_RETURN_IF_ERROR(dec.GetRaw(static_cast<size_t>(nsamples) * 2, &raw));
  for (size_t i = 0; i < raw.size(); i += 2) {
    const uint16_t lo = static_cast<uint8_t>(raw[i]);
    const uint16_t hi = static_cast<uint8_t>(raw[i + 1]);
    track.pcm.Push(static_cast<int16_t>(lo | (hi << 8)));
  }
  uint64_t n = 0;
  MINOS_RETURN_IF_ERROR(dec.GetVarint64(&n));
  for (uint64_t i = 0; i < n; ++i) {
    voice::WordAlignment w;
    MINOS_RETURN_IF_ERROR(dec.GetLengthPrefixed(&w.word));
    uint64_t off = 0;
    MINOS_RETURN_IF_ERROR(dec.GetVarint64(&off));
    w.text_offset = static_cast<size_t>(off);
    MINOS_RETURN_IF_ERROR(
        GetSpan(&dec, &w.samples.begin, &w.samples.end));
    track.words.push_back(std::move(w));
  }
  MINOS_RETURN_IF_ERROR(dec.GetVarint64(&n));
  for (uint64_t i = 0; i < n; ++i) {
    voice::SilenceTruth s;
    MINOS_RETURN_IF_ERROR(GetSpan(&dec, &s.samples.begin, &s.samples.end));
    std::string b;
    MINOS_RETURN_IF_ERROR(dec.GetRaw(1, &b));
    s.level = static_cast<int>(b[0]);
    track.silences.push_back(s);
  }
  voice::VoiceDocument doc(std::move(track));
  for (int u = 0; u < kUnitCount; ++u) {
    const auto unit = static_cast<text::LogicalUnit>(u);
    MINOS_RETURN_IF_ERROR(dec.GetVarint64(&n));
    for (uint64_t i = 0; i < n; ++i) {
      voice::VoiceComponent c;
      c.unit = unit;
      MINOS_RETURN_IF_ERROR(GetSpan(&dec, &c.span.begin, &c.span.end));
      std::string title;
      MINOS_RETURN_IF_ERROR(dec.GetLengthPrefixed(&title));
      doc.TagComponent(unit, c.span, std::move(title));
    }
  }
  return doc;
}

std::string EncodeAttributes(const AttributeMap& attributes) {
  std::string out;
  PutVarint64(&out, attributes.size());
  for (const auto& [k, v] : attributes) {
    PutLengthPrefixed(&out, k);
    PutLengthPrefixed(&out, v);
  }
  AppendPartCrc(&out);
  return out;
}

StatusOr<AttributeMap> DecodeAttributes(std::string_view bytes) {
  MINOS_RETURN_IF_ERROR(CheckAndStripPartCrc(&bytes));
  Decoder dec(bytes);
  uint64_t n = 0;
  MINOS_RETURN_IF_ERROR(dec.GetVarint64(&n));
  AttributeMap attrs;
  for (uint64_t i = 0; i < n; ++i) {
    std::string k, v;
    MINOS_RETURN_IF_ERROR(dec.GetLengthPrefixed(&k));
    MINOS_RETURN_IF_ERROR(dec.GetLengthPrefixed(&v));
    attrs[std::move(k)] = std::move(v);
  }
  return attrs;
}

}  // namespace minos::object
