#include "minos/object/descriptor.h"

#include "minos/util/coding.h"

namespace minos::object {

namespace {

void PutOptAnchor(std::string* out, const std::optional<TextAnchor>& a) {
  out->push_back(a.has_value() ? 1 : 0);
  if (a.has_value()) {
    PutVarint64(out, a->begin);
    PutVarint64(out, a->end);
  }
}

void PutOptVoiceAnchor(std::string* out,
                       const std::optional<VoiceAnchor>& a) {
  out->push_back(a.has_value() ? 1 : 0);
  if (a.has_value()) {
    PutVarint64(out, a->begin);
    PutVarint64(out, a->end);
  }
}

void PutOptU32(std::string* out, const std::optional<uint32_t>& v) {
  out->push_back(v.has_value() ? 1 : 0);
  if (v.has_value()) PutVarint32(out, *v);
}

Status GetFlag(Decoder* dec, bool* flag) {
  std::string b;
  MINOS_RETURN_IF_ERROR(dec->GetRaw(1, &b));
  *flag = b[0] != 0;
  return Status::OK();
}

Status GetOptAnchor(Decoder* dec, std::optional<TextAnchor>* a) {
  bool has = false;
  MINOS_RETURN_IF_ERROR(GetFlag(dec, &has));
  if (!has) {
    a->reset();
    return Status::OK();
  }
  TextAnchor anchor;
  MINOS_RETURN_IF_ERROR(dec->GetVarint64(&anchor.begin));
  MINOS_RETURN_IF_ERROR(dec->GetVarint64(&anchor.end));
  *a = anchor;
  return Status::OK();
}

Status GetOptVoiceAnchor(Decoder* dec, std::optional<VoiceAnchor>* a) {
  bool has = false;
  MINOS_RETURN_IF_ERROR(GetFlag(dec, &has));
  if (!has) {
    a->reset();
    return Status::OK();
  }
  VoiceAnchor anchor;
  MINOS_RETURN_IF_ERROR(dec->GetVarint64(&anchor.begin));
  MINOS_RETURN_IF_ERROR(dec->GetVarint64(&anchor.end));
  *a = anchor;
  return Status::OK();
}

Status GetOptU32(Decoder* dec, std::optional<uint32_t>* v) {
  bool has = false;
  MINOS_RETURN_IF_ERROR(GetFlag(dec, &has));
  if (!has) {
    v->reset();
    return Status::OK();
  }
  uint32_t value = 0;
  MINOS_RETURN_IF_ERROR(dec->GetVarint32(&value));
  *v = value;
  return Status::OK();
}

}  // namespace

StatusOr<PartPointer> ObjectDescriptor::FindPart(
    std::string_view name) const {
  for (const PartPointer& p : parts) {
    if (p.name == name) return p;
  }
  return Status::NotFound("descriptor has no part '" + std::string(name) +
                          "'");
}

void ObjectDescriptor::RebaseCompositionOffsets(uint64_t delta) {
  for (PartPointer& p : parts) {
    if (!p.in_archiver) p.offset += delta;
  }
}

std::string ObjectDescriptor::Serialize() const {
  std::string out;
  out.push_back(static_cast<char>(driving_mode));
  PutVarint32(&out, static_cast<uint32_t>(layout.width));
  PutVarint32(&out, static_cast<uint32_t>(layout.height));
  PutVarint32(&out, static_cast<uint32_t>(layout.paragraph_indent));
  out.push_back(layout.chapter_starts_page ? 1 : 0);

  PutVarint64(&out, parts.size());
  for (const PartPointer& p : parts) {
    PutLengthPrefixed(&out, p.name);
    out.push_back(static_cast<char>(p.type));
    out.push_back(p.in_archiver ? 1 : 0);
    PutVarint64(&out, p.offset);
    PutVarint64(&out, p.length);
  }

  PutVarint64(&out, pages.size());
  for (const VisualPageSpec& page : pages) {
    out.push_back(static_cast<char>(page.kind));
    PutVarint32(&out, page.text_page);
    PutVarint64(&out, page.images.size());
    for (const PlacedImage& pi : page.images) {
      PutVarint32(&out, pi.image_index);
      PutVarint32(&out, static_cast<uint32_t>(pi.placement.x));
      PutVarint32(&out, static_cast<uint32_t>(pi.placement.y));
      PutVarint32(&out, static_cast<uint32_t>(pi.placement.w));
      PutVarint32(&out, static_cast<uint32_t>(pi.placement.h));
    }
  }

  PutVarint64(&out, voice_messages.size());
  for (const VoiceLogicalMessage& m : voice_messages) {
    PutLengthPrefixed(&out, m.transcript);
    PutOptAnchor(&out, m.text_anchor);
    PutOptU32(&out, m.image_index);
    PutOptVoiceAnchor(&out, m.voice_anchor);
  }

  PutVarint64(&out, visual_messages.size());
  for (const VisualLogicalMessage& m : visual_messages) {
    PutLengthPrefixed(&out, m.text);
    PutOptU32(&out, m.image_index);
    PutVarint64(&out, m.voice_anchors.size());
    for (const VoiceAnchor& a : m.voice_anchors) {
      PutVarint64(&out, a.begin);
      PutVarint64(&out, a.end);
    }
    PutVarint64(&out, m.text_anchors.size());
    for (const TextAnchor& a : m.text_anchors) {
      PutVarint64(&out, a.begin);
      PutVarint64(&out, a.end);
    }
    out.push_back(m.display_once ? 1 : 0);
  }

  PutVarint64(&out, transparency_sets.size());
  for (const TransparencySetSpec& t : transparency_sets) {
    PutVarint32(&out, t.first_page);
    PutVarint32(&out, t.count);
    out.push_back(static_cast<char>(t.method));
  }

  PutVarint64(&out, process_simulations.size());
  for (const ProcessSimulationSpec& p : process_simulations) {
    PutVarint32(&out, p.first_page);
    PutVarint32(&out, p.count);
    PutVarint64(&out, static_cast<uint64_t>(p.page_interval));
    PutVarint64(&out, p.page_messages.size());
    for (const std::string& m : p.page_messages) {
      PutLengthPrefixed(&out, m);
    }
  }

  PutVarint64(&out, relevant_objects.size());
  for (const RelevantObjectLink& r : relevant_objects) {
    PutVarint64(&out, r.target);
    PutLengthPrefixed(&out, r.indicator_label);
    PutOptAnchor(&out, r.parent_text_anchor);
    PutOptVoiceAnchor(&out, r.parent_voice_anchor);
    PutOptU32(&out, r.parent_image_index);
    PutVarint64(&out, r.relevances.size());
    for (const Relevance& rel : r.relevances) {
      PutOptAnchor(&out, rel.text_span);
      PutOptU32(&out, rel.image_index);
      PutOptU32(&out, rel.image_object_id);
      PutOptVoiceAnchor(&out, rel.voice_span);
    }
  }

  PutVarint64(&out, tours.size());
  for (const TourSpec& t : tours) {
    PutVarint32(&out, t.image_index);
    PutVarint32(&out, static_cast<uint32_t>(t.view_width));
    PutVarint32(&out, static_cast<uint32_t>(t.view_height));
    PutVarint64(&out, t.positions.size());
    for (const image::Point& p : t.positions) {
      PutVarint32(&out, static_cast<uint32_t>(p.x));
      PutVarint32(&out, static_cast<uint32_t>(p.y));
    }
    PutVarint64(&out, t.audio_messages.size());
    for (const std::string& m : t.audio_messages) {
      PutLengthPrefixed(&out, m);
    }
  }
  return out;
}

StatusOr<ObjectDescriptor> ObjectDescriptor::Deserialize(
    std::string_view bytes) {
  Decoder dec(bytes);
  ObjectDescriptor d;
  std::string b;
  MINOS_RETURN_IF_ERROR(dec.GetRaw(1, &b));
  if (static_cast<uint8_t>(b[0]) > 1) {
    return Status::Corruption("bad driving mode");
  }
  d.driving_mode = static_cast<DrivingMode>(b[0]);
  uint32_t lw = 0, lh = 0, li = 0;
  MINOS_RETURN_IF_ERROR(dec.GetVarint32(&lw));
  MINOS_RETURN_IF_ERROR(dec.GetVarint32(&lh));
  MINOS_RETURN_IF_ERROR(dec.GetVarint32(&li));
  d.layout.width = static_cast<int>(lw);
  d.layout.height = static_cast<int>(lh);
  d.layout.paragraph_indent = static_cast<int>(li);
  bool csp = true;
  MINOS_RETURN_IF_ERROR(GetFlag(&dec, &csp));
  d.layout.chapter_starts_page = csp;

  uint64_t n = 0;
  MINOS_RETURN_IF_ERROR(dec.GetVarint64(&n));
  for (uint64_t i = 0; i < n; ++i) {
    PartPointer p;
    MINOS_RETURN_IF_ERROR(dec.GetLengthPrefixed(&p.name));
    MINOS_RETURN_IF_ERROR(dec.GetRaw(2, &b));
    p.type = static_cast<storage::DataType>(static_cast<uint8_t>(b[0]));
    p.in_archiver = b[1] != 0;
    MINOS_RETURN_IF_ERROR(dec.GetVarint64(&p.offset));
    MINOS_RETURN_IF_ERROR(dec.GetVarint64(&p.length));
    d.parts.push_back(std::move(p));
  }

  MINOS_RETURN_IF_ERROR(dec.GetVarint64(&n));
  for (uint64_t i = 0; i < n; ++i) {
    VisualPageSpec page;
    MINOS_RETURN_IF_ERROR(dec.GetRaw(1, &b));
    page.kind = static_cast<VisualPageSpec::Kind>(static_cast<uint8_t>(b[0]));
    MINOS_RETURN_IF_ERROR(dec.GetVarint32(&page.text_page));
    uint64_t ni = 0;
    MINOS_RETURN_IF_ERROR(dec.GetVarint64(&ni));
    for (uint64_t j = 0; j < ni; ++j) {
      PlacedImage pi;
      uint32_t x = 0, y = 0, w = 0, h = 0;
      MINOS_RETURN_IF_ERROR(dec.GetVarint32(&pi.image_index));
      MINOS_RETURN_IF_ERROR(dec.GetVarint32(&x));
      MINOS_RETURN_IF_ERROR(dec.GetVarint32(&y));
      MINOS_RETURN_IF_ERROR(dec.GetVarint32(&w));
      MINOS_RETURN_IF_ERROR(dec.GetVarint32(&h));
      pi.placement = image::Rect{static_cast<int>(x), static_cast<int>(y),
                                 static_cast<int>(w), static_cast<int>(h)};
      page.images.push_back(pi);
    }
    d.pages.push_back(std::move(page));
  }

  MINOS_RETURN_IF_ERROR(dec.GetVarint64(&n));
  for (uint64_t i = 0; i < n; ++i) {
    VoiceLogicalMessage m;
    MINOS_RETURN_IF_ERROR(dec.GetLengthPrefixed(&m.transcript));
    MINOS_RETURN_IF_ERROR(GetOptAnchor(&dec, &m.text_anchor));
    MINOS_RETURN_IF_ERROR(GetOptU32(&dec, &m.image_index));
    MINOS_RETURN_IF_ERROR(GetOptVoiceAnchor(&dec, &m.voice_anchor));
    d.voice_messages.push_back(std::move(m));
  }

  MINOS_RETURN_IF_ERROR(dec.GetVarint64(&n));
  for (uint64_t i = 0; i < n; ++i) {
    VisualLogicalMessage m;
    MINOS_RETURN_IF_ERROR(dec.GetLengthPrefixed(&m.text));
    MINOS_RETURN_IF_ERROR(GetOptU32(&dec, &m.image_index));
    uint64_t na = 0;
    MINOS_RETURN_IF_ERROR(dec.GetVarint64(&na));
    for (uint64_t j = 0; j < na; ++j) {
      VoiceAnchor a;
      MINOS_RETURN_IF_ERROR(dec.GetVarint64(&a.begin));
      MINOS_RETURN_IF_ERROR(dec.GetVarint64(&a.end));
      m.voice_anchors.push_back(a);
    }
    MINOS_RETURN_IF_ERROR(dec.GetVarint64(&na));
    for (uint64_t j = 0; j < na; ++j) {
      TextAnchor a;
      MINOS_RETURN_IF_ERROR(dec.GetVarint64(&a.begin));
      MINOS_RETURN_IF_ERROR(dec.GetVarint64(&a.end));
      m.text_anchors.push_back(a);
    }
    bool once = false;
    MINOS_RETURN_IF_ERROR(GetFlag(&dec, &once));
    m.display_once = once;
    d.visual_messages.push_back(std::move(m));
  }

  MINOS_RETURN_IF_ERROR(dec.GetVarint64(&n));
  for (uint64_t i = 0; i < n; ++i) {
    TransparencySetSpec t;
    MINOS_RETURN_IF_ERROR(dec.GetVarint32(&t.first_page));
    MINOS_RETURN_IF_ERROR(dec.GetVarint32(&t.count));
    MINOS_RETURN_IF_ERROR(dec.GetRaw(1, &b));
    t.method = static_cast<TransparencyDisplay>(static_cast<uint8_t>(b[0]));
    d.transparency_sets.push_back(t);
  }

  MINOS_RETURN_IF_ERROR(dec.GetVarint64(&n));
  for (uint64_t i = 0; i < n; ++i) {
    ProcessSimulationSpec p;
    MINOS_RETURN_IF_ERROR(dec.GetVarint32(&p.first_page));
    MINOS_RETURN_IF_ERROR(dec.GetVarint32(&p.count));
    uint64_t interval = 0;
    MINOS_RETURN_IF_ERROR(dec.GetVarint64(&interval));
    p.page_interval = static_cast<Micros>(interval);
    uint64_t nm = 0;
    MINOS_RETURN_IF_ERROR(dec.GetVarint64(&nm));
    for (uint64_t j = 0; j < nm; ++j) {
      std::string m;
      MINOS_RETURN_IF_ERROR(dec.GetLengthPrefixed(&m));
      p.page_messages.push_back(std::move(m));
    }
    d.process_simulations.push_back(std::move(p));
  }

  MINOS_RETURN_IF_ERROR(dec.GetVarint64(&n));
  for (uint64_t i = 0; i < n; ++i) {
    RelevantObjectLink r;
    uint64_t target = 0;
    MINOS_RETURN_IF_ERROR(dec.GetVarint64(&target));
    r.target = target;
    MINOS_RETURN_IF_ERROR(dec.GetLengthPrefixed(&r.indicator_label));
    MINOS_RETURN_IF_ERROR(GetOptAnchor(&dec, &r.parent_text_anchor));
    MINOS_RETURN_IF_ERROR(GetOptVoiceAnchor(&dec, &r.parent_voice_anchor));
    MINOS_RETURN_IF_ERROR(GetOptU32(&dec, &r.parent_image_index));
    uint64_t nr = 0;
    MINOS_RETURN_IF_ERROR(dec.GetVarint64(&nr));
    for (uint64_t j = 0; j < nr; ++j) {
      Relevance rel;
      MINOS_RETURN_IF_ERROR(GetOptAnchor(&dec, &rel.text_span));
      MINOS_RETURN_IF_ERROR(GetOptU32(&dec, &rel.image_index));
      MINOS_RETURN_IF_ERROR(GetOptU32(&dec, &rel.image_object_id));
      MINOS_RETURN_IF_ERROR(GetOptVoiceAnchor(&dec, &rel.voice_span));
      r.relevances.push_back(rel);
    }
    d.relevant_objects.push_back(std::move(r));
  }

  MINOS_RETURN_IF_ERROR(dec.GetVarint64(&n));
  for (uint64_t i = 0; i < n; ++i) {
    TourSpec t;
    uint32_t vw = 0, vh = 0;
    MINOS_RETURN_IF_ERROR(dec.GetVarint32(&t.image_index));
    MINOS_RETURN_IF_ERROR(dec.GetVarint32(&vw));
    MINOS_RETURN_IF_ERROR(dec.GetVarint32(&vh));
    t.view_width = static_cast<int>(vw);
    t.view_height = static_cast<int>(vh);
    uint64_t np = 0;
    MINOS_RETURN_IF_ERROR(dec.GetVarint64(&np));
    for (uint64_t j = 0; j < np; ++j) {
      uint32_t x = 0, y = 0;
      MINOS_RETURN_IF_ERROR(dec.GetVarint32(&x));
      MINOS_RETURN_IF_ERROR(dec.GetVarint32(&y));
      t.positions.push_back(
          image::Point{static_cast<int>(x), static_cast<int>(y)});
    }
    uint64_t nm = 0;
    MINOS_RETURN_IF_ERROR(dec.GetVarint64(&nm));
    for (uint64_t j = 0; j < nm; ++j) {
      std::string m;
      MINOS_RETURN_IF_ERROR(dec.GetLengthPrefixed(&m));
      t.audio_messages.push_back(std::move(m));
    }
    d.tours.push_back(std::move(t));
  }
  return d;
}

}  // namespace minos::object
