#include "minos/format/synthesis.h"

#include "minos/util/string_util.h"

namespace minos::format {

object::DrivingMode SynthesisFile::DeclaredMode() const {
  for (const Directive& d : directives) {
    if (d.kind == Directive::Kind::kMode) {
      return d.arg == "audio" ? object::DrivingMode::kAudio
                              : object::DrivingMode::kVisual;
    }
  }
  return object::DrivingMode::kVisual;
}

std::optional<text::PageLayout> SynthesisFile::DeclaredLayout() const {
  for (const Directive& d : directives) {
    if (d.kind == Directive::Kind::kLayout) {
      text::PageLayout layout;
      layout.width = d.value_a;
      layout.height = d.value_b;
      return layout;
    }
  }
  return std::nullopt;
}

StatusOr<SynthesisFile> ParseSynthesis(std::string_view source) {
  SynthesisFile out;
  size_t markup_lines = 0;
  for (const std::string& raw : SplitString(source, '\n')) {
    const std::string_view line = TrimWhitespace(raw);
    if (line.empty() || line[0] != '@') {
      out.markup += raw;
      out.markup += '\n';
      if (!line.empty()) ++markup_lines;
      continue;
    }
    const std::vector<std::string> tokens = SplitWords(line);
    const std::string_view tag = tokens[0];
    Directive d;
    d.markup_lines_before = markup_lines;
    if (tag == "@MODE") {
      if (tokens.size() != 2 ||
          (tokens[1] != "visual" && tokens[1] != "audio")) {
        return Status::InvalidArgument("@MODE requires visual|audio");
      }
      d.kind = Directive::Kind::kMode;
      d.arg = tokens[1];
    } else if (tag == "@LAYOUT") {
      if (tokens.size() != 3) {
        return Status::InvalidArgument("@LAYOUT requires width height");
      }
      d.kind = Directive::Kind::kLayout;
      d.value_a = std::atoi(tokens[1].c_str());
      d.value_b = std::atoi(tokens[2].c_str());
      if (d.value_a < 8 || d.value_b < 3) {
        return Status::InvalidArgument("@LAYOUT dimensions too small");
      }
    } else if (tag == "@IMAGE" || tag == "@TRANSPARENCY" ||
               tag == "@OVERWRITE") {
      if (tokens.size() != 2) {
        return Status::InvalidArgument(std::string(tag) +
                                       " requires a data file name");
      }
      d.kind = tag == "@IMAGE"          ? Directive::Kind::kImage
               : tag == "@TRANSPARENCY" ? Directive::Kind::kTransparency
                                        : Directive::Kind::kOverwrite;
      d.arg = tokens[1];
    } else if (tag == "@METHOD") {
      if (tokens.size() != 2 ||
          (tokens[1] != "stacked" && tokens[1] != "separate")) {
        return Status::InvalidArgument("@METHOD requires stacked|separate");
      }
      d.kind = Directive::Kind::kMethod;
      d.arg = tokens[1];
    } else if (tag == "@PROCESS") {
      if (tokens.size() != 3) {
        return Status::InvalidArgument(
            "@PROCESS requires interval-ms page-count");
      }
      d.kind = Directive::Kind::kProcess;
      d.value_a = std::atoi(tokens[1].c_str());
      d.value_b = std::atoi(tokens[2].c_str());
      if (d.value_a <= 0 || d.value_b <= 0) {
        return Status::InvalidArgument("@PROCESS values must be positive");
      }
    } else {
      return Status::InvalidArgument("unknown directive '" +
                                     std::string(tag) + "'");
    }
    out.directives.push_back(std::move(d));
  }
  return out;
}

}  // namespace minos::format
