#include "minos/format/workspace.h"

namespace minos::format {

void ObjectWorkspace::AddDataFile(std::string name, storage::DataType type,
                                  std::string payload) {
  directory_.AddLocal(name, type, payload.size(),
                      storage::DataStatus::kFinal);
  data_files_[std::move(name)] = std::move(payload);
}

void ObjectWorkspace::AddDraftDataFile(std::string name,
                                       storage::DataType type,
                                       std::string payload) {
  directory_.AddLocal(name, type, payload.size(),
                      storage::DataStatus::kDraft);
  data_files_[std::move(name)] = std::move(payload);
}

Status ObjectWorkspace::FinalizeDataFile(std::string_view name) {
  return directory_.MarkFinal(name);
}

void ObjectWorkspace::ReferenceArchiverData(
    std::string name, storage::DataType type,
    storage::ArchiveAddress address) {
  directory_.AddArchiverReference(std::move(name), type, address);
}

StatusOr<std::string> ObjectWorkspace::ReadDataFile(
    std::string_view name) const {
  auto it = data_files_.find(name);
  if (it == data_files_.end()) {
    return Status::NotFound("no local data file '" + std::string(name) +
                            "'");
  }
  return it->second;
}

}  // namespace minos::format
