#ifndef MINOS_FORMAT_WORKSPACE_H_
#define MINOS_FORMAT_WORKSPACE_H_

#include <map>
#include <string>

#include "minos/storage/archiver.h"
#include "minos/storage/data_directory.h"
#include "minos/util/statusor.h"

namespace minos::format {

/// The multimedia object file of an object in the editing state: "a set of
/// files organized within a directory which has the name of the multimedia
/// object. This set of files contains a synthesis-file, the object
/// descriptor, a composition-file, a data-directory file, and a set of
/// data files." (§4) The reproduction keeps the file set in memory; the
/// data directory catalogs each data file's name, type, length and status,
/// plus references to archiver data that was "extracted but not copied".
class ObjectWorkspace {
 public:
  /// Creates a workspace named after the object.
  explicit ObjectWorkspace(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Installs the synthesis file source.
  void SetSynthesis(std::string source) { synthesis_ = std::move(source); }
  const std::string& synthesis() const { return synthesis_; }

  /// Adds a local data file in final (archival) form.
  void AddDataFile(std::string name, storage::DataType type,
                   std::string payload);

  /// Adds a local data file still in draft form; the formatter refuses to
  /// archive or mail until it is marked final.
  void AddDraftDataFile(std::string name, storage::DataType type,
                        std::string payload);

  /// Marks a draft final (its payload is already the archival form here;
  /// a real editor would convert when completing the edit, §4).
  Status FinalizeDataFile(std::string_view name);

  /// References data that lives in the archiver without copying it.
  void ReferenceArchiverData(std::string name, storage::DataType type,
                             storage::ArchiveAddress address);

  /// Reads a data file payload (NotFound for archiver references — those
  /// are fetched through the archiver at mail time).
  StatusOr<std::string> ReadDataFile(std::string_view name) const;

  const storage::DataDirectory& directory() const { return directory_; }

 private:
  std::string name_;
  std::string synthesis_;
  std::map<std::string, std::string, std::less<>> data_files_;
  storage::DataDirectory directory_;
};

}  // namespace minos::format

#endif  // MINOS_FORMAT_WORKSPACE_H_
