#ifndef MINOS_FORMAT_OBJECT_FORMATTER_H_
#define MINOS_FORMAT_OBJECT_FORMATTER_H_

#include "minos/format/synthesis.h"
#include "minos/format/workspace.h"
#include "minos/object/multimedia_object.h"
#include "minos/util/statusor.h"

namespace minos::format {

/// The multimedia object formatter: "responsible for the creation of the
/// multimedia object descriptor. The formatter is declarative and
/// interactive. Declarative formatters emphasize more the logical
/// structure of the object instead of how to do the formatting." (§4)
///
/// Format() runs the object formation process: it parses the synthesis
/// file, builds the text part from the markup tags, paginates it, loads
/// the data files referenced by directives into the image part, and
/// records the presentation form (visual pages, transparency sets,
/// process simulations) in the object descriptor. The result is an object
/// in the *editing* state; callers attach voice parts, logical messages
/// and relationships through the object API, then Archive() it.
///
/// Page order: the text pages come first (in text order), then one page
/// per @IMAGE/@TRANSPARENCY/@OVERWRITE directive in directive order.
/// Images can additionally be placed *onto* text pages programmatically
/// via the descriptor's PlacedImage lists.
class ObjectFormatter {
 public:
  ObjectFormatter() = default;

  /// Formats `workspace` into an editing-state object with identifier
  /// `id`. FailedPrecondition when any data file is still a draft
  /// ("The presentation interface of the archiver expects always the data
  /// in its final form", §4); InvalidArgument on synthesis or data file
  /// errors.
  StatusOr<object::MultimediaObject> Format(const ObjectWorkspace& workspace,
                                            storage::ObjectId id) const;
};

}  // namespace minos::format

#endif  // MINOS_FORMAT_OBJECT_FORMATTER_H_
