#include "minos/format/workspace_store.h"

#include "minos/util/coding.h"

namespace minos::format {

StatusOr<std::string> EncodeWorkspace(const ObjectWorkspace& workspace) {
  std::string out;
  PutLengthPrefixed(&out, workspace.name());
  PutLengthPrefixed(&out, workspace.synthesis());
  const auto& entries = workspace.directory().entries();
  PutVarint64(&out, entries.size());
  for (const storage::DataDirectory::Entry& e : entries) {
    PutLengthPrefixed(&out, e.name);
    out.push_back(static_cast<char>(e.type));
    out.push_back(static_cast<char>(e.location));
    out.push_back(static_cast<char>(e.status));
    if (e.location == storage::DataLocation::kLocalFile) {
      MINOS_ASSIGN_OR_RETURN(std::string payload,
                             workspace.ReadDataFile(e.name));
      PutLengthPrefixed(&out, payload);
    } else {
      PutVarint64(&out, e.archive_address.offset);
      PutVarint64(&out, e.archive_address.length);
    }
  }
  return out;
}

StatusOr<ObjectWorkspace> DecodeWorkspace(std::string_view bytes) {
  Decoder dec(bytes);
  std::string name, synthesis;
  MINOS_RETURN_IF_ERROR(dec.GetLengthPrefixed(&name));
  MINOS_RETURN_IF_ERROR(dec.GetLengthPrefixed(&synthesis));
  ObjectWorkspace workspace(std::move(name));
  workspace.SetSynthesis(std::move(synthesis));
  uint64_t n = 0;
  MINOS_RETURN_IF_ERROR(dec.GetVarint64(&n));
  for (uint64_t i = 0; i < n; ++i) {
    std::string entry_name, header;
    MINOS_RETURN_IF_ERROR(dec.GetLengthPrefixed(&entry_name));
    MINOS_RETURN_IF_ERROR(dec.GetRaw(3, &header));
    const auto type =
        static_cast<storage::DataType>(static_cast<uint8_t>(header[0]));
    const auto location = static_cast<storage::DataLocation>(
        static_cast<uint8_t>(header[1]));
    const auto status =
        static_cast<storage::DataStatus>(static_cast<uint8_t>(header[2]));
    if (location == storage::DataLocation::kLocalFile) {
      std::string payload;
      MINOS_RETURN_IF_ERROR(dec.GetLengthPrefixed(&payload));
      if (status == storage::DataStatus::kDraft) {
        workspace.AddDraftDataFile(entry_name, type, std::move(payload));
      } else {
        workspace.AddDataFile(entry_name, type, std::move(payload));
      }
    } else {
      storage::ArchiveAddress address;
      MINOS_RETURN_IF_ERROR(dec.GetVarint64(&address.offset));
      MINOS_RETURN_IF_ERROR(dec.GetVarint64(&address.length));
      workspace.ReferenceArchiverData(entry_name, type, address);
    }
  }
  return workspace;
}

Status WorkspaceStore::Save(const ObjectWorkspace& workspace) {
  MINOS_ASSIGN_OR_RETURN(std::string bytes, EncodeWorkspace(workspace));
  return files_->Put(workspace.name(), bytes);
}

StatusOr<ObjectWorkspace> WorkspaceStore::Load(
    const std::string& name) const {
  MINOS_ASSIGN_OR_RETURN(std::string bytes, files_->Get(name));
  return DecodeWorkspace(bytes);
}

Status WorkspaceStore::Remove(const std::string& name) {
  return files_->Delete(name);
}

}  // namespace minos::format
