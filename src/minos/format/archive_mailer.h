#ifndef MINOS_FORMAT_ARCHIVE_MAILER_H_
#define MINOS_FORMAT_ARCHIVE_MAILER_H_

#include <map>
#include <string>

#include "minos/object/multimedia_object.h"
#include "minos/storage/archiver.h"
#include "minos/storage/version_store.h"
#include "minos/util/clock.h"
#include "minos/util/statusor.h"

namespace minos::format {

/// The archive / mail back end of §4: "Archived or mailed within the
/// organization multimedia objects are composed of the concatenation of
/// the descriptor file with the composition file ... when the multimedia
/// object is mailed outside the organization the object descriptor is
/// searched for pointers to information which exists in the archiver. If
/// such pointers exist, the relevant data is extracted from the archiver
/// and appended to the composition [file]."
class ArchiveMailer {
 public:
  /// `archiver`, `versions` and `clock` must outlive the mailer.
  ArchiveMailer(storage::Archiver* archiver,
                storage::VersionStore* versions, SimClock* clock)
      : archiver_(archiver), versions_(versions), clock_(clock) {}

  /// Archives a finished object: serializes it, appends the bytes to the
  /// archiver and records a new version. The object must be archived
  /// state (call MultimediaObject::Archive() first).
  StatusOr<storage::ArchiveAddress> ArchiveObject(
      const object::MultimediaObject& obj);

  /// Builds the archival bytes of `obj` with the named parts replaced by
  /// pointers into the archiver ("the object descriptor may also have
  /// pointers to other locations within the object archiver so that data
  /// duplication is avoided", §4). Parts are named as in
  /// SerializeArchived: "attributes", "text", "voice", "image:<i>".
  StatusOr<std::string> SerializeWithArchiverRefs(
      const object::MultimediaObject& obj,
      const std::map<std::string, storage::ArchiveAddress>& shared_parts);

  /// Archives bytes produced by SerializeWithArchiverRefs (or any
  /// archival bytes) and records a version.
  StatusOr<storage::ArchiveAddress> ArchiveBytes(storage::ObjectId id,
                                                 std::string_view bytes);

  /// Mail within the organization: the raw archived bytes (archiver
  /// pointers stay valid inside the organization).
  StatusOr<std::string> MailInside(storage::ObjectId id);

  /// Mail outside the organization: fetches the current version, extracts
  /// every archiver-pointed part, appends it to the composition file and
  /// rewrites the pointers. The result is fully self-contained.
  StatusOr<std::string> MailOutside(storage::ObjectId id);

  /// Resolves archiver pointers in `bytes` (the MailOutside core, exposed
  /// for objects not yet versioned).
  StatusOr<std::string> ResolvePointers(std::string_view bytes);

  /// Fetches and decodes the current version of an object, resolving any
  /// archiver pointers on the way (the server-side read path).
  StatusOr<object::MultimediaObject> FetchObject(storage::ObjectId id);

 private:
  storage::Archiver* archiver_;
  storage::VersionStore* versions_;
  SimClock* clock_;
};

}  // namespace minos::format

#endif  // MINOS_FORMAT_ARCHIVE_MAILER_H_
