#include "minos/format/archive_mailer.h"

#include "minos/object/part_codec.h"
#include "minos/storage/composition_file.h"
#include "minos/util/coding.h"

namespace minos::format {

using object::MultimediaObject;
using object::ObjectDescriptor;
using object::PartPointer;
using storage::ArchiveAddress;
using storage::CompositionFile;
using storage::DataType;

StatusOr<ArchiveAddress> ArchiveMailer::ArchiveObject(
    const MultimediaObject& obj) {
  MINOS_ASSIGN_OR_RETURN(std::string bytes, obj.SerializeArchived());
  return ArchiveBytes(obj.id(), bytes);
}

StatusOr<ArchiveAddress> ArchiveMailer::ArchiveBytes(
    storage::ObjectId id, std::string_view bytes) {
  MINOS_ASSIGN_OR_RETURN(ArchiveAddress addr, archiver_->Append(bytes));
  MINOS_RETURN_IF_ERROR(archiver_->Flush());
  versions_->Record(id, addr, clock_->Now());
  return addr;
}

StatusOr<std::string> ArchiveMailer::SerializeWithArchiverRefs(
    const MultimediaObject& obj,
    const std::map<std::string, ArchiveAddress>& shared_parts) {
  if (obj.state() != object::ObjectState::kArchived) {
    return Status::FailedPrecondition(
        "object must be archived state before serialization");
  }
  CompositionFile comp;
  ObjectDescriptor desc = obj.descriptor();
  desc.parts.clear();

  auto add_part = [&](const std::string& name, DataType type,
                      const std::string& payload) {
    PartPointer p;
    p.name = name;
    p.type = type;
    auto it = shared_parts.find(name);
    if (it != shared_parts.end()) {
      p.in_archiver = true;
      p.offset = it->second.offset;
      p.length = it->second.length;
    } else {
      p.in_archiver = false;
      p.offset = comp.AppendPart(name, type, payload);
      p.length = payload.size();
    }
    desc.parts.push_back(std::move(p));
  };

  add_part("attributes", DataType::kAttributes,
           object::EncodeAttributes(obj.attributes()));
  if (obj.has_text()) {
    add_part("text", DataType::kText,
             object::EncodeDocument(obj.text_part()));
  }
  if (obj.has_voice()) {
    add_part("voice", DataType::kVoice,
             object::EncodeVoiceDocument(obj.voice_part()));
  }
  for (size_t i = 0; i < obj.images().size(); ++i) {
    add_part("image:" + std::to_string(i), DataType::kImage,
             obj.images()[i].Serialize());
  }

  std::string out;
  PutLengthPrefixed(&out, desc.Serialize());
  out += comp.Serialize();
  return out;
}

StatusOr<std::string> ArchiveMailer::MailInside(storage::ObjectId id) {
  MINOS_ASSIGN_OR_RETURN(storage::ObjectVersion v, versions_->Current(id));
  std::string bytes;
  MINOS_RETURN_IF_ERROR(archiver_->Read(v.address, &bytes));
  return bytes;
}

StatusOr<std::string> ArchiveMailer::MailOutside(storage::ObjectId id) {
  MINOS_ASSIGN_OR_RETURN(std::string bytes, MailInside(id));
  return ResolvePointers(bytes);
}

StatusOr<std::string> ArchiveMailer::ResolvePointers(
    std::string_view bytes) {
  Decoder dec(bytes);
  std::string desc_bytes;
  MINOS_RETURN_IF_ERROR(dec.GetLengthPrefixed(&desc_bytes));
  MINOS_ASSIGN_OR_RETURN(ObjectDescriptor desc,
                         ObjectDescriptor::Deserialize(desc_bytes));
  std::string comp_bytes;
  MINOS_RETURN_IF_ERROR(dec.GetRaw(dec.remaining(), &comp_bytes));
  MINOS_ASSIGN_OR_RETURN(CompositionFile comp,
                         CompositionFile::Deserialize(comp_bytes));

  bool changed = false;
  for (PartPointer& p : desc.parts) {
    if (!p.in_archiver) continue;
    std::string payload;
    MINOS_RETURN_IF_ERROR(
        archiver_->ReadRange(p.offset, p.length, &payload));
    p.offset = comp.AppendPart(p.name, p.type, payload);
    p.in_archiver = false;
    changed = true;
  }
  if (!changed) return std::string(bytes);
  std::string out;
  PutLengthPrefixed(&out, desc.Serialize());
  out += comp.Serialize();
  return out;
}

StatusOr<MultimediaObject> ArchiveMailer::FetchObject(
    storage::ObjectId id) {
  MINOS_ASSIGN_OR_RETURN(std::string bytes, MailInside(id));
  MINOS_ASSIGN_OR_RETURN(std::string resolved, ResolvePointers(bytes));
  return MultimediaObject::DeserializeArchived(id, resolved);
}

}  // namespace minos::format
