#include "minos/format/object_formatter.h"

#include "minos/text/markup.h"

namespace minos::format {

using object::DrivingMode;
using object::MultimediaObject;
using object::ObjectDescriptor;
using object::TransparencyDisplay;
using object::TransparencySetSpec;
using object::VisualPageSpec;

StatusOr<MultimediaObject> ObjectFormatter::Format(
    const ObjectWorkspace& workspace, storage::ObjectId id) const {
  if (!workspace.directory().AllFinal()) {
    return Status::FailedPrecondition(
        "workspace has draft data files; finalize before formatting for "
        "archive");
  }
  MINOS_ASSIGN_OR_RETURN(SynthesisFile synth,
                         ParseSynthesis(workspace.synthesis()));

  MultimediaObject obj(id);
  ObjectDescriptor& desc = obj.descriptor();
  desc.driving_mode = synth.DeclaredMode();
  if (auto layout = synth.DeclaredLayout(); layout.has_value()) {
    desc.layout = *layout;
  }

  // Text part from the markup lines.
  text::MarkupParser markup_parser;
  MINOS_ASSIGN_OR_RETURN(text::Document doc,
                         markup_parser.Parse(synth.markup));
  const bool has_text = doc.size() > 0;

  // Paginate now so the descriptor's page list matches the presentation.
  size_t text_page_count = 0;
  if (has_text) {
    text::TextFormatter formatter(desc.layout);
    MINOS_ASSIGN_OR_RETURN(std::vector<text::TextPage> pages,
                           formatter.Paginate(doc));
    text_page_count = pages.size();
    for (size_t i = 0; i < pages.size(); ++i) {
      VisualPageSpec spec;
      spec.kind = VisualPageSpec::Kind::kNormal;
      spec.text_page = static_cast<uint32_t>(i + 1);
      desc.pages.push_back(std::move(spec));
    }
    MINOS_RETURN_IF_ERROR(obj.SetTextPart(std::move(doc)));
  }
  (void)text_page_count;

  // Image/transparency/overwrite pages, in directive order.
  TransparencyDisplay current_method = TransparencyDisplay::kStacked;
  std::optional<TransparencySetSpec> open_set;
  auto close_set = [&]() {
    if (open_set.has_value()) {
      desc.transparency_sets.push_back(*open_set);
      open_set.reset();
    }
  };
  for (const Directive& d : synth.directives) {
    switch (d.kind) {
      case Directive::Kind::kMode:
      case Directive::Kind::kLayout:
        break;
      case Directive::Kind::kMethod:
        current_method = d.arg == "separate" ? TransparencyDisplay::kSeparate
                                             : TransparencyDisplay::kStacked;
        if (open_set.has_value()) open_set->method = current_method;
        break;
      case Directive::Kind::kImage:
      case Directive::Kind::kTransparency:
      case Directive::Kind::kOverwrite: {
        MINOS_ASSIGN_OR_RETURN(std::string payload,
                               workspace.ReadDataFile(d.arg));
        MINOS_ASSIGN_OR_RETURN(image::Image img,
                               image::Image::Deserialize(payload));
        MINOS_ASSIGN_OR_RETURN(uint32_t index, obj.AddImage(std::move(img)));
        VisualPageSpec spec;
        spec.kind = d.kind == Directive::Kind::kImage
                        ? VisualPageSpec::Kind::kNormal
                    : d.kind == Directive::Kind::kTransparency
                        ? VisualPageSpec::Kind::kTransparency
                        : VisualPageSpec::Kind::kOverwrite;
        // Zero-size placement means "fit the page area" to the
        // compositor.
        spec.images.push_back(object::PlacedImage{index, image::Rect{}});
        desc.pages.push_back(std::move(spec));
        if (d.kind == Directive::Kind::kTransparency) {
          if (!open_set.has_value()) {
            open_set = TransparencySetSpec{
                static_cast<uint32_t>(desc.pages.size() - 1), 1,
                current_method};
          } else {
            ++open_set->count;
          }
        } else {
          close_set();
        }
        break;
      }
      case Directive::Kind::kProcess: {
        close_set();
        const uint32_t count = static_cast<uint32_t>(d.value_b);
        if (count > desc.pages.size()) {
          return Status::InvalidArgument(
              "@PROCESS covers more pages than exist");
        }
        object::ProcessSimulationSpec spec;
        spec.first_page =
            static_cast<uint32_t>(desc.pages.size()) - count;
        spec.count = count;
        spec.page_interval = MillisToMicros(d.value_a);
        desc.process_simulations.push_back(std::move(spec));
        break;
      }
    }
  }
  close_set();
  return obj;
}

}  // namespace minos::format
