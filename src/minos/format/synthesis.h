#ifndef MINOS_FORMAT_SYNTHESIS_H_
#define MINOS_FORMAT_SYNTHESIS_H_

#include <optional>
#include <string>
#include <vector>

#include "minos/object/descriptor.h"
#include "minos/util/statusor.h"

namespace minos::format {

/// A formatter directive found in a synthesis file. "The synthesis file
/// contains information about the presentation form of the multimedia
/// object, tags with the names of various data files, and possibly text."
/// (§4)
struct Directive {
  enum class Kind : uint8_t {
    kMode = 0,          ///< @MODE visual|audio
    kLayout = 1,        ///< @LAYOUT <width-chars> <height-lines>
    kImage = 2,         ///< @IMAGE <dataname>  — a page showing the image
    kTransparency = 3,  ///< @TRANSPARENCY <dataname> — overlays previous
    kOverwrite = 4,     ///< @OVERWRITE <dataname> — replaces inked pixels
    kMethod = 5,        ///< @METHOD stacked|separate (current transp. set)
    kProcess = 6,       ///< @PROCESS <interval-ms> <page-count>
  };
  Kind kind;
  std::string arg;       ///< Data file name / mode / method keyword.
  int value_a = 0;       ///< Layout width / process interval (ms).
  int value_b = 0;       ///< Layout height / process page count.
  /// Order marker: number of markup lines seen before this directive
  /// (directives after all text attach after the last text page).
  size_t markup_lines_before = 0;
};

/// A parsed synthesis file: the pass-through text markup (handed to
/// text::MarkupParser) and the ordered formatter directives.
struct SynthesisFile {
  std::string markup;
  std::vector<Directive> directives;

  /// Convenience: the declared driving mode (visual when absent).
  object::DrivingMode DeclaredMode() const;

  /// Convenience: the declared layout, if any.
  std::optional<text::PageLayout> DeclaredLayout() const;
};

/// Parses synthesis-file source. Lines starting with '@' are directives;
/// everything else (including '.' markup tags) passes through as text
/// markup. InvalidArgument on a malformed directive.
StatusOr<SynthesisFile> ParseSynthesis(std::string_view source);

}  // namespace minos::format

#endif  // MINOS_FORMAT_SYNTHESIS_H_
