#ifndef MINOS_FORMAT_WORKSPACE_STORE_H_
#define MINOS_FORMAT_WORKSPACE_STORE_H_

#include <string>
#include <vector>

#include "minos/format/workspace.h"
#include "minos/storage/file_store.h"
#include "minos/util/statusor.h"

namespace minos::format {

/// Byte codec for an editing-state workspace (synthesis file + data
/// directory + data files) — the on-disk form of the "multimedia object
/// file" of §4.
StatusOr<std::string> EncodeWorkspace(const ObjectWorkspace& workspace);
StatusOr<ObjectWorkspace> DecodeWorkspace(std::string_view bytes);

/// Editing-state objects on the workstation's magnetic disk, retrieved by
/// name (§5: "Multimedia objects in an editing state are stored in those
/// disks. Retrieval is done by name. The user edits only a number of
/// these objects at any point in time and he can easily recall their
/// names.").
class WorkspaceStore {
 public:
  /// `files` is borrowed and must outlive the store.
  explicit WorkspaceStore(storage::FileStore* files) : files_(files) {}

  /// Saves (or overwrites) a workspace under its own name.
  Status Save(const ObjectWorkspace& workspace);

  /// Loads a workspace by name.
  StatusOr<ObjectWorkspace> Load(const std::string& name) const;

  /// Removes a workspace (when its object is archived and the editing
  /// files are no longer needed).
  Status Remove(const std::string& name);

  /// Names of all stored workspaces.
  std::vector<std::string> List() const { return files_->List(); }

 private:
  storage::FileStore* files_;
};

}  // namespace minos::format

#endif  // MINOS_FORMAT_WORKSPACE_STORE_H_
