#include "minos/obs/trace.h"

#include <algorithm>
#include <cctype>
#include <map>

#include "minos/obs/json.h"
#include "minos/util/logging.h"

namespace minos::obs {

const std::string* SpanRecord::FindTag(std::string_view key) const {
  for (const auto& [k, v] : tags) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string SanitizeSpanName(std::string_view name, std::string* ids) {
  std::string out;
  out.reserve(name.size());
  size_t i = 0;
  while (i < name.size()) {
    if (std::isdigit(static_cast<unsigned char>(name[i]))) {
      size_t j = i;
      while (j < name.size() &&
             std::isdigit(static_cast<unsigned char>(name[j]))) {
        ++j;
      }
      out += "%id";
      if (ids != nullptr) {
        if (!ids->empty()) *ids += ",";
        ids->append(name.substr(i, j - i));
      }
      i = j;
    } else {
      out += name[i++];
    }
  }
  return out;
}

SpanRecord* Tracer::Live(uint64_t seq, uint64_t span_id) {
  if (seq >= started_) return nullptr;
  const size_t slot = SlotFor(seq);
  if (slot >= spans_.size()) return nullptr;
  SpanRecord& rec = spans_[slot];
  return rec.span_id == span_id ? &rec : nullptr;
}

const SpanRecord* Tracer::Live(uint64_t seq, uint64_t span_id) const {
  return const_cast<Tracer*>(this)->Live(seq, span_id);
}

void Tracer::set_capacity(size_t max_spans) {
  std::lock_guard<std::mutex> lock(mu_);
  ClearLocked();
  capacity_ = max_spans;
}

void Tracer::set_exemplar_capacity(size_t k) {
  std::lock_guard<std::mutex> lock(mu_);
  exemplar_capacity_ = k;
  if (exemplars_.size() > k) exemplars_.resize(k);
}

void Tracer::SetSampleRate(double rate) {
  std::lock_guard<std::mutex> lock(mu_);
  sample_rate_ = std::min(1.0, std::max(0.0, rate));
  sample_accum_ = 0.0;
}

uint64_t Tracer::sampled_out() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sampled_out_;
}

bool Tracer::AdmitRootLocked() {
  if (sample_rate_ >= 1.0) return true;
  sample_accum_ += sample_rate_;
  if (sample_accum_ >= 1.0 - 1e-9) {
    sample_accum_ -= 1.0;
    return true;
  }
  ++sampled_out_;
  if (registry_ != nullptr) {
    registry_->counter("trace.sampled_out")->Increment();
  }
  return false;
}

TraceSpan Tracer::SuppressedSpan(std::string name, bool ambient) {
  if (ambient) open_.push_back(OpenEntry{kSuppressedAmbientSeq, 0});
  return TraceSpan(this, std::move(name),
                   ambient ? kSuppressedAmbientSeq : kSuppressedSeq,
                   TraceContext{});
}

TraceSpan Tracer::StartSpan(std::string name) {
  if (TaskSink* sink = CurrentSink()) {
    // Inside a task the shared ambient stack is off limits (it belongs
    // to whatever the submitting thread had open); the span roots a
    // fresh trace with a task-local trace id instead.
    return SinkStartSpan(*sink, std::move(name), TraceContext{});
  }
  std::lock_guard<std::mutex> lock(mu_);
  // The innermost still-live ambient span is the parent; entries whose
  // records the ring buffer has reclaimed are pruned on the way down.
  // Suppression markers (span_id == 0) are live by definition.
  while (!open_.empty() && open_.back().span_id != 0 &&
         Live(open_.back().seq, open_.back().span_id) == nullptr) {
    open_.pop_back();
  }
  if (!open_.empty() && open_.back().span_id == 0) {
    // Nested under a sampled-out ambient root: suppress the whole
    // subtree so a dropped trace never contributes partial spans.
    return SuppressedSpan(std::move(name), /*ambient=*/true);
  }
  if (open_.empty()) {
    if (!AdmitRootLocked()) {
      return SuppressedSpan(std::move(name), /*ambient=*/true);
    }
    return StartSpanInternal(std::move(name), next_trace_id_++, 0, 0, -1,
                             /*ambient=*/true);
  }
  const SpanRecord* p = Live(open_.back().seq, open_.back().span_id);
  return StartSpanInternal(std::move(name), p->trace_id, p->span_id,
                           p->depth + 1,
                           static_cast<int64_t>(open_.back().seq),
                           /*ambient=*/true);
}

TraceSpan Tracer::StartSpan(std::string name, const TraceContext& parent) {
  if (TaskSink* sink = CurrentSink()) {
    return SinkStartSpan(*sink, std::move(name), parent);
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (!parent.valid()) {
    if (!AdmitRootLocked()) {
      return SuppressedSpan(std::move(name), /*ambient=*/false);
    }
    return StartSpanInternal(std::move(name), next_trace_id_++, 0, 0, -1,
                             /*ambient=*/false);
  }
  return StartSpanInternal(std::move(name), parent.trace_id, parent.span_id,
                           parent.depth + 1, -1, /*ambient=*/false);
}

TraceSpan Tracer::SinkStartSpan(TaskSink& sink, std::string name,
                                const TraceContext& parent) {
  SpanRecord record;
  record.name = name;
  const uint64_t local = sink.next_local_++;
  record.span_id = kTaskLocalBit | local;
  if (parent.valid()) {
    record.trace_id = parent.trace_id;
    record.parent_span_id = parent.span_id;
    record.depth = parent.depth + 1;
  } else {
    record.trace_id = kTaskLocalBit | local;
    record.parent_span_id = 0;
    record.depth = 0;
  }
  record.start_us = NowUs();
  record.end_us = record.start_us;
  record.parent = -1;
  TraceContext ctx;
  ctx.trace_id = record.trace_id;
  ctx.span_id = record.span_id;
  ctx.parent_span_id = record.parent_span_id;
  ctx.depth = record.depth;
  const uint64_t seq =
      kTaskLocalBit | static_cast<uint64_t>(sink.records_.size());
  sink.records_.push_back(std::move(record));
  return TraceSpan(this, std::move(name), seq, ctx);
}

TraceSpan Tracer::StartSpanInternal(std::string name, uint64_t trace_id,
                                    uint64_t parent_span_id, int depth,
                                    int64_t parent_ordinal, bool ambient) {
  SpanRecord record;
  record.name = name;
  record.trace_id = trace_id;
  record.span_id = next_span_id_++;
  record.parent_span_id = parent_span_id;
  record.start_us = NowUs();
  record.end_us = record.start_us;
  record.depth = depth;
  record.parent = parent_ordinal;
  TraceContext ctx;
  ctx.trace_id = trace_id;
  ctx.span_id = record.span_id;
  ctx.parent_span_id = parent_span_id;
  ctx.depth = depth;
  const uint64_t seq = PlaceRecordLocked(std::move(record));
  if (ambient) open_.push_back(OpenEntry{seq, ctx.span_id});
  return TraceSpan(this, std::move(name), seq, ctx);
}

uint64_t Tracer::PlaceRecordLocked(SpanRecord record) {
  const uint64_t seq = started_++;
  const size_t slot = SlotFor(seq);
  if (slot < spans_.size()) {
    // Ring wrapped: evict the slot's tenant. If that span is still
    // open its handle's End() becomes a no-op (span_id mismatch).
    const uint64_t evicted = seq - static_cast<uint64_t>(capacity_);
    open_.erase(std::remove_if(
                    open_.begin(), open_.end(),
                    [&](const OpenEntry& e) { return e.seq == evicted; }),
                open_.end());
    ++dropped_spans_;
    if (registry_ != nullptr) {
      registry_->counter("trace.dropped_spans")->Increment();
    }
    spans_[slot] = std::move(record);
  } else {
    spans_.push_back(std::move(record));
  }
  return seq;
}

TraceContext Tracer::current_context() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!open_.empty() && open_.back().span_id == 0) {
    // Inside a sampled-out ambient subtree: callers bridging into the
    // explicit fabric get an invalid context, so the fabric below
    // records nothing either.
    return TraceContext{};
  }
  for (auto it = open_.rbegin(); it != open_.rend(); ++it) {
    const SpanRecord* rec = Live(it->seq, it->span_id);
    if (rec != nullptr) {
      TraceContext ctx;
      ctx.trace_id = rec->trace_id;
      ctx.span_id = rec->span_id;
      ctx.parent_span_id = rec->parent_span_id;
      ctx.depth = rec->depth;
      return ctx;
    }
  }
  return TraceContext{};
}

void Tracer::Finish(uint64_t seq, uint64_t span_id) {
  if (seq == kSuppressedSeq) return;
  if (seq == kSuppressedAmbientSeq) {
    // Markers form a contiguous suffix of the open stack (no real span
    // can start under one), so popping the innermost is the match.
    std::lock_guard<std::mutex> lock(mu_);
    if (!open_.empty() && open_.back().span_id == 0) open_.pop_back();
    return;
  }
  if ((seq & kTaskLocalBit) != 0) {
    // A sink span finishes inside its own task: stamp the end time now
    // (the task's clock frame is still installed); the %id/mirror/log/
    // exemplar effects run at commit, in deterministic task order. A
    // handle that outlived its task finds no sink and is dropped.
    TaskSink* sink = CurrentSink();
    if (sink == nullptr) return;
    const size_t idx = static_cast<size_t>(seq & ~kTaskLocalBit);
    if (idx >= sink->records_.size()) return;
    SpanRecord& rec = sink->records_[idx];
    if (rec.span_id != span_id) return;
    rec.end_us = std::max(rec.start_us, NowUs());
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  SpanRecord* rec = Live(seq, span_id);
  if (rec == nullptr) return;  // Cleared, or reclaimed by the ring.
  rec->end_us = std::max(rec->start_us, NowUs());
  open_.erase(std::remove_if(
                  open_.begin(), open_.end(),
                  [&](const OpenEntry& e) { return e.seq == seq; }),
              open_.end());
  FinishEffectsLocked(*rec);
}

void Tracer::FinishEffectsLocked(SpanRecord& rec) {
  std::string ids;
  const std::string sanitized = SanitizeSpanName(rec.name, &ids);
  if (!ids.empty() && rec.FindTag("%id") == nullptr) {
    rec.tags.emplace_back("%id", ids);
  }
  if (registry_ != nullptr) {
    registry_->histogram("span." + sanitized + "_us")
        ->Record(static_cast<double>(rec.duration_us()));
  }
  if (log_spans_) {
    Logger::Get().Log(
        LogLevel::kDebug, "obs/trace.cc", 0, "span",
        {{"name", rec.name},
         {"start_us", std::to_string(rec.start_us)},
         {"dur_us", std::to_string(rec.duration_us())},
         {"depth", std::to_string(rec.depth)},
         {"trace_id", std::to_string(rec.trace_id)},
         {"span_id", std::to_string(rec.span_id)},
         {"parent_span_id", std::to_string(rec.parent_span_id)}});
  }
  if (rec.parent_span_id == 0 && exemplar_capacity_ > 0) {
    CaptureExemplar(rec);
  }
}

void Tracer::Tag(uint64_t seq, uint64_t span_id, std::string_view key,
                 std::string value) {
  if (seq == kSuppressedSeq || seq == kSuppressedAmbientSeq) return;
  if ((seq & kTaskLocalBit) != 0) {
    TaskSink* sink = CurrentSink();
    if (sink == nullptr) return;
    const size_t idx = static_cast<size_t>(seq & ~kTaskLocalBit);
    if (idx >= sink->records_.size()) return;
    SpanRecord& rec = sink->records_[idx];
    if (rec.span_id != span_id) return;
    rec.tags.emplace_back(std::string(key), std::move(value));
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  SpanRecord* rec = Live(seq, span_id);
  if (rec == nullptr) return;
  rec->tags.emplace_back(std::string(key), std::move(value));
}

void Tracer::CommitTaskSink(TaskSink& sink) {
  std::lock_guard<std::mutex> lock(mu_);
  // Task-local ids map to freshly allocated shared ids in buffer (start)
  // order — exactly the ids a serial execution of the tasks in commit
  // order would have drawn. Parents precede children in the buffer, so
  // one forward pass resolves every intra-sink link.
  std::map<uint64_t, uint64_t> span_ids;
  std::map<uint64_t, uint64_t> trace_ids;
  for (SpanRecord& rec : sink.records_) {
    if ((rec.span_id & kTaskLocalBit) != 0) {
      const uint64_t global = next_span_id_++;
      span_ids[rec.span_id] = global;
      rec.span_id = global;
    }
    if ((rec.trace_id & kTaskLocalBit) != 0) {
      auto [it, fresh] = trace_ids.try_emplace(rec.trace_id, 0);
      if (fresh) it->second = next_trace_id_++;
      rec.trace_id = it->second;
    }
    if ((rec.parent_span_id & kTaskLocalBit) != 0) {
      auto it = span_ids.find(rec.parent_span_id);
      rec.parent_span_id = it != span_ids.end() ? it->second : 0;
    }
    const uint64_t seq = PlaceRecordLocked(std::move(rec));
    FinishEffectsLocked(spans_[SlotFor(seq)]);
  }
  sink.records_.clear();
  sink.next_local_ = 1;
}

void Tracer::CaptureExemplar(const SpanRecord& root) {
  if (exemplars_.size() >= exemplar_capacity_ &&
      root.duration_us() <= exemplars_.back().duration_us) {
    return;
  }
  TraceExemplar ex;
  ex.trace_id = root.trace_id;
  ex.root_name = root.name;
  ex.duration_us = root.duration_us();
  for (SpanRecord& rec : OrderedSpansLocked()) {
    if (rec.trace_id == root.trace_id) ex.spans.push_back(std::move(rec));
  }
  auto pos = std::upper_bound(exemplars_.begin(), exemplars_.end(),
                              ex.duration_us,
                              [](Micros d, const TraceExemplar& e) {
                                return d > e.duration_us;
                              });
  exemplars_.insert(pos, std::move(ex));
  if (exemplars_.size() > exemplar_capacity_) exemplars_.pop_back();
}

std::vector<SpanRecord> Tracer::OrderedSpans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return OrderedSpansLocked();
}

std::vector<SpanRecord> Tracer::OrderedSpansLocked() const {
  if (capacity_ == 0 || started_ <= capacity_) return spans_;
  std::vector<SpanRecord> out;
  out.reserve(spans_.size());
  for (uint64_t seq = started_ - capacity_; seq < started_; ++seq) {
    out.push_back(spans_[SlotFor(seq)]);
  }
  return out;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ClearLocked();
}

void Tracer::ClearLocked() {
  // Open spans would dangle; detach them first (their End() becomes a
  // no-op via the liveness check in Finish). Span/trace id counters are
  // deliberately not reset so stale handles can never alias new records.
  open_.clear();
  spans_.clear();
  exemplars_.clear();
  started_ = 0;
  dropped_spans_ = 0;
  sample_accum_ = 0.0;
  sampled_out_ = 0;
}

std::string Tracer::ToJson(const TraceMeta& meta) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"schema\":\"minos.trace.v1\"";
  if (!meta.bench.empty()) {
    out += ",\"bench\":\"" + JsonEscape(meta.bench) + "\"";
  }
  if (meta.measured_us >= 0) {
    out += ",\"measured_us\":" + std::to_string(meta.measured_us);
  }
  out += ",\"dropped_spans\":" + std::to_string(dropped_spans_);
  out += ",\"spans\":[";
  bool first = true;
  for (const SpanRecord& s : OrderedSpansLocked()) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + JsonEscape(s.name) + "\"";
    out += ",\"trace_id\":" + std::to_string(s.trace_id);
    out += ",\"span_id\":" + std::to_string(s.span_id);
    out += ",\"parent_span_id\":" + std::to_string(s.parent_span_id);
    out += ",\"start_us\":" + std::to_string(s.start_us);
    out += ",\"end_us\":" + std::to_string(s.end_us);
    out += ",\"depth\":" + std::to_string(s.depth);
    out += ",\"parent\":" + std::to_string(s.parent);
    if (!s.tags.empty()) {
      out += ",\"tags\":{";
      for (size_t i = 0; i < s.tags.size(); ++i) {
        if (i > 0) out += ",";
        out += "\"" + JsonEscape(s.tags[i].first) + "\":\"" +
               JsonEscape(s.tags[i].second) + "\"";
      }
      out += "}";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

std::string Tracer::ToChromeTrace() const {
  // Chrome trace-event format: one "X" (complete) event per span, one
  // tid track per trace so overlapping scatter/prefetch work renders
  // side by side in chrome://tracing / Perfetto.
  std::lock_guard<std::mutex> lock(mu_);
  std::map<uint64_t, int> tids;
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& s : OrderedSpansLocked()) {
    auto [it, inserted] =
        tids.emplace(s.trace_id, static_cast<int>(tids.size()) + 1);
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + JsonEscape(s.name) + "\"";
    out += ",\"cat\":\"minos\",\"ph\":\"X\"";
    out += ",\"ts\":" + std::to_string(s.start_us);
    out += ",\"dur\":" + std::to_string(s.duration_us());
    out += ",\"pid\":1,\"tid\":" + std::to_string(it->second);
    out += ",\"args\":{\"trace_id\":\"" + std::to_string(s.trace_id);
    out += "\",\"span_id\":\"" + std::to_string(s.span_id);
    out += "\",\"parent_span_id\":\"" + std::to_string(s.parent_span_id);
    out += "\"";
    for (const auto& [k, v] : s.tags) {
      out += ",\"" + JsonEscape(k) + "\":\"" + JsonEscape(v) + "\"";
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

StatusOr<std::vector<SpanRecord>> Tracer::FromJson(std::string_view json) {
  MINOS_ASSIGN_OR_RETURN(JsonValue root, ParseJson(json));
  if (!root.is_object()) {
    return Status::InvalidArgument("not a minos.trace document");
  }
  if (!root.Get("schema").is_string() ||
      root.Get("schema").string() != "minos.trace.v1") {
    return Status::InvalidArgument("schema tag is not minos.trace.v1");
  }
  if (!root.Get("spans").is_array()) {
    return Status::InvalidArgument("missing spans array");
  }
  std::vector<SpanRecord> out;
  for (const JsonValue& v : root.Get("spans").array()) {
    if (!v.is_object()) {
      return Status::InvalidArgument("span entry is not an object");
    }
    if (!v.Get("name").is_string()) {
      return Status::InvalidArgument("span name is not a string");
    }
    for (const char* key : {"trace_id", "span_id", "parent_span_id",
                            "start_us", "end_us", "depth", "parent"}) {
      if (v.Has(key) && !v.Get(key).is_number()) {
        return Status::InvalidArgument(std::string("span field '") + key +
                                       "' is not a number");
      }
    }
    SpanRecord s;
    s.name = v.Get("name").string();
    s.trace_id = static_cast<uint64_t>(v.Get("trace_id").number());
    s.span_id = static_cast<uint64_t>(v.Get("span_id").number());
    s.parent_span_id =
        static_cast<uint64_t>(v.Get("parent_span_id").number());
    s.start_us = static_cast<Micros>(v.Get("start_us").number());
    s.end_us = static_cast<Micros>(v.Get("end_us").number());
    s.depth = static_cast<int>(v.Get("depth").number());
    s.parent = static_cast<int64_t>(v.Get("parent").number());
    if (v.Has("tags")) {
      if (!v.Get("tags").is_object()) {
        return Status::InvalidArgument("span tags is not an object");
      }
      for (const auto& [k, tv] : v.Get("tags").object()) {
        if (!tv.is_string()) {
          return Status::InvalidArgument("span tag value is not a string");
        }
        s.tags.emplace_back(k, tv.string());
      }
    }
    out.push_back(std::move(s));
  }
  return out;
}

TraceSpan::TraceSpan(TraceSpan&& other) noexcept
    : tracer_(other.tracer_), name_(std::move(other.name_)),
      seq_(other.seq_), context_(other.context_) {
  other.tracer_ = nullptr;
}

TraceSpan& TraceSpan::operator=(TraceSpan&& other) noexcept {
  if (this != &other) {
    End();
    tracer_ = other.tracer_;
    name_ = std::move(other.name_);
    seq_ = other.seq_;
    context_ = other.context_;
    other.tracer_ = nullptr;
  }
  return *this;
}

TraceSpan::~TraceSpan() { End(); }

void TraceSpan::End() {
  if (tracer_ == nullptr) return;
  tracer_->Finish(seq_, context_.span_id);
  tracer_ = nullptr;
}

void TraceSpan::AddTag(std::string_view key, std::string value) {
  if (tracer_ == nullptr) return;
  tracer_->Tag(seq_, context_.span_id, key, std::move(value));
}

void TraceSpan::AddTag(std::string_view key, int64_t value) {
  AddTag(key, std::to_string(value));
}

std::optional<TraceSpan> MaybeStartSpan(Tracer* tracer, std::string name,
                                        const TraceContext& parent) {
  if (tracer == nullptr || !parent.valid()) return std::nullopt;
  return tracer->StartSpan(std::move(name), parent);
}

TraceContext ContextOf(const std::optional<TraceSpan>& span) {
  return span.has_value() ? span->context() : TraceContext{};
}

}  // namespace minos::obs
