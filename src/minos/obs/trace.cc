#include "minos/obs/trace.h"

#include <algorithm>

#include "minos/obs/json.h"
#include "minos/util/logging.h"

namespace minos::obs {

TraceSpan Tracer::StartSpan(std::string name) {
  SpanRecord record;
  record.name = name;
  record.start_us = NowUs();
  record.end_us = record.start_us;
  record.depth = static_cast<int>(open_.size());
  record.parent = open_.empty() ? -1 : open_.back();
  const int64_t index = static_cast<int64_t>(spans_.size());
  spans_.push_back(std::move(record));
  open_.push_back(index);
  return TraceSpan(this, std::move(name), index);
}

void Tracer::Finish(int64_t index) {
  if (index < 0 || index >= static_cast<int64_t>(spans_.size())) return;
  SpanRecord& record = spans_[static_cast<size_t>(index)];
  record.end_us = std::max(record.start_us, NowUs());
  open_.erase(std::remove(open_.begin(), open_.end(), index), open_.end());
  if (registry_ != nullptr) {
    registry_->histogram("span." + record.name + "_us")
        ->Record(static_cast<double>(record.duration_us()));
  }
  if (log_spans_) {
    Logger::Get().Log(
        LogLevel::kDebug, "obs/trace.cc", 0, "span",
        {{"name", record.name},
         {"start_us", std::to_string(record.start_us)},
         {"dur_us", std::to_string(record.duration_us())},
         {"depth", std::to_string(record.depth)}});
  }
}

void Tracer::Clear() {
  // Open spans would dangle; detach them first (their End() becomes a
  // no-op via the bounds check in Finish).
  open_.clear();
  spans_.clear();
}

std::string Tracer::ToJson() const {
  std::string out = "{\"schema\":\"minos.trace.v1\",\"spans\":[";
  for (size_t i = 0; i < spans_.size(); ++i) {
    const SpanRecord& s = spans_[i];
    if (i > 0) out += ",";
    out += "{\"name\":\"" + JsonEscape(s.name) + "\"";
    out += ",\"start_us\":" + std::to_string(s.start_us);
    out += ",\"end_us\":" + std::to_string(s.end_us);
    out += ",\"depth\":" + std::to_string(s.depth);
    out += ",\"parent\":" + std::to_string(s.parent);
    out += "}";
  }
  out += "]}";
  return out;
}

StatusOr<std::vector<SpanRecord>> Tracer::FromJson(std::string_view json) {
  MINOS_ASSIGN_OR_RETURN(JsonValue root, ParseJson(json));
  if (!root.is_object() || !root.Get("spans").is_array()) {
    return Status::InvalidArgument("not a minos.trace document");
  }
  std::vector<SpanRecord> out;
  for (const JsonValue& v : root.Get("spans").array()) {
    if (!v.is_object()) {
      return Status::InvalidArgument("span entry is not an object");
    }
    SpanRecord s;
    s.name = v.Get("name").string();
    s.start_us = static_cast<Micros>(v.Get("start_us").number());
    s.end_us = static_cast<Micros>(v.Get("end_us").number());
    s.depth = static_cast<int>(v.Get("depth").number());
    s.parent = static_cast<int64_t>(v.Get("parent").number());
    out.push_back(std::move(s));
  }
  return out;
}

TraceSpan::TraceSpan(TraceSpan&& other) noexcept
    : tracer_(other.tracer_), name_(std::move(other.name_)),
      index_(other.index_) {
  other.tracer_ = nullptr;
}

TraceSpan& TraceSpan::operator=(TraceSpan&& other) noexcept {
  if (this != &other) {
    End();
    tracer_ = other.tracer_;
    name_ = std::move(other.name_);
    index_ = other.index_;
    other.tracer_ = nullptr;
  }
  return *this;
}

TraceSpan::~TraceSpan() { End(); }

void TraceSpan::End() {
  if (tracer_ == nullptr) return;
  tracer_->Finish(index_);
  tracer_ = nullptr;
}

}  // namespace minos::obs
