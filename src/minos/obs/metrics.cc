#include "minos/obs/metrics.h"

#include <algorithm>
#include <cmath>

namespace minos::obs {

void Histogram::Record(double value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  if (++since_accept_ < stride_) return;
  since_accept_ = 0;
  samples_.push_back(value);
  if (samples_.size() > kMaxSamples) {
    // Deterministic decimation: keep every other sample, double the
    // acceptance stride.
    std::vector<double> kept;
    kept.reserve(samples_.size() / 2 + 1);
    for (size_t i = 0; i < samples_.size(); i += 2) {
      kept.push_back(samples_[i]);
    }
    samples_ = std::move(kept);
    stride_ *= 2;
  }
}

int64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

double Histogram::min() const {
  std::lock_guard<std::mutex> lock(mu_);
  return min_;
}

double Histogram::max() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_;
}

double Histogram::mean() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

namespace {

/// Nearest-rank percentile over sorted samples; the smallest value with
/// at least pct% of samples <= it.
double SortedPercentile(const std::vector<double>& sorted, double pct) {
  if (sorted.empty()) return 0.0;
  pct = std::clamp(pct, 0.0, 100.0);
  const size_t rank = static_cast<size_t>(
      std::ceil(pct / 100.0 * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

}  // namespace

double Histogram::Percentile(double pct) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  return SortedPercentile(sorted, pct);
}

HistogramSummary Histogram::Summarize() const {
  HistogramSummary s;
  std::lock_guard<std::mutex> lock(mu_);
  s.count = count_;
  s.sum = sum_;
  s.min = min_;
  s.max = max_;
  s.mean = count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  s.p50 = SortedPercentile(sorted, 50);
  s.p90 = SortedPercentile(sorted, 90);
  s.p99 = SortedPercentile(sorted, 99);
  return s;
}

void Histogram::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  count_ = 0;
  sum_ = min_ = max_ = 0.0;
  samples_.clear();
  stride_ = 1;
  since_accept_ = 0;
}

int64_t MetricsSnapshot::CounterValue(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

double MetricsSnapshot::GaugeValue(std::string_view name) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return 0.0;
}

const HistogramSummary* MetricsSnapshot::FindHistogram(
    std::string_view name) const {
  for (const HistogramSummary& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

bool MetricsSnapshot::HasCounter(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    (void)v;
    if (n == name) return true;
  }
  return false;
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

std::string MetricsRegistry::MakeScope(std::string_view prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = scope_seq_.find(prefix);
  if (it == scope_seq_.end()) {
    it = scope_seq_.emplace(std::string(prefix), 0).first;
  }
  return std::string(prefix) + std::to_string(it->second++);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSummary s = h->Summarize();
    s.name = name;
    snap.histograms.push_back(std::move(s));
  }
  return snap;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
  scope_seq_.clear();
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

}  // namespace minos::obs
