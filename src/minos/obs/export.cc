#include "minos/obs/export.h"

#include <fstream>

#include "minos/obs/json.h"

namespace minos::obs {

namespace {

Status WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::NotFound("cannot write '" + path + "'");
  out << contents;
  out.flush();
  if (!out) return Status::Internal("short write to '" + path + "'");
  return Status::OK();
}

void AppendHistogramJson(const HistogramSummary& h, std::string* out) {
  *out += "{\"count\":" + std::to_string(h.count);
  *out += ",\"sum\":" + JsonNumber(h.sum);
  *out += ",\"min\":" + JsonNumber(h.min);
  *out += ",\"max\":" + JsonNumber(h.max);
  *out += ",\"mean\":" + JsonNumber(h.mean);
  *out += ",\"p50\":" + JsonNumber(h.p50);
  *out += ",\"p90\":" + JsonNumber(h.p90);
  *out += ",\"p99\":" + JsonNumber(h.p99);
  *out += "}";
}

}  // namespace

std::string SnapshotToJson(const MetricsSnapshot& snapshot,
                           const SnapshotMeta& meta) {
  std::string out = "{\"schema\":\"";
  out += kMetricsSchema;
  out += "\",\"bench\":\"" + JsonEscape(meta.bench) + "\"";
  out += ",\"sim_time_us\":" + std::to_string(meta.sim_time_us);
  out += ",\"workers\":" + std::to_string(meta.workers);
  out += ",\"counters\":{";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + JsonEscape(snapshot.counters[i].first) +
           "\":" + std::to_string(snapshot.counters[i].second);
  }
  out += "},\"gauges\":{";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + JsonEscape(snapshot.gauges[i].first) +
           "\":" + JsonNumber(snapshot.gauges[i].second);
  }
  out += "},\"histograms\":{";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + JsonEscape(snapshot.histograms[i].name) + "\":";
    AppendHistogramJson(snapshot.histograms[i], &out);
  }
  out += "}}";
  return out;
}

std::string SnapshotToCsv(const MetricsSnapshot& snapshot) {
  std::string out = "kind,name,field,value\n";
  for (const auto& [name, value] : snapshot.counters) {
    out += "counter," + name + ",value," + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    out += "gauge," + name + ",value," + JsonNumber(value) + "\n";
  }
  for (const HistogramSummary& h : snapshot.histograms) {
    out += "histogram," + h.name + ",count," + std::to_string(h.count) + "\n";
    out += "histogram," + h.name + ",sum," + JsonNumber(h.sum) + "\n";
    out += "histogram," + h.name + ",min," + JsonNumber(h.min) + "\n";
    out += "histogram," + h.name + ",max," + JsonNumber(h.max) + "\n";
    out += "histogram," + h.name + ",mean," + JsonNumber(h.mean) + "\n";
    out += "histogram," + h.name + ",p50," + JsonNumber(h.p50) + "\n";
    out += "histogram," + h.name + ",p90," + JsonNumber(h.p90) + "\n";
    out += "histogram," + h.name + ",p99," + JsonNumber(h.p99) + "\n";
  }
  return out;
}

Status WriteSnapshotJson(const MetricsRegistry& registry,
                         const std::string& path, const SnapshotMeta& meta) {
  return WriteFile(path, SnapshotToJson(registry.Snapshot(), meta) + "\n");
}

Status WriteSnapshotCsv(const MetricsRegistry& registry,
                        const std::string& path) {
  return WriteFile(path, SnapshotToCsv(registry.Snapshot()));
}

Status ValidateSnapshotJson(const std::string& json) {
  MINOS_ASSIGN_OR_RETURN(JsonValue root, ParseJson(json));
  if (!root.is_object()) {
    return Status::InvalidArgument("snapshot is not a JSON object");
  }
  if (root.Get("schema").string() != kMetricsSchema) {
    return Status::InvalidArgument("schema tag is not '" +
                                   std::string(kMetricsSchema) + "'");
  }
  if (!root.Get("bench").is_string()) {
    return Status::InvalidArgument("missing string field 'bench'");
  }
  if (!root.Get("sim_time_us").is_number()) {
    return Status::InvalidArgument("missing numeric field 'sim_time_us'");
  }
  // `workers` entered the header after v1 shipped; absent means a
  // serial writer (tolerated), present means it must be numeric.
  if (!root.Get("workers").is_null() && !root.Get("workers").is_number()) {
    return Status::InvalidArgument("field 'workers' is not numeric");
  }
  for (const char* section : {"counters", "gauges", "histograms"}) {
    if (!root.Get(section).is_object()) {
      return Status::InvalidArgument(std::string("missing object section '") +
                                     section + "'");
    }
  }
  for (const auto& [name, value] : root.Get("counters").object()) {
    if (!value.is_number()) {
      return Status::InvalidArgument("counter '" + name + "' is not numeric");
    }
  }
  for (const auto& [name, value] : root.Get("gauges").object()) {
    if (!value.is_number()) {
      return Status::InvalidArgument("gauge '" + name + "' is not numeric");
    }
  }
  static constexpr const char* kHistogramFields[] = {
      "count", "sum", "min", "max", "mean", "p50", "p90", "p99"};
  for (const auto& [name, value] : root.Get("histograms").object()) {
    if (!value.is_object()) {
      return Status::InvalidArgument("histogram '" + name +
                                     "' is not an object");
    }
    for (const char* field : kHistogramFields) {
      if (!value.Get(field).is_number()) {
        return Status::InvalidArgument("histogram '" + name +
                                       "' lacks numeric field '" + field +
                                       "'");
      }
    }
  }
  return Status::OK();
}

}  // namespace minos::obs
