#ifndef MINOS_OBS_TRACE_H_
#define MINOS_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "minos/obs/metrics.h"
#include "minos/util/clock.h"
#include "minos/util/statusor.h"

namespace minos::obs {

/// One finished span. Times come from the tracer's (simulated) clock, so
/// a trace of a presentation session is deterministic and replayable:
/// re-running the same scenario yields byte-identical trace output.
struct SpanRecord {
  std::string name;
  Micros start_us = 0;
  Micros end_us = 0;
  int depth = 0;        ///< 0 = root span.
  int64_t parent = -1;  ///< Index of the enclosing span record, -1 if root.

  Micros duration_us() const { return end_us - start_us; }
};

class TraceSpan;

/// Collects scoped spans against an injected Clock (normally the session
/// SimClock). Spans nest: a span started while another is open records
/// the open span as its parent. Finished spans optionally feed a
/// `span.<name>_us` histogram in a MetricsRegistry and/or the structured
/// log stream, so traces, metrics and log records line up on one
/// timeline.
class Tracer {
 public:
  /// `clock` is borrowed and may be null (all times read as 0 until a
  /// clock is installed with set_clock).
  explicit Tracer(const Clock* clock = nullptr) : clock_(clock) {}

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void set_clock(const Clock* clock) { clock_ = clock; }

  /// Mirrors every finished span's duration into
  /// `registry->histogram("span." + name + "_us")`. Null disables.
  void set_metrics_registry(MetricsRegistry* registry) {
    registry_ = registry;
  }

  /// Emits a structured log record (level kDebug, module "trace") per
  /// finished span, so spans and log records share one event stream.
  void set_log_spans(bool log_spans) { log_spans_ = log_spans; }

  /// Opens a span; it finishes when the returned object is destroyed or
  /// End() is called. The tracer must outlive the span.
  TraceSpan StartSpan(std::string name);

  /// Span records in start order. A still-open span's end_us equals its
  /// start_us until it finishes.
  const std::vector<SpanRecord>& spans() const { return spans_; }

  /// Depth of the currently open span chain (0 = none open).
  int open_depth() const { return static_cast<int>(open_.size()); }

  void Clear();

  /// Serializes finished spans as {"schema":"minos.trace.v1","spans":[...]}.
  std::string ToJson() const;

  /// Parses ToJson() output back into records (round-trip support for
  /// replay tooling and tests).
  static StatusOr<std::vector<SpanRecord>> FromJson(std::string_view json);

 private:
  friend class TraceSpan;

  Micros NowUs() const { return clock_ == nullptr ? 0 : clock_->Now(); }
  void Finish(int64_t index);

  const Clock* clock_;
  MetricsRegistry* registry_ = nullptr;
  bool log_spans_ = false;
  std::vector<int64_t> open_;  // Indexes into spans_, innermost last.
  std::vector<SpanRecord> spans_;
};

/// RAII handle for one span. Movable, not copyable; finishes at
/// destruction unless End() already ran.
class TraceSpan {
 public:
  TraceSpan(TraceSpan&& other) noexcept;
  TraceSpan& operator=(TraceSpan&& other) noexcept;
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan();

  /// Finishes the span now; later calls (and destruction) are no-ops.
  void End();

  const std::string& name() const { return name_; }

 private:
  friend class Tracer;
  TraceSpan(Tracer* tracer, std::string name, int64_t index)
      : tracer_(tracer), name_(std::move(name)), index_(index) {}

  Tracer* tracer_ = nullptr;  ///< Null once finished/moved-from.
  std::string name_;
  int64_t index_ = -1;  ///< Record index in the tracer.
};

}  // namespace minos::obs

#endif  // MINOS_OBS_TRACE_H_
