#ifndef MINOS_OBS_TRACE_H_
#define MINOS_OBS_TRACE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "minos/obs/metrics.h"
#include "minos/util/clock.h"
#include "minos/util/statusor.h"

namespace minos::obs {

/// Propagated identity of a request: which trace a unit of work belongs
/// to and which span is its parent. Threaded explicitly through the
/// shard fabric (Workstation -> ShardRouter -> ObjectServer -> Link /
/// scheduler / retry loop) so that scatter/gather rewinds and background
/// prefetch lanes still attach to the request that caused them — the
/// ambient open-span stack misattributes parents as soon as SimClock
/// RewindTo makes sibling work overlap in time.
///
/// A default-constructed context is invalid (trace_id == 0): components
/// receiving it record no spans, so untraced call paths cost nothing and
/// never produce orphan roots.
struct TraceContext {
  uint64_t trace_id = 0;        ///< 0 = not part of any trace.
  uint64_t span_id = 0;         ///< The span this context represents.
  uint64_t parent_span_id = 0;  ///< That span's own parent (0 = root).
  int depth = 0;                ///< Tree depth of span_id's span.

  bool valid() const { return trace_id != 0; }
};

/// One span. Times come from the tracer's (simulated) clock, so a trace
/// of a presentation session is deterministic and replayable: re-running
/// the same scenario yields byte-identical trace output.
///
/// Linkage is explicit: `span_id` / `parent_span_id` define the tree
/// (parent_span_id == 0 means root). The legacy `depth` / `parent`
/// fields describe the ambient nesting view (`parent` is the start
/// ordinal of the enclosing ambient span, -1 when the span was started
/// with an explicit TraceContext or as a root).
struct SpanRecord {
  std::string name;
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  Micros start_us = 0;
  Micros end_us = 0;
  int depth = 0;        ///< 0 = root span.
  int64_t parent = -1;  ///< Start ordinal of enclosing ambient span.
  /// Typed attribution tags (queue wait, link transfer, retry backoff,
  /// shard id, cache hit/miss, degraded, ...), in insertion order.
  std::vector<std::pair<std::string, std::string>> tags;

  Micros duration_us() const { return end_us - start_us; }

  /// First value recorded under `key`, or null when absent.
  const std::string* FindTag(std::string_view key) const;
};

/// One slow-request exemplar: a root span plus the full trace it headed,
/// snapshotted when the root finished. The exemplar log keeps the
/// slowest K roots so the p99 tail stays explainable even after the
/// span ring buffer has wrapped past the original records.
struct TraceExemplar {
  uint64_t trace_id = 0;
  std::string root_name;
  Micros duration_us = 0;
  std::vector<SpanRecord> spans;  ///< Oldest first; includes the root.
};

/// Strips per-object identifiers (maximal decimal digit runs) from a
/// span name, replacing each with "%id" — "open#42" becomes "open#%id".
/// Used for the `span.<name>_us` histogram mirror so metric cardinality
/// stays bounded no matter how many distinct objects a session touches.
/// When `ids` is non-null the stripped runs are appended to it,
/// comma-separated.
std::string SanitizeSpanName(std::string_view name,
                             std::string* ids = nullptr);

class TraceSpan;

/// Collects scoped spans against an injected Clock (normally the session
/// SimClock). Two parenting modes:
///
///  - StartSpan(name): ambient — the innermost open ambient span is the
///    parent. Correct for straight-line call stacks.
///  - StartSpan(name, ctx): explicit — the parent is whatever span the
///    propagated TraceContext names; the ambient stack is not consulted
///    and the new span does not join it. Required wherever SimClock
///    rewinds make concurrent work overlap (scatter/gather, prefetch).
///
/// Finished spans optionally feed a `span.<sanitized name>_us`
/// histogram in a MetricsRegistry and/or the structured log stream, so
/// traces, metrics and log records line up on one timeline. Storage is
/// an optional ring buffer (set_capacity) with a `trace.dropped_spans`
/// counter, plus a keep-slowest exemplar log of finished root traces.
///
/// ## Thread safety
///
/// Shared state (the span ring, the ambient stack, the id counters) is
/// mutex-guarded, so concurrent StartSpan/Finish/Tag calls are safe —
/// but a shared id counter would still make span ids depend on thread
/// interleaving. Task-pool work therefore records through a TaskSink:
/// while a TaskSinkScope is installed on a thread, that thread's spans
/// buffer lock-free into its task's private sink with task-local ids,
/// and the pool commits the sinks at the epoch barrier in task order.
/// Committed records then receive their final ids from the shared
/// counters — so the stored trace (ids, order, histogram mirror, ring
/// eviction) is byte-identical no matter how many workers ran the epoch,
/// and identical to a serial execution of the same tasks. Inside a sink,
/// spans must use explicit-parent StartSpan(name, ctx); an ambient
/// StartSpan(name) roots a fresh trace instead of consulting the shared
/// open stack. The borrowed `spans()` reference and span handles of sink
/// spans are only meaningful on the thread/epoch that produced them.
class Tracer {
 public:
  /// `clock` is borrowed and may be null (all times read as 0 until a
  /// clock is installed with set_clock).
  explicit Tracer(const Clock* clock = nullptr) : clock_(clock) {}

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void set_clock(const Clock* clock) { clock_ = clock; }

  /// Mirrors every finished span's duration into
  /// `registry->histogram("span." + SanitizeSpanName(name) + "_us")`.
  /// Null disables.
  void set_metrics_registry(MetricsRegistry* registry) {
    registry_ = registry;
  }

  /// Emits a structured log record (level kDebug, module "trace") per
  /// finished span, so spans and log records share one event stream.
  void set_log_spans(bool log_spans) { log_spans_ = log_spans; }

  /// Caps span storage at `max_spans` (0 = unbounded, the default).
  /// Once full, each new span overwrites the oldest record and bumps
  /// the `trace.dropped_spans` counter. Existing records are discarded
  /// (equivalent to Clear()) so the ring geometry is well defined.
  void set_capacity(size_t max_spans);

  /// Keeps the `k` slowest finished root traces as exemplars
  /// (default 4; 0 disables exemplar capture).
  void set_exemplar_capacity(size_t k);

  /// Head-based sampling: keeps roughly `rate` of new trace *roots*
  /// (clamped to [0, 1]; 1 = trace everything, the default). Admission
  /// is decided deterministically with an error accumulator — every
  /// 1/rate-th root is kept — so a replayed scenario samples the same
  /// traces. A sampled-out root returns an inert span with an invalid
  /// context(): descendants via MaybeStartSpan record nothing, ambient
  /// children are suppressed through a marker stack, so a dropped trace
  /// contributes zero spans rather than orphans. Only applies to new
  /// roots — spans with a valid parent always record (their root was
  /// already admitted). Task-sink roots are never sampled out (sink
  /// spans are expected to carry an explicit, already-sampled parent).
  void SetSampleRate(double rate);

  /// Trace roots suppressed by SetSampleRate since the last Clear().
  uint64_t sampled_out() const;

  /// Opens an ambient span; it finishes when the returned object is
  /// destroyed or End() is called. The tracer must outlive the span.
  TraceSpan StartSpan(std::string name);

  /// Opens a span whose parent is the span named by `parent`. When
  /// `parent` is invalid the span roots a new trace. Never consults or
  /// joins the ambient open stack.
  TraceSpan StartSpan(std::string name, const TraceContext& parent);

  /// Context of the innermost open ambient span (invalid when none is
  /// open) — the bridge from ambient session-level spans into the
  /// explicitly-propagated fabric below.
  TraceContext current_context() const;

  /// Span records in storage order. With no capacity set this is start
  /// order; once a ring buffer has wrapped, use OrderedSpans(). A
  /// still-open span's end_us equals its start_us until it finishes.
  const std::vector<SpanRecord>& spans() const { return spans_; }

  /// Copies the records oldest-first regardless of ring wrap.
  std::vector<SpanRecord> OrderedSpans() const;

  /// Spans overwritten by the ring buffer since the last Clear().
  uint64_t dropped_spans() const { return dropped_spans_; }

  /// Slow-request exemplars, slowest first.
  const std::vector<TraceExemplar>& exemplars() const { return exemplars_; }

  /// Depth of the currently open ambient span chain (0 = none open).
  int open_depth() const { return static_cast<int>(open_.size()); }

  void Clear();

  /// Optional header fields for ToJson.
  struct TraceMeta {
    std::string bench;       ///< Emitted as "bench" when non-empty.
    Micros measured_us = -1; ///< Emitted as "measured_us" when >= 0.
  };

  /// Serializes spans (oldest first) as
  /// {"schema":"minos.trace.v1","spans":[...]}. The overload adds the
  /// bench name and externally measured wall (sim) time that
  /// tools/trace_report.py reconciles the critical path against.
  std::string ToJson() const { return ToJson(TraceMeta{}); }
  std::string ToJson(const TraceMeta& meta) const;

  /// Serializes spans in the Chrome trace-event format ("ph":"X"
  /// complete events), loadable in chrome://tracing and Perfetto. Each
  /// trace renders as its own track (tid), args carry span ids + tags.
  std::string ToChromeTrace() const;

  /// Parses ToJson() output back into records (round-trip support for
  /// replay tooling and tests). Rejects documents whose schema tag is
  /// not "minos.trace.v1" and any structurally malformed span entry;
  /// never crashes on truncated or corrupt input.
  static StatusOr<std::vector<SpanRecord>> FromJson(std::string_view json);

  /// Marks task-local span/trace ids inside a TaskSink; commit replaces
  /// them with ids from the shared counters. Real ids never reach this
  /// bit (they would need 2^63 spans).
  static constexpr uint64_t kTaskLocalBit = 1ull << 63;

  /// Sentinel seqs for spans suppressed by sampling. Real seqs and
  /// task-local seqs can never reach these values; Finish/Tag check
  /// them before the task-local branch.
  static constexpr uint64_t kSuppressedSeq = ~0ull;
  static constexpr uint64_t kSuppressedAmbientSeq = ~0ull - 1;

  /// Private per-task span buffer. The task pool creates one per task on
  /// the submitting thread, the executing worker installs it with a
  /// TaskSinkScope, and the submitting thread commits it at the barrier
  /// with CommitTaskSink — in task order, so storage is deterministic.
  class TaskSink {
   public:
    explicit TaskSink(Tracer* tracer) : tracer_(tracer) {}
    TaskSink(const TaskSink&) = delete;
    TaskSink& operator=(const TaskSink&) = delete;

    /// Spans buffered so far (start order, task-local ids).
    size_t size() const { return records_.size(); }

   private:
    friend class Tracer;
    Tracer* tracer_;
    std::vector<SpanRecord> records_;  ///< Start order, local ids.
    uint64_t next_local_ = 1;
  };

  /// RAII: while alive, the installing thread's spans on the sink's
  /// tracer buffer into the sink (nests; restores the previous sink).
  class TaskSinkScope {
   public:
    explicit TaskSinkScope(TaskSink* sink) : prev_(t_sink_) {
      t_sink_ = sink;
    }
    ~TaskSinkScope() { t_sink_ = prev_; }
    TaskSinkScope(const TaskSinkScope&) = delete;
    TaskSinkScope& operator=(const TaskSinkScope&) = delete;

   private:
    TaskSink* prev_;
  };

  /// Moves a task's buffered spans into shared storage, assigning final
  /// span/trace ids from the shared counters and running the deferred
  /// finish effects (%id tag, histogram mirror, log record, ring
  /// eviction, exemplar capture) in buffer order. Call from the epoch
  /// barrier, in task order; the sink resets for reuse.
  void CommitTaskSink(TaskSink& sink);

 private:
  friend class TraceSpan;

  /// Ambient-stack entry. span_id == 0 marks a suppressed (sampled-out)
  /// ambient span: it keeps the nesting depth honest so End() pops
  /// correctly, but is never a parent and never prunes.
  struct OpenEntry {
    uint64_t seq;
    uint64_t span_id;
  };

  Micros NowUs() const { return clock_ == nullptr ? 0 : clock_->Now(); }
  size_t SlotFor(uint64_t seq) const {
    return capacity_ == 0 ? static_cast<size_t>(seq)
                          : static_cast<size_t>(seq % capacity_);
  }
  /// The installing thread's sink, when it belongs to this tracer.
  TaskSink* CurrentSink() const {
    return t_sink_ != nullptr && t_sink_->tracer_ == this ? t_sink_
                                                          : nullptr;
  }
  /// Record for `seq` if it has not been overwritten, else null.
  SpanRecord* Live(uint64_t seq, uint64_t span_id);
  const SpanRecord* Live(uint64_t seq, uint64_t span_id) const;
  TraceSpan StartSpanInternal(std::string name, uint64_t trace_id,
                              uint64_t parent_span_id, int depth,
                              int64_t parent_ordinal, bool ambient);
  TraceSpan SinkStartSpan(TaskSink& sink, std::string name,
                          const TraceContext& parent);
  /// Places a record in the ring (evicting the slot's tenant once
  /// wrapped) and returns its seq. Caller holds mu_.
  uint64_t PlaceRecordLocked(SpanRecord record);
  /// Sampling decision for a would-be trace root. Caller holds mu_.
  bool AdmitRootLocked();
  /// An inert handle whose End()/AddTag() are no-ops (ambient flavor
  /// additionally pops its suppression marker). Caller holds mu_ when
  /// pushing the marker.
  TraceSpan SuppressedSpan(std::string name, bool ambient);
  /// The deferred half of Finish: %id tag, histogram mirror, log
  /// record, root exemplar. Caller holds mu_.
  void FinishEffectsLocked(SpanRecord& rec);
  void ClearLocked();
  void Finish(uint64_t seq, uint64_t span_id);
  void Tag(uint64_t seq, uint64_t span_id, std::string_view key,
           std::string value);
  void CaptureExemplar(const SpanRecord& root);
  std::vector<SpanRecord> OrderedSpansLocked() const;

  /// Guards every shared member below. Sink-routed operations do not
  /// take it — a sink is owned by exactly one running task.
  mutable std::mutex mu_;
  const Clock* clock_;
  MetricsRegistry* registry_ = nullptr;
  bool log_spans_ = false;
  size_t capacity_ = 0;           ///< 0 = unbounded.
  size_t exemplar_capacity_ = 4;  ///< Slowest roots kept.
  uint64_t started_ = 0;          ///< Spans started since Clear().
  uint64_t dropped_spans_ = 0;
  double sample_rate_ = 1.0;      ///< Fraction of roots kept.
  double sample_accum_ = 0.0;     ///< Deterministic sampling residue.
  uint64_t sampled_out_ = 0;      ///< Roots suppressed since Clear().
  uint64_t next_span_id_ = 1;   ///< Never reset: stale handles can't alias.
  uint64_t next_trace_id_ = 1;  ///< Never reset.
  std::vector<OpenEntry> open_;  ///< Ambient stack, innermost last.
  std::vector<SpanRecord> spans_;
  std::vector<TraceExemplar> exemplars_;  ///< Slowest first.

  /// Sink installed on the calling thread (TaskSinkScope), any tracer.
  inline static thread_local TaskSink* t_sink_ = nullptr;
};

/// RAII handle for one span. Movable, not copyable; finishes at
/// destruction unless End() already ran.
class TraceSpan {
 public:
  TraceSpan(TraceSpan&& other) noexcept;
  TraceSpan& operator=(TraceSpan&& other) noexcept;
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan();

  /// Finishes the span now; later calls (and destruction) are no-ops.
  void End();

  /// Attaches an attribution tag. No-op once finished or after the
  /// ring buffer has reclaimed the record.
  void AddTag(std::string_view key, std::string value);
  void AddTag(std::string_view key, int64_t value);

  /// Context to hand to child work: children created from it become
  /// children of this span. Remains usable after End().
  TraceContext context() const { return context_; }

  const std::string& name() const { return name_; }

 private:
  friend class Tracer;
  TraceSpan(Tracer* tracer, std::string name, uint64_t seq,
            TraceContext context)
      : tracer_(tracer), name_(std::move(name)), seq_(seq),
        context_(context) {}

  Tracer* tracer_ = nullptr;  ///< Null once finished/moved-from.
  std::string name_;
  uint64_t seq_ = 0;  ///< Start ordinal in the tracer.
  TraceContext context_;
};

/// Starts `name` as a child of `parent` when `tracer` is non-null and
/// the caller is itself traced; nullopt otherwise. The fabric-layer
/// idiom: an untraced call path (invalid context) records nothing, so
/// it can never produce orphan roots.
std::optional<TraceSpan> MaybeStartSpan(Tracer* tracer, std::string name,
                                        const TraceContext& parent);

/// Context of an optional span (invalid when absent).
TraceContext ContextOf(const std::optional<TraceSpan>& span);

}  // namespace minos::obs

#endif  // MINOS_OBS_TRACE_H_
