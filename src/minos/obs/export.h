#ifndef MINOS_OBS_EXPORT_H_
#define MINOS_OBS_EXPORT_H_

#include <string>

#include "minos/obs/metrics.h"
#include "minos/util/clock.h"
#include "minos/util/status.h"

namespace minos::obs {

/// Header fields of an exported snapshot — the `BENCH_*.json` trajectory
/// format every bench run and the `--stats` tool flag produce.
struct SnapshotMeta {
  std::string bench;        ///< Experiment / scenario identifier.
  Micros sim_time_us = 0;   ///< SimClock reading at export time.
  /// Worker threads the run's task pool used (1 = serial). A header
  /// dimension, deliberately not a gauge: the determinism matrix diffs
  /// the metric sections byte-for-byte across worker counts, and the
  /// one field allowed to differ must live outside them.
  int workers = 1;
};

/// Schema identifier written into (and required of) every snapshot.
inline constexpr char kMetricsSchema[] = "minos.metrics.v1";

/// Serializes a snapshot as one JSON document:
///   {"schema":"minos.metrics.v1","bench":...,"sim_time_us":...,
///    "workers":...,"counters":{name:value,...},"gauges":{...},
///    "histograms":{name:{"count":..,"sum":..,"min":..,"max":..,
///                        "mean":..,"p50":..,"p90":..,"p99":..},...}}
std::string SnapshotToJson(const MetricsSnapshot& snapshot,
                           const SnapshotMeta& meta = {});

/// Serializes a snapshot as CSV rows: kind,name,field,value — one row
/// per counter/gauge and one per histogram summary field.
std::string SnapshotToCsv(const MetricsSnapshot& snapshot);

/// Snapshots `registry` and writes the JSON document to `path`.
Status WriteSnapshotJson(const MetricsRegistry& registry,
                         const std::string& path,
                         const SnapshotMeta& meta = {});

/// Snapshots `registry` and writes the CSV document to `path`.
Status WriteSnapshotCsv(const MetricsRegistry& registry,
                        const std::string& path);

/// Validates that `json` is a well-formed minos.metrics.v1 snapshot:
/// correct schema tag, sections present, every histogram carrying the
/// full summary field set. Returns the offending detail on failure.
/// (C++ twin of tools/check_stats_schema.py.)
Status ValidateSnapshotJson(const std::string& json);

}  // namespace minos::obs

#endif  // MINOS_OBS_EXPORT_H_
