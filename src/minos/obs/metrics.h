#ifndef MINOS_OBS_METRICS_H_
#define MINOS_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace minos::obs {

/// Monotonically increasing event count (bytes transferred, cache hits,
/// ...). Negative deltas are allowed for the rare "thin view" migrations
/// that must support a reset-style accessor, but the intended use is
/// increment-only.
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Instantaneous level (navigation-stack depth, queue length, ...).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    // Single-writer in practice; CAS keeps concurrent adders safe.
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Percentile summary of a histogram at snapshot time.
struct HistogramSummary {
  std::string name;
  int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// Value distribution with exact count/sum/min/max and percentiles over
/// a bounded sample set. Typical values are simulated-time durations in
/// microseconds (the registry convention is a `_us` name suffix), which
/// makes the percentiles deterministic and replayable: the SimClock, not
/// the wall clock, drives them.
///
/// When more than kMaxSamples values arrive, the sample set is decimated
/// deterministically (every other retained sample is dropped and the
/// acceptance stride doubles), so percentiles degrade gracefully to a
/// uniform subsample while count/sum/min/max stay exact.
class Histogram {
 public:
  static constexpr size_t kMaxSamples = 4096;

  void Record(double value);

  int64_t count() const;
  double sum() const;
  double min() const;  ///< 0 when empty.
  double max() const;  ///< 0 when empty.
  double mean() const; ///< 0 when empty.

  /// Nearest-rank percentile over the retained samples; `pct` in [0,100].
  /// Returns 0 when empty.
  double Percentile(double pct) const;

  /// Summary with the standard percentile set (name left empty).
  HistogramSummary Summarize() const;

  void Reset();

 private:
  mutable std::mutex mu_;
  int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::vector<double> samples_;
  uint64_t stride_ = 1;       // Accept every stride_-th observation.
  uint64_t since_accept_ = 0; // Observations since the last accepted one.
};

/// Point-in-time copy of every registered metric, ordered by name.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, int64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSummary> histograms;

  /// Lookup helpers for tests and tools; counters/gauges return 0 and
  /// histograms nullptr when `name` is absent.
  int64_t CounterValue(std::string_view name) const;
  double GaugeValue(std::string_view name) const;
  const HistogramSummary* FindHistogram(std::string_view name) const;
  bool HasCounter(std::string_view name) const;
};

/// Name-addressed registry of counters, gauges and histograms — the one
/// queryable surface for every statistic the presentation pipeline
/// produces (cache hits, link transfers, queueing delays, page-turn
/// latencies, ...). Metric objects are owned by the registry and live
/// until the registry is destroyed; Reset() zeroes values but never
/// invalidates pointers, so instrumented components may cache them.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Process-wide registry used when no registry is injected. Leaked on
  /// purpose (never destroyed), so cached metric pointers stay valid in
  /// static destructors.
  static MetricsRegistry& Default();

  /// Returns the metric registered under `name`, creating it on first
  /// use. Counters, gauges and histograms live in separate namespaces.
  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  Histogram* histogram(std::string_view name);

  /// Allocates a unique instance scope, e.g. MakeScope("link") returns
  /// "link0", then "link1", ... Components prefix their metric names
  /// with a scope so per-instance accessors stay per-instance.
  std::string MakeScope(std::string_view prefix);

  /// Copies every metric's current value, ordered by name.
  MetricsSnapshot Snapshot() const;

  /// Zeroes all values and clears histogram samples; registrations (and
  /// pointers handed out) stay valid. Scope sequence numbers also reset
  /// so a fresh run re-derives the same metric names.
  void Reset();

  /// Number of registered metrics of all kinds.
  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, uint64_t, std::less<>> scope_seq_;
};

}  // namespace minos::obs

#endif  // MINOS_OBS_METRICS_H_
