#ifndef MINOS_OBS_JSON_H_
#define MINOS_OBS_JSON_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "minos/util/statusor.h"

namespace minos::obs {

/// Minimal JSON document model, sufficient for the metrics/trace
/// interchange formats: snapshots and span logs are written by the
/// exporters in export.h and read back by tests, the schema checker and
/// replay tooling. Not a general-purpose JSON library — numbers are
/// doubles, object keys are unique, and no unicode escapes beyond
/// \uXXXX pass-through are produced.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool bool_value() const { return bool_; }
  double number() const { return number_; }
  const std::string& string() const { return string_; }
  const std::vector<JsonValue>& array() const { return array_; }
  const std::map<std::string, JsonValue>& object() const { return object_; }

  /// Member lookup; returns null when absent or not an object.
  const JsonValue& Get(std::string_view key) const;

  /// True when the object has `key`.
  bool Has(std::string_view key) const;

  static JsonValue Null();
  static JsonValue Bool(bool b);
  static JsonValue Number(double n);
  static JsonValue String(std::string s);
  static JsonValue Array(std::vector<JsonValue> items);
  static JsonValue Object(std::map<std::string, JsonValue> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Parses a complete JSON document; InvalidArgument on malformed input
/// or trailing garbage.
StatusOr<JsonValue> ParseJson(std::string_view text);

/// Escapes `s` for inclusion inside JSON double quotes.
std::string JsonEscape(std::string_view s);

/// Formats a double the way the exporters do: integers render without a
/// fractional part, everything else with enough digits to round-trip.
std::string JsonNumber(double v);

}  // namespace minos::obs

#endif  // MINOS_OBS_JSON_H_
