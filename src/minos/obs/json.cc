#include "minos/obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace minos::obs {

namespace {

const JsonValue& NullSingleton() {
  static const JsonValue* null = new JsonValue();
  return *null;
}

/// Recursive-descent parser over [pos, text.size()).
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    MINOS_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("trailing characters at offset " +
                                     std::to_string(pos_));
    }
    return v;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  Status Fail(const std::string& what) {
    return Status::InvalidArgument(what + " at offset " +
                                   std::to_string(pos_));
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  StatusOr<JsonValue> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      MINOS_ASSIGN_OR_RETURN(std::string s, ParseString());
      return JsonValue::String(std::move(s));
    }
    if (ConsumeLiteral("true")) return JsonValue::Bool(true);
    if (ConsumeLiteral("false")) return JsonValue::Bool(false);
    if (ConsumeLiteral("null")) return JsonValue::Null();
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      return ParseNumber();
    }
    return Fail(std::string("unexpected character '") + c + "'");
  }

  StatusOr<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || token.empty()) {
      return Fail("malformed number '" + token + "'");
    }
    return JsonValue::Number(v);
  }

  StatusOr<std::string> ParseString() {
    if (!Consume('"')) return Fail("expected '\"'");
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Fail("truncated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("bad \\u escape digit");
            }
          }
          // The exporters only escape control characters, so a basic
          // UTF-8 encoding of the BMP code point suffices.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Fail(std::string("unknown escape '\\") + esc + "'");
      }
    }
    return Fail("unterminated string");
  }

  StatusOr<JsonValue> ParseArray() {
    if (!Consume('[')) return Fail("expected '['");
    std::vector<JsonValue> items;
    SkipWhitespace();
    if (Consume(']')) return JsonValue::Array(std::move(items));
    while (true) {
      MINOS_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
      items.push_back(std::move(v));
      SkipWhitespace();
      if (Consume(']')) return JsonValue::Array(std::move(items));
      if (!Consume(',')) return Fail("expected ',' or ']'");
    }
  }

  StatusOr<JsonValue> ParseObject() {
    if (!Consume('{')) return Fail("expected '{'");
    std::map<std::string, JsonValue> members;
    SkipWhitespace();
    if (Consume('}')) return JsonValue::Object(std::move(members));
    while (true) {
      SkipWhitespace();
      MINOS_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Fail("expected ':'");
      MINOS_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
      members[std::move(key)] = std::move(v);
      SkipWhitespace();
      if (Consume('}')) return JsonValue::Object(std::move(members));
      if (!Consume(',')) return Fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue& JsonValue::Get(std::string_view key) const {
  if (kind_ != Kind::kObject) return NullSingleton();
  auto it = object_.find(std::string(key));
  return it == object_.end() ? NullSingleton() : it->second;
}

bool JsonValue::Has(std::string_view key) const {
  return kind_ == Kind::kObject && object_.count(std::string(key)) > 0;
}

JsonValue JsonValue::Null() { return JsonValue(); }

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Number(double n) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = n;
  return v;
}

JsonValue JsonValue::String(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::Object(std::map<std::string, JsonValue> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(members);
  return v;
}

StatusOr<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  if (!std::isfinite(v)) return "0";  // JSON has no inf/nan.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace minos::obs
