#include "minos/core/editing_preview.h"

#include "minos/core/page_compositor.h"
#include "minos/image/miniature.h"
#include "minos/render/screen.h"

namespace minos::core {

StatusOr<image::Bitmap> RenderEditingPreview(
    const object::MultimediaObject& obj, int page_number, int scale) {
  const auto& pages = obj.descriptor().pages;
  if (page_number < 1 || page_number > static_cast<int>(pages.size())) {
    return Status::OutOfRange("no such page to preview");
  }
  if (scale < 1) return Status::InvalidArgument("scale must be >= 1");
  MINOS_ASSIGN_OR_RETURN(FormattedText formatted, FormatObjectText(obj));

  render::Screen screen(render::ScreenLayout{360, 280, 0, 0});
  PageCompositor compositor(&screen);
  const image::Rect region{0, 0, 360, 280};
  // Compose the transparency/overwrite stack up to the requested page,
  // exactly as browsing would.
  const size_t index = static_cast<size_t>(page_number - 1);
  size_t base = index;
  while (base > 0 &&
         pages[base].kind != object::VisualPageSpec::Kind::kNormal) {
    --base;
  }
  for (size_t i = base; i <= index; ++i) {
    MINOS_RETURN_IF_ERROR(
        compositor.ComposePage(obj, formatted, i, region));
  }
  MINOS_ASSIGN_OR_RETURN(
      image::Miniature mini,
      image::Miniature::Build(
          image::Image::FromBitmap(screen.framebuffer()), scale));
  return mini.raster();
}

}  // namespace minos::core
