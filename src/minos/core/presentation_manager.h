#ifndef MINOS_CORE_PRESENTATION_MANAGER_H_
#define MINOS_CORE_PRESENTATION_MANAGER_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "minos/core/audio_browser.h"
#include "minos/core/events.h"
#include "minos/image/view.h"
#include "minos/core/message_player.h"
#include "minos/core/visual_browser.h"
#include "minos/obs/metrics.h"
#include "minos/obs/trace.h"
#include "minos/object/multimedia_object.h"
#include "minos/render/screen.h"
#include "minos/util/statusor.h"

namespace minos::core {

/// One part the manager could not present as authored. The session keeps
/// presenting — degradation trades fidelity for availability — but every
/// substitution is recorded so the user (and tests) can see what was
/// lost.
struct DegradedPart {
  storage::ObjectId object_id = 0;
  std::string part;    ///< "voice", "image:2", ...
  std::string reason;  ///< Human-readable cause.
};

/// The multimedia object presentation manager — the paper's primary
/// contribution. It "resides in the user's workstation and requests the
/// appropriate pieces of information from the multimedia object server
/// subsystems" (§5), presents the selected object according to its
/// driving mode, and "will also facilitate the user in navigating from
/// the current object to other related objects".
///
/// The manager keeps a navigation stack: entering a relevant object
/// suspends the parent's browsing mode and opens the target with *its*
/// driving mode; returning "reestablishes the mode of browsing of the
/// parent object" (§3). It also executes tours, views, and label
/// operations on the current object's images.
class PresentationManager {
 public:
  /// Fetches archived objects by identifier (backed by the archive mailer
  /// or the object server).
  using ObjectResolver =
      std::function<StatusOr<object::MultimediaObject>(storage::ObjectId)>;

  /// All pointers are borrowed and must outlive the manager.
  PresentationManager(render::Screen* screen, SimClock* clock,
                      voice::SpeakerParams message_speaker = {});

  /// Installs the object source.
  void SetResolver(ObjectResolver resolver) {
    resolver_ = std::move(resolver);
  }

  /// One browsing-cursor movement inside an open object, forwarded to
  /// the workstation layer so the prefetch pipeline can follow the user.
  struct BrowseEvent {
    storage::ObjectId object_id = 0;
    /// Mode of the browser that moved (a degraded audio object browsed
    /// visually reports kVisual).
    object::DrivingMode mode = object::DrivingMode::kVisual;
    int page = 1;  ///< 1-based.
    int page_count = 1;
    bool jump = false;  ///< Moved more than one page at once.
  };
  using BrowseListener = std::function<void(const BrowseEvent&)>;

  /// Installs the browse listener. Every browser the manager opens (root
  /// or relevant object, either mode) reports its cursor movements here;
  /// replacing the listener affects already-open frames too.
  void SetBrowseListener(BrowseListener listener) {
    browse_listener_ = std::move(listener);
  }

  /// Opens the root object, replacing any existing navigation stack.
  Status Open(storage::ObjectId id);

  /// Current browsing state --------------------------------------------

  /// True when any object is open.
  bool is_open() const { return !stack_.empty(); }

  /// Driving mode of the currently browsed object.
  StatusOr<object::DrivingMode> CurrentMode() const;

  /// The active browsers (null when the current object uses the other
  /// mode).
  VisualBrowser* visual_browser();
  AudioBrowser* audio_browser();

  /// The currently browsed object.
  StatusOr<const object::MultimediaObject*> CurrentObject() const;

  /// Navigation depth (1 = root object).
  size_t depth() const { return stack_.size(); }

  /// Relevant objects ---------------------------------------------------

  /// Indicator labels currently visible (anchor overlaps the current
  /// page / playback position).
  std::vector<std::string> VisibleRelevantIndicators() const;

  /// Enters the i-th visible relevant object ("The user can browse
  /// through a relevant object by explicitly selecting the relevant
  /// object indicator", §2).
  Status EnterRelevantObject(size_t indicator_index);

  /// Returns to the parent object and re-presents it in its own mode.
  Status ReturnFromRelevantObject();

  /// Relevances of the link through which the current object was entered
  /// (empty for the root).
  std::vector<object::Relevance> CurrentRelevances() const;

  /// Renders a polygon relevance: the image with the related graphics
  /// object highlighted, drawn into the page area.
  Status ShowImageRelevance(const object::Relevance& relevance);

  /// Shows a text relevance: navigates the current (visual-mode) object
  /// to the page presenting the related text section and draws the
  /// begin/end indicators ("Relevances to text sections are indicated
  /// graphically with beginning and end indicators", §2).
  Status ShowTextRelevance(const object::Relevance& relevance);

  /// Plays the next voice-segment relevance ("A menu option has to be
  /// selected in order to hear the next related voice segment", §2).
  /// OutOfRange when all have been played; a repeat call wraps around.
  Status PlayNextRelevantVoiceSegment();

  /// Views, tours and labels on the current object ----------------------

  /// Creates a view over image `image_index` of the current object.
  StatusOr<image::View> CreateView(uint32_t image_index,
                                   const image::Rect& rect) const;

  /// Plays tour `tour_index` of the current object from stop
  /// `first_stop`: jumps the view, retrieves and displays each stop,
  /// plays attached messages, and plays voice labels the moving view
  /// encounters. Returns the index one past the last stop played (the
  /// user may interrupt a tour by passing a smaller `stop_limit`).
  StatusOr<size_t> PlayTour(size_t tour_index, size_t first_stop = 0,
                            size_t stop_limit = SIZE_MAX);

  /// Plays the voice label of a specific graphics object (mouse
  /// selection of the voice indicator).
  Status PlayVoiceLabel(uint32_t image_index, uint32_t object_id);

  /// Plays all voice labels of an image in a system-defined order
  /// (object id order).
  Status PlayAllVoiceLabels(uint32_t image_index);

  /// Inverse lookup: the label of the topmost object at (x, y) — text
  /// labels are displayed, voice labels played (§2).
  StatusOr<std::string> SelectObjectAt(uint32_t image_index, int x, int y);

  /// Highlights objects whose label matches `pattern` and renders the
  /// image to the page area; returns the matched ids.
  StatusOr<std::vector<uint32_t>> HighlightLabelPattern(
      uint32_t image_index, std::string_view pattern);

  /// Degraded presentation ----------------------------------------------

  /// Records that `part` of `object_id` could not be presented as
  /// authored and a fallback was substituted. Logged as a kDegraded
  /// event and counted in "presentation.degraded_parts".
  void NoteDegraded(storage::ObjectId object_id, std::string part,
                    std::string reason);

  /// Every substitution made this session, in order.
  const std::vector<DegradedPart>& degraded_parts() const {
    return degraded_parts_;
  }

  /// True when the currently browsed object is showing a fallback (e.g.
  /// an audio-mode object presented visually after losing its voice
  /// part).
  bool current_degraded() const {
    return top() != nullptr && top()->degraded;
  }

  /// Plumbing ------------------------------------------------------------

  EventLog& log() { return log_; }
  render::Screen* screen() { return screen_; }
  SimClock* clock() { return clock_; }
  MessagePlayer& messages() { return messages_; }

  /// Sim-clock-driven trace of this session: one span per open /
  /// relevant-object excursion / tour, nested like the navigation stack.
  /// Deterministic and replayable (virtual time, not wall time). The
  /// built-in tracer by default; the session-wide one once the
  /// workstation installs it with SetTracer, so navigation spans join
  /// the same trace as the fabric spans below them.
  obs::Tracer& tracer() {
    return active_tracer_ != nullptr ? *active_tracer_ : tracer_;
  }

  /// Redirects span recording to a session-wide tracer (borrowed; null
  /// restores the built-in one).
  void SetTracer(obs::Tracer* tracer) { active_tracer_ = tracer; }

 private:
  struct Frame {
    storage::ObjectId id = 0;
    std::unique_ptr<object::MultimediaObject> object;
    std::unique_ptr<VisualBrowser> visual;
    std::unique_ptr<AudioBrowser> audio;
    /// The link followed to get here (null for the root).
    const object::RelevantObjectLink* via = nullptr;
    size_t next_voice_relevance = 0;
    /// This frame is presenting a fallback, not the authored form.
    bool degraded = false;
  };

  Status OpenFrame(storage::ObjectId id,
                   const object::RelevantObjectLink* via);
  StatusOr<const image::Image*> ImageOf(uint32_t image_index) const;
  Frame* top() { return stack_.empty() ? nullptr : &stack_.back(); }
  const Frame* top() const {
    return stack_.empty() ? nullptr : &stack_.back();
  }

  render::Screen* screen_;
  SimClock* clock_;
  MessagePlayer messages_;
  EventLog log_;
  ObjectResolver resolver_;
  BrowseListener browse_listener_;
  std::vector<Frame> stack_;
  std::vector<DegradedPart> degraded_parts_;
  obs::Tracer tracer_;
  obs::Tracer* active_tracer_ = nullptr;  ///< Borrowed; may be null.
  /// Registry-owned navigation statistics ("presentation.*").
  obs::Counter* opens_ = nullptr;
  obs::Counter* enters_ = nullptr;
  obs::Counter* returns_ = nullptr;
  obs::Counter* degraded_ = nullptr;
  obs::Gauge* depth_ = nullptr;
  obs::Histogram* open_us_ = nullptr;
};

}  // namespace minos::core

#endif  // MINOS_CORE_PRESENTATION_MANAGER_H_
