#include "minos/core/presentation_manager.h"

#include <algorithm>

#include "minos/core/page_compositor.h"
#include "minos/image/view.h"
#include "minos/util/string_util.h"

namespace minos::core {

using object::DrivingMode;
using object::MultimediaObject;
using object::Relevance;
using object::RelevantObjectLink;

PresentationManager::PresentationManager(render::Screen* screen,
                                         SimClock* clock,
                                         voice::SpeakerParams message_speaker)
    : screen_(screen), clock_(clock), messages_(clock, message_speaker),
      tracer_(clock) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  tracer_.set_metrics_registry(&reg);
  opens_ = reg.counter("presentation.opens");
  enters_ = reg.counter("presentation.enters");
  returns_ = reg.counter("presentation.returns");
  degraded_ = reg.counter("presentation.degraded_parts");
  depth_ = reg.gauge("presentation.depth");
  open_us_ = reg.histogram("presentation.open_us");
}

Status PresentationManager::Open(storage::ObjectId id) {
  stack_.clear();
  depth_->Set(0);
  opens_->Increment();
  obs::TraceSpan span = tracer().StartSpan("open#" + std::to_string(id));
  const Micros opened_at = clock_->Now();
  Status status = OpenFrame(id, nullptr);
  open_us_->Record(static_cast<double>(clock_->Now() - opened_at));
  return status;
}

Status PresentationManager::OpenFrame(storage::ObjectId id,
                                      const RelevantObjectLink* via) {
  if (!resolver_) {
    return Status::FailedPrecondition("no object resolver installed");
  }
  MINOS_ASSIGN_OR_RETURN(MultimediaObject fetched, resolver_(id));
  Frame frame;
  frame.id = id;
  frame.object =
      std::make_unique<MultimediaObject>(std::move(fetched));
  frame.via = via;
  if (frame.object->descriptor().driving_mode == DrivingMode::kAudio &&
      !frame.object->has_voice()) {
    // The voice part did not survive retrieval (salvaged decode).
    // Symmetry's fallback direction: the equivalent text part carries
    // the same information, so present the object visually rather than
    // failing the open.
    object::ObjectDescriptor& desc = frame.object->descriptor();
    desc.driving_mode = DrivingMode::kVisual;
    if (desc.pages.empty()) {
      MINOS_ASSIGN_OR_RETURN(FormattedText formatted,
                             FormatObjectText(*frame.object));
      const size_t page_count = std::max<size_t>(1, formatted.pages.size());
      for (size_t p = 0; p < page_count; ++p) {
        object::VisualPageSpec page;
        if (p < formatted.pages.size()) {
          page.text_page = static_cast<uint32_t>(p + 1);
        }
        desc.pages.push_back(std::move(page));
      }
    }
    frame.degraded = true;
    NoteDegraded(id, "voice", "voice part unreadable; presenting text");
  }
  if (frame.object->descriptor().driving_mode == DrivingMode::kVisual) {
    MINOS_ASSIGN_OR_RETURN(
        frame.visual, VisualBrowser::Open(frame.object.get(), screen_,
                                          &messages_, clock_, &log_));
    frame.visual->SetCursorListener(
        [this, id](int page, int page_count, bool jump) {
          if (!browse_listener_) return;
          browse_listener_(BrowseEvent{id, DrivingMode::kVisual, page,
                                       page_count, jump});
        });
  } else {
    MINOS_ASSIGN_OR_RETURN(
        frame.audio, AudioBrowser::Open(frame.object.get(), screen_,
                                        &messages_, clock_, &log_));
    frame.audio->SetCursorListener(
        [this, id](int page, int page_count, bool jump) {
          if (!browse_listener_) return;
          browse_listener_(BrowseEvent{id, DrivingMode::kAudio, page,
                                       page_count, jump});
        });
  }
  stack_.push_back(std::move(frame));
  depth_->Set(static_cast<double>(stack_.size()));
  if (stack_.back().visual != nullptr) {
    return stack_.back().visual->ShowCurrentPage();
  }
  // Audio frames have no initial ShowCurrentPage; announce the opening
  // position so prefetch can start staging the upcoming segments.
  if (browse_listener_ && stack_.back().audio != nullptr) {
    AudioBrowser* audio = stack_.back().audio.get();
    browse_listener_(BrowseEvent{id, DrivingMode::kAudio,
                                 audio->current_page(), audio->page_count(),
                                 false});
  }
  return Status::OK();
}

StatusOr<DrivingMode> PresentationManager::CurrentMode() const {
  if (stack_.empty()) {
    return Status::FailedPrecondition("no object is open");
  }
  return stack_.back().object->descriptor().driving_mode;
}

VisualBrowser* PresentationManager::visual_browser() {
  Frame* f = top();
  return f == nullptr ? nullptr : f->visual.get();
}

AudioBrowser* PresentationManager::audio_browser() {
  Frame* f = top();
  return f == nullptr ? nullptr : f->audio.get();
}

StatusOr<const MultimediaObject*> PresentationManager::CurrentObject()
    const {
  if (stack_.empty()) {
    return Status::FailedPrecondition("no object is open");
  }
  return static_cast<const MultimediaObject*>(stack_.back().object.get());
}

std::vector<std::string> PresentationManager::VisibleRelevantIndicators()
    const {
  std::vector<std::string> labels;
  const Frame* f = top();
  if (f == nullptr) return labels;
  if (f->visual != nullptr) {
    for (const RelevantObjectLink* link : f->visual->VisibleRelevantLinks()) {
      labels.push_back(link->indicator_label);
    }
  } else if (f->audio != nullptr) {
    for (const RelevantObjectLink* link : f->audio->VisibleRelevantLinks()) {
      labels.push_back(link->indicator_label);
    }
  }
  return labels;
}

Status PresentationManager::EnterRelevantObject(size_t indicator_index) {
  Frame* f = top();
  if (f == nullptr) return Status::FailedPrecondition("no object is open");
  std::vector<const RelevantObjectLink*> links;
  if (f->visual != nullptr) {
    links = f->visual->VisibleRelevantLinks();
  } else if (f->audio != nullptr) {
    links = f->audio->VisibleRelevantLinks();
  }
  if (indicator_index >= links.size()) {
    return Status::OutOfRange("no such relevant object indicator");
  }
  const RelevantObjectLink* link = links[indicator_index];
  log_.Add(EventKind::kRelevantEntered, clock_->Now(),
           static_cast<int64_t>(link->target), link->indicator_label);
  enters_->Increment();
  obs::TraceSpan span =
      tracer().StartSpan("enter#" + std::to_string(link->target));
  return OpenFrame(link->target, link);
}

Status PresentationManager::ReturnFromRelevantObject() {
  if (stack_.size() < 2) {
    return Status::FailedPrecondition(
        "not browsing a relevant object; nothing to return from");
  }
  stack_.pop_back();
  returns_->Increment();
  depth_->Set(static_cast<double>(stack_.size()));
  Frame& parent = stack_.back();
  log_.Add(EventKind::kRelevantReturned, clock_->Now(),
           static_cast<int64_t>(parent.id), "");
  // Reestablish the parent's mode of browsing.
  if (parent.visual != nullptr) return parent.visual->ShowCurrentPage();
  return Status::OK();
}

std::vector<Relevance> PresentationManager::CurrentRelevances() const {
  const Frame* f = top();
  if (f == nullptr || f->via == nullptr) return {};
  return f->via->relevances;
}

Status PresentationManager::ShowImageRelevance(const Relevance& relevance) {
  if (!relevance.image_index.has_value() ||
      !relevance.image_object_id.has_value()) {
    return Status::InvalidArgument("relevance has no image polygon");
  }
  MINOS_ASSIGN_OR_RETURN(const image::Image* img,
                         ImageOf(*relevance.image_index));
  const image::Rect region = screen_->PageArea();
  image::Bitmap raster = img->RenderRegion(
      image::Rect{0, 0, region.w, region.h}, {*relevance.image_object_id});
  screen_->DrawBitmap(raster, region);
  log_.Add(EventKind::kLabelShown, clock_->Now(),
           *relevance.image_object_id, "relevance");
  return Status::OK();
}

Status PresentationManager::ShowTextRelevance(const Relevance& relevance) {
  if (!relevance.text_span.has_value()) {
    return Status::InvalidArgument("relevance has no text span");
  }
  Frame* f = top();
  if (f == nullptr || f->visual == nullptr) {
    return Status::FailedPrecondition(
        "text relevances display in a visual-mode object");
  }
  MINOS_RETURN_IF_ERROR(f->visual->GotoTextOffset(
      static_cast<size_t>(relevance.text_span->begin)));
  // Begin/end indicators at the exact on-screen extent of the related
  // section (falling back silently when the span straddles pages).
  f->visual
      ->MarkTextSpan(static_cast<size_t>(relevance.text_span->begin),
                     static_cast<size_t>(relevance.text_span->end))
      .ok();
  log_.Add(EventKind::kLabelShown, clock_->Now(),
           static_cast<int64_t>(relevance.text_span->begin),
           "text-relevance");
  return Status::OK();
}

Status PresentationManager::PlayNextRelevantVoiceSegment() {
  Frame* f = top();
  if (f == nullptr || f->via == nullptr) {
    return Status::FailedPrecondition("not inside a relevant object");
  }
  if (!f->object->has_voice()) {
    return Status::Unsupported("relevant object has no voice part");
  }
  std::vector<const Relevance*> voice_relevances;
  for (const Relevance& r : f->via->relevances) {
    if (r.voice_span.has_value()) voice_relevances.push_back(&r);
  }
  if (voice_relevances.empty()) {
    return Status::NotFound("link has no voice relevances");
  }
  if (f->next_voice_relevance >= voice_relevances.size()) {
    f->next_voice_relevance = 0;  // Wrap around.
    return Status::OutOfRange("all voice relevances played; wrapping");
  }
  const Relevance* r = voice_relevances[f->next_voice_relevance++];
  const voice::PcmBuffer& pcm = f->object->voice_part().pcm();
  const size_t begin = static_cast<size_t>(r->voice_span->begin);
  const size_t end =
      std::min(static_cast<size_t>(r->voice_span->end), pcm.size());
  log_.Add(EventKind::kVoicePlayed, clock_->Now(),
           static_cast<int64_t>(begin), "relevance");
  clock_->Advance(pcm.SamplesToMicros(end - begin));
  return Status::OK();
}

void PresentationManager::NoteDegraded(storage::ObjectId object_id,
                                       std::string part,
                                       std::string reason) {
  log_.Add(EventKind::kDegraded, clock_->Now(),
           static_cast<int64_t>(object_id), part + ": " + reason);
  degraded_->Increment();
  degraded_parts_.push_back(
      DegradedPart{object_id, std::move(part), std::move(reason)});
}

StatusOr<const image::Image*> PresentationManager::ImageOf(
    uint32_t image_index) const {
  MINOS_ASSIGN_OR_RETURN(const MultimediaObject* obj, CurrentObject());
  if (image_index >= obj->images().size()) {
    return Status::OutOfRange("no such image in the current object");
  }
  return &obj->images()[image_index];
}

StatusOr<image::View> PresentationManager::CreateView(
    uint32_t image_index, const image::Rect& rect) const {
  MINOS_ASSIGN_OR_RETURN(const image::Image* img, ImageOf(image_index));
  return image::View(img, rect);
}

StatusOr<size_t> PresentationManager::PlayTour(size_t tour_index,
                                               size_t first_stop,
                                               size_t stop_limit) {
  MINOS_ASSIGN_OR_RETURN(const MultimediaObject* obj, CurrentObject());
  const auto& tours = obj->descriptor().tours;
  if (tour_index >= tours.size()) {
    return Status::OutOfRange("no such tour");
  }
  const object::ObjectDescriptor::TourSpec& tour = tours[tour_index];
  obs::TraceSpan tour_span =
      tracer().StartSpan("tour#" + std::to_string(tour_index));
  MINOS_ASSIGN_OR_RETURN(const image::Image* img, ImageOf(tour.image_index));
  if (first_stop >= tour.positions.size()) {
    return Status::OutOfRange("tour starting stop past end");
  }
  image::View view(img, image::Rect{tour.positions[first_stop].x,
                                    tour.positions[first_stop].y,
                                    tour.view_width, tour.view_height});
  view.set_voice_option(true);
  const size_t end = std::min(stop_limit, tour.positions.size());
  size_t stop = first_stop;
  for (; stop < end; ++stop) {
    std::vector<image::GraphicsObject> encountered =
        stop == first_stop
            // The view starts on the first stop: everything under it is
            // "encountered".
            ? img->VoiceLabeledObjectsIn(view.rect())
            : view.JumpTo(tour.positions[stop].x, tour.positions[stop].y);
    const image::Bitmap raster = view.Retrieve();
    screen_->DrawBitmap(raster, screen_->PageArea());
    log_.Add(EventKind::kTourStop, clock_->Now(),
             static_cast<int64_t>(stop), "");
    if (stop < tour.audio_messages.size() &&
        !tour.audio_messages[stop].empty()) {
      messages_.Play(tour.audio_messages[stop], &log_,
                     EventKind::kVoiceMessagePlayed,
                     static_cast<int64_t>(stop));
    } else {
      clock_->Advance(SecondsToMicros(2));  // Default dwell.
    }
    for (const image::GraphicsObject& o : encountered) {
      messages_.Play(o.label.text, &log_, EventKind::kLabelPlayed, o.id);
    }
  }
  return stop;
}

Status PresentationManager::PlayVoiceLabel(uint32_t image_index,
                                           uint32_t object_id) {
  MINOS_ASSIGN_OR_RETURN(const image::Image* img, ImageOf(image_index));
  MINOS_ASSIGN_OR_RETURN(image::GraphicsImage g, img->graphics());
  MINOS_ASSIGN_OR_RETURN(image::GraphicsObject o, g.Find(object_id));
  if (o.label.kind != image::LabelKind::kVoice) {
    return Status::InvalidArgument("object has no voice label");
  }
  messages_.Play(o.label.text, &log_, EventKind::kLabelPlayed, o.id);
  return Status::OK();
}

Status PresentationManager::PlayAllVoiceLabels(uint32_t image_index) {
  MINOS_ASSIGN_OR_RETURN(const image::Image* img, ImageOf(image_index));
  MINOS_ASSIGN_OR_RETURN(image::GraphicsImage g, img->graphics());
  // System-defined order: ascending object id.
  std::vector<const image::GraphicsObject*> voiced;
  for (const image::GraphicsObject& o : g.objects()) {
    if (o.label.kind == image::LabelKind::kVoice) voiced.push_back(&o);
  }
  std::sort(voiced.begin(), voiced.end(),
            [](const image::GraphicsObject* a,
               const image::GraphicsObject* b) { return a->id < b->id; });
  for (const image::GraphicsObject* o : voiced) {
    messages_.Play(o->label.text, &log_, EventKind::kLabelPlayed, o->id);
  }
  return Status::OK();
}

StatusOr<std::string> PresentationManager::SelectObjectAt(
    uint32_t image_index, int x, int y) {
  MINOS_ASSIGN_OR_RETURN(const image::Image* img, ImageOf(image_index));
  MINOS_ASSIGN_OR_RETURN(image::GraphicsObject o, img->ObjectAt(x, y));
  if (o.label.kind == image::LabelKind::kNone) {
    return Status::NotFound("selected object has no label");
  }
  if (o.label.kind == image::LabelKind::kVoice) {
    messages_.Play(o.label.text, &log_, EventKind::kLabelPlayed, o.id);
  } else {
    log_.Add(EventKind::kLabelShown, clock_->Now(), o.id, o.label.text);
    screen_->DrawText(screen_->PageArea().x + 2, screen_->PageArea().y + 2,
                      o.label.text);
  }
  return o.label.text;
}

StatusOr<std::vector<uint32_t>> PresentationManager::HighlightLabelPattern(
    uint32_t image_index, std::string_view pattern) {
  MINOS_ASSIGN_OR_RETURN(const image::Image* img, ImageOf(image_index));
  const std::vector<uint32_t> ids = img->MatchLabels(pattern);
  const image::Rect region = screen_->PageArea();
  const image::Bitmap raster =
      img->RenderRegion(image::Rect{0, 0, region.w, region.h}, ids);
  screen_->DrawBitmap(raster, region);
  log_.Add(EventKind::kLabelShown, clock_->Now(),
           static_cast<int64_t>(ids.size()),
           "highlight " + std::string(pattern));
  return ids;
}

}  // namespace minos::core
