#ifndef MINOS_CORE_MESSAGE_PLAYER_H_
#define MINOS_CORE_MESSAGE_PLAYER_H_

#include <string>

#include "minos/core/events.h"
#include "minos/util/clock.h"
#include "minos/voice/synthesizer.h"

namespace minos::core {

/// Plays short voice logical messages and labels. Messages are stored as
/// transcripts; playing one synthesizes it with the message speaker and
/// advances simulated time by the audio duration — exactly the cost a
/// real playback would impose on the presentation timeline.
class MessagePlayer {
 public:
  /// `clock` must outlive the player.
  MessagePlayer(SimClock* clock, voice::SpeakerParams speaker)
      : clock_(clock), synthesizer_(speaker) {}

  /// Synthesizes and "plays" `transcript`; logs `kind` with `value` and
  /// the transcript as detail. Returns the playback duration.
  Micros Play(const std::string& transcript, EventLog* log, EventKind kind,
              int64_t value);

  /// Duration `transcript` would take without playing it.
  Micros DurationOf(const std::string& transcript) const;

 private:
  SimClock* clock_;
  voice::SpeechSynthesizer synthesizer_;
};

}  // namespace minos::core

#endif  // MINOS_CORE_MESSAGE_PLAYER_H_
