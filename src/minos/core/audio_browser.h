#ifndef MINOS_CORE_AUDIO_BROWSER_H_
#define MINOS_CORE_AUDIO_BROWSER_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "minos/audio/audio_device.h"
#include "minos/core/events.h"
#include "minos/core/message_player.h"
#include "minos/core/page_compositor.h"
#include "minos/obs/metrics.h"
#include "minos/object/multimedia_object.h"
#include "minos/render/screen.h"
#include "minos/text/search.h"
#include "minos/voice/audio_pages.h"
#include "minos/voice/pause.h"
#include "minos/voice/recognizer.h"
#include "minos/util/statusor.h"

namespace minos::core {

/// Browser for audio-mode objects: the symmetric counterpart of
/// VisualBrowser. Provides the §2 audio command set — interrupt / resume /
/// resume-from-page-start, audio-page browsing, pause-based rewind,
/// logical-unit browsing over tagged voice components, and spoken-pattern
/// browsing over the insertion-time recognition index — plus the
/// audio-mode triggering of logical messages: voice messages play *before*
/// the related segment's voice; visual messages stay pinned for the
/// duration of the related segment.
class AudioBrowser {
 public:
  /// Opens a browser on an archived audio-mode object. Pointers are
  /// borrowed. The pager/detector parameters control audio pagination
  /// and pause detection.
  static StatusOr<std::unique_ptr<AudioBrowser>> Open(
      const object::MultimediaObject* obj, render::Screen* screen,
      MessagePlayer* messages, SimClock* clock, EventLog* log,
      voice::AudioPagerParams pager_params = {},
      voice::PauseDetectorParams pause_params = {});

  /// Playback ------------------------------------------------------------

  /// Plays from the current position to the end of the voice part,
  /// triggering logical messages as their segments are entered/left.
  Status Play();

  /// Plays at most `duration` of voice, then stops (keeps position).
  Status PlayFor(Micros duration);

  /// Interrupts playback (§2: "interrupt the voice output").
  Status Interrupt();

  /// Resumes from the current position (§2).
  Status Resume();

  /// Resumes from the beginning of the current voice page (§2).
  Status ResumeFromPageStart();

  /// Page browsing (symmetric with text: next/previous/advance/goto).
  /// Repositions playback to the page start; does not auto-play.
  Status NextPage() { return AdvancePages(1); }
  Status PreviousPage() { return AdvancePages(-1); }
  Status AdvancePages(int delta);
  Status GotoPage(int number);  ///< 1-based.

  /// Logical browsing over manually tagged voice components (§2).
  /// Unsupported when the voice part has no components of `unit`.
  Status NextUnit(text::LogicalUnit unit);
  Status PreviousUnit(text::LogicalUnit unit);

  /// Pause-based rewind (§2): repositions to just after the n-th
  /// short/long pause before the current position; the short/long split
  /// is sampled adaptively from the surrounding context.
  Status RewindPauses(int n, voice::PauseKind kind);

  /// Spoken-pattern browsing over the recognition index built at
  /// insertion time (§2). FailedPrecondition when no index is installed.
  Status FindSpokenPattern(std::string_view word);

  /// The full §2 interaction: the user *speaks* the pattern, the
  /// recognizer recognizes the utterance (it may mis-hear), and browsing
  /// proceeds over the insertion-time index. `spoken` is the transcript
  /// of the user's utterance. NotFound when the utterance was not
  /// recognized or the recognized word never occurs.
  Status SpeakPattern(const voice::Recognizer& recognizer,
                      std::string_view spoken);

  /// Installs the insertion-time recognition index (sample positions).
  void SetRecognitionIndex(text::WordIndex index);

  /// Cursor listener: fired from GotoPage when the playback cursor moves
  /// to a different audio page (1-based page, page count, jump = moved
  /// more than one page). The prefetch pipeline listens here to keep the
  /// upcoming voice segments staged.
  using CursorListener =
      std::function<void(int page, int page_count, bool jump)>;
  void SetCursorListener(CursorListener listener) {
    cursor_listener_ = std::move(listener);
  }

  /// Menu options available for this object.
  std::vector<std::string> MenuOptions() const;

  /// Relevant-object links whose voice anchor contains the current
  /// position.
  std::vector<const object::RelevantObjectLink*> VisibleRelevantLinks()
      const;

  /// State ----------------------------------------------------------------

  size_t position() const { return position_; }
  int current_page() const;
  int page_count() const { return static_cast<int>(pages_.size()); }
  bool playing() const { return playing_; }
  const std::vector<voice::AudioPage>& pages() const { return pages_; }
  const std::vector<voice::Pause>& pauses() const { return pauses_; }
  const object::MultimediaObject& object() const { return *obj_; }

 private:
  AudioBrowser(const object::MultimediaObject* obj, render::Screen* screen,
               MessagePlayer* messages, SimClock* clock, EventLog* log);

  /// Plays samples [position_, end), firing message triggers. Stops early
  /// after `limit` samples when limit != npos.
  Status PlayInternal(size_t end_sample);

  /// Fires triggers crossing into `sample` (voice messages before their
  /// segment; visual messages shown/hidden at segment boundaries).
  void ProcessTriggersAt(size_t sample);

  /// Shows the audio-mode screen: pinned visual message (if active) and
  /// the status/menu chrome.
  void RefreshScreen();

  const object::MultimediaObject* obj_;
  render::Screen* screen_;
  MessagePlayer* messages_;
  SimClock* clock_;
  EventLog* log_;
  PageCompositor compositor_;
  voice::PauseDetector pause_detector_;
  std::vector<voice::Pause> pauses_;
  std::vector<voice::AudioPage> pages_;
  std::optional<text::WordIndex> recognition_index_;

  /// Registry-owned browsing statistics ("browser.audio.*"), aggregated
  /// across browsers: page turns, playback spans, and the pause-rewind
  /// sampling counts of the adaptive short/long split.
  obs::Counter* page_turns_ = nullptr;
  obs::Histogram* page_turn_us_ = nullptr;
  obs::Histogram* play_us_ = nullptr;
  obs::Counter* pause_rewinds_ = nullptr;
  obs::Histogram* rewind_sampled_pauses_ = nullptr;

  CursorListener cursor_listener_;

  size_t position_ = 0;
  bool playing_ = false;
  uint64_t util_seed_ = 0x5eed;  ///< Varies spoken-pattern utterances.
  int active_visual_message_ = -1;
  /// Voice messages already played for their current segment entry.
  std::vector<bool> voice_message_armed_;
};

}  // namespace minos::core

#endif  // MINOS_CORE_AUDIO_BROWSER_H_
