#ifndef MINOS_CORE_PAGE_COMPOSITOR_H_
#define MINOS_CORE_PAGE_COMPOSITOR_H_

#include <vector>

#include "minos/object/multimedia_object.h"
#include "minos/render/screen.h"
#include "minos/text/formatter.h"
#include "minos/util/statusor.h"

namespace minos::core {

/// The formatted text part of an object: pages plus the offset->page map.
/// Built once per object per layout and shared by the browser and the
/// compositor.
struct FormattedText {
  std::vector<text::TextPage> pages;
  text::PageMap page_map;
};

/// Formats the object text part with the descriptor's layout. Objects
/// without a text part yield zero pages.
StatusOr<FormattedText> FormatObjectText(const object::MultimediaObject& obj);

/// Composes the visual pages of a multimedia object onto the simulated
/// screen, applying the page-kind semantics of §2:
///   * normal pages clear the page area first,
///   * transparencies lay their ink over what is displayed,
///   * overwrites replace inked pixels and leave the rest intact.
class PageCompositor {
 public:
  /// `screen` is borrowed and must outlive the compositor.
  explicit PageCompositor(render::Screen* screen) : screen_(screen) {}

  /// Draws descriptor page `page_index` (0-based) of `obj` into `region`.
  /// `formatted` must come from FormatObjectText(obj).
  ///
  /// For transparencies/overwrites the existing region content is the
  /// previous page; callers sequence page draws in presentation order.
  Status ComposePage(const object::MultimediaObject& obj,
                     const FormattedText& formatted, size_t page_index,
                     const image::Rect& region);

  /// Draws a visual logical message into the message area: its text at
  /// the top, its image (if any) below the text.
  Status ComposeVisualMessage(const object::MultimediaObject& obj,
                              const object::VisualLogicalMessage& message,
                              const image::Rect& region);

  render::Screen* screen() { return screen_; }

 private:
  Status DrawPlacedImage(const object::MultimediaObject& obj,
                         const object::PlacedImage& placed,
                         const image::Rect& region,
                         object::VisualPageSpec::Kind kind);

  render::Screen* screen_;
};

}  // namespace minos::core

#endif  // MINOS_CORE_PAGE_COMPOSITOR_H_
