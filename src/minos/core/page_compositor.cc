#include "minos/core/page_compositor.h"

#include <algorithm>

#include "minos/render/font5x7.h"

namespace minos::core {

using image::Rect;
using object::MultimediaObject;
using object::PlacedImage;
using object::VisualPageSpec;

StatusOr<FormattedText> FormatObjectText(const MultimediaObject& obj) {
  FormattedText out;
  if (!obj.has_text()) return out;
  text::TextFormatter formatter(obj.descriptor().layout);
  MINOS_ASSIGN_OR_RETURN(out.pages, formatter.Paginate(obj.text_part()));
  out.page_map = text::PageMap(out.pages);
  return out;
}

Status PageCompositor::DrawPlacedImage(const MultimediaObject& obj,
                                       const PlacedImage& placed,
                                       const Rect& region,
                                       VisualPageSpec::Kind kind) {
  if (placed.image_index >= obj.images().size()) {
    return Status::InvalidArgument("placed image index out of range");
  }
  const image::Image& img = obj.images()[placed.image_index];
  // A zero-size placement means "fit the region".
  Rect target = placed.placement;
  if (target.w == 0 || target.h == 0) {
    target = Rect{0, 0, region.w, region.h};
  }
  // Render the image region that fits the target (no scaling: MINOS
  // presents pixels one-to-one; larger images are viewed through views).
  image::Bitmap raster =
      img.RenderRegion(Rect{0, 0, target.w, target.h});
  const Rect screen_rect{region.x + target.x, region.y + target.y,
                         target.w, target.h};
  switch (kind) {
    case VisualPageSpec::Kind::kNormal:
      screen_->DrawBitmap(raster, screen_rect);
      break;
    case VisualPageSpec::Kind::kTransparency:
      screen_->BlendBitmap(raster, screen_rect);
      break;
    case VisualPageSpec::Kind::kOverwrite:
      screen_->OverwriteBitmap(raster, screen_rect);
      break;
  }
  // Labels of graphics objects: "Text labels are displayed near the
  // graphics object, at a designer's specified position. A voice label
  // indication is also displayed near a graphics object with a voice
  // label." (§2) Invisible labels display nothing.
  if (img.is_graphics()) {
    MINOS_ASSIGN_OR_RETURN(image::GraphicsImage g, img.graphics());
    for (const image::GraphicsObject& o : g.objects()) {
      const int lx = screen_rect.x + o.label.anchor.x;
      const int ly = screen_rect.y + o.label.anchor.y;
      if (!screen_rect.Contains(lx, ly)) continue;
      if (o.label.kind == image::LabelKind::kText) {
        screen_->DrawText(lx, ly, o.label.text, 255);
      } else if (o.label.kind == image::LabelKind::kVoice) {
        screen_->DrawText(lx, ly, "(*)", 255);  // Voice indicator.
      }
    }
  }
  return Status::OK();
}

Status PageCompositor::ComposePage(const MultimediaObject& obj,
                                   const FormattedText& formatted,
                                   size_t page_index, const Rect& region) {
  const auto& pages = obj.descriptor().pages;
  if (page_index >= pages.size()) {
    return Status::OutOfRange("no such visual page");
  }
  const VisualPageSpec& spec = pages[page_index];
  if (spec.kind == VisualPageSpec::Kind::kNormal) {
    screen_->ClearRegion(region);
  }
  if (spec.text_page != 0) {
    if (spec.text_page > formatted.pages.size()) {
      return Status::InvalidArgument("page references missing text page");
    }
    // Text on a transparency lays over; on normal pages the region was
    // just cleared, so DrawTextPage's internal clear is harmless.
    if (spec.kind == VisualPageSpec::Kind::kNormal) {
      screen_->DrawTextPage(formatted.pages[spec.text_page - 1], region);
    } else {
      // Draw the transparency text into a scratch bitmap, then compose.
      render::Screen scratch(render::ScreenLayout{
          region.w, region.h, 0, 0});
      scratch.DrawTextPage(formatted.pages[spec.text_page - 1],
                           Rect{0, 0, region.w, region.h});
      if (spec.kind == VisualPageSpec::Kind::kTransparency) {
        screen_->BlendBitmap(scratch.framebuffer(), region);
      } else {
        screen_->OverwriteBitmap(scratch.framebuffer(), region);
      }
    }
  }
  for (const PlacedImage& placed : spec.images) {
    MINOS_RETURN_IF_ERROR(DrawPlacedImage(obj, placed, region, spec.kind));
  }
  return Status::OK();
}

Status PageCompositor::ComposeVisualMessage(
    const MultimediaObject& obj,
    const object::VisualLogicalMessage& message, const Rect& region) {
  screen_->ClearRegion(region);
  int y = region.y + 2;
  if (!message.text.empty()) {
    // Headline at double letter size ("various character fonts, letter
    // sizes", §3), falling back to normal size when it would not fit.
    const int scale =
        static_cast<int>(message.text.size()) *
                    render::Font5x7::kCellWidth * 2 <=
                region.w
            ? 2
            : 1;
    screen_->DrawTextScaled(region.x + 2, y, message.text, scale, 255);
    y += render::Font5x7::kCellHeight * scale + 2;
  }
  if (message.image_index.has_value()) {
    if (*message.image_index >= obj.images().size()) {
      return Status::InvalidArgument("visual message image out of range");
    }
    const image::Image& img = obj.images()[*message.image_index];
    const Rect target{region.x, y, region.w, region.y + region.h - y};
    image::Bitmap raster =
        img.RenderRegion(Rect{0, 0, target.w, target.h});
    screen_->DrawBitmap(raster, target);
  }
  return Status::OK();
}

}  // namespace minos::core
