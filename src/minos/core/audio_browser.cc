#include "minos/core/audio_browser.h"

#include <algorithm>
#include <set>

namespace minos::core {

using object::DrivingMode;
using object::MultimediaObject;
using object::ObjectState;
using object::VoiceAnchor;

StatusOr<std::unique_ptr<AudioBrowser>> AudioBrowser::Open(
    const MultimediaObject* obj, render::Screen* screen,
    MessagePlayer* messages, SimClock* clock, EventLog* log,
    voice::AudioPagerParams pager_params,
    voice::PauseDetectorParams pause_params) {
  if (obj->state() != ObjectState::kArchived) {
    return Status::FailedPrecondition(
        "presentation requires an archived object");
  }
  if (obj->descriptor().driving_mode != DrivingMode::kAudio) {
    return Status::InvalidArgument(
        "object is visually driven; open a VisualBrowser");
  }
  if (!obj->has_voice()) {
    return Status::InvalidArgument("audio-mode object has no voice part");
  }
  std::unique_ptr<AudioBrowser> browser(
      new AudioBrowser(obj, screen, messages, clock, log));
  browser->pause_detector_ = voice::PauseDetector(pause_params);
  browser->pauses_ =
      browser->pause_detector_.Detect(obj->voice_part().pcm());
  voice::AudioPager pager(pager_params);
  browser->pages_ =
      pager.Paginate(obj->voice_part().pcm(), browser->pauses_);
  browser->voice_message_armed_.assign(
      obj->descriptor().voice_messages.size(), true);
  browser->RefreshScreen();
  return browser;
}

AudioBrowser::AudioBrowser(const MultimediaObject* obj,
                           render::Screen* screen, MessagePlayer* messages,
                           SimClock* clock, EventLog* log)
    : obj_(obj),
      screen_(screen),
      messages_(messages),
      clock_(clock),
      log_(log),
      compositor_(screen) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  page_turns_ = reg.counter("browser.audio.page_turns");
  page_turn_us_ = reg.histogram("browser.audio.page_turn_us");
  play_us_ = reg.histogram("browser.audio.play_us");
  pause_rewinds_ = reg.counter("browser.audio.pause_rewinds");
  rewind_sampled_pauses_ =
      reg.histogram("browser.audio.rewind_sampled_pauses");
}

int AudioBrowser::current_page() const {
  return voice::AudioPager::PageForSample(pages_, position_);
}

void AudioBrowser::RefreshScreen() {
  screen_->ClearRegion(screen_->PageArea());
  if (active_visual_message_ >= 0) {
    const object::VisualLogicalMessage& m =
        obj_->descriptor()
            .visual_messages[static_cast<size_t>(active_visual_message_)];
    // Errors here are impossible for validated objects; ignore status to
    // keep the playback path simple.
    compositor_.ComposeVisualMessage(*obj_, m, screen_->MessageArea());
  }
  screen_->SetMenu(MenuOptions());
  screen_->DrawStatusLine(
      "voice page " + std::to_string(current_page()) + "/" +
      std::to_string(page_count()) +
      (playing_ ? " [playing]" : " [stopped]"));
}

void AudioBrowser::ProcessTriggersAt(size_t sample) {
  const object::ObjectDescriptor& desc = obj_->descriptor();

  // Audio page starts.
  for (const voice::AudioPage& p : pages_) {
    if (p.samples.begin == sample && log_ != nullptr) {
      log_->Add(EventKind::kAudioPageStarted, clock_->Now(), p.number, "");
    }
  }

  // Voice logical messages: played before the voice of the related
  // segment, and on any branch into the segment.
  for (size_t i = 0; i < desc.voice_messages.size(); ++i) {
    const object::VoiceLogicalMessage& m = desc.voice_messages[i];
    if (!m.voice_anchor.has_value()) continue;
    const bool inside = m.voice_anchor->Contains(sample);
    if (inside && voice_message_armed_[i]) {
      voice_message_armed_[i] = false;
      messages_->Play(m.transcript, log_, EventKind::kVoiceMessagePlayed,
                      static_cast<int64_t>(sample));
    } else if (!inside) {
      voice_message_armed_[i] = true;
    }
  }

  // Visual logical messages: pinned for the duration of the related
  // segment's play.
  int next_active = -1;
  for (size_t i = 0; i < desc.visual_messages.size(); ++i) {
    for (const VoiceAnchor& a : desc.visual_messages[i].voice_anchors) {
      if (a.Contains(sample)) {
        next_active = static_cast<int>(i);
        break;
      }
    }
    if (next_active >= 0) break;
  }
  if (next_active != active_visual_message_) {
    if (active_visual_message_ >= 0 && log_ != nullptr) {
      log_->Add(EventKind::kVisualMessageHidden, clock_->Now(),
                active_visual_message_, "");
    }
    if (next_active >= 0 && log_ != nullptr) {
      log_->Add(EventKind::kVisualMessageShown, clock_->Now(), next_active,
                desc.visual_messages[static_cast<size_t>(next_active)].text);
    }
    active_visual_message_ = next_active;
    RefreshScreen();
  }
}

Status AudioBrowser::PlayInternal(size_t end_sample) {
  const voice::PcmBuffer& pcm = obj_->voice_part().pcm();
  end_sample = std::min(end_sample, pcm.size());
  if (position_ >= end_sample) return Status::OK();

  // Collect trigger boundaries in (position_, end_sample).
  std::set<size_t> boundaries;
  const object::ObjectDescriptor& desc = obj_->descriptor();
  for (const object::VoiceLogicalMessage& m : desc.voice_messages) {
    if (m.voice_anchor.has_value()) {
      boundaries.insert(static_cast<size_t>(m.voice_anchor->begin));
      boundaries.insert(static_cast<size_t>(m.voice_anchor->end));
    }
  }
  for (const object::VisualLogicalMessage& m : desc.visual_messages) {
    for (const VoiceAnchor& a : m.voice_anchors) {
      boundaries.insert(static_cast<size_t>(a.begin));
      boundaries.insert(static_cast<size_t>(a.end));
    }
  }
  for (const voice::AudioPage& p : pages_) {
    boundaries.insert(p.samples.begin);
  }

  playing_ = true;
  const Micros play_started_at = clock_->Now();
  if (log_ != nullptr) {
    log_->Add(EventKind::kVoicePlayed, clock_->Now(),
              static_cast<int64_t>(position_),
              "to " + std::to_string(end_sample));
  }
  while (position_ < end_sample) {
    ProcessTriggersAt(position_);
    auto it = boundaries.upper_bound(position_);
    const size_t next =
        it == boundaries.end() ? end_sample : std::min(*it, end_sample);
    clock_->Advance(pcm.SamplesToMicros(next - position_));
    position_ = next;
  }
  ProcessTriggersAt(position_);
  playing_ = false;
  play_us_->Record(static_cast<double>(clock_->Now() - play_started_at));
  RefreshScreen();
  return Status::OK();
}

Status AudioBrowser::Play() {
  return PlayInternal(obj_->voice_part().pcm().size());
}

Status AudioBrowser::PlayFor(Micros duration) {
  if (duration < 0) return Status::InvalidArgument("negative duration");
  const voice::PcmBuffer& pcm = obj_->voice_part().pcm();
  return PlayInternal(position_ + pcm.MicrosToSamples(duration));
}

Status AudioBrowser::Interrupt() {
  // Playback in simulated time completes within a command; Interrupt is
  // meaningful between PlayFor() calls. It freezes the position.
  playing_ = false;
  if (log_ != nullptr) {
    log_->Add(EventKind::kVoiceInterrupted, clock_->Now(),
              static_cast<int64_t>(position_), "");
  }
  RefreshScreen();
  return Status::OK();
}

Status AudioBrowser::Resume() {
  if (log_ != nullptr) {
    log_->Add(EventKind::kVoiceResumed, clock_->Now(),
              static_cast<int64_t>(position_), "");
  }
  return Play();
}

Status AudioBrowser::ResumeFromPageStart() {
  MINOS_ASSIGN_OR_RETURN(
      size_t start, voice::AudioPager::PageStart(pages_, current_page()));
  position_ = start;
  if (log_ != nullptr) {
    log_->Add(EventKind::kVoiceResumed, clock_->Now(),
              static_cast<int64_t>(position_), "page-start");
  }
  return Play();
}

Status AudioBrowser::AdvancePages(int delta) {
  return GotoPage(current_page() + delta);
}

Status AudioBrowser::GotoPage(int number) {
  const int old_page = current_page();
  MINOS_ASSIGN_OR_RETURN(size_t start,
                         voice::AudioPager::PageStart(pages_, number));
  position_ = start;
  if (log_ != nullptr) {
    log_->Add(EventKind::kAudioPageStarted, clock_->Now(), number, "goto");
  }
  const Micros presented_at = clock_->Now();
  if (cursor_listener_ && number != old_page) {
    const int delta = number - old_page;
    cursor_listener_(number, page_count(), delta > 1 || delta < -1);
  }
  RefreshScreen();
  page_turns_->Increment();
  page_turn_us_->Record(static_cast<double>(clock_->Now() - presented_at));
  return Status::OK();
}

Status AudioBrowser::NextUnit(text::LogicalUnit unit) {
  const voice::VoiceDocument& vd = obj_->voice_part();
  if (!vd.HasUnit(unit)) {
    return Status::Unsupported(std::string("voice part has no ") +
                               text::LogicalUnitName(unit) +
                               " components tagged");
  }
  MINOS_ASSIGN_OR_RETURN(size_t start, vd.NextUnitStart(unit, position_));
  position_ = start;
  if (log_ != nullptr) {
    log_->Add(EventKind::kUnitReached, clock_->Now(),
              static_cast<int64_t>(start), text::LogicalUnitName(unit));
  }
  RefreshScreen();
  return Status::OK();
}

Status AudioBrowser::PreviousUnit(text::LogicalUnit unit) {
  const voice::VoiceDocument& vd = obj_->voice_part();
  if (!vd.HasUnit(unit)) {
    return Status::Unsupported(std::string("voice part has no ") +
                               text::LogicalUnitName(unit) +
                               " components tagged");
  }
  MINOS_ASSIGN_OR_RETURN(size_t start,
                         vd.PreviousUnitStart(unit, position_));
  position_ = start;
  if (log_ != nullptr) {
    log_->Add(EventKind::kUnitReached, clock_->Now(),
              static_cast<int64_t>(start), text::LogicalUnitName(unit));
  }
  RefreshScreen();
  return Status::OK();
}

Status AudioBrowser::RewindPauses(int n, voice::PauseKind kind) {
  const voice::PcmBuffer& pcm = obj_->voice_part().pcm();
  // Sample the short/long split from ~60 seconds around the position.
  const size_t window = pcm.MicrosToSamples(SecondsToMicros(60));
  const voice::PauseContext context =
      pause_detector_.SampleContext(pcm, pauses_, position_, window);
  pause_rewinds_->Increment();
  rewind_sampled_pauses_->Record(
      static_cast<double>(context.sampled_pauses));
  StatusOr<size_t> target = pause_detector_.RewindPauses(
      pcm, pauses_, context, position_, n, kind);
  if (!target.ok() && target.status().IsOutOfRange()) {
    // Fewer than n matching pauses: restart from the beginning.
    position_ = 0;
  } else if (!target.ok()) {
    return target.status();
  } else {
    position_ = *target;
  }
  if (log_ != nullptr) {
    log_->Add(EventKind::kRewound, clock_->Now(),
              static_cast<int64_t>(position_),
              kind == voice::PauseKind::kShort ? "short" : "long");
  }
  RefreshScreen();
  return Status::OK();
}

Status AudioBrowser::FindSpokenPattern(std::string_view word) {
  if (!recognition_index_.has_value()) {
    return Status::FailedPrecondition(
        "no recognition index was built at insertion time");
  }
  MINOS_ASSIGN_OR_RETURN(
      size_t hit, recognition_index_->NextOccurrence(word, position_ + 1));
  if (log_ != nullptr) {
    log_->Add(EventKind::kPatternFound, clock_->Now(),
              static_cast<int64_t>(hit), std::string(word));
  }
  // Return the page with the occurrence (symmetric with text browsing).
  return GotoPage(voice::AudioPager::PageForSample(pages_, hit));
}

Status AudioBrowser::SpeakPattern(const voice::Recognizer& recognizer,
                                  std::string_view spoken) {
  // The user's utterance is digitized and run through the recognizer —
  // this is browse-time recognition of the *pattern*, not of the object
  // voice part (which was indexed at insertion time, §2).
  voice::SpeakerParams speaker;
  speaker.seed = util_seed_++;
  voice::SpeechSynthesizer synth(speaker);
  const voice::VoiceTrack utterance =
      synth.SynthesizeWords({std::string(spoken)});
  // Speaking the pattern takes real (simulated) time.
  clock_->Advance(utterance.pcm.Duration());
  const voice::RecognitionResult result = recognizer.Recognize(utterance);
  if (result.utterances.empty()) {
    return Status::NotFound("spoken pattern was not recognized");
  }
  return FindSpokenPattern(result.utterances.front().word);
}

void AudioBrowser::SetRecognitionIndex(text::WordIndex index) {
  recognition_index_ = std::move(index);
}

std::vector<std::string> AudioBrowser::MenuOptions() const {
  std::vector<std::string> options;
  options.emplace_back("play");
  options.emplace_back("interrupt");
  options.emplace_back("resume");
  options.emplace_back("resume page start");
  options.emplace_back("next page");
  options.emplace_back("prev page");
  options.emplace_back("goto page");
  options.emplace_back("+5 pages");
  options.emplace_back("-5 pages");
  options.emplace_back("rewind short pauses");
  options.emplace_back("rewind long pauses");
  const voice::VoiceDocument& vd = obj_->voice_part();
  using text::LogicalUnit;
  for (LogicalUnit unit : {LogicalUnit::kChapter, LogicalUnit::kSection,
                           LogicalUnit::kParagraph, LogicalUnit::kSentence}) {
    if (vd.HasUnit(unit)) {
      options.push_back(std::string("next ") + text::LogicalUnitName(unit));
      options.push_back(std::string("prev ") + text::LogicalUnitName(unit));
    }
  }
  if (recognition_index_.has_value()) {
    options.emplace_back("find spoken pattern");
  }
  for (const object::RelevantObjectLink* link : VisibleRelevantLinks()) {
    options.push_back("-> " + link->indicator_label);
  }
  return options;
}

std::vector<const object::RelevantObjectLink*>
AudioBrowser::VisibleRelevantLinks() const {
  std::vector<const object::RelevantObjectLink*> out;
  for (const object::RelevantObjectLink& link :
       obj_->descriptor().relevant_objects) {
    if (link.parent_voice_anchor.has_value() &&
        link.parent_voice_anchor->Contains(position_)) {
      out.push_back(&link);
    }
  }
  return out;
}

}  // namespace minos::core
