#ifndef MINOS_CORE_EVENTS_H_
#define MINOS_CORE_EVENTS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "minos/util/clock.h"

namespace minos::core {

/// Kind of an observable presentation event. The original MINOS showed
/// these on a screen and played them through speakers; the reproduction
/// additionally records them on a timeline so tests and figure benches can
/// verify *what the user would have seen and heard, and when*.
enum class EventKind : uint8_t {
  kPageShown = 0,            ///< A visual page was presented.
  kAudioPageStarted = 1,     ///< Playback entered an audio page.
  kVoiceMessagePlayed = 2,   ///< A voice logical message sounded.
  kVisualMessageShown = 3,   ///< A visual logical message was pinned.
  kVisualMessageHidden = 4,  ///< A pinned visual message was removed.
  kVoicePlayed = 5,          ///< A stretch of the object voice part played.
  kVoiceInterrupted = 6,     ///< Playback interrupted.
  kVoiceResumed = 7,         ///< Playback resumed.
  kPatternFound = 8,         ///< A pattern-browsing command landed.
  kUnitReached = 9,          ///< A logical-unit navigation landed.
  kRelevantEntered = 10,     ///< Browsing entered a relevant object.
  kRelevantReturned = 11,    ///< Returned to the parent object.
  kTourStop = 12,            ///< A tour reached a stop.
  kLabelPlayed = 13,         ///< A voice label was played.
  kLabelShown = 14,          ///< A text label was displayed.
  kProcessPage = 15,         ///< Process simulation advanced a page.
  kTransparencyShown = 16,   ///< A transparency was laid over the page.
  kRewound = 17,             ///< Pause-based rewind repositioned playback.
  kDegraded = 18,            ///< A part was unavailable; a fallback showed.
};

/// Returns a stable name ("page-shown", ...) for digests and logs.
const char* EventKindName(EventKind kind);

/// One entry of the presentation timeline.
struct BrowseEvent {
  EventKind kind;
  Micros at = 0;        ///< Simulated time of the event.
  int64_t value = 0;    ///< Page number, sample position, stop index, ...
  std::string detail;   ///< Message text, pattern, unit name, ...
};

/// Ordered presentation timeline with a deterministic digest.
class EventLog {
 public:
  EventLog() = default;

  void Add(EventKind kind, Micros at, int64_t value, std::string detail);

  const std::vector<BrowseEvent>& events() const { return events_; }
  size_t size() const { return events_.size(); }
  void Clear() { events_.clear(); }

  /// Events of one kind, in order.
  std::vector<BrowseEvent> OfKind(EventKind kind) const;

  /// Renders the log as one line per event (stable across runs).
  std::string ToString() const;

  /// FNV digest of ToString() — figure benches report this.
  uint64_t Digest() const;

 private:
  std::vector<BrowseEvent> events_;
};

}  // namespace minos::core

#endif  // MINOS_CORE_EVENTS_H_
