#include "minos/core/events.h"

#include "minos/util/string_util.h"

namespace minos::core {

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kPageShown:
      return "page-shown";
    case EventKind::kAudioPageStarted:
      return "audio-page-started";
    case EventKind::kVoiceMessagePlayed:
      return "voice-message-played";
    case EventKind::kVisualMessageShown:
      return "visual-message-shown";
    case EventKind::kVisualMessageHidden:
      return "visual-message-hidden";
    case EventKind::kVoicePlayed:
      return "voice-played";
    case EventKind::kVoiceInterrupted:
      return "voice-interrupted";
    case EventKind::kVoiceResumed:
      return "voice-resumed";
    case EventKind::kPatternFound:
      return "pattern-found";
    case EventKind::kUnitReached:
      return "unit-reached";
    case EventKind::kRelevantEntered:
      return "relevant-entered";
    case EventKind::kRelevantReturned:
      return "relevant-returned";
    case EventKind::kTourStop:
      return "tour-stop";
    case EventKind::kLabelPlayed:
      return "label-played";
    case EventKind::kLabelShown:
      return "label-shown";
    case EventKind::kProcessPage:
      return "process-page";
    case EventKind::kTransparencyShown:
      return "transparency-shown";
    case EventKind::kRewound:
      return "rewound";
    case EventKind::kDegraded:
      return "degraded";
  }
  return "?";
}

void EventLog::Add(EventKind kind, Micros at, int64_t value,
                   std::string detail) {
  events_.push_back(BrowseEvent{kind, at, value, std::move(detail)});
}

std::vector<BrowseEvent> EventLog::OfKind(EventKind kind) const {
  std::vector<BrowseEvent> out;
  for (const BrowseEvent& e : events_) {
    if (e.kind == kind) out.push_back(e);
  }
  return out;
}

std::string EventLog::ToString() const {
  std::string out;
  for (const BrowseEvent& e : events_) {
    out += std::to_string(e.at);
    out += ' ';
    out += EventKindName(e.kind);
    out += ' ';
    out += std::to_string(e.value);
    if (!e.detail.empty()) {
      out += ' ';
      out += e.detail;
    }
    out += '\n';
  }
  return out;
}

uint64_t EventLog::Digest() const { return Fnv1a64(ToString()); }

}  // namespace minos::core
