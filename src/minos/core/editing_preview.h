#ifndef MINOS_CORE_EDITING_PREVIEW_H_
#define MINOS_CORE_EDITING_PREVIEW_H_

#include "minos/image/bitmap.h"
#include "minos/object/multimedia_object.h"
#include "minos/util/statusor.h"

namespace minos::core {

/// Interactive-formatter preview (§4): "When the user inserts information
/// in the synthesis file for visual mode objects a miniature of the
/// current page of the formatted object is displayed in the right hand
/// side of the screen, below the menu options. This way the user can
/// immediately see the results of his formatting actions."
///
/// Renders visual page `page_number` (1-based) of an object — in the
/// *editing* state or archived — through the same compositor the archived
/// browsing path uses ("Duplication of software is not required", §4),
/// downscaled by `scale`. Transparency/overwrite stacks are composed the
/// way browsing would show them.
StatusOr<image::Bitmap> RenderEditingPreview(
    const object::MultimediaObject& obj, int page_number, int scale = 2);

}  // namespace minos::core

#endif  // MINOS_CORE_EDITING_PREVIEW_H_
