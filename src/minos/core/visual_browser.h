#ifndef MINOS_CORE_VISUAL_BROWSER_H_
#define MINOS_CORE_VISUAL_BROWSER_H_

#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "minos/core/events.h"
#include "minos/core/message_player.h"
#include "minos/core/page_compositor.h"
#include "minos/obs/metrics.h"
#include "minos/object/multimedia_object.h"
#include "minos/render/screen.h"
#include "minos/text/search.h"
#include "minos/util/statusor.h"

namespace minos::core {

/// Browser for visual-mode objects. Implements the §2 visual command set:
/// page browsing (next/previous/advance-k/goto), logical-unit browsing
/// (next/previous chapter, section, ...), pattern browsing, transparency
/// sets, overwrites, process simulation, and the triggering semantics of
/// voice and visual logical messages.
class VisualBrowser {
 public:
  /// Opens a browser on an archived visual-mode object. All pointers are
  /// borrowed and must outlive the browser. FailedPrecondition when the
  /// object is not archived; InvalidArgument for audio-mode objects.
  static StatusOr<std::unique_ptr<VisualBrowser>> Open(
      const object::MultimediaObject* obj, render::Screen* screen,
      MessagePlayer* messages, SimClock* clock, EventLog* log);

  /// Presents the current page (composing transparency/overwrite stacks
  /// and triggering logical messages).
  Status ShowCurrentPage();

  /// Page browsing (§2: "move to next page, previous page, advance a
  /// number of pages forth and back, or find a page with a given page
  /// number").
  Status NextPage() { return AdvancePages(1); }
  Status PreviousPage() { return AdvancePages(-1); }
  Status AdvancePages(int delta);
  Status GotoPage(int number);  ///< 1-based.

  /// Shows the page presenting text offset `offset` (used by relevance
  /// indicators and cross-media navigation). Unsupported without a text
  /// part; NotFound when no visual page presents that offset.
  Status GotoTextOffset(size_t offset);

  /// Draws a highlight box around the on-screen word containing document
  /// offset `offset` on the current page (used after pattern browsing).
  /// NotFound when the offset is not visible on the current page.
  Status HighlightOffset(size_t offset);

  /// Draws begin/end relevance indicators around the visible extent of
  /// [begin, end) on the current page ("Relevances to text sections are
  /// indicated graphically with beginning and end indicators", §2).
  Status MarkTextSpan(size_t begin, size_t end);

  /// Logical browsing (§2: "see ... the page with the next or previous
  /// start of a logical unit"). Unsupported when the object's text part
  /// has no components of `unit`.
  Status NextUnit(text::LogicalUnit unit);
  Status PreviousUnit(text::LogicalUnit unit);

  /// Pattern browsing (§2): shows the next page with an occurrence of
  /// `pattern` strictly after the current page's first occurrence point.
  /// NotFound past the last occurrence.
  Status FindPattern(std::string_view pattern);

  /// User-controlled superimposition for a transparency set displayed
  /// with the "separate" method: shows the base page with exactly the
  /// selected transparencies (0-based within the set) laid over it.
  Status ShowSelectedTransparencies(size_t set_index,
                                    const std::vector<uint32_t>& selected);

  /// Plays process simulation `index` from the descriptor; `speed_factor`
  /// scales the authored interval ("it may be altered by the user").
  Status PlayProcessSimulation(size_t index, double speed_factor = 1.0);

  /// The operations available for this object, as menu labels (§2: "The
  /// menu options which are displayed define the set of available
  /// operations").
  std::vector<std::string> MenuOptions() const;

  /// Relevant-object links whose anchor overlaps the current page (their
  /// indicators are displayed).
  std::vector<const object::RelevantObjectLink*> VisibleRelevantLinks()
      const;

  /// Current 1-based page number and total page count.
  int current_page() const { return static_cast<int>(current_) + 1; }
  int page_count() const {
    return static_cast<int>(obj_->descriptor().pages.size());
  }

  /// Cursor listener: fired from ShowCurrentPage whenever the browse
  /// cursor lands somewhere new (first show, or the page changed).
  /// Receives the 1-based page, the page count, and whether the move was
  /// a jump (more than one page at once — goto / pattern / unit
  /// browsing). The prefetch pipeline listens here to fetch page content
  /// on demand and steer speculative fetches; the call happens inside
  /// the page-turn latency measurement, so demand transfers are charged
  /// to the turn that needed them.
  using CursorListener =
      std::function<void(int page, int page_count, bool jump)>;
  void SetCursorListener(CursorListener listener) {
    cursor_listener_ = std::move(listener);
  }

  /// First text offset presented on the current page (0 when the page has
  /// no text).
  size_t current_text_offset() const;

  const object::MultimediaObject& object() const { return *obj_; }

 private:
  VisualBrowser(const object::MultimediaObject* obj, render::Screen* screen,
                MessagePlayer* messages, SimClock* clock, EventLog* log);

  /// Text span presented by descriptor page `index` ({0,0} if none).
  text::TextSpan PageTextSpan(size_t index) const;

  /// Image indices placed on descriptor page `index`.
  std::vector<uint32_t> PageImages(size_t index) const;

  /// True when `anchor` overlaps the content of page `index`.
  bool AnchorOnPage(const object::TextAnchor& anchor, size_t index) const;

  /// Composes the full stack for page `index` (base + transparencies /
  /// overwrites) into `region`.
  Status ComposeStack(size_t index, const image::Rect& region);

  /// Fires branch-in logical messages for the transition old -> new page.
  Status TriggerMessages(size_t old_page, size_t new_page, bool first_show);

  /// The transparency set containing page `index`, if any.
  const object::TransparencySetSpec* SetContaining(size_t index) const;

  const object::MultimediaObject* obj_;
  render::Screen* screen_;
  MessagePlayer* messages_;
  SimClock* clock_;
  EventLog* log_;
  PageCompositor compositor_;
  FormattedText formatted_;
  /// Pixel rectangle of the word placement `w` within `region`.
  image::Rect PlacementRect(const text::WordPlacement& w,
                            const image::Rect& region) const;

  /// Registry-owned page-turn statistics ("browser.visual.*"),
  /// aggregated across browsers: every navigation that lands on a page
  /// records the simulated time it took to present it.
  obs::Counter* page_turns_ = nullptr;
  obs::Histogram* page_turn_us_ = nullptr;

  CursorListener cursor_listener_;

  size_t current_ = 0;
  size_t last_shown_ = 0;  ///< Page at the previous ShowCurrentPage().
  /// Region the current page content was drawn into (full page area, or
  /// the lower area when a visual message is pinned).
  image::Rect content_region_;
  bool shown_once_ = false;
  /// Visual messages (by index) that already displayed, for display_once.
  std::set<size_t> displayed_once_;
  /// Visual message currently pinned (index into descriptor list) or -1.
  int active_visual_message_ = -1;
};

}  // namespace minos::core

#endif  // MINOS_CORE_VISUAL_BROWSER_H_
