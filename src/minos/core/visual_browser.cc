#include "minos/core/visual_browser.h"

#include <algorithm>

#include "minos/render/font5x7.h"

namespace minos::core {

using object::DrivingMode;
using object::MultimediaObject;
using object::ObjectState;
using object::TextAnchor;
using object::TransparencySetSpec;
using object::VisualPageSpec;

StatusOr<std::unique_ptr<VisualBrowser>> VisualBrowser::Open(
    const MultimediaObject* obj, render::Screen* screen,
    MessagePlayer* messages, SimClock* clock, EventLog* log) {
  if (obj->state() != ObjectState::kArchived) {
    return Status::FailedPrecondition(
        "presentation requires an archived object");
  }
  if (obj->descriptor().driving_mode != DrivingMode::kVisual) {
    return Status::InvalidArgument(
        "object is audio-driven; open an AudioBrowser");
  }
  if (obj->descriptor().pages.empty()) {
    return Status::InvalidArgument("object has no visual pages");
  }
  std::unique_ptr<VisualBrowser> browser(
      new VisualBrowser(obj, screen, messages, clock, log));
  MINOS_ASSIGN_OR_RETURN(browser->formatted_, FormatObjectText(*obj));
  return browser;
}

VisualBrowser::VisualBrowser(const MultimediaObject* obj,
                             render::Screen* screen, MessagePlayer* messages,
                             SimClock* clock, EventLog* log)
    : obj_(obj),
      screen_(screen),
      messages_(messages),
      clock_(clock),
      log_(log),
      compositor_(screen) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  page_turns_ = reg.counter("browser.visual.page_turns");
  page_turn_us_ = reg.histogram("browser.visual.page_turn_us");
}

text::TextSpan VisualBrowser::PageTextSpan(size_t index) const {
  const VisualPageSpec& spec = obj_->descriptor().pages[index];
  if (spec.text_page == 0 || spec.text_page > formatted_.pages.size()) {
    return text::TextSpan{};
  }
  return formatted_.pages[spec.text_page - 1].span;
}

std::vector<uint32_t> VisualBrowser::PageImages(size_t index) const {
  std::vector<uint32_t> out;
  for (const object::PlacedImage& pi :
       obj_->descriptor().pages[index].images) {
    out.push_back(pi.image_index);
  }
  return out;
}

bool VisualBrowser::AnchorOnPage(const TextAnchor& anchor,
                                 size_t index) const {
  const text::TextSpan span = PageTextSpan(index);
  if (span.begin == span.end) return false;
  if (anchor.begin == anchor.end) {
    return anchor.begin >= span.begin && anchor.begin < span.end;
  }
  return anchor.begin < span.end && span.begin < anchor.end;
}

const TransparencySetSpec* VisualBrowser::SetContaining(
    size_t index) const {
  for (const TransparencySetSpec& t :
       obj_->descriptor().transparency_sets) {
    if (index >= t.first_page && index < t.first_page + t.count) return &t;
  }
  return nullptr;
}

size_t VisualBrowser::current_text_offset() const {
  return PageTextSpan(current_).begin;
}

Status VisualBrowser::ComposeStack(size_t index, const image::Rect& region) {
  const auto& pages = obj_->descriptor().pages;
  // Find the base: the last normal page at or before `index`.
  size_t base = index;
  while (base > 0 && pages[base].kind != VisualPageSpec::Kind::kNormal) {
    --base;
  }
  const TransparencySetSpec* set = SetContaining(index);
  for (size_t i = base; i <= index; ++i) {
    const VisualPageSpec& spec = pages[i];
    if (spec.kind == VisualPageSpec::Kind::kTransparency &&
        set != nullptr && i >= set->first_page &&
        i < set->first_page + set->count && i != index &&
        set->method == object::TransparencyDisplay::kSeparate) {
      continue;  // Separate method: only the current transparency shows.
    }
    MINOS_RETURN_IF_ERROR(
        compositor_.ComposePage(*obj_, formatted_, i, region));
    if (spec.kind == VisualPageSpec::Kind::kTransparency && i == index &&
        log_ != nullptr) {
      log_->Add(EventKind::kTransparencyShown, clock_->Now(),
                static_cast<int64_t>(i) + 1, "");
    }
  }
  return Status::OK();
}

Status VisualBrowser::TriggerMessages(size_t old_page, size_t new_page,
                                      bool first_show) {
  const object::ObjectDescriptor& desc = obj_->descriptor();
  const std::vector<uint32_t> new_images = PageImages(new_page);
  auto on_new_image = [&](const std::optional<uint32_t>& idx) {
    return idx.has_value() &&
           std::find(new_images.begin(), new_images.end(), *idx) !=
               new_images.end();
  };
  auto on_old_image = [&](const std::optional<uint32_t>& idx) {
    if (!idx.has_value() || first_show) return false;
    const std::vector<uint32_t> old_images = PageImages(old_page);
    return std::find(old_images.begin(), old_images.end(), *idx) !=
           old_images.end();
  };

  // Voice logical messages: played on branch-in to a related segment.
  for (const object::VoiceLogicalMessage& m : desc.voice_messages) {
    bool related_new = false, related_old = false;
    if (m.text_anchor.has_value()) {
      related_new = AnchorOnPage(*m.text_anchor, new_page);
      related_old = !first_show && AnchorOnPage(*m.text_anchor, old_page);
    }
    if (m.image_index.has_value()) {
      related_new = related_new || on_new_image(m.image_index);
      related_old = related_old || on_old_image(m.image_index);
    }
    if (related_new && !related_old) {
      messages_->Play(m.transcript, log_, EventKind::kVoiceMessagePlayed,
                      static_cast<int64_t>(new_page) + 1);
    }
  }

  // Visual logical messages: pinned at the top while browsing related
  // text. Exactly one can be active; the first matching one wins.
  int next_active = -1;
  for (size_t i = 0; i < desc.visual_messages.size(); ++i) {
    const object::VisualLogicalMessage& m = desc.visual_messages[i];
    bool related = false;
    for (const TextAnchor& a : m.text_anchors) {
      if (AnchorOnPage(a, new_page)) {
        related = true;
        break;
      }
    }
    if (!related) continue;
    if (m.display_once && displayed_once_.count(i) > 0 &&
        active_visual_message_ != static_cast<int>(i)) {
      continue;  // Already shown once; do not re-pin on a new branch-in.
    }
    next_active = static_cast<int>(i);
    break;
  }
  if (next_active != active_visual_message_) {
    if (active_visual_message_ >= 0 && log_ != nullptr) {
      log_->Add(EventKind::kVisualMessageHidden, clock_->Now(),
                active_visual_message_, "");
    }
    if (next_active >= 0) {
      displayed_once_.insert(static_cast<size_t>(next_active));
      if (log_ != nullptr) {
        log_->Add(EventKind::kVisualMessageShown, clock_->Now(),
                  next_active,
                  desc.visual_messages[static_cast<size_t>(next_active)]
                      .text);
      }
    }
    active_visual_message_ = next_active;
  }
  return Status::OK();
}

Status VisualBrowser::ShowCurrentPage() {
  const size_t old_page = last_shown_;
  const bool first = !shown_once_;
  shown_once_ = true;
  last_shown_ = current_;
  if (cursor_listener_ && (first || current_ != old_page)) {
    // Fired before composing: a demand-paging listener transfers the
    // page's deferred bytes here, inside the page-turn measurement.
    const int delta =
        static_cast<int>(current_) - static_cast<int>(old_page);
    const bool jump = !first && (delta > 1 || delta < -1);
    cursor_listener_(current_page(), page_count(), jump);
  }
  MINOS_RETURN_IF_ERROR(TriggerMessages(old_page, current_, first));

  // When a visual message is pinned, the page content uses the lower
  // area; otherwise the full page area.
  if (active_visual_message_ >= 0) {
    const object::VisualLogicalMessage& m =
        obj_->descriptor()
            .visual_messages[static_cast<size_t>(active_visual_message_)];
    MINOS_RETURN_IF_ERROR(compositor_.ComposeVisualMessage(
        *obj_, m, screen_->MessageArea()));
    content_region_ = screen_->LowerPageArea();
  } else {
    content_region_ = screen_->PageArea();
  }
  MINOS_RETURN_IF_ERROR(ComposeStack(current_, content_region_));
  screen_->SetMenu(MenuOptions());
  screen_->DrawStatusLine("page " + std::to_string(current_page()) + "/" +
                          std::to_string(page_count()));
  if (log_ != nullptr) {
    log_->Add(EventKind::kPageShown, clock_->Now(), current_page(), "");
  }
  return Status::OK();
}

Status VisualBrowser::AdvancePages(int delta) {
  const int target = static_cast<int>(current_) + delta;
  return GotoPage(target + 1);
}

Status VisualBrowser::GotoPage(int number) {
  if (number < 1 || number > page_count()) {
    return Status::OutOfRange("page " + std::to_string(number) +
                              " out of range 1.." +
                              std::to_string(page_count()));
  }
  current_ = static_cast<size_t>(number - 1);
  // Page-turn latency is simulated time: presenting the page may play
  // triggered messages and advance the clock.
  const Micros presented_at = clock_->Now();
  Status status = ShowCurrentPage();
  page_turns_->Increment();
  page_turn_us_->Record(static_cast<double>(clock_->Now() - presented_at));
  return status;
}

Status VisualBrowser::GotoTextOffset(size_t offset) {
  if (!obj_->has_text()) {
    return Status::Unsupported("object has no text part");
  }
  const int page = formatted_.page_map.PageForOffset(offset);
  const auto& pages = obj_->descriptor().pages;
  for (size_t i = 0; i < pages.size(); ++i) {
    if (pages[i].text_page == static_cast<uint32_t>(page)) {
      return GotoPage(static_cast<int>(i) + 1);
    }
  }
  return Status::NotFound("no visual page presents that text offset");
}

image::Rect VisualBrowser::PlacementRect(const text::WordPlacement& w,
                                         const image::Rect& region) const {
  const int cw = render::Font5x7::kCellWidth;
  const int ch = render::Font5x7::kCellHeight;
  return image::Rect{region.x + w.col_begin * cw, region.y + w.line * ch,
                     (w.col_end - w.col_begin) * cw, ch};
}

Status VisualBrowser::HighlightOffset(size_t offset) {
  const object::VisualPageSpec& spec =
      obj_->descriptor().pages[current_];
  if (spec.text_page == 0 || spec.text_page > formatted_.pages.size()) {
    return Status::NotFound("current page presents no text");
  }
  const text::TextPage& page = formatted_.pages[spec.text_page - 1];
  const text::WordPlacement* w = page.FindWordAt(offset);
  if (w == nullptr) {
    return Status::NotFound("offset not visible on the current page");
  }
  // Highlight on a 1-bit display: redraw the word bold with an underline
  // at its exact on-screen position.
  const image::Rect box = PlacementRect(*w, content_region_);
  const std::string word =
      obj_->text_part().contents().substr(w->span.begin, w->span.length());
  screen_->DrawText(box.x, box.y, word, 255, /*bold=*/true,
                    /*underline=*/true);
  return Status::OK();
}

Status VisualBrowser::MarkTextSpan(size_t begin, size_t end) {
  const object::VisualPageSpec& spec =
      obj_->descriptor().pages[current_];
  if (spec.text_page == 0 || spec.text_page > formatted_.pages.size()) {
    return Status::NotFound("current page presents no text");
  }
  const text::TextPage& page = formatted_.pages[spec.text_page - 1];
  // Begin indicator: before the first visible word at/after `begin`.
  const text::WordPlacement* first = nullptr;
  const text::WordPlacement* last = nullptr;
  for (const text::WordPlacement& w : page.words) {
    if (w.span.end > begin && w.span.begin < end) {
      if (first == nullptr) first = &w;
      last = &w;
    }
  }
  if (first == nullptr) {
    return Status::NotFound("span not visible on the current page");
  }
  const image::Rect b = PlacementRect(*first, content_region_);
  const image::Rect e = PlacementRect(*last, content_region_);
  screen_->DrawText(b.x - render::Font5x7::kCellWidth, b.y, ">", 255,
                    /*bold=*/true);
  screen_->DrawText(e.x + e.w, e.y, "<", 255, /*bold=*/true);
  return Status::OK();
}

Status VisualBrowser::NextUnit(text::LogicalUnit unit) {
  if (!obj_->has_text() || !obj_->text_part().HasUnit(unit)) {
    return Status::Unsupported(std::string("object has no ") +
                               text::LogicalUnitName(unit) +
                               " components");
  }
  // "Next" is relative to what the user currently sees: units starting
  // after the end of the current page (a unit already visible on this
  // page is not a navigation target).
  const text::TextSpan current_span = PageTextSpan(current_);
  const size_t from =
      current_span.end > 0 ? current_span.end - 1 : current_span.begin;
  MINOS_ASSIGN_OR_RETURN(size_t offset,
                         obj_->text_part().NextUnitStart(unit, from));
  const int page = formatted_.page_map.PageForOffset(offset);
  // Map the text page to the descriptor page presenting it.
  const auto& pages = obj_->descriptor().pages;
  for (size_t i = 0; i < pages.size(); ++i) {
    if (pages[i].text_page == static_cast<uint32_t>(page)) {
      if (log_ != nullptr) {
        log_->Add(EventKind::kUnitReached, clock_->Now(),
                  static_cast<int64_t>(offset), text::LogicalUnitName(unit));
      }
      return GotoPage(static_cast<int>(i) + 1);
    }
  }
  return Status::NotFound("no visual page presents that text page");
}

Status VisualBrowser::PreviousUnit(text::LogicalUnit unit) {
  if (!obj_->has_text() || !obj_->text_part().HasUnit(unit)) {
    return Status::Unsupported(std::string("object has no ") +
                               text::LogicalUnitName(unit) +
                               " components");
  }
  MINOS_ASSIGN_OR_RETURN(
      size_t offset,
      obj_->text_part().PreviousUnitStart(unit, current_text_offset()));
  const int page = formatted_.page_map.PageForOffset(offset);
  const auto& pages = obj_->descriptor().pages;
  for (size_t i = 0; i < pages.size(); ++i) {
    if (pages[i].text_page == static_cast<uint32_t>(page)) {
      if (log_ != nullptr) {
        log_->Add(EventKind::kUnitReached, clock_->Now(),
                  static_cast<int64_t>(offset), text::LogicalUnitName(unit));
      }
      return GotoPage(static_cast<int>(i) + 1);
    }
  }
  return Status::NotFound("no visual page presents that text page");
}

Status VisualBrowser::FindPattern(std::string_view pattern) {
  if (!obj_->has_text()) {
    return Status::Unsupported("object has no text part");
  }
  const text::TextSpan span = PageTextSpan(current_);
  const size_t from = span.end;  // Strictly after the current page.
  MINOS_ASSIGN_OR_RETURN(
      size_t offset,
      text::FindNext(obj_->text_part().contents(), pattern, from));
  const int page = formatted_.page_map.PageForOffset(offset);
  const auto& pages = obj_->descriptor().pages;
  for (size_t i = 0; i < pages.size(); ++i) {
    if (pages[i].text_page == static_cast<uint32_t>(page)) {
      if (log_ != nullptr) {
        log_->Add(EventKind::kPatternFound, clock_->Now(),
                  static_cast<int64_t>(offset), std::string(pattern));
      }
      MINOS_RETURN_IF_ERROR(GotoPage(static_cast<int>(i) + 1));
      // Highlight the hit at its exact screen position (best effort: a
      // hit inside swallowed whitespace has no placed word).
      HighlightOffset(offset).ok();
      return Status::OK();
    }
  }
  return Status::NotFound("no visual page presents that text page");
}

Status VisualBrowser::ShowSelectedTransparencies(
    size_t set_index, const std::vector<uint32_t>& selected) {
  const auto& sets = obj_->descriptor().transparency_sets;
  if (set_index >= sets.size()) {
    return Status::OutOfRange("no such transparency set");
  }
  const TransparencySetSpec& set = sets[set_index];
  // Base page: last normal page before the set.
  size_t base = set.first_page;
  while (base > 0 && obj_->descriptor().pages[base].kind !=
                         VisualPageSpec::Kind::kNormal) {
    --base;
  }
  const image::Rect region = screen_->PageArea();
  MINOS_RETURN_IF_ERROR(
      compositor_.ComposePage(*obj_, formatted_, base, region));
  for (uint32_t s : selected) {
    if (s >= set.count) {
      return Status::OutOfRange("transparency selection out of set");
    }
    MINOS_RETURN_IF_ERROR(compositor_.ComposePage(
        *obj_, formatted_, set.first_page + s, region));
    if (log_ != nullptr) {
      log_->Add(EventKind::kTransparencyShown, clock_->Now(),
                static_cast<int64_t>(set.first_page + s) + 1, "selected");
    }
  }
  screen_->SetMenu(MenuOptions());
  return Status::OK();
}

Status VisualBrowser::PlayProcessSimulation(size_t index,
                                            double speed_factor) {
  const auto& sims = obj_->descriptor().process_simulations;
  if (index >= sims.size()) {
    return Status::OutOfRange("no such process simulation");
  }
  if (speed_factor <= 0.0) {
    return Status::InvalidArgument("speed factor must be positive");
  }
  const object::ProcessSimulationSpec& sim = sims[index];
  const Micros interval = static_cast<Micros>(
      static_cast<double>(sim.page_interval) / speed_factor);
  const image::Rect region = screen_->PageArea();
  for (uint32_t p = 0; p < sim.count; ++p) {
    const size_t page = sim.first_page + p;
    MINOS_RETURN_IF_ERROR(
        compositor_.ComposePage(*obj_, formatted_, page, region));
    current_ = page;
    if (log_ != nullptr) {
      log_->Add(EventKind::kProcessPage, clock_->Now(),
                static_cast<int64_t>(page) + 1, "");
    }
    // Audio-gated advance: the next page waits for the message.
    if (!sim.page_messages.empty() && !sim.page_messages[p].empty()) {
      messages_->Play(sim.page_messages[p], log_,
                      EventKind::kVoiceMessagePlayed,
                      static_cast<int64_t>(page) + 1);
    }
    if (p + 1 < sim.count) clock_->Advance(interval);
  }
  return Status::OK();
}

std::vector<std::string> VisualBrowser::MenuOptions() const {
  std::vector<std::string> options;
  options.emplace_back("next page");
  options.emplace_back("prev page");
  options.emplace_back("goto page");
  options.emplace_back("+5 pages");
  options.emplace_back("-5 pages");
  if (obj_->has_text()) {
    const text::Document& doc = obj_->text_part();
    using text::LogicalUnit;
    for (LogicalUnit unit :
         {LogicalUnit::kChapter, LogicalUnit::kSection,
          LogicalUnit::kParagraph, LogicalUnit::kSentence}) {
      if (doc.HasUnit(unit)) {
        options.push_back(std::string("next ") +
                          text::LogicalUnitName(unit));
        options.push_back(std::string("prev ") +
                          text::LogicalUnitName(unit));
      }
    }
    options.emplace_back("find pattern");
  }
  if (!obj_->descriptor().transparency_sets.empty()) {
    options.emplace_back("select transparencies");
  }
  if (!obj_->descriptor().process_simulations.empty()) {
    options.emplace_back("play simulation");
  }
  for (const object::RelevantObjectLink* link : VisibleRelevantLinks()) {
    options.push_back("-> " + link->indicator_label);
  }
  return options;
}

std::vector<const object::RelevantObjectLink*>
VisualBrowser::VisibleRelevantLinks() const {
  std::vector<const object::RelevantObjectLink*> out;
  const std::vector<uint32_t> images = PageImages(current_);
  for (const object::RelevantObjectLink& link :
       obj_->descriptor().relevant_objects) {
    bool visible = false;
    if (link.parent_text_anchor.has_value()) {
      visible = AnchorOnPage(*link.parent_text_anchor, current_);
    }
    if (!visible && link.parent_image_index.has_value()) {
      visible = std::find(images.begin(), images.end(),
                          *link.parent_image_index) != images.end();
    }
    if (visible) out.push_back(&link);
  }
  return out;
}

}  // namespace minos::core
