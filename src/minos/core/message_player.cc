#include "minos/core/message_player.h"

#include "minos/util/string_util.h"

namespace minos::core {

Micros MessagePlayer::Play(const std::string& transcript, EventLog* log,
                           EventKind kind, int64_t value) {
  const Micros duration = DurationOf(transcript);
  if (log != nullptr) log->Add(kind, clock_->Now(), value, transcript);
  clock_->Advance(duration);
  return duration;
}

Micros MessagePlayer::DurationOf(const std::string& transcript) const {
  const voice::VoiceTrack track =
      synthesizer_.SynthesizeWords(SplitWords(transcript));
  return track.pcm.Duration();
}

}  // namespace minos::core
