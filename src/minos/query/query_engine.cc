#include "minos/query/query_engine.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "minos/obs/metrics.h"
#include "minos/util/string_util.h"

namespace minos::query {

namespace {

/// Registry-owned scorer statistics, cached once.
struct EngineMetrics {
  obs::Counter* scored_terms;
  obs::Counter* postings_scanned;
  obs::Counter* heap_evictions;
};

EngineMetrics& Metrics() {
  static EngineMetrics* m = [] {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
    return new EngineMetrics{
        reg.counter("query.scored_terms"),
        reg.counter("query.postings_scanned"),
        reg.counter("query.heap_evictions"),
    };
  }();
  return *m;
}

/// Heap comparator: with Outranks as the strict weak order, make_heap
/// keeps the WORST retained hit at the front — the one a better
/// candidate evicts.
bool HeapOrder(const ScoredHit& a, const ScoredHit& b) {
  return Outranks(a, b);
}

}  // namespace

Micros ScoringCost(size_t terms_scored, size_t postings_scanned) {
  // ~5us per inverted-index probe, ~1us per posting scored: in-memory
  // index arithmetic, orders of magnitude under card fetches but not
  // free — a scatter still charges the slowest shard's share.
  return static_cast<Micros>(5 * terms_scored + postings_scanned);
}

RankedQuery QueryEngine::TopK(const ScoredIndex& postings,
                              const ScoredIndex& global,
                              const std::vector<std::string>& words,
                              size_t k, QueryMode mode) const {
  RankedQuery result;
  if (k == 0) return result;

  // Fold and deduplicate the query terms with the index's own routine,
  // so "Chapter," probes the posting list "chapter" built.
  std::vector<std::string> terms;
  for (const std::string& word : words) {
    std::string folded = FoldWord(word);
    if (folded.empty()) continue;
    if (std::find(terms.begin(), terms.end(), folded) == terms.end()) {
      terms.push_back(std::move(folded));
    }
  }
  if (terms.empty()) return result;

  // Accumulate BM25 contributions per candidate. The ordered map keeps
  // accumulation deterministic regardless of posting-list order.
  struct Candidate {
    double score = 0;
    size_t terms_matched = 0;
  };
  std::map<storage::ObjectId, Candidate> candidates;
  const CorpusStats& stats = global.stats();
  const double n = static_cast<double>(stats.doc_count);
  const double avg_len = stats.AvgLength();
  for (const std::string& term : terms) {
    const double df = static_cast<double>(global.DocFreq(term));
    const ScoredIndex::PostingMap& list = postings.Postings(term);
    if (df == 0 || list.empty()) {
      if (mode == QueryMode::kConjunctive) {
        candidates.clear();
        break;
      }
      continue;
    }
    ++result.terms_scored;
    const double idf = std::log(1.0 + (n - df + 0.5) / (df + 0.5));
    for (const auto& [id, posting] : list) {
      ++result.postings_scanned;
      const double tf = posting.tf();
      const double len = postings.DocLength(id);
      const double norm =
          params_.k1 *
          (1.0 - params_.b +
           (avg_len > 0 ? params_.b * len / avg_len : 0.0));
      Candidate& c = candidates[id];
      c.score += idf * (tf * (params_.k1 + 1.0)) / (tf + norm);
      ++c.terms_matched;
    }
  }

  // Bounded top-k: a size-k heap whose front is the worst retained hit.
  std::vector<ScoredHit> heap;
  heap.reserve(std::min(k, candidates.size()));
  for (const auto& [id, c] : candidates) {
    if (mode == QueryMode::kConjunctive && c.terms_matched < terms.size()) {
      continue;
    }
    const ScoredHit hit{id, c.score};
    if (heap.size() < k) {
      heap.push_back(hit);
      std::push_heap(heap.begin(), heap.end(), HeapOrder);
    } else if (Outranks(hit, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), HeapOrder);
      heap.back() = hit;
      std::push_heap(heap.begin(), heap.end(), HeapOrder);
      ++result.heap_evictions;
    }
  }
  std::sort(heap.begin(), heap.end(), Outranks);
  result.hits = std::move(heap);

  EngineMetrics& metrics = Metrics();
  metrics.scored_terms->Increment(
      static_cast<int64_t>(result.terms_scored));
  metrics.postings_scanned->Increment(
      static_cast<int64_t>(result.postings_scanned));
  metrics.heap_evictions->Increment(
      static_cast<int64_t>(result.heap_evictions));
  return result;
}

}  // namespace minos::query
