#include "minos/query/query_engine.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "minos/obs/metrics.h"
#include "minos/util/string_util.h"

namespace minos::query {

namespace {

/// Registry-owned scorer statistics, cached once.
struct EngineMetrics {
  obs::Counter* scored_terms;
  obs::Counter* postings_scanned;
  obs::Counter* heap_evictions;
};

EngineMetrics& Metrics() {
  static EngineMetrics* m = [] {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
    return new EngineMetrics{
        reg.counter("query.scored_terms"),
        reg.counter("query.postings_scanned"),
        reg.counter("query.heap_evictions"),
    };
  }();
  return *m;
}

/// Heap comparator: with Outranks as the strict weak order, make_heap
/// keeps the WORST retained hit at the front — the one a better
/// candidate evicts.
bool HeapOrder(const ScoredHit& a, const ScoredHit& b) {
  return Outranks(a, b);
}

}  // namespace

Micros ScoringCost(size_t terms_scored, size_t postings_scanned) {
  // ~5us per inverted-index probe, ~1us per posting scored: in-memory
  // index arithmetic, orders of magnitude under card fetches but not
  // free — a scatter still charges the slowest shard's share.
  return static_cast<Micros>(5 * terms_scored + postings_scanned);
}

namespace {

/// Per-candidate BM25 accumulator. The ordered map keeps accumulation
/// deterministic regardless of posting-list order.
struct Candidate {
  double score = 0;
  size_t terms_matched = 0;
};

/// One query term that survived the probe pass, with its precomputed
/// idf and posting list.
struct ScoredTerm {
  const ScoredIndex::PostingMap* list;
  double idf;
};

/// Accumulates every scored term's postings with ids in [lo, hi) into
/// `candidates`. Each candidate receives its contributions in term
/// order — the same floating-point addition order as a full serial
/// pass — so partitioned accumulation is bit-identical to unpartitioned.
void AccumulateRange(const std::vector<ScoredTerm>& scored,
                     const ScoredIndex& postings, const Bm25Params& params,
                     double avg_len, storage::ObjectId lo,
                     storage::ObjectId hi, bool bounded_hi,
                     std::map<storage::ObjectId, Candidate>* candidates) {
  for (const ScoredTerm& term : scored) {
    auto it = term.list->lower_bound(lo);
    const auto end =
        bounded_hi ? term.list->lower_bound(hi) : term.list->end();
    for (; it != end; ++it) {
      const auto& [id, posting] = *it;
      const double tf = posting.tf();
      const double len = postings.DocLength(id);
      const double norm =
          params.k1 * (1.0 - params.b +
                       (avg_len > 0 ? params.b * len / avg_len : 0.0));
      Candidate& c = (*candidates)[id];
      c.score += term.idf * (tf * (params.k1 + 1.0)) / (tf + norm);
      ++c.terms_matched;
    }
  }
}

/// Fixed partition fan-out for pooled scoring. Deliberately a constant,
/// not the worker count: the decomposition (and thus every rounding-
/// irrelevant detail of the work) must not depend on pool size.
constexpr size_t kScorePartitions = 4;

}  // namespace

RankedQuery QueryEngine::TopK(const ScoredIndex& postings,
                              const ScoredIndex& global,
                              const std::vector<std::string>& words,
                              size_t k, QueryMode mode,
                              runtime::TaskPool* pool) const {
  RankedQuery result;
  if (k == 0) return result;

  // Fold and deduplicate the query terms with the index's own routine,
  // so "Chapter," probes the posting list "chapter" built.
  std::vector<std::string> terms;
  for (const std::string& word : words) {
    std::string folded = FoldWord(word);
    if (folded.empty()) continue;
    if (std::find(terms.begin(), terms.end(), folded) == terms.end()) {
      terms.push_back(std::move(folded));
    }
  }
  if (terms.empty()) return result;

  // Probe pass (serial): resolve each term's posting list and idf, and
  // tally the work counters, in term order — a conjunctive query with a
  // missing term stops probing there, charging only the terms scored
  // before the abort, exactly like the original single pass.
  std::vector<ScoredTerm> scored;
  scored.reserve(terms.size());
  bool aborted = false;
  const CorpusStats& stats = global.stats();
  const double n = static_cast<double>(stats.doc_count);
  const double avg_len = stats.AvgLength();
  for (const std::string& term : terms) {
    const double df = static_cast<double>(global.DocFreq(term));
    const ScoredIndex::PostingMap& list = postings.Postings(term);
    if (df == 0 || list.empty()) {
      if (mode == QueryMode::kConjunctive) {
        aborted = true;
        break;
      }
      continue;
    }
    ++result.terms_scored;
    result.postings_scanned += list.size();
    const double idf = std::log(1.0 + (n - df + 0.5) / (df + 0.5));
    scored.push_back(ScoredTerm{&list, idf});
  }

  // Accumulation: serial over the whole id space, or fanned out over
  // disjoint id ranges whose per-range maps concatenate back into one
  // ascending candidate sequence.
  std::map<storage::ObjectId, Candidate> candidates;
  if (aborted) {
    // Conjunctive query with a missing term matches nothing.
  } else if (pool == nullptr || scored.empty()) {
    AccumulateRange(scored, postings, params_, avg_len, 0, 0,
                    /*bounded_hi=*/false, &candidates);
  } else {
    const std::vector<storage::ObjectId> points =
        postings.PartitionPoints(kScorePartitions);
    std::vector<std::map<storage::ObjectId, Candidate>> parts(
        kScorePartitions);
    std::vector<runtime::TaskPool::Task> tasks;
    tasks.reserve(kScorePartitions);
    for (size_t p = 0; p < kScorePartitions; ++p) {
      const storage::ObjectId lo = p == 0 ? 0 : points[p - 1];
      const bool bounded = p + 1 < kScorePartitions;
      const storage::ObjectId hi = bounded ? points[p] : 0;
      tasks.push_back([&, p, lo, hi, bounded] {
        AccumulateRange(scored, postings, params_, avg_len, lo, hi,
                        bounded, &parts[p]);
      });
    }
    // Index arithmetic charges no virtual time of its own (callers
    // charge ScoringCost centrally), so the epoch advances the clock
    // by zero; the fan-out only buys wall-clock parallelism.
    pool->RunEpoch(std::move(tasks));
    for (std::map<storage::ObjectId, Candidate>& part : parts) {
      candidates.insert(part.begin(), part.end());
    }
  }

  // Bounded top-k: a size-k heap whose front is the worst retained hit.
  std::vector<ScoredHit> heap;
  heap.reserve(std::min(k, candidates.size()));
  for (const auto& [id, c] : candidates) {
    if (mode == QueryMode::kConjunctive && c.terms_matched < terms.size()) {
      continue;
    }
    const ScoredHit hit{id, c.score};
    if (heap.size() < k) {
      heap.push_back(hit);
      std::push_heap(heap.begin(), heap.end(), HeapOrder);
    } else if (Outranks(hit, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), HeapOrder);
      heap.back() = hit;
      std::push_heap(heap.begin(), heap.end(), HeapOrder);
      ++result.heap_evictions;
    }
  }
  std::sort(heap.begin(), heap.end(), Outranks);
  result.hits = std::move(heap);

  EngineMetrics& metrics = Metrics();
  metrics.scored_terms->Increment(
      static_cast<int64_t>(result.terms_scored));
  metrics.postings_scanned->Increment(
      static_cast<int64_t>(result.postings_scanned));
  metrics.heap_evictions->Increment(
      static_cast<int64_t>(result.heap_evictions));
  return result;
}

}  // namespace minos::query
