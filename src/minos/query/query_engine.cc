#include "minos/query/query_engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "minos/obs/metrics.h"
#include "minos/util/string_util.h"

namespace minos::query {

namespace {

/// Registry-owned scorer statistics, cached once.
struct EngineMetrics {
  obs::Counter* scored_terms;
  obs::Counter* postings_scanned;
  obs::Counter* postings_skipped;
  obs::Counter* heap_evictions;
};

EngineMetrics& Metrics() {
  static EngineMetrics* m = [] {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
    return new EngineMetrics{
        reg.counter("query.scored_terms"),
        reg.counter("query.postings_scanned"),
        reg.counter("query.postings_skipped"),
        reg.counter("query.heap_evictions"),
    };
  }();
  return *m;
}

/// Heap comparator: with Outranks as the strict weak order, make_heap
/// keeps the WORST retained hit at the front — the one a better
/// candidate evicts.
bool HeapOrder(const ScoredHit& a, const ScoredHit& b) {
  return Outranks(a, b);
}

}  // namespace

Micros ScoringCost(size_t terms_scored, size_t postings_scanned) {
  // ~5us per inverted-index probe, ~1us per posting scored: in-memory
  // index arithmetic, orders of magnitude under card fetches but not
  // free — a scatter still charges the slowest shard's share.
  return static_cast<Micros>(5 * terms_scored + postings_scanned);
}

namespace {

/// Per-candidate BM25 accumulator. The ordered map keeps accumulation
/// deterministic regardless of posting-list order.
struct Candidate {
  double score = 0;
  size_t terms_matched = 0;
};

/// One query term that survived the probe pass, with its precomputed
/// idf, posting list and max-score ceiling.
struct ScoredTerm {
  const ScoredIndex::PostingMap* list;
  double idf;
  /// Upper bound on this term's BM25 contribution to ANY document:
  /// idf * f(max_tf) with f evaluated at the length norm of the term's
  /// shortest holder (MinDocLen). f is increasing in tf and decreasing
  /// in the norm, so no posting of the term can score above this.
  double upper_bound = 0;
};

/// Accumulates every scored term's postings with ids in [lo, hi) into
/// `candidates`. Each candidate receives its contributions in term
/// order — the same floating-point addition order as a full serial
/// pass — so partitioned accumulation is bit-identical to unpartitioned.
void AccumulateRange(const std::vector<ScoredTerm>& scored,
                     const ScoredIndex& postings, const Bm25Params& params,
                     double avg_len, storage::ObjectId lo,
                     storage::ObjectId hi, bool bounded_hi,
                     std::map<storage::ObjectId, Candidate>* candidates) {
  for (const ScoredTerm& term : scored) {
    auto it = term.list->lower_bound(lo);
    const auto end =
        bounded_hi ? term.list->lower_bound(hi) : term.list->end();
    for (; it != end; ++it) {
      const auto& [id, posting] = *it;
      const double tf = posting.tf();
      const double len = postings.DocLength(id);
      const double norm =
          params.k1 * (1.0 - params.b +
                       (avg_len > 0 ? params.b * len / avg_len : 0.0));
      Candidate& c = (*candidates)[id];
      c.score += term.idf * (tf * (params.k1 + 1.0)) / (tf + norm);
      ++c.terms_matched;
    }
  }
}

/// Fixed partition fan-out for pooled scoring. Deliberately a constant,
/// not the worker count: the decomposition (and thus every rounding-
/// irrelevant detail of the work) must not depend on pool size.
constexpr size_t kScorePartitions = 4;

/// One partition's share of a max-score pruned disjunctive top-k.
struct MaxScoreShare {
  std::vector<ScoredHit> heap;  ///< HeapOrder heap, at most k entries.
  size_t visited = 0;           ///< Postings actually examined.
  size_t evictions = 0;
};

/// Max-score (WAND-family) disjunctive top-k over ids in [lo, hi):
/// terms are split into an *essential* set (candidate generators) and a
/// *non-essential* set whose summed upper bounds sit strictly below the
/// current k-th score — a document appearing only in non-essential
/// lists cannot enter the heap, so those postings are never visited.
/// The split tightens as the heap threshold rises.
///
/// Exactness: every candidate that survives its bound check is scored
/// over ALL terms in the original probe order — the identical
/// floating-point addition order the exhaustive pass uses — so ids and
/// scores are bit-identical to exhaustive evaluation. Skipping at
/// bound <= threshold is tie-safe here because candidates arrive in
/// ascending id order: every heap entry carries a lower id than the
/// frontier, Outranks breaks score ties toward the lower id, and the
/// threshold never decreases — so a later candidate that at best TIES
/// the k-th score loses that tie and can never enter the final top-k.
MaxScoreShare MaxScoreRange(const std::vector<ScoredTerm>& scored,
                            const ScoredIndex& postings,
                            const Bm25Params& params, double avg_len,
                            storage::ObjectId lo, storage::ObjectId hi,
                            bool bounded_hi, size_t k) {
  MaxScoreShare share;
  const size_t m = scored.size();
  // Term indices ordered by ascending upper bound (ties by probe order
  // — a pure function of the query, never of thread count). The first
  // `non_essential` entries are the skippable generators.
  std::vector<size_t> by_ub(m);
  for (size_t i = 0; i < m; ++i) by_ub[i] = i;
  std::stable_sort(by_ub.begin(), by_ub.end(), [&](size_t a, size_t b) {
    return scored[a].upper_bound < scored[b].upper_bound;
  });
  // prefix_ub[j]: summed ceiling of the j smallest-bound terms.
  std::vector<double> prefix_ub(m + 1, 0.0);
  for (size_t j = 0; j < m; ++j) {
    prefix_ub[j + 1] = prefix_ub[j] + scored[by_ub[j]].upper_bound;
  }
  struct Cursor {
    ScoredIndex::PostingMap::const_iterator it;
    ScoredIndex::PostingMap::const_iterator end;
  };
  std::vector<Cursor> cursors(m);
  for (size_t t = 0; t < m; ++t) {
    cursors[t].it = scored[t].list->lower_bound(lo);
    cursors[t].end =
        bounded_hi ? scored[t].list->lower_bound(hi) : scored[t].list->end();
  }
  size_t non_essential = 0;
  auto raise_boundary = [&] {
    if (share.heap.size() < k) return;
    const double threshold = share.heap.front().score;
    while (non_essential < m &&
           prefix_ub[non_essential + 1] <= threshold) {
      ++non_essential;
    }
  };
  while (true) {
    // The next candidate: smallest id under any essential cursor.
    storage::ObjectId next =
        std::numeric_limits<storage::ObjectId>::max();
    bool any = false;
    for (size_t j = non_essential; j < m; ++j) {
      const Cursor& c = cursors[by_ub[j]];
      if (c.it != c.end) {
        any = true;
        next = std::min(next, c.it->first);
      }
    }
    if (!any) break;
    // Second-level bound: the essential postings at `next` (already
    // in hand) plus every non-essential ceiling. At or below the
    // threshold means even a perfect non-essential match cannot beat
    // (or, arriving later in id order, tie into) the current top-k.
    double bound = prefix_ub[non_essential];
    size_t essential_here = 0;
    for (size_t j = non_essential; j < m; ++j) {
      const Cursor& c = cursors[by_ub[j]];
      if (c.it != c.end && c.it->first == next) {
        bound += scored[by_ub[j]].upper_bound;
        ++essential_here;
      }
    }
    const bool prune_doc =
        share.heap.size() >= k && bound <= share.heap.front().score;
    if (prune_doc) {
      // The generator postings were examined to compute the bound; the
      // non-essential probes are what pruning saves.
      share.visited += essential_here;
    } else {
      // Full score, all terms, original probe order: bit-identical
      // accumulation to the exhaustive pass.
      double score = 0;
      for (size_t t = 0; t < m; ++t) {
        const auto found = scored[t].list->find(next);
        if (found == scored[t].list->end()) continue;
        ++share.visited;
        const double tf = found->second.tf();
        const double len = postings.DocLength(next);
        const double norm =
            params.k1 *
            (1.0 - params.b +
             (avg_len > 0 ? params.b * len / avg_len : 0.0));
        score += scored[t].idf * (tf * (params.k1 + 1.0)) / (tf + norm);
      }
      const ScoredHit hit{next, score};
      if (share.heap.size() < k) {
        share.heap.push_back(hit);
        std::push_heap(share.heap.begin(), share.heap.end(), HeapOrder);
        raise_boundary();
      } else if (Outranks(hit, share.heap.front())) {
        std::pop_heap(share.heap.begin(), share.heap.end(), HeapOrder);
        share.heap.back() = hit;
        std::push_heap(share.heap.begin(), share.heap.end(), HeapOrder);
        ++share.evictions;
        raise_boundary();
      }
    }
    for (size_t j = non_essential; j < m; ++j) {
      Cursor& c = cursors[by_ub[j]];
      if (c.it != c.end && c.it->first == next) ++c.it;
    }
  }
  return share;
}

}  // namespace

RankedQuery QueryEngine::TopK(const ScoredIndex& postings,
                              const ScoredIndex& global,
                              const std::vector<std::string>& words,
                              size_t k, QueryMode mode,
                              runtime::TaskPool* pool) const {
  RankedQuery result;
  if (k == 0) return result;

  // Fold and deduplicate the query terms with the index's own routine,
  // so "Chapter," probes the posting list "chapter" built.
  std::vector<std::string> terms;
  for (const std::string& word : words) {
    std::string folded = FoldWord(word);
    if (folded.empty()) continue;
    if (std::find(terms.begin(), terms.end(), folded) == terms.end()) {
      terms.push_back(std::move(folded));
    }
  }
  if (terms.empty()) return result;

  // Probe pass (serial): resolve each term's posting list and idf, and
  // tally the work counters, in term order — a conjunctive query with a
  // missing term stops probing there, charging only the terms scored
  // before the abort, exactly like the original single pass.
  std::vector<ScoredTerm> scored;
  scored.reserve(terms.size());
  bool aborted = false;
  const CorpusStats& stats = global.stats();
  const double n = static_cast<double>(stats.doc_count);
  const double avg_len = stats.AvgLength();
  for (const std::string& term : terms) {
    const double df = static_cast<double>(global.DocFreq(term));
    const ScoredIndex::PostingMap& list = postings.Postings(term);
    if (df == 0 || list.empty()) {
      if (mode == QueryMode::kConjunctive) {
        aborted = true;
        break;
      }
      continue;
    }
    ++result.terms_scored;
    result.postings_scanned += list.size();
    const double idf = std::log(1.0 + (n - df + 0.5) / (df + 0.5));
    // Score ceiling for max-score pruning: the BM25 term contribution
    // is increasing in tf and decreasing in the length norm, so the
    // largest posting tf at the shortest holder's norm bounds every
    // posting of the term (a doc can't be shorter than the index's
    // per-term length floor).
    const double max_tf = postings.MaxTf(term);
    const double min_len = postings.MinDocLen(term);
    const double bound_norm =
        params_.k1 * (1.0 - params_.b +
                      (avg_len > 0 ? params_.b * min_len / avg_len : 0.0));
    const double upper_bound =
        idf * (max_tf * (params_.k1 + 1.0)) / (max_tf + bound_norm);
    scored.push_back(ScoredTerm{&list, idf, upper_bound});
  }

  // Max-score pruned path (disjunctive only — conjunctive filtering
  // needs every candidate's terms_matched tally). Always decomposed
  // into the same fixed partitions as pooled exhaustive scoring, run
  // inline without a pool, so hits, scores, and all work counters are
  // identical on any worker count.
  if (strategy_ == ScoringStrategy::kMaxScore &&
      mode == QueryMode::kDisjunctive && !aborted && !scored.empty()) {
    const size_t probed_total = result.postings_scanned;
    const std::vector<storage::ObjectId> points =
        postings.PartitionPoints(kScorePartitions);
    std::vector<MaxScoreShare> shares(kScorePartitions);
    auto run_partition = [&](size_t p) {
      const storage::ObjectId lo = p == 0 ? 0 : points[p - 1];
      const bool bounded = p + 1 < kScorePartitions;
      const storage::ObjectId hi = bounded ? points[p] : 0;
      shares[p] = MaxScoreRange(scored, postings, params_, avg_len, lo,
                                hi, bounded, k);
    };
    if (pool == nullptr) {
      for (size_t p = 0; p < kScorePartitions; ++p) run_partition(p);
    } else {
      std::vector<runtime::TaskPool::Task> tasks;
      tasks.reserve(kScorePartitions);
      for (size_t p = 0; p < kScorePartitions; ++p) {
        tasks.push_back([&run_partition, p] { run_partition(p); });
      }
      pool->RunEpoch(std::move(tasks));
    }
    // Each partition's local top-k contains that partition's members of
    // the global top-k, so sorting the union and truncating is exact.
    size_t visited = 0;
    std::vector<ScoredHit> merged;
    for (MaxScoreShare& share : shares) {
      visited += share.visited;
      result.heap_evictions += share.evictions;
      merged.insert(merged.end(), share.heap.begin(), share.heap.end());
    }
    std::sort(merged.begin(), merged.end(), Outranks);
    if (merged.size() > k) merged.resize(k);
    result.hits = std::move(merged);
    // The probe pass charged every posting of every probed term; split
    // that figure into the postings actually examined and the ones the
    // bounds proved irrelevant. Callers charge ScoringCost on
    // postings_scanned, so pruning is what makes top-k sublinear.
    result.postings_scanned = visited;
    result.postings_skipped = probed_total - visited;

    EngineMetrics& metrics = Metrics();
    metrics.scored_terms->Increment(
        static_cast<int64_t>(result.terms_scored));
    metrics.postings_scanned->Increment(
        static_cast<int64_t>(result.postings_scanned));
    metrics.postings_skipped->Increment(
        static_cast<int64_t>(result.postings_skipped));
    metrics.heap_evictions->Increment(
        static_cast<int64_t>(result.heap_evictions));
    return result;
  }

  // Accumulation: serial over the whole id space, or fanned out over
  // disjoint id ranges whose per-range maps concatenate back into one
  // ascending candidate sequence.
  std::map<storage::ObjectId, Candidate> candidates;
  if (aborted) {
    // Conjunctive query with a missing term matches nothing.
  } else if (pool == nullptr || scored.empty()) {
    AccumulateRange(scored, postings, params_, avg_len, 0, 0,
                    /*bounded_hi=*/false, &candidates);
  } else {
    const std::vector<storage::ObjectId> points =
        postings.PartitionPoints(kScorePartitions);
    std::vector<std::map<storage::ObjectId, Candidate>> parts(
        kScorePartitions);
    std::vector<runtime::TaskPool::Task> tasks;
    tasks.reserve(kScorePartitions);
    for (size_t p = 0; p < kScorePartitions; ++p) {
      const storage::ObjectId lo = p == 0 ? 0 : points[p - 1];
      const bool bounded = p + 1 < kScorePartitions;
      const storage::ObjectId hi = bounded ? points[p] : 0;
      tasks.push_back([&, p, lo, hi, bounded] {
        AccumulateRange(scored, postings, params_, avg_len, lo, hi,
                        bounded, &parts[p]);
      });
    }
    // Index arithmetic charges no virtual time of its own (callers
    // charge ScoringCost centrally), so the epoch advances the clock
    // by zero; the fan-out only buys wall-clock parallelism.
    pool->RunEpoch(std::move(tasks));
    for (std::map<storage::ObjectId, Candidate>& part : parts) {
      candidates.insert(part.begin(), part.end());
    }
  }

  // Bounded top-k: a size-k heap whose front is the worst retained hit.
  std::vector<ScoredHit> heap;
  heap.reserve(std::min(k, candidates.size()));
  for (const auto& [id, c] : candidates) {
    if (mode == QueryMode::kConjunctive && c.terms_matched < terms.size()) {
      continue;
    }
    const ScoredHit hit{id, c.score};
    if (heap.size() < k) {
      heap.push_back(hit);
      std::push_heap(heap.begin(), heap.end(), HeapOrder);
    } else if (Outranks(hit, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), HeapOrder);
      heap.back() = hit;
      std::push_heap(heap.begin(), heap.end(), HeapOrder);
      ++result.heap_evictions;
    }
  }
  std::sort(heap.begin(), heap.end(), Outranks);
  result.hits = std::move(heap);

  EngineMetrics& metrics = Metrics();
  metrics.scored_terms->Increment(
      static_cast<int64_t>(result.terms_scored));
  metrics.postings_scanned->Increment(
      static_cast<int64_t>(result.postings_scanned));
  metrics.heap_evictions->Increment(
      static_cast<int64_t>(result.heap_evictions));
  return result;
}

}  // namespace minos::query
