#include "minos/query/scored_index.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "minos/util/string_util.h"

namespace minos::query {

double VoiceConfidence(const voice::RecognizerParams& profile) {
  const double confidence =
      profile.hit_rate * (1.0 - profile.false_alarm_rate);
  return std::clamp(confidence, 0.0, 1.0);
}

void ScoredIndex::AddTerm(storage::ObjectId id, const std::string& term,
                          double text_weight, double voice_weight,
                          std::vector<std::string>* new_terms) {
  if (term.empty()) return;
  if (!stats_only_) {
    TermPosting& posting = postings_[term][id];
    posting.text_tf += text_weight;
    posting.voice_tf += voice_weight;
    double& max_tf = max_tf_[term];
    max_tf = std::max(max_tf, posting.tf());
  }
  std::vector<std::string>& terms = doc_terms_[id];
  if (std::find(terms.begin(), terms.end(), term) == terms.end()) {
    terms.push_back(term);
    ++doc_freq_[term];
    if (new_terms != nullptr) new_terms->push_back(term);
  }
  lengths_[id] += text_weight + voice_weight;
  stats_.total_length += text_weight + voice_weight;
}

void ScoredIndex::FloorHolderLengths(storage::ObjectId id,
                                     const std::vector<std::string>& terms) {
  if (stats_only_) return;
  // Snapshot the document's length as of the end of this indexing
  // operation. The document can only grow from here (Append never
  // shrinks), so the floor stays valid without ever being revisited.
  const double len = lengths_[id];
  for (const std::string& term : terms) {
    auto [it, inserted] = min_len_.try_emplace(term, len);
    if (!inserted) it->second = std::min(it->second, len);
  }
}

void ScoredIndex::Add(const object::MultimediaObject& obj,
                      double voice_confidence) {
  const storage::ObjectId id = obj.id();
  Remove(id);
  version_.fetch_add(1, std::memory_order_acq_rel);
  ++stats_.doc_count;
  lengths_[id] = 0;
  doc_terms_[id] = {};
  if (obj.has_text()) {
    for (const std::string& w : SplitWords(obj.text_part().contents())) {
      AddTerm(id, FoldWord(w), 1.0, 0.0);
    }
  }
  for (const auto& [name, value] : obj.attributes()) {
    for (const std::string& w : SplitWords(value)) {
      AddTerm(id, FoldWord(w), 1.0, 0.0);
    }
  }
  if (obj.has_voice()) {
    for (const voice::WordAlignment& w : obj.voice_part().track().words) {
      AddTerm(id, FoldWord(w.word), 0.0, voice_confidence);
    }
  }
  FloorHolderLengths(id, doc_terms_[id]);
}

IndexDelta ScoredIndex::Append(storage::ObjectId id,
                               const AppendedContent& content,
                               double voice_confidence) {
  IndexDelta delta;
  delta.id = id;
  version_.fetch_add(1, std::memory_order_acq_rel);
  if (lengths_.find(id) == lengths_.end()) {
    ++stats_.doc_count;
    lengths_[id] = 0;
    doc_terms_[id];
    delta.new_doc = true;
  }
  const double length_before = lengths_[id];
  for (const std::string& w : SplitWords(content.text)) {
    AddTerm(id, FoldWord(w), 1.0, 0.0, &delta.new_terms);
  }
  for (const voice::WordAlignment& w : content.voice_words) {
    AddTerm(id, FoldWord(w.word), 0.0, voice_confidence, &delta.new_terms);
  }
  delta.length_delta = lengths_[id] - length_before;
  // Only terms this append made the document a NEW holder of can lower
  // a holder-length floor; for terms it already held, the floors stay
  // conservative as the document grows.
  FloorHolderLengths(id, delta.new_terms);
  return delta;
}

void ScoredIndex::ApplyDelta(const IndexDelta& delta) {
  version_.fetch_add(1, std::memory_order_acq_rel);
  if (lengths_.find(delta.id) == lengths_.end()) {
    ++stats_.doc_count;
    lengths_[delta.id] = 0;
    doc_terms_[delta.id];
  }
  std::vector<std::string>& terms = doc_terms_[delta.id];
  for (const std::string& term : delta.new_terms) {
    ++doc_freq_[term];
    terms.push_back(term);
  }
  lengths_[delta.id] += delta.length_delta;
  stats_.total_length += delta.length_delta;
}

void ScoredIndex::Remove(storage::ObjectId id) {
  auto terms_it = doc_terms_.find(id);
  if (terms_it == doc_terms_.end()) return;
  version_.fetch_add(1, std::memory_order_acq_rel);
  for (const std::string& term : terms_it->second) {
    auto df = doc_freq_.find(term);
    if (df != doc_freq_.end() && --df->second == 0) doc_freq_.erase(df);
    auto posting = postings_.find(term);
    if (posting != postings_.end()) {
      posting->second.erase(id);
      if (posting->second.empty()) {
        postings_.erase(posting);
        max_tf_.erase(term);
        min_len_.erase(term);
      } else {
        // The departing posting may have carried either bound:
        // recompute over the survivors (rare path — only re-stores
        // come here).
        double max_tf = 0;
        double min_len = std::numeric_limits<double>::max();
        for (const auto& [rest_id, rest] : posting->second) {
          max_tf = std::max(max_tf, rest.tf());
          auto len = lengths_.find(rest_id);
          min_len = std::min(
              min_len, len != lengths_.end() ? len->second : 0.0);
        }
        max_tf_[term] = max_tf;
        min_len_[term] = min_len;
      }
    }
  }
  auto length = lengths_.find(id);
  if (length != lengths_.end()) {
    stats_.total_length -= length->second;
    lengths_.erase(length);
  }
  doc_terms_.erase(terms_it);
  --stats_.doc_count;
}

const ScoredIndex::PostingMap& ScoredIndex::Postings(
    std::string_view term) const {
  static const PostingMap* empty = new PostingMap();
  auto it = postings_.find(term);
  return it == postings_.end() ? *empty : it->second;
}

uint64_t ScoredIndex::DocFreq(std::string_view term) const {
  auto it = doc_freq_.find(term);
  return it == doc_freq_.end() ? 0 : it->second;
}

double ScoredIndex::MaxTf(std::string_view term) const {
  auto it = max_tf_.find(term);
  return it == max_tf_.end() ? 0.0 : it->second;
}

double ScoredIndex::MinDocLen(std::string_view term) const {
  auto it = min_len_.find(term);
  return it == min_len_.end() ? 0.0 : it->second;
}

double ScoredIndex::DocLength(storage::ObjectId id) const {
  auto it = lengths_.find(id);
  return it == lengths_.end() ? 0.0 : it->second;
}

std::vector<storage::ObjectId> ScoredIndex::PartitionPoints(
    size_t parts) const {
  std::vector<storage::ObjectId> points;
  if (parts <= 1) return points;
  points.reserve(parts - 1);
  // lengths_ is ordered by id, so the k-th quantile key starts range k.
  const size_t n = lengths_.size();
  size_t next = 1;
  size_t i = 0;
  for (const auto& [id, length] : lengths_) {
    while (next < parts && i >= next * n / parts) {
      points.push_back(id);
      ++next;
    }
    if (next >= parts) break;
    ++i;
  }
  // Fewer documents than partitions: pad with past-the-end sentinels so
  // callers always get parts - 1 boundaries (empty tail ranges).
  while (points.size() < parts - 1) {
    points.push_back(std::numeric_limits<storage::ObjectId>::max());
  }
  return points;
}

}  // namespace minos::query
