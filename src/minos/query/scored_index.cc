#include "minos/query/scored_index.h"

#include <algorithm>
#include <utility>

#include "minos/util/string_util.h"

namespace minos::query {

double VoiceConfidence(const voice::RecognizerParams& profile) {
  const double confidence =
      profile.hit_rate * (1.0 - profile.false_alarm_rate);
  return std::clamp(confidence, 0.0, 1.0);
}

void ScoredIndex::AddTerm(storage::ObjectId id, const std::string& term,
                          double text_weight, double voice_weight) {
  if (term.empty()) return;
  if (!stats_only_) {
    TermPosting& posting = postings_[term][id];
    posting.text_tf += text_weight;
    posting.voice_tf += voice_weight;
  }
  std::vector<std::string>& terms = doc_terms_[id];
  if (std::find(terms.begin(), terms.end(), term) == terms.end()) {
    terms.push_back(term);
    ++doc_freq_[term];
  }
  lengths_[id] += text_weight + voice_weight;
  stats_.total_length += text_weight + voice_weight;
}

void ScoredIndex::Add(const object::MultimediaObject& obj,
                      double voice_confidence) {
  const storage::ObjectId id = obj.id();
  Remove(id);
  ++stats_.doc_count;
  lengths_[id] = 0;
  doc_terms_[id] = {};
  if (obj.has_text()) {
    for (const std::string& w : SplitWords(obj.text_part().contents())) {
      AddTerm(id, FoldWord(w), 1.0, 0.0);
    }
  }
  for (const auto& [name, value] : obj.attributes()) {
    for (const std::string& w : SplitWords(value)) {
      AddTerm(id, FoldWord(w), 1.0, 0.0);
    }
  }
  if (obj.has_voice()) {
    for (const voice::WordAlignment& w : obj.voice_part().track().words) {
      AddTerm(id, FoldWord(w.word), 0.0, voice_confidence);
    }
  }
}

void ScoredIndex::Remove(storage::ObjectId id) {
  auto terms_it = doc_terms_.find(id);
  if (terms_it == doc_terms_.end()) return;
  for (const std::string& term : terms_it->second) {
    auto df = doc_freq_.find(term);
    if (df != doc_freq_.end() && --df->second == 0) doc_freq_.erase(df);
    auto posting = postings_.find(term);
    if (posting != postings_.end()) {
      posting->second.erase(id);
      if (posting->second.empty()) postings_.erase(posting);
    }
  }
  auto length = lengths_.find(id);
  if (length != lengths_.end()) {
    stats_.total_length -= length->second;
    lengths_.erase(length);
  }
  doc_terms_.erase(terms_it);
  --stats_.doc_count;
}

const ScoredIndex::PostingMap& ScoredIndex::Postings(
    std::string_view term) const {
  static const PostingMap* empty = new PostingMap();
  auto it = postings_.find(term);
  return it == postings_.end() ? *empty : it->second;
}

uint64_t ScoredIndex::DocFreq(std::string_view term) const {
  auto it = doc_freq_.find(term);
  return it == doc_freq_.end() ? 0 : it->second;
}

double ScoredIndex::DocLength(storage::ObjectId id) const {
  auto it = lengths_.find(id);
  return it == lengths_.end() ? 0.0 : it->second;
}

}  // namespace minos::query
