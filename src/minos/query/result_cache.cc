#include "minos/query/result_cache.h"

#include <algorithm>
#include <utility>

#include "minos/obs/metrics.h"
#include "minos/util/string_util.h"

namespace minos::query {

namespace {

struct CacheMetrics {
  obs::Counter* hits;
  obs::Counter* misses;
  obs::Counter* invalidations;
  obs::Counter* evictions;
};

CacheMetrics& Metrics() {
  static CacheMetrics* m = [] {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
    return new CacheMetrics{
        reg.counter("query.cache_hits"),
        reg.counter("query.cache_misses"),
        reg.counter("query.cache_invalidations"),
        reg.counter("query.cache_evictions"),
    };
  }();
  return *m;
}

}  // namespace

QueryResultCache::QueryResultCache(size_t capacity)
    : capacity_(std::max<size_t>(capacity, 1)) {}

std::string QueryResultCache::Key(const std::vector<std::string>& words,
                                  size_t k, QueryMode mode) {
  std::vector<std::string> folded;
  for (const std::string& word : words) {
    std::string f = FoldWord(word);
    if (!f.empty()) folded.push_back(std::move(f));
  }
  std::sort(folded.begin(), folded.end());
  folded.erase(std::unique(folded.begin(), folded.end()), folded.end());
  std::string key;
  for (const std::string& f : folded) {
    key += f;
    key += '\x1f';
  }
  key += mode == QueryMode::kConjunctive ? "&" : "|";
  key += std::to_string(k);
  return key;
}

std::optional<std::vector<ScoredHit>> QueryResultCache::Lookup(
    const std::string& key, uint64_t catalog_version) {
  CacheMetrics& metrics = Metrics();
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    metrics.misses->Increment();
    return std::nullopt;
  }
  if (it->second.version != catalog_version) {
    // The catalog changed since this strip was ranked: the entry is
    // stale (a new object could outrank every cached hit).
    entries_.erase(it);
    metrics.invalidations->Increment();
    metrics.misses->Increment();
    return std::nullopt;
  }
  it->second.last_used = ++tick_;
  metrics.hits->Increment();
  return it->second.hits;
}

void QueryResultCache::Insert(const std::string& key,
                              uint64_t catalog_version,
                              std::vector<ScoredHit> hits) {
  if (entries_.count(key) == 0 && entries_.size() >= capacity_) {
    auto lru = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.last_used < lru->second.last_used) lru = it;
    }
    entries_.erase(lru);
    Metrics().evictions->Increment();
  }
  Entry& entry = entries_[key];
  entry.version = catalog_version;
  entry.last_used = ++tick_;
  entry.hits = std::move(hits);
}

}  // namespace minos::query
