#ifndef MINOS_QUERY_SCORED_INDEX_H_
#define MINOS_QUERY_SCORED_INDEX_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "minos/object/multimedia_object.h"
#include "minos/storage/version_store.h"
#include "minos/voice/recognizer.h"

namespace minos::query {

/// One object's accumulated weight for one term, split by medium so the
/// scorer (and the tests) can see where a hit came from. Text and
/// attribute occurrences count 1.0 each; recognized-voice occurrences
/// count the recognizer confidence each, so a false-alarm-prone spotter
/// cannot outrank clean text evidence.
struct TermPosting {
  double text_tf = 0;   ///< Raw text + attribute occurrences.
  double voice_tf = 0;  ///< Confidence-weighted voice occurrences.
  double tf() const { return text_tf + voice_tf; }
};

/// Corpus-level statistics the BM25 scorer needs. For a single server
/// these are the local index's own; for a sharded store the router keeps
/// the catalog-wide figures (each object counted once, not once per
/// replica) and hands them to every shard so per-shard scores agree.
struct CorpusStats {
  uint64_t doc_count = 0;
  double total_length = 0;  ///< Sum of weighted object lengths.
  double AvgLength() const {
    return doc_count > 0 ? total_length / static_cast<double>(doc_count)
                         : 0.0;
  }
};

/// The weight one recognized-voice posting carries under `profile`: the
/// spotter's hit rate discounted by its false-alarm rate. A perfect
/// recognizer weighs voice words like text words (1.0); the default
/// profile (85% hits, 1% false alarms) weighs them ~0.84.
double VoiceConfidence(const voice::RecognizerParams& profile);

/// Content an Append folds into an already-indexed object: raw text
/// (indexed at weight 1.0, like the text part) and recognized-voice
/// words (indexed at the recognizer confidence) — the same two
/// symmetric sources Add indexes at Store time.
struct AppendedContent {
  std::string text;
  std::vector<voice::WordAlignment> voice_words;
};

/// The stats-only footprint of one incremental Append: exactly the
/// document-frequency and length changes a catalog-wide statistics
/// index needs to stay exact, with no posting payload. The ShardRouter
/// applies one of these per logical Append instead of re-adding the
/// whole object — delta sync, not rebuild.
struct IndexDelta {
  storage::ObjectId id = 0;
  /// Terms this object did not contain before the append (df += 1).
  std::vector<std::string> new_terms;
  /// Weighted content length added (text words + confidence-weighted
  /// voice words).
  double length_delta = 0;
  /// True when the append created the document (id was unindexed).
  bool new_doc = false;

  bool empty() const {
    return new_terms.empty() && length_delta == 0 && !new_doc;
  }
};

/// The scored content index built at insertion time (§2: recognition and
/// indexing happen when an object is stored, never at browsing time).
/// It unifies the same two sources text::WordIndex already unifies —
/// text-document words and recognized voice utterances — but keeps term
/// frequencies and media provenance instead of bare positions, which is
/// what turns boolean content queries into ranked ones.
///
/// A stats-only index (the ShardRouter's) keeps document frequencies and
/// lengths but no postings: enough to serve global BM25 statistics
/// without duplicating every shard's posting lists.
class ScoredIndex {
 public:
  using PostingMap = std::map<storage::ObjectId, TermPosting>;

  explicit ScoredIndex(bool stats_only = false)
      : stats_only_(stats_only) {}

  /// Indexes the object's text part, attribute values, and voice-track
  /// words (each weighted by `voice_confidence`). Re-adding an id first
  /// removes its previous contribution, so a re-stored version replaces
  /// rather than double-counts.
  void Add(const object::MultimediaObject& obj, double voice_confidence);

  /// Removes every contribution of `id` (no-op when absent).
  void Remove(storage::ObjectId id);

  /// Folds appended content into `id` *incrementally*: existing postings
  /// keep their weight and only the delta's words are walked — never the
  /// whole object. Creates the document when absent. Returns the
  /// stats-only delta a catalog-wide index applies via ApplyDelta so
  /// global statistics stay exact without a rebuild.
  IndexDelta Append(storage::ObjectId id, const AppendedContent& content,
                    double voice_confidence);

  /// Applies an Append's document-frequency and length changes to a
  /// stats-only index (postings are not represented there, so the delta
  /// is the complete update). Calling this on a postings-bearing index
  /// would desynchronize df from the posting lists; use Append instead.
  void ApplyDelta(const IndexDelta& delta);

  /// Postings of a folded term; empty map when absent or stats-only.
  const PostingMap& Postings(std::string_view term) const;

  /// Number of objects whose content contains the folded term.
  uint64_t DocFreq(std::string_view term) const;

  /// Upper bound on any single posting's tf() for the folded term (0
  /// when absent or stats-only). Maintained incrementally by
  /// Add/Append, recomputed on Remove — what the max-score pruned
  /// scorer turns into a per-term score ceiling.
  double MaxTf(std::string_view term) const;

  /// Lower bound on the weighted length of any document holding the
  /// folded term (0 — the most conservative floor — when absent or
  /// stats-only). Lengths only grow, so the bound snapshots lengths at
  /// posting time and recomputes on Remove. Together with MaxTf this
  /// caps the term's BM25 contribution: tf·(k1+1)/(tf+norm) is
  /// increasing in tf and decreasing in norm, so evaluating it at
  /// (MaxTf, MinDocLen) bounds every real posting.
  double MinDocLen(std::string_view term) const;

  /// Weighted content length of `id` (0 when unknown).
  double DocLength(storage::ObjectId id) const;

  const CorpusStats& stats() const { return stats_; }
  size_t vocabulary_size() const { return doc_freq_.size(); }
  bool stats_only() const { return stats_only_; }

  /// Monotonic mutation counter, bumped by every Add/Remove that changes
  /// the index. Concurrent pool tasks read the index lock-free; this
  /// lets callers assert (in debug/tests) that nobody mutated it while
  /// a parallel scoring epoch was in flight.
  uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

  /// Splits the indexed object-id space into `parts` contiguous ranges
  /// of roughly equal document count and returns the `parts - 1` first
  /// ids of ranges 1..parts-1. Partition k covers ids in
  /// [points[k-1], points[k]) (with points[-1] = 0 and points[parts-1] =
  /// +inf). A pure function of index content — never of thread count —
  /// so partitioned scoring decomposes work identically on any pool.
  std::vector<storage::ObjectId> PartitionPoints(size_t parts) const;

 private:
  /// Folds one term occurrence into `id`. When `new_terms` is non-null,
  /// terms the object did not contain before are appended to it (the
  /// delta an incremental Append reports).
  void AddTerm(storage::ObjectId id, const std::string& term,
               double text_weight, double voice_weight,
               std::vector<std::string>* new_terms = nullptr);

  /// Lowers the holder-length floor of each of `terms` to `id`'s
  /// current (end-of-operation) length where that is smaller.
  void FloorHolderLengths(storage::ObjectId id,
                          const std::vector<std::string>& terms);

  bool stats_only_;
  std::atomic<uint64_t> version_{0};
  CorpusStats stats_;
  std::map<std::string, PostingMap, std::less<>> postings_;
  std::map<std::string, uint64_t, std::less<>> doc_freq_;
  /// Per-term max posting tf() and min holder length — the max-score
  /// pruning bounds. Empty for stats-only indexes (no postings,
  /// nothing to bound).
  std::map<std::string, double, std::less<>> max_tf_;
  std::map<std::string, double, std::less<>> min_len_;
  std::map<storage::ObjectId, double> lengths_;
  /// Distinct terms per object — what Remove must unwind.
  std::map<storage::ObjectId, std::vector<std::string>> doc_terms_;
};

}  // namespace minos::query

#endif  // MINOS_QUERY_SCORED_INDEX_H_
