#ifndef MINOS_QUERY_RESULT_CACHE_H_
#define MINOS_QUERY_RESULT_CACHE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "minos/query/query_engine.h"

namespace minos::query {

/// Workstation-side cache of ranked query results. Entries are stamped
/// with the store's catalog version at evaluation time; a Store bumps
/// the version, so every cached strip from before the insertion reads
/// as stale on its next lookup and is dropped (the archive may now hold
/// a better match). Bounded, least-recently-used eviction.
///
/// Statistics live under "query.cache_*": hits, misses, invalidations
/// (version-stale drops) and evictions (capacity drops).
class QueryResultCache {
 public:
  explicit QueryResultCache(size_t capacity = 32);

  /// Canonical cache key: folded, sorted, deduplicated words plus mode
  /// and k — "Chapter map" and "map chapter" share an entry.
  static std::string Key(const std::vector<std::string>& words, size_t k,
                         QueryMode mode);

  /// The cached hits when present and stamped with `catalog_version`;
  /// nullopt (and the stale entry dropped) otherwise.
  std::optional<std::vector<ScoredHit>> Lookup(const std::string& key,
                                               uint64_t catalog_version);

  /// Caches `hits` under `key`, evicting the least recently used entry
  /// when full.
  void Insert(const std::string& key, uint64_t catalog_version,
              std::vector<ScoredHit> hits);

  size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    uint64_t version = 0;
    uint64_t last_used = 0;
    std::vector<ScoredHit> hits;
  };

  size_t capacity_;
  uint64_t tick_ = 0;
  std::map<std::string, Entry> entries_;
};

}  // namespace minos::query

#endif  // MINOS_QUERY_RESULT_CACHE_H_
