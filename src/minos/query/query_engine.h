#ifndef MINOS_QUERY_QUERY_ENGINE_H_
#define MINOS_QUERY_QUERY_ENGINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "minos/query/scored_index.h"
#include "minos/runtime/task_pool.h"
#include "minos/util/clock.h"

namespace minos::query {

/// How query words combine: conjunctive requires every word (the
/// QueryAll semantics, now ranked); disjunctive scores any match.
enum class QueryMode : uint8_t { kConjunctive = 0, kDisjunctive = 1 };

/// One ranked result: an object and its relevance score.
struct ScoredHit {
  storage::ObjectId id = 0;
  double score = 0;
};

/// True when `a` outranks `b`: higher score first, ties broken by
/// ascending object id — the deterministic order every merge (per-shard
/// and cross-shard) agrees on.
inline bool Outranks(const ScoredHit& a, const ScoredHit& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.id < b.id;
}

/// BM25 shape parameters (classic defaults).
struct Bm25Params {
  double k1 = 1.2;  ///< Term-frequency saturation.
  double b = 0.75;  ///< Document-length normalization strength.
};

/// How TopK walks the postings. kExhaustive scores every posting of
/// every probed term — the reference scorer. kMaxScore adds
/// WAND-style upper-bound pruning for disjunctive queries: terms whose
/// summed score ceilings cannot displace the current k-th hit stop
/// generating candidates, so their postings are skipped outright.
/// The pruned scorer is exact — bit-identical ids AND scores to
/// kExhaustive — because surviving candidates accumulate their term
/// contributions in the same order the exhaustive pass uses.
enum class ScoringStrategy : uint8_t { kExhaustive = 0, kMaxScore = 1 };

/// One evaluated ranked query, plus the work figures the caller charges
/// to the simulation clock and the `query.*` metrics family.
struct RankedQuery {
  std::vector<ScoredHit> hits;  ///< Outranks order, at most k entries.
  size_t terms_scored = 0;
  /// Postings actually examined. Exhaustive scoring examines every
  /// posting of every probed term; max-score pruning examines fewer.
  size_t postings_scanned = 0;
  /// Postings whose upper bound proved they could not enter the top-k —
  /// never examined, never charged. Zero for exhaustive scoring.
  size_t postings_skipped = 0;
  size_t heap_evictions = 0;
};

/// Simulated CPU cost of evaluating a ranked query: a per-term index
/// probe plus a per-posting score-and-push. What an ObjectServer charges
/// its SimClock; a scatter charges the slowest shard's figure only.
Micros ScoringCost(size_t terms_scored, size_t postings_scanned);

/// BM25-style scorer over a ScoredIndex with a bounded top-k heap.
///
/// Scores read postings (term frequencies, document lengths) from
/// `postings` but corpus statistics (document count, average length,
/// document frequencies) from `stats` — the same index for a single
/// server, the router's catalog-wide stats-only index for a shard. With
/// shared stats, every replica of an object produces bit-identical
/// scores, which is what makes cross-shard merge-and-dedup exact and
/// 1-shard and N-shard topologies return identical results.
class QueryEngine {
 public:
  explicit QueryEngine(Bm25Params params = {},
                       ScoringStrategy strategy = ScoringStrategy::kMaxScore)
      : params_(params), strategy_(strategy) {}

  /// Top `k` objects matching `words` under `mode`, best first. Query
  /// words are folded with the same routine the index builds with.
  /// `global` supplies document frequencies and corpus stats (pass
  /// `postings` itself for a single store). Increments
  /// query.scored_terms / query.postings_scanned / query.heap_evictions
  /// on the default registry.
  ///
  /// With a `pool`, candidate accumulation fans out over a fixed number
  /// of disjoint object-id partitions (fixed — never the worker count —
  /// so the decomposition is identical on any pool size), then merges
  /// and ranks serially. Scores, hit order, and all three work counters
  /// are bit-identical to the serial path: each candidate accumulates
  /// its term contributions in the same term order either way, and the
  /// bounded top-k heap always runs as one serial pass. Parallel
  /// scoring charges no virtual time itself; callers charge
  /// ScoringCost centrally exactly as before.
  RankedQuery TopK(const ScoredIndex& postings, const ScoredIndex& global,
                   const std::vector<std::string>& words, size_t k,
                   QueryMode mode,
                   runtime::TaskPool* pool = nullptr) const;

  ScoringStrategy strategy() const { return strategy_; }

 private:
  Bm25Params params_;
  ScoringStrategy strategy_;
};

}  // namespace minos::query

#endif  // MINOS_QUERY_QUERY_ENGINE_H_
