#ifndef MINOS_VOICE_VOICE_DOCUMENT_H_
#define MINOS_VOICE_VOICE_DOCUMENT_H_

#include <string>
#include <vector>

#include "minos/text/document.h"
#include "minos/util/statusor.h"
#include "minos/voice/synthesizer.h"

namespace minos::voice {

/// How much manual structural editing a voice part received at insertion
/// time. "The degree of desired editing varies according to the importance
/// of information. For example, in a certain object, only identification
/// of chapters may be desirable. In another, identification of chapters
/// and sections and paragraphs may be desirable." (§2)
enum class EditingLevel : uint8_t {
  kNone = 0,       ///< No logical components tagged.
  kChapters = 1,   ///< Only chapter boundaries pressed.
  kSections = 2,   ///< Chapters + sections.
  kParagraphs = 3, ///< Chapters + sections + paragraphs.
  kFull = 4,       ///< Everything down to sentences.
};

/// One tagged logical component of a voice part, over sample offsets —
/// the voice mirror of text::LogicalComponent.
struct VoiceComponent {
  text::LogicalUnit unit = text::LogicalUnit::kParagraph;
  SampleSpan span;
  std::string title;
};

/// A voice segment with its logical structure: the voice-side counterpart
/// of text::Document, providing the *same* logical browsing queries over
/// sample offsets that Document provides over character offsets. This
/// one-to-one API correspondence is the paper's symmetry requirement made
/// concrete.
class VoiceDocument {
 public:
  /// Takes ownership of the synthesized (or digitized) track.
  explicit VoiceDocument(VoiceTrack track) : track_(std::move(track)) {}

  /// Manual tagging: the user pressing the chapter/section/... button at
  /// insertion time (§2). Components must be added in document order.
  void TagComponent(text::LogicalUnit unit, SampleSpan span,
                    std::string title);

  /// Simulates manual editing to `level` using the source document and
  /// the synthesis alignment: each text component whose unit is enabled
  /// at `level` is mapped to the sample range of its spoken words.
  void TagFromAlignment(const text::Document& doc, EditingLevel level);

  /// The underlying audio.
  const VoiceTrack& track() const { return track_; }
  const PcmBuffer& pcm() const { return track_.pcm; }

  /// Logical queries, mirroring text::Document ------------------------

  const std::vector<VoiceComponent>& Components(
      text::LogicalUnit unit) const;
  bool HasUnit(text::LogicalUnit unit) const {
    return !Components(unit).empty();
  }
  StatusOr<size_t> NextUnitStart(text::LogicalUnit unit, size_t pos) const;
  StatusOr<size_t> PreviousUnitStart(text::LogicalUnit unit,
                                     size_t pos) const;
  StatusOr<VoiceComponent> EnclosingUnit(text::LogicalUnit unit,
                                         size_t pos) const;

  /// Cross-media position mapping (exact, from the synthesis alignment;
  /// used by the symmetry experiments and by relevances that link voice
  /// segments to text segments) ---------------------------------------

  /// Character offset spoken at sample `pos` (the nearest word at or
  /// before `pos`). NotFound for an empty track.
  StatusOr<size_t> TextOffsetForSample(size_t pos) const;

  /// First sample of the word containing character `offset` (the nearest
  /// word at or before `offset`). NotFound for an empty track.
  StatusOr<size_t> SampleForTextOffset(size_t offset) const;

 private:
  VoiceTrack track_;
  std::vector<VoiceComponent> components_[8];
};

}  // namespace minos::voice

#endif  // MINOS_VOICE_VOICE_DOCUMENT_H_
