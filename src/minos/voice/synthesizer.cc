#include "minos/voice/synthesizer.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <set>

namespace minos::voice {

namespace {
constexpr double kPi = 3.14159265358979323846;
}  // namespace

void SpeechSynthesizer::EmitWord(const std::string& word,
                                 size_t text_offset, Random* rng,
                                 VoiceTrack* track) const {
  double ms = std::max(params_.word_min_ms,
                       params_.ms_per_char * static_cast<double>(word.size()));
  ms = std::max(20.0, rng->Gaussian(ms, ms * params_.jitter));
  const size_t n = static_cast<size_t>(ms * params_.sample_rate / 1000.0);
  const size_t begin = track->pcm.size();
  // A voiced burst: tone whose pitch depends on the word hash, with an
  // attack/decay envelope and the speaker's noise floor on top.
  const double freq =
      120.0 + static_cast<double>((std::hash<std::string>{}(word)) % 160);
  for (size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / params_.sample_rate;
    const double pos = static_cast<double>(i) / static_cast<double>(n);
    const double envelope = std::sin(kPi * pos);  // Attack then decay.
    double s = params_.voice_amplitude * envelope *
               std::sin(2.0 * kPi * freq * t);
    s += params_.noise_floor * (rng->NextDouble() * 2.0 - 1.0);
    const double clamped = std::clamp(s, -1.0, 1.0);
    track->pcm.Push(static_cast<int16_t>(clamped * 32000.0));
  }
  WordAlignment wa;
  wa.word = word;
  wa.text_offset = text_offset;
  wa.samples = SampleSpan{begin, track->pcm.size()};
  track->words.push_back(std::move(wa));
}

void SpeechSynthesizer::EmitSilence(double mean_ms, int level, Random* rng,
                                    VoiceTrack* track) const {
  double ms = rng->Gaussian(mean_ms, mean_ms * params_.jitter);
  ms = std::max(10.0, ms);
  const size_t n = static_cast<size_t>(ms * params_.sample_rate / 1000.0);
  const size_t begin = track->pcm.size();
  for (size_t i = 0; i < n; ++i) {
    const double s = params_.noise_floor * (rng->NextDouble() * 2.0 - 1.0);
    track->pcm.Push(static_cast<int16_t>(s * 32000.0));
  }
  track->silences.push_back(SilenceTruth{{begin, track->pcm.size()}, level});
}

StatusOr<VoiceTrack> SpeechSynthesizer::Synthesize(
    const text::Document& doc) const {
  using text::LogicalUnit;
  const auto& words = doc.Components(LogicalUnit::kWord);
  if (words.empty()) {
    return Status::InvalidArgument(
        "document has no word components; call DeriveFineStructure()");
  }
  Random rng(params_.seed);
  VoiceTrack track;
  track.pcm = PcmBuffer(params_.sample_rate);

  // Boundary sets: the silence after a word is paragraph-level when the
  // next word starts a new paragraph, sentence-level when it starts a new
  // sentence (spans also end exactly at the last word of the unit, so the
  // end-offset check covers documents with trailing punctuation quirks).
  std::set<size_t> sentence_starts, sentence_ends;
  std::set<size_t> paragraph_starts, paragraph_ends;
  for (const auto& s : doc.Components(LogicalUnit::kSentence)) {
    sentence_starts.insert(s.span.begin);
    sentence_ends.insert(s.span.end);
  }
  for (const auto& p : doc.Components(LogicalUnit::kParagraph)) {
    paragraph_starts.insert(p.span.begin);
    paragraph_ends.insert(p.span.end);
  }

  for (size_t i = 0; i < words.size(); ++i) {
    const auto& w = words[i];
    EmitWord(doc.contents().substr(w.span.begin, w.span.length()),
             w.span.begin, &rng, &track);
    if (i + 1 == words.size()) break;
    const size_t next_begin = words[i + 1].span.begin;
    int level = 0;
    if (paragraph_ends.count(w.span.end) > 0 ||
        paragraph_starts.count(next_begin) > 0) {
      level = 2;
    } else if (sentence_ends.count(w.span.end) > 0 ||
               sentence_starts.count(next_begin) > 0) {
      level = 1;
    }
    const double mean = level == 2   ? params_.paragraph_pause_ms
                        : level == 1 ? params_.sentence_pause_ms
                                     : params_.word_pause_ms;
    EmitSilence(mean, level, &rng, &track);
  }
  return track;
}

VoiceTrack SpeechSynthesizer::SynthesizeWords(
    const std::vector<std::string>& words) const {
  Random rng(params_.seed);
  VoiceTrack track;
  track.pcm = PcmBuffer(params_.sample_rate);
  for (size_t i = 0; i < words.size(); ++i) {
    EmitWord(words[i], 0, &rng, &track);
    if (i + 1 < words.size()) {
      EmitSilence(params_.word_pause_ms, 0, &rng, &track);
    }
  }
  return track;
}

}  // namespace minos::voice
