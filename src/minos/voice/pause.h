#ifndef MINOS_VOICE_PAUSE_H_
#define MINOS_VOICE_PAUSE_H_

#include <cstddef>
#include <vector>

#include "minos/util/statusor.h"
#include "minos/voice/pcm.h"

namespace minos::voice {

/// A detected pause: "a segment of digitized voice which does not contain
/// any sound (in practice the intensity of the registered sound is very
/// small)" (§2).
struct Pause {
  SampleSpan samples;

  size_t length() const { return samples.length(); }
};

/// Short vs long pause, the two rewind granularities MINOS offers in place
/// of word/paragraph rewind (which would need full speech understanding).
enum class PauseKind { kShort, kLong };

/// Parameters of the energy-based silence detector.
struct PauseDetectorParams {
  double frame_ms = 10.0;          ///< Analysis frame length.
  /// RMS below this (vs full scale) = silent.
  double energy_threshold = 0.05;
  double min_pause_ms = 25.0;      ///< Shorter silences are ignored.
};

/// Adaptive classification context. "The exact timing for short and long
/// pauses depends on the speaker and the section of the speech. It is
/// decided from the current context by sampling." (§2) We sample the pause
/// durations in a window around the replay position and split them into
/// two modes with a 1-D two-means pass.
struct PauseContext {
  double short_mean_ms = 0.0;   ///< Mean duration of the short cluster.
  double long_mean_ms = 0.0;    ///< Mean duration of the long cluster.
  double split_ms = 0.0;        ///< Duration boundary between the kinds.
  size_t sampled_pauses = 0;    ///< How many pauses informed the estimate.
};

/// Energy-based pause detector plus the pause-rewind browsing primitive.
class PauseDetector {
 public:
  explicit PauseDetector(PauseDetectorParams params = {})
      : params_(params) {}

  /// Detects all pauses in `pcm`, in order.
  std::vector<Pause> Detect(const PcmBuffer& pcm) const;

  /// Samples pause statistics in a window of `window` samples centered on
  /// `position` (clamped to the buffer), classifying short vs long from
  /// the local context. Falls back to global statistics when fewer than
  /// four pauses are in the window.
  PauseContext SampleContext(const PcmBuffer& pcm,
                             const std::vector<Pause>& pauses,
                             size_t position, size_t window) const;

  /// The paper's rewind primitive: "the audio is replayed starting from a
  /// number of short or long pauses back from the current position".
  /// Returns the sample offset of the end of the n-th matching pause
  /// before `from` (so replay starts right after that pause).
  /// `n` must be >= 1. OutOfRange when there are fewer than n matching
  /// pauses before `from` (the caller typically restarts from 0).
  StatusOr<size_t> RewindPauses(const PcmBuffer& pcm,
                                const std::vector<Pause>& pauses,
                                const PauseContext& context, size_t from,
                                int n, PauseKind kind) const;

  const PauseDetectorParams& params() const { return params_; }

 private:
  PauseDetectorParams params_;
};

}  // namespace minos::voice

#endif  // MINOS_VOICE_PAUSE_H_
