#include "minos/voice/pause.h"

#include <algorithm>
#include <cmath>

namespace minos::voice {

std::vector<Pause> PauseDetector::Detect(const PcmBuffer& pcm) const {
  std::vector<Pause> pauses;
  if (pcm.empty()) return pauses;
  const size_t frame =
      std::max<size_t>(1, pcm.MicrosToSamples(
                              static_cast<Micros>(params_.frame_ms * 1000)));
  const size_t min_pause = pcm.MicrosToSamples(
      static_cast<Micros>(params_.min_pause_ms * 1000));

  bool in_pause = false;
  size_t pause_begin = 0;
  for (size_t at = 0; at < pcm.size(); at += frame) {
    const SampleSpan span{at, std::min(at + frame, pcm.size())};
    const bool silent = pcm.RmsEnergy(span) < params_.energy_threshold;
    if (silent && !in_pause) {
      in_pause = true;
      pause_begin = at;
    } else if (!silent && in_pause) {
      in_pause = false;
      if (at - pause_begin >= min_pause) {
        pauses.push_back(Pause{{pause_begin, at}});
      }
    }
  }
  if (in_pause && pcm.size() - pause_begin >= min_pause) {
    pauses.push_back(Pause{{pause_begin, pcm.size()}});
  }
  return pauses;
}

PauseContext PauseDetector::SampleContext(const PcmBuffer& pcm,
                                          const std::vector<Pause>& pauses,
                                          size_t position,
                                          size_t window) const {
  auto collect = [&](size_t lo, size_t hi) {
    std::vector<double> ms;
    for (const Pause& p : pauses) {
      if (p.samples.begin >= lo && p.samples.end <= hi) {
        ms.push_back(MicrosToSeconds(pcm.SamplesToMicros(p.length())) *
                     1000.0);
      }
    }
    return ms;
  };
  const size_t half = window / 2;
  const size_t lo = position > half ? position - half : 0;
  const size_t hi = std::min(pcm.size(), position + half);
  std::vector<double> durations = collect(lo, hi);
  if (durations.size() < 4) durations = collect(0, pcm.size());

  PauseContext ctx;
  ctx.sampled_pauses = durations.size();
  if (durations.empty()) return ctx;
  if (durations.size() == 1) {
    ctx.short_mean_ms = ctx.long_mean_ms = durations[0];
    ctx.split_ms = durations[0] * 2.0;
    return ctx;
  }
  // 1-D two-means: seed with min and max, iterate to a fixed point.
  auto [min_it, max_it] = std::minmax_element(durations.begin(),
                                              durations.end());
  double c_short = *min_it;
  double c_long = *max_it;
  for (int iter = 0; iter < 16; ++iter) {
    double sum_s = 0.0, sum_l = 0.0;
    size_t n_s = 0, n_l = 0;
    const double mid = (c_short + c_long) / 2.0;
    for (double d : durations) {
      if (d < mid) {
        sum_s += d;
        ++n_s;
      } else {
        sum_l += d;
        ++n_l;
      }
    }
    const double new_s = n_s > 0 ? sum_s / static_cast<double>(n_s) : c_short;
    const double new_l = n_l > 0 ? sum_l / static_cast<double>(n_l) : c_long;
    if (std::abs(new_s - c_short) < 1e-9 &&
        std::abs(new_l - c_long) < 1e-9) {
      break;
    }
    c_short = new_s;
    c_long = new_l;
  }
  ctx.short_mean_ms = c_short;
  ctx.long_mean_ms = c_long;
  ctx.split_ms = (c_short + c_long) / 2.0;
  return ctx;
}

StatusOr<size_t> PauseDetector::RewindPauses(
    const PcmBuffer& pcm, const std::vector<Pause>& pauses,
    const PauseContext& context, size_t from, int n, PauseKind kind) const {
  if (n < 1) return Status::InvalidArgument("pause rewind count must be >= 1");
  int remaining = n;
  for (auto it = pauses.rbegin(); it != pauses.rend(); ++it) {
    if (it->samples.end > from) continue;  // Pause not fully before `from`.
    // Classify against the sampled context. A long pause also counts as a
    // boundary when rewinding by short pauses (it certainly separates
    // words).
    const double ms =
        static_cast<double>(pcm.SamplesToMicros(it->length())) / 1000.0;
    const bool is_long = context.split_ms > 0.0 && ms >= context.split_ms;
    const bool matches = (kind == PauseKind::kLong) ? is_long : true;
    if (matches && --remaining == 0) {
      return it->samples.end;
    }
  }
  return Status::OutOfRange("fewer than n matching pauses before position");
}

}  // namespace minos::voice
