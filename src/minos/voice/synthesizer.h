#ifndef MINOS_VOICE_SYNTHESIZER_H_
#define MINOS_VOICE_SYNTHESIZER_H_

#include <string>
#include <vector>

#include "minos/text/document.h"
#include "minos/util/random.h"
#include "minos/util/statusor.h"
#include "minos/voice/pcm.h"

namespace minos::voice {

/// Parameters of the synthetic speaker. The reproduction substitutes a
/// deterministic speech synthesizer for the paper's voice digitization
/// hardware: each word becomes an amplitude-modulated tone burst, with
/// silences between words, sentences and paragraphs whose statistics
/// mirror natural speech ("the length of the short pause roughly
/// corresponds to the average length of a pause between word boundaries,
/// while the length of the long pause roughly corresponds to the length of
/// a pause between paragraphs", §2).
struct SpeakerParams {
  int sample_rate = 8000;
  double ms_per_char = 55.0;       ///< Voiced duration per character.
  double word_min_ms = 90.0;       ///< Minimum voiced duration of a word.
  double word_pause_ms = 70.0;     ///< Mean silence between words.
  double sentence_pause_ms = 320.0;  ///< Mean silence between sentences.
  double paragraph_pause_ms = 950.0; ///< Mean silence between paragraphs.
  double jitter = 0.25;            ///< Relative std-dev of all durations.
  double noise_floor = 0.015;      ///< Background noise amplitude [0,1].
  double voice_amplitude = 0.45;   ///< Voiced amplitude [0,1].
  uint64_t seed = 1;               ///< Per-speaker determinism.
};

/// Ground-truth alignment of one spoken word.
struct WordAlignment {
  std::string word;        ///< The token as spoken.
  size_t text_offset = 0;  ///< Character offset in the source document.
  SampleSpan samples;      ///< Where the voiced burst sits in the PCM.
};

/// Ground-truth silence actually emitted between voiced bursts.
struct SilenceTruth {
  SampleSpan samples;
  /// 0 = word boundary, 1 = sentence boundary, 2 = paragraph boundary.
  int level = 0;
};

/// A synthesized voice rendition of a document: the PCM plus the ground
/// truth that lets tests and benches score pause detection and recognition
/// without any circularity (detectors see only the PCM).
struct VoiceTrack {
  PcmBuffer pcm;
  std::vector<WordAlignment> words;
  std::vector<SilenceTruth> silences;
};

/// Renders a text::Document into a VoiceTrack. Using the same Document for
/// the text rendition (TextFormatter) and the voice rendition is what
/// makes the symmetric browsing experiments possible: both media carry the
/// same information with positions linked through `text_offset`.
class SpeechSynthesizer {
 public:
  explicit SpeechSynthesizer(SpeakerParams params) : params_(params) {}

  /// Speaks every word component of `doc` in order, inserting
  /// word/sentence/paragraph silences from the document's logical
  /// structure. The document must have derived fine structure
  /// (InvalidArgument otherwise).
  StatusOr<VoiceTrack> Synthesize(const text::Document& doc) const;

  /// Speaks a bare word list (used for short voice labels and logical
  /// messages that have no document behind them).
  VoiceTrack SynthesizeWords(const std::vector<std::string>& words) const;

  const SpeakerParams& params() const { return params_; }

 private:
  void EmitWord(const std::string& word, size_t text_offset, Random* rng,
                VoiceTrack* track) const;
  void EmitSilence(double mean_ms, int level, Random* rng,
                   VoiceTrack* track) const;

  SpeakerParams params_;
};

}  // namespace minos::voice

#endif  // MINOS_VOICE_SYNTHESIZER_H_
