#ifndef MINOS_VOICE_RECOGNIZER_H_
#define MINOS_VOICE_RECOGNIZER_H_

#include <string>
#include <vector>

#include "minos/text/search.h"
#include "minos/util/clock.h"
#include "minos/util/random.h"
#include "minos/voice/synthesizer.h"

namespace minos::voice {

/// Behaviour of the (limited-vocabulary) speech recognizer. The paper is
/// explicit that recognition happens at insertion time or machine idle
/// time, never at browsing time: "Voice recognition is not taking place at
/// the time of browsing. Instead, some voice segments have been recognized
/// at the time of voice insertion, or at machine's idle time." (§2)
/// We substitute a keyword spotter over the synthesis ground truth with a
/// configurable miss/false-alarm profile — the design contract (an
/// utterance -> position index with limited accuracy) is what matters.
struct RecognizerParams {
  double hit_rate = 0.85;             ///< P(vocabulary word is spotted).
  double false_alarm_rate = 0.01;     ///< P(non-vocab word spawns a hit).
  Micros cpu_cost_per_word = MillisToMicros(180);  ///< Insertion-time cost.
  uint64_t seed = 7;
};

/// One recognized utterance, anchored to the voice part: "recognized
/// utterances are associated with a particular point of the object voice
/// part in order to facilitate browsing within an object" (§2).
struct RecognizedUtterance {
  std::string word;
  size_t sample_position = 0;  ///< First sample of the spotted burst.
  bool correct = true;         ///< Ground truth (benchmark scoring only).
};

/// Insertion-time recognition result.
struct RecognitionResult {
  std::vector<RecognizedUtterance> utterances;
  Micros cpu_cost = 0;  ///< Simulated recognition time consumed.
  size_t words_seen = 0;
};

/// Limited-vocabulary keyword spotter.
class Recognizer {
 public:
  Recognizer(std::vector<std::string> vocabulary, RecognizerParams params);

  /// Spots vocabulary words in `track`. Deterministic given the seed.
  RecognitionResult Recognize(const VoiceTrack& track) const;

  /// Builds the content-addressability index from recognition output.
  /// The index type is text::WordIndex — the very same access method used
  /// for text patterns, as the paper requires ("by using the same access
  /// methods as in text"); positions are sample offsets.
  static text::WordIndex BuildIndex(
      const std::vector<RecognizedUtterance>& utterances);

  const std::vector<std::string>& vocabulary() const { return vocabulary_; }

 private:
  bool InVocabulary(const std::string& word) const;

  std::vector<std::string> vocabulary_;  // Case-folded, sorted.
  RecognizerParams params_;
};

}  // namespace minos::voice

#endif  // MINOS_VOICE_RECOGNIZER_H_
