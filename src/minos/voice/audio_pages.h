#ifndef MINOS_VOICE_AUDIO_PAGES_H_
#define MINOS_VOICE_AUDIO_PAGES_H_

#include <vector>

#include "minos/util/statusor.h"
#include "minos/voice/pause.h"
#include "minos/voice/pcm.h"

namespace minos::voice {

/// One audio page. "Audio pages (or voice pages) in a speech are
/// consecutive partitions of the audio object part which are of
/// approximately constant time length." (§2)
struct AudioPage {
  int number = 0;     ///< 1-based, like text pages.
  SampleSpan samples;
};

/// Parameters for audio pagination.
struct AudioPagerParams {
  /// Nominal page duration.
  Micros page_duration = SecondsToMicros(15);
  /// Page boundaries snap to the nearest detected pause within this
  /// fraction of the page duration ("approximately constant time length").
  /// 0 disables snapping.
  double snap_tolerance = 0.15;
};

/// Partitions a voice part into audio pages and answers the page <-> sample
/// queries browsing needs (the voice analogue of text::PageMap).
class AudioPager {
 public:
  explicit AudioPager(AudioPagerParams params = {}) : params_(params) {}

  /// Builds pages over `pcm`, snapping boundaries to `pauses` (pass an
  /// empty vector to disable snapping).
  std::vector<AudioPage> Paginate(const PcmBuffer& pcm,
                                  const std::vector<Pause>& pauses) const;

  /// Page containing sample `pos` (1-based; last page for pos past the
  /// end; 0 when `pages` is empty).
  static int PageForSample(const std::vector<AudioPage>& pages, size_t pos);

  /// First sample of page `number`; NotFound for an invalid number.
  static StatusOr<size_t> PageStart(const std::vector<AudioPage>& pages,
                                    int number);

  const AudioPagerParams& params() const { return params_; }

 private:
  AudioPagerParams params_;
};

}  // namespace minos::voice

#endif  // MINOS_VOICE_AUDIO_PAGES_H_
