#ifndef MINOS_VOICE_PCM_H_
#define MINOS_VOICE_PCM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "minos/util/clock.h"

namespace minos::voice {

/// Half-open sample range [begin, end) within a PCM buffer. The voice-side
/// analogue of text::TextSpan: where text positions are character offsets,
/// voice positions are sample offsets.
struct SampleSpan {
  size_t begin = 0;
  size_t end = 0;

  size_t length() const { return end - begin; }
  bool Contains(size_t pos) const { return pos >= begin && pos < end; }
  friend bool operator==(const SampleSpan&, const SampleSpan&) = default;
};

/// A buffer of digitized voice. The original MINOS digitized real speech;
/// we synthesize PCM with realistic energy structure (see
/// SpeechSynthesizer) so that pause detection and browsing operate on real
/// sample data. Samples are signed 16-bit mono.
class PcmBuffer {
 public:
  /// Creates an empty buffer at `sample_rate` Hz (must be > 0).
  explicit PcmBuffer(int sample_rate = 8000) : sample_rate_(sample_rate) {}

  /// Appends samples.
  void Append(const std::vector<int16_t>& samples);

  /// Appends `count` copies of `value` (silence when value == 0).
  void AppendConstant(size_t count, int16_t value);

  /// Appends one sample.
  void Push(int16_t sample) { samples_.push_back(sample); }

  int sample_rate() const { return sample_rate_; }
  size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  int16_t sample(size_t i) const { return samples_[i]; }
  const std::vector<int16_t>& samples() const { return samples_; }

  /// Total duration of the buffer.
  Micros Duration() const { return SamplesToMicros(samples_.size()); }

  /// Converts a sample count/offset to simulated time.
  Micros SamplesToMicros(size_t n) const {
    return static_cast<Micros>(n) * 1000000 / sample_rate_;
  }

  /// Converts a duration to a sample count (truncating).
  size_t MicrosToSamples(Micros us) const {
    return static_cast<size_t>(us * sample_rate_ / 1000000);
  }

  /// Root-mean-square energy of `span` (0 for an empty span), normalized
  /// to [0, 1] against full scale.
  double RmsEnergy(SampleSpan span) const;

 private:
  int sample_rate_;
  std::vector<int16_t> samples_;
};

}  // namespace minos::voice

#endif  // MINOS_VOICE_PCM_H_
