#include "minos/voice/recognizer.h"

#include <algorithm>
#include <cctype>

#include "minos/obs/metrics.h"
#include "minos/util/string_util.h"

namespace minos::voice {

Recognizer::Recognizer(std::vector<std::string> vocabulary,
                       RecognizerParams params)
    : params_(params) {
  vocabulary_.reserve(vocabulary.size());
  for (std::string& w : vocabulary) {
    vocabulary_.push_back(AsciiToLower(w));
  }
  std::sort(vocabulary_.begin(), vocabulary_.end());
  vocabulary_.erase(std::unique(vocabulary_.begin(), vocabulary_.end()),
                    vocabulary_.end());
}

bool Recognizer::InVocabulary(const std::string& word) const {
  return std::binary_search(vocabulary_.begin(), vocabulary_.end(), word);
}

RecognitionResult Recognizer::Recognize(const VoiceTrack& track) const {
  Random rng(params_.seed);
  RecognitionResult result;
  result.words_seen = track.words.size();
  result.cpu_cost =
      params_.cpu_cost_per_word * static_cast<Micros>(track.words.size());
  for (const WordAlignment& w : track.words) {
    std::string token = AsciiToLower(w.word);
    while (!token.empty() &&
           !std::isalnum(static_cast<unsigned char>(token.back()))) {
      token.pop_back();
    }
    if (token.empty()) continue;
    if (InVocabulary(token)) {
      if (rng.Bernoulli(params_.hit_rate)) {
        result.utterances.push_back(
            RecognizedUtterance{token, w.samples.begin, true});
      }
    } else if (!vocabulary_.empty() &&
               rng.Bernoulli(params_.false_alarm_rate)) {
      // A false alarm: the spotter reports some (deterministic) vocabulary
      // word where a different word was spoken.
      const std::string& wrong =
          vocabulary_[rng.Uniform(vocabulary_.size())];
      result.utterances.push_back(
          RecognizedUtterance{wrong, w.samples.begin, false});
    }
  }
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  reg.counter("voice.recognizer.runs")->Increment();
  reg.counter("voice.recognizer.words_seen")
      ->Increment(static_cast<int64_t>(result.words_seen));
  reg.counter("voice.recognizer.utterances")
      ->Increment(static_cast<int64_t>(result.utterances.size()));
  reg.counter("voice.recognizer.cpu_us")->Increment(result.cpu_cost);
  return result;
}

text::WordIndex Recognizer::BuildIndex(
    const std::vector<RecognizedUtterance>& utterances) {
  text::WordIndex index;
  for (const RecognizedUtterance& u : utterances) {
    index.AddPosting(u.word, u.sample_position);
  }
  return index;
}

}  // namespace minos::voice
