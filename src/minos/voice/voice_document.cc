#include "minos/voice/voice_document.h"

#include <algorithm>

namespace minos::voice {

using text::LogicalUnit;

void VoiceDocument::TagComponent(LogicalUnit unit, SampleSpan span,
                                 std::string title) {
  VoiceComponent c;
  c.unit = unit;
  c.span = span;
  c.title = std::move(title);
  components_[static_cast<size_t>(unit)].push_back(std::move(c));
}

void VoiceDocument::TagFromAlignment(const text::Document& doc,
                                     EditingLevel level) {
  auto enabled = [&](LogicalUnit unit) {
    switch (unit) {
      case LogicalUnit::kTitle:
      case LogicalUnit::kChapter:
      case LogicalUnit::kReferences:
        return level >= EditingLevel::kChapters;
      case LogicalUnit::kSection:
        return level >= EditingLevel::kSections;
      case LogicalUnit::kParagraph:
        return level >= EditingLevel::kParagraphs;
      case LogicalUnit::kSentence:
        return level >= EditingLevel::kFull;
      default:
        return false;  // Words are never tagged manually.
    }
  };
  const std::vector<WordAlignment>& words = track_.words;
  if (words.empty()) return;
  for (int u = 0; u < 8; ++u) {
    const auto unit = static_cast<LogicalUnit>(u);
    if (!enabled(unit)) continue;
    for (const text::LogicalComponent& c : doc.Components(unit)) {
      // Sample span of the words spoken from this text span.
      size_t begin_sample = 0, end_sample = 0;
      bool any = false;
      for (const WordAlignment& w : words) {
        if (w.text_offset >= c.span.begin && w.text_offset < c.span.end) {
          if (!any) {
            begin_sample = w.samples.begin;
            any = true;
          }
          end_sample = w.samples.end;
        }
      }
      if (any) {
        TagComponent(unit, SampleSpan{begin_sample, end_sample}, c.title);
      }
    }
  }
}

const std::vector<VoiceComponent>& VoiceDocument::Components(
    LogicalUnit unit) const {
  return components_[static_cast<size_t>(unit)];
}

StatusOr<size_t> VoiceDocument::NextUnitStart(LogicalUnit unit,
                                              size_t pos) const {
  for (const VoiceComponent& c : Components(unit)) {
    if (c.span.begin > pos) return c.span.begin;
  }
  return Status::NotFound(std::string("no next ") +
                          text::LogicalUnitName(unit));
}

StatusOr<size_t> VoiceDocument::PreviousUnitStart(LogicalUnit unit,
                                                  size_t pos) const {
  const auto& cs = Components(unit);
  for (auto it = cs.rbegin(); it != cs.rend(); ++it) {
    if (it->span.begin < pos) return it->span.begin;
  }
  return Status::NotFound(std::string("no previous ") +
                          text::LogicalUnitName(unit));
}

StatusOr<VoiceComponent> VoiceDocument::EnclosingUnit(LogicalUnit unit,
                                                      size_t pos) const {
  for (const VoiceComponent& c : Components(unit)) {
    if (c.span.Contains(pos)) return c;
  }
  return Status::NotFound(std::string("position not inside any ") +
                          text::LogicalUnitName(unit));
}

StatusOr<size_t> VoiceDocument::TextOffsetForSample(size_t pos) const {
  const auto& words = track_.words;
  if (words.empty()) return Status::NotFound("empty voice track");
  const WordAlignment* best = &words.front();
  for (const WordAlignment& w : words) {
    if (w.samples.begin <= pos) {
      best = &w;
    } else {
      break;
    }
  }
  return best->text_offset;
}

StatusOr<size_t> VoiceDocument::SampleForTextOffset(size_t offset) const {
  const auto& words = track_.words;
  if (words.empty()) return Status::NotFound("empty voice track");
  const WordAlignment* best = &words.front();
  for (const WordAlignment& w : words) {
    if (w.text_offset <= offset) {
      best = &w;
    } else {
      break;
    }
  }
  return best->samples.begin;
}

}  // namespace minos::voice
