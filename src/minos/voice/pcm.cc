#include "minos/voice/pcm.h"

#include <algorithm>
#include <cmath>

namespace minos::voice {

void PcmBuffer::Append(const std::vector<int16_t>& samples) {
  samples_.insert(samples_.end(), samples.begin(), samples.end());
}

void PcmBuffer::AppendConstant(size_t count, int16_t value) {
  samples_.insert(samples_.end(), count, value);
}

double PcmBuffer::RmsEnergy(SampleSpan span) const {
  span.end = std::min(span.end, samples_.size());
  if (span.begin >= span.end) return 0.0;
  double sum = 0.0;
  for (size_t i = span.begin; i < span.end; ++i) {
    const double s = static_cast<double>(samples_[i]) / 32768.0;
    sum += s * s;
  }
  return std::sqrt(sum / static_cast<double>(span.length()));
}

}  // namespace minos::voice
