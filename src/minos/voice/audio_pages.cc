#include "minos/voice/audio_pages.h"

#include <algorithm>
#include <cstdlib>

namespace minos::voice {

std::vector<AudioPage> AudioPager::Paginate(
    const PcmBuffer& pcm, const std::vector<Pause>& pauses) const {
  std::vector<AudioPage> pages;
  if (pcm.empty()) return pages;
  const size_t nominal = std::max<size_t>(
      1, pcm.MicrosToSamples(params_.page_duration));
  const size_t tolerance = static_cast<size_t>(
      static_cast<double>(nominal) * params_.snap_tolerance);

  size_t begin = 0;
  int number = 1;
  while (begin < pcm.size()) {
    size_t end = std::min(begin + nominal, pcm.size());
    if (end < pcm.size() && tolerance > 0 && !pauses.empty()) {
      // Snap to the midpoint of the nearest pause within tolerance.
      size_t best = end;
      size_t best_dist = tolerance + 1;
      for (const Pause& p : pauses) {
        const size_t mid = p.samples.begin + p.length() / 2;
        if (mid <= begin) continue;
        const size_t dist =
            mid > end ? mid - end : end - mid;
        if (dist < best_dist) {
          best_dist = dist;
          best = mid;
        }
      }
      end = best;
    }
    if (end <= begin) end = std::min(begin + nominal, pcm.size());
    pages.push_back(AudioPage{number++, SampleSpan{begin, end}});
    begin = end;
  }
  return pages;
}

int AudioPager::PageForSample(const std::vector<AudioPage>& pages,
                              size_t pos) {
  if (pages.empty()) return 0;
  for (const AudioPage& p : pages) {
    if (pos < p.samples.end) return p.number;
  }
  return pages.back().number;
}

StatusOr<size_t> AudioPager::PageStart(const std::vector<AudioPage>& pages,
                                       int number) {
  if (number < 1 || number > static_cast<int>(pages.size())) {
    return Status::NotFound("no such audio page");
  }
  return pages[static_cast<size_t>(number) - 1].samples.begin;
}

}  // namespace minos::voice
