#include "minos/runtime/task_pool.h"

#include <algorithm>
#include <memory>
#include <utility>

namespace minos::runtime {

TaskPool::TaskPool(SimClock* clock, int workers)
    : clock_(clock), queues_(static_cast<size_t>(std::max(workers, 1))) {
  const size_t n = queues_.size();
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

std::vector<Micros> TaskPool::RunEpoch(std::vector<Task> tasks,
                                       TimeModel model) {
  if (tasks.empty()) return {};
  // A task submitting an epoch would deadlock waiting for workers that
  // are waiting for it; run nested epochs inline on the caller's frame.
  if (t_in_task_) return RunInline(tasks, model);

  const Micros base = clock_->Now();
  std::vector<Micros> costs(tasks.size(), 0);
  std::vector<std::exception_ptr> errors(tasks.size());

  // One private trace sink per task, created and committed on this
  // thread: span ids and storage order depend only on task order.
  std::vector<std::unique_ptr<obs::Tracer::TaskSink>> sink_storage;
  std::vector<obs::Tracer::TaskSink*> sinks;
  if (tracer_ != nullptr) {
    sink_storage.reserve(tasks.size());
    sinks.reserve(tasks.size());
    for (size_t i = 0; i < tasks.size(); ++i) {
      sink_storage.push_back(
          std::make_unique<obs::Tracer::TaskSink>(tracer_));
      sinks.push_back(sink_storage.back().get());
    }
  }

  auto epoch = std::make_shared<Epoch>();
  epoch->tasks = &tasks;
  epoch->base = base;
  epoch->costs = &costs;
  epoch->errors = &errors;
  epoch->sinks = tracer_ != nullptr ? &sinks : nullptr;
  epoch->remaining.store(tasks.size(), std::memory_order_relaxed);

  {
    std::lock_guard<std::mutex> lock(mu_);
    // Deterministic initial placement: task i starts on worker i % N.
    // Stealing redistributes the wall-clock work, never the results.
    for (size_t i = 0; i < tasks.size(); ++i) {
      WorkerQueue& q = queues_[i % queues_.size()];
      std::lock_guard<std::mutex> qlock(q.mu);
      q.tasks.push_back(i);
    }
    epoch_ = epoch;
    ++generation_;
  }
  work_cv_.notify_all();

  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] {
      return epoch->remaining.load(std::memory_order_acquire) == 0;
    });
    epoch_.reset();
  }

  // The barrier: fold the frame costs into the frozen base clock,
  // commit the trace sinks in task order, then surface the first error.
  clock_->AdvanceTo(base + FoldCosts(costs, model));
  if (tracer_ != nullptr) {
    for (obs::Tracer::TaskSink* sink : sinks) {
      tracer_->CommitTaskSink(*sink);
    }
  }
  epochs_run_.fetch_add(1, std::memory_order_relaxed);
  RethrowFirst(errors);
  return costs;
}

std::vector<Micros> TaskPool::RunInline(std::vector<Task>& tasks,
                                        TimeModel model) {
  const Micros base = clock_->Now();
  std::vector<Micros> costs(tasks.size(), 0);
  std::vector<std::exception_ptr> errors(tasks.size());
  for (size_t i = 0; i < tasks.size(); ++i) {
    SimClock::Frame frame(clock_, base);
    try {
      tasks[i]();
    } catch (...) {
      errors[i] = std::current_exception();
    }
    costs[i] = frame.elapsed();
  }
  // Inside a task the "base clock" is the caller's own frame; AdvanceTo
  // is frame-aware, so the fold lands in the right timeline. Spans the
  // nested tasks started are already in the caller's sink, in order.
  clock_->AdvanceTo(base + FoldCosts(costs, model));
  epochs_run_.fetch_add(1, std::memory_order_relaxed);
  tasks_run_.fetch_add(tasks.size(), std::memory_order_relaxed);
  RethrowFirst(errors);
  return costs;
}

Micros TaskPool::FoldCosts(const std::vector<Micros>& costs,
                           TimeModel model) {
  Micros folded = 0;
  for (Micros c : costs) {
    folded = model == TimeModel::kParallel ? std::max(folded, c)
                                           : folded + c;
  }
  return folded;
}

void TaskPool::RethrowFirst(const std::vector<std::exception_ptr>& errors) {
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

void TaskPool::WorkerLoop(size_t self) {
  uint64_t seen_generation = 0;
  while (true) {
    std::shared_ptr<Epoch> epoch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stop_ || (epoch_ != nullptr && generation_ != seen_generation);
      });
      if (stop_) return;
      seen_generation = generation_;
      epoch = epoch_;
    }
    size_t index;
    while (epoch->remaining.load(std::memory_order_acquire) != 0 &&
           ClaimTask(self, &index)) {
      const std::vector<obs::Tracer::TaskSink*>* sinks = epoch->sinks;
      {
        SimClock::Frame frame(clock_, epoch->base);
        obs::Tracer::TaskSinkScope sink_scope(
            sinks != nullptr ? (*sinks)[index] : nullptr);
        t_in_task_ = true;
        try {
          (*epoch->tasks)[index]();
        } catch (...) {
          (*epoch->errors)[index] = std::current_exception();
        }
        t_in_task_ = false;
        (*epoch->costs)[index] = frame.elapsed();
      }
      tasks_run_.fetch_add(1, std::memory_order_relaxed);
      if (epoch->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Last task out wakes the submitter; take the lock so the wake
        // cannot slip between its predicate check and its wait.
        std::lock_guard<std::mutex> lock(mu_);
        done_cv_.notify_all();
      }
    }
  }
}

bool TaskPool::ClaimTask(size_t self, size_t* index) {
  const size_t n = queues_.size();
  {
    WorkerQueue& own = queues_[self];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.tasks.empty()) {
      *index = own.tasks.front();
      own.tasks.pop_front();
      return true;
    }
  }
  for (size_t step = 1; step < n; ++step) {
    WorkerQueue& victim = queues_[(self + step) % n];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (!victim.tasks.empty()) {
      *index = victim.tasks.back();
      victim.tasks.pop_back();
      steals_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

}  // namespace minos::runtime
