#ifndef MINOS_RUNTIME_TASK_POOL_H_
#define MINOS_RUNTIME_TASK_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "minos/obs/trace.h"
#include "minos/util/clock.h"

namespace minos::runtime {

/// A work-stealing task pool driven by deterministic virtual time.
///
/// The MINOS simulation charges every cost to one SimClock, which made
/// "parallel" work (shard scatters, prefetch staging, partition scoring)
/// sequential rewind bookkeeping: run inline, measure, rewind, advance
/// by the slowest. This pool keeps that exact virtual-time algebra while
/// the task bodies — decode, render, CRC, BM25 arithmetic — actually
/// occupy multiple hardware cores.
///
/// ## Epochs
///
/// RunEpoch(tasks) submits one batch. Each task runs inside a private
/// SimClock::Frame starting at the epoch's base time, so concurrent
/// tasks each see an isolated virtual timeline; the base clock is
/// frozen until every task finishes. At the barrier the pool advances
/// the base clock by the maximum frame cost (TimeModel::kParallel — the
/// scatter semantics: overlapping work costs the slowest branch) or the
/// sum (TimeModel::kSerial — work that models a shared serial resource),
/// commits each task's trace sink in task order, and returns the
/// per-task virtual costs.
///
/// ## Determinism
///
/// With the same inputs, any worker count produces bit-identical
/// results: task decomposition is the caller's (worker-independent),
/// virtual costs come from per-task frames (schedule-independent), trace
/// ids and span order are assigned at the barrier in task order, and the
/// clock advance is a pure max/sum. Steal counts and wall time are the
/// only schedule-dependent outputs, and they are deliberately exposed as
/// plain accessors — never metrics-registry values — so BENCH snapshots
/// stay byte-identical across worker counts.
///
/// Tasks must not touch the shared ambient tracer stack, and shared
/// mutable structures they reach (caches, indexes, registries) must be
/// thread-safe; see DESIGN.md §14 for the full contract.
///
/// ## Exceptions
///
/// A throwing task does not abort the epoch: every task still runs, the
/// clock still advances, sinks still commit — then the lowest-index
/// task's exception is rethrown, so failure handling is deterministic
/// too.
///
/// A task that itself calls RunEpoch (e.g. partitioned scoring inside a
/// shard scatter) runs the nested epoch inline on its own frame —
/// serially, with identical virtual-time math — so composition can
/// never deadlock the worker set.
class TaskPool {
 public:
  using Task = std::function<void()>;

  /// How the barrier folds per-task virtual costs into the base clock.
  enum class TimeModel {
    kParallel,  ///< Advance by the maximum cost (overlapping work).
    kSerial,    ///< Advance by the sum (a shared serial resource).
  };

  /// `clock` borrowed, required. `workers` >= 1 real threads are spawned
  /// immediately and parked until the first epoch.
  explicit TaskPool(SimClock* clock, int workers = 1);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Attaches the tracer whose spans epoch tasks record (borrowed; null
  /// detaches). Each task then buffers spans into a private sink that
  /// commits at the barrier — required for deterministic trace output
  /// when tasks start spans.
  void SetTracer(obs::Tracer* tracer) { tracer_ = tracer; }

  int worker_count() const { return static_cast<int>(workers_.size()); }

  /// Runs `tasks` as one epoch and returns each task's virtual cost, in
  /// task order. Blocks until every task has finished and the barrier
  /// has advanced the clock. Reentrant calls from inside a task run
  /// inline (see class comment).
  std::vector<Micros> RunEpoch(std::vector<Task> tasks,
                               TimeModel model = TimeModel::kParallel);

  /// True on a thread currently executing a pool task (any pool). Used
  /// by components whose shared-state maintenance must stay on the
  /// submitting thread (e.g. the router's routing-table refresh).
  static bool InTask() { return t_in_task_; }

  /// Execution-layer statistics. Schedule-dependent by nature (steals
  /// depend on thread timing), so they are wall artifacts — reported on
  /// stdout by benches, never written into a MetricsRegistry.
  uint64_t epochs_run() const {
    return epochs_run_.load(std::memory_order_relaxed);
  }
  uint64_t tasks_run() const {
    return tasks_run_.load(std::memory_order_relaxed);
  }
  uint64_t steals() const {
    return steals_.load(std::memory_order_relaxed);
  }

 private:
  /// One in-flight epoch. Heap-allocated and shared: a worker that lost
  /// the race for the last task may still probe `remaining` after the
  /// submitter has moved on, so the control block outlives the barrier.
  struct Epoch {
    std::vector<Task>* tasks = nullptr;
    Micros base = 0;                        ///< Frame start time.
    std::vector<Micros>* costs = nullptr;   ///< Per-task virtual cost.
    std::vector<std::exception_ptr>* errors = nullptr;
    std::vector<obs::Tracer::TaskSink*>* sinks = nullptr;  ///< May be null.
    std::atomic<size_t> remaining{0};       ///< Tasks not yet finished.
  };

  /// Per-worker deque of task indexes; owner pops the front, thieves
  /// steal from the back.
  struct WorkerQueue {
    std::mutex mu;
    std::deque<size_t> tasks;
  };

  void WorkerLoop(size_t self);
  /// Claims one task index: own queue first, then round-robin victims.
  bool ClaimTask(size_t self, size_t* index);
  /// Serial fallback with identical semantics: nested RunEpoch calls.
  std::vector<Micros> RunInline(std::vector<Task>& tasks, TimeModel model);
  static Micros FoldCosts(const std::vector<Micros>& costs, TimeModel model);
  void RethrowFirst(const std::vector<std::exception_ptr>& errors);

  SimClock* clock_;
  obs::Tracer* tracer_ = nullptr;

  std::mutex mu_;                  ///< Guards epoch_/generation_/stop_.
  std::condition_variable work_cv_;   ///< Workers wait for an epoch.
  std::condition_variable done_cv_;   ///< Submitter waits for the barrier.
  std::shared_ptr<Epoch> epoch_;   ///< Non-null while an epoch runs.
  uint64_t generation_ = 0;        ///< Bumped per epoch submission.
  bool stop_ = false;

  std::vector<WorkerQueue> queues_;  ///< One per worker, fixed size.
  std::vector<std::thread> workers_;

  std::atomic<uint64_t> epochs_run_{0};
  std::atomic<uint64_t> tasks_run_{0};
  std::atomic<uint64_t> steals_{0};

  /// Set while the calling thread executes a pool task.
  inline static thread_local bool t_in_task_ = false;
};

}  // namespace minos::runtime

#endif  // MINOS_RUNTIME_TASK_POOL_H_
