#include "minos/text/markup.h"

#include <optional>
#include <vector>

#include "minos/util/string_util.h"

namespace minos::text {

namespace {

/// Open structural scopes being accumulated while scanning lines.
struct OpenScope {
  LogicalUnit unit;
  size_t begin;
  std::string title;
};

/// Appends `body` to the document, translating inline emphasis markers to
/// EmphasisSpans and stripping the marker characters.
Status AppendBodyText(std::string_view body, Document* doc) {
  std::optional<char> open_marker;
  size_t emphasis_begin = 0;
  for (size_t i = 0; i < body.size(); ++i) {
    const char c = body[i];
    const bool is_marker = (c == '*' || c == '_' || c == '/');
    if (!is_marker) {
      doc->AppendText(std::string_view(&c, 1));
      continue;
    }
    if (!open_marker.has_value()) {
      open_marker = c;
      emphasis_begin = doc->size();
    } else if (*open_marker == c) {
      Emphasis kind = Emphasis::kBold;
      if (c == '_') kind = Emphasis::kUnderline;
      if (c == '/') kind = Emphasis::kItalic;
      doc->AddEmphasis(
          EmphasisSpan{TextSpan{emphasis_begin, doc->size()}, kind});
      open_marker.reset();
    } else {
      // A different marker nested inside an open one: treat literally.
      doc->AppendText(std::string_view(&c, 1));
    }
  }
  if (open_marker.has_value()) {
    return Status::InvalidArgument(
        std::string("unterminated emphasis marker '") + *open_marker + "'");
  }
  return Status::OK();
}

}  // namespace

StatusOr<Document> MarkupParser::Parse(std::string_view markup) const {
  Document doc;
  std::vector<OpenScope> open;  // At most one per unit level.

  // Structural nesting depth: title < {abstract, chapter, references}
  // < section < paragraph. Abstract, chapters and references are siblings.
  auto depth = [](LogicalUnit unit) {
    switch (unit) {
      case LogicalUnit::kTitle:
        return 0;
      case LogicalUnit::kAbstract:
      case LogicalUnit::kChapter:
      case LogicalUnit::kReferences:
        return 1;
      case LogicalUnit::kSection:
        return 2;
      default:
        return 3;
    }
  };
  auto close_down_to = [&](LogicalUnit level, Document* d) {
    // Closes every open scope at the same or a finer depth than `level`.
    while (!open.empty() && depth(open.back().unit) >= depth(level)) {
      OpenScope s = open.back();
      open.pop_back();
      LogicalComponent c;
      c.unit = s.unit;
      c.span = TextSpan{s.begin, d->size()};
      c.title = std::move(s.title);
      d->AddComponentSpan(std::move(c));
    }
  };
  auto close_unit = [&](LogicalUnit unit, Document* d) {
    for (size_t i = 0; i < open.size(); ++i) {
      if (open[i].unit == unit) {
        close_down_to(unit, d);
        return;
      }
    }
  };

  bool in_paragraph = false;
  for (const std::string& raw_line : SplitString(markup, '\n')) {
    std::string_view line = TrimWhitespace(raw_line);
    if (line.empty()) {
      // Blank line ends the current paragraph.
      close_unit(LogicalUnit::kParagraph, &doc);
      in_paragraph = false;
      continue;
    }
    if (line[0] == '.') {
      const size_t sp = line.find(' ');
      std::string_view tag = line.substr(0, sp);
      std::string_view arg =
          sp == std::string_view::npos ? "" : TrimWhitespace(line.substr(sp));
      in_paragraph = false;
      if (tag == ".TITLE") {
        close_down_to(LogicalUnit::kTitle, &doc);
        const size_t at = doc.AppendText(arg);
        doc.AppendText("\n");
        LogicalComponent c;
        c.unit = LogicalUnit::kTitle;
        c.span = TextSpan{at, at + arg.size()};
        c.title = std::string(arg);
        doc.AddComponentSpan(std::move(c));
      } else if (tag == ".ABSTRACT") {
        close_down_to(LogicalUnit::kAbstract, &doc);
        open.push_back({LogicalUnit::kAbstract, doc.size(), ""});
        // An abstract behaves like a paragraph for fine structure.
        open.push_back({LogicalUnit::kParagraph, doc.size(), ""});
        in_paragraph = true;
      } else if (tag == ".CHAPTER") {
        close_down_to(LogicalUnit::kChapter, &doc);
        open.push_back({LogicalUnit::kChapter, doc.size(),
                        std::string(arg)});
        const size_t at = doc.AppendText(arg);
        doc.AppendText("\n");
        (void)at;
      } else if (tag == ".SECTION") {
        close_down_to(LogicalUnit::kSection, &doc);
        open.push_back({LogicalUnit::kSection, doc.size(),
                        std::string(arg)});
        doc.AppendText(arg);
        doc.AppendText("\n");
      } else if (tag == ".PP") {
        close_down_to(LogicalUnit::kParagraph, &doc);
        open.push_back({LogicalUnit::kParagraph, doc.size(), ""});
        in_paragraph = true;
      } else if (tag == ".REFERENCES") {
        close_down_to(LogicalUnit::kChapter, &doc);
        open.push_back({LogicalUnit::kReferences, doc.size(), ""});
        open.push_back({LogicalUnit::kParagraph, doc.size(), ""});
        in_paragraph = true;
      } else {
        return Status::InvalidArgument("unknown markup tag '" +
                                       std::string(tag) + "'");
      }
      continue;
    }
    // Body line.
    if (!in_paragraph) {
      open.push_back({LogicalUnit::kParagraph, doc.size(), ""});
      in_paragraph = true;
    }
    if (doc.size() > 0 && doc.contents().back() != '\n' &&
        !doc.contents().empty() && doc.contents().back() != ' ') {
      doc.AppendText(" ");
    }
    MINOS_RETURN_IF_ERROR(AppendBodyText(line, &doc));
  }
  close_down_to(LogicalUnit::kTitle, &doc);
  doc.DeriveFineStructure();
  return doc;
}

}  // namespace minos::text
