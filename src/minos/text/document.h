#ifndef MINOS_TEXT_DOCUMENT_H_
#define MINOS_TEXT_DOCUMENT_H_

#include <cstddef>
#include <string>
#include <vector>

#include "minos/util/status.h"
#include "minos/util/statusor.h"

namespace minos::text {

/// Logical subdivision levels of a text (or voice) segment. "A text segment
/// of a multimedia object in MINOS may be logically subdivided into title,
/// abstract, chapters, and references. Each chapter is subdivided into
/// sections, sections into paragraphs, paragraphs into sentences and
/// sentences into words." (§2)
enum class LogicalUnit : uint8_t {
  kTitle = 0,
  kAbstract = 1,
  kChapter = 2,
  kSection = 3,
  kParagraph = 4,
  kSentence = 5,
  kWord = 6,
  kReferences = 7,
};

/// Returns "chapter", "sentence", ... for menus and diagnostics.
const char* LogicalUnitName(LogicalUnit unit);

/// Half-open character range [begin, end) within a document's flat text.
struct TextSpan {
  size_t begin = 0;
  size_t end = 0;

  size_t length() const { return end - begin; }
  bool Contains(size_t pos) const { return pos >= begin && pos < end; }
  friend bool operator==(const TextSpan&, const TextSpan&) = default;
};

/// Inline emphasis recorded by the markup parser. In text, "emphasis and
/// meaning aspects are expressed by some special symbols as well as by some
/// conventions such as underlined words, tilted words, bold tones" (§2).
enum class Emphasis : uint8_t { kBold = 0, kUnderline = 1, kItalic = 2 };

/// An emphasized run of the flat text.
struct EmphasisSpan {
  TextSpan span;
  Emphasis kind = Emphasis::kBold;
};

/// A logical component instance: one chapter, one section, one sentence...
/// `title` is non-empty for units the author named (chapters/sections).
struct LogicalComponent {
  LogicalUnit unit = LogicalUnit::kParagraph;
  TextSpan span;
  std::string title;
};

/// A parsed text document: flat character content plus the logical
/// structure the presentation manager navigates by, plus emphasis runs the
/// formatter styles. Documents are immutable once built (they model the
/// archived state).
class Document {
 public:
  Document() = default;

  /// Builder interface used by the markup parser ------------------------

  /// Appends raw characters; returns the offset where they start.
  size_t AppendText(std::string_view chars);

  /// Records a logical component covering [begin, current end).
  void AddComponent(LogicalUnit unit, size_t begin, std::string title);

  /// Records a component with an explicit span.
  void AddComponentSpan(LogicalComponent component);

  /// Records an emphasis run.
  void AddEmphasis(EmphasisSpan span);

  /// Derives sentence and word components for every paragraph present.
  /// Sentences end at '.', '!' or '?'; words are whitespace-separated.
  void DeriveFineStructure();

  /// Read interface -----------------------------------------------------

  /// The flat character content.
  const std::string& contents() const { return contents_; }
  size_t size() const { return contents_.size(); }

  /// All components of one unit, in document order.
  const std::vector<LogicalComponent>& Components(LogicalUnit unit) const;

  /// Emphasis runs in document order.
  const std::vector<EmphasisSpan>& emphasis() const { return emphasis_; }

  /// True iff at least one component of `unit` was identified. Menu
  /// options depend on this: "The logical browsing options that are
  /// available to the user in MINOS depend on the object." (§2)
  bool HasUnit(LogicalUnit unit) const { return !Components(unit).empty(); }

  /// Start offset of the next component of `unit` strictly after `pos`;
  /// NotFound when there is none.
  StatusOr<size_t> NextUnitStart(LogicalUnit unit, size_t pos) const;

  /// Start offset of the latest component of `unit` starting strictly
  /// before `pos`; NotFound when there is none.
  StatusOr<size_t> PreviousUnitStart(LogicalUnit unit, size_t pos) const;

  /// The component of `unit` containing `pos`, if any.
  StatusOr<LogicalComponent> EnclosingUnit(LogicalUnit unit,
                                           size_t pos) const;

 private:
  std::string contents_;
  // Indexed by LogicalUnit value.
  std::vector<LogicalComponent> components_[8];
  std::vector<EmphasisSpan> emphasis_;
};

}  // namespace minos::text

#endif  // MINOS_TEXT_DOCUMENT_H_
