#ifndef MINOS_TEXT_SEARCH_H_
#define MINOS_TEXT_SEARCH_H_

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "minos/text/document.h"
#include "minos/util/statusor.h"

namespace minos::text {

/// Pattern-matching browsing support. "A user types a text pattern ... and
/// the system returns the next page with the occurrence of this pattern in
/// the object's text" (§2). Two access methods are provided, matching the
/// paper's "same access methods as in text" requirement for recognized
/// voice: a direct scan (Boyer-Moore-Horspool) and a prebuilt inverted
/// word index.

/// All occurrences (start offsets) of `pattern` in `text`, in order.
/// Case-sensitive; empty patterns match nowhere.
std::vector<size_t> FindAll(std::string_view text, std::string_view pattern);

/// First occurrence at or after `from`; NotFound when absent.
StatusOr<size_t> FindNext(std::string_view text, std::string_view pattern,
                          size_t from);

/// Last occurrence strictly before `from`; NotFound when absent.
StatusOr<size_t> FindPrevious(std::string_view text,
                              std::string_view pattern, size_t from);

/// Inverted index from (case-folded) words to their start offsets.
/// This is the access method a content-addressable archive would maintain;
/// the voice Recognizer produces entries of exactly this shape so browsing
/// code is shared between the media (the paper's symmetry requirement).
class WordIndex {
 public:
  WordIndex() = default;

  /// Indexes every word component of the document. The document must have
  /// derived fine structure.
  void Build(const Document& doc);

  /// Adds one posting directly (used by voice recognition results).
  void AddPosting(std::string_view word, size_t position);

  /// Sorted start offsets of `word` (case-insensitive); empty if absent.
  const std::vector<size_t>& Positions(std::string_view word) const;

  /// First occurrence of `word` at or after `from`; NotFound when absent.
  StatusOr<size_t> NextOccurrence(std::string_view word, size_t from) const;

  /// Last occurrence strictly before `from`; NotFound when absent.
  StatusOr<size_t> PreviousOccurrence(std::string_view word,
                                      size_t from) const;

  /// Number of distinct indexed words.
  size_t vocabulary_size() const { return postings_.size(); }

 private:
  std::map<std::string, std::vector<size_t>, std::less<>> postings_;
};

}  // namespace minos::text

#endif  // MINOS_TEXT_SEARCH_H_
