#ifndef MINOS_TEXT_FORMATTER_H_
#define MINOS_TEXT_FORMATTER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "minos/text/document.h"
#include "minos/util/statusor.h"

namespace minos::text {

/// Layout parameters of the text area of a visual page. "The presentation
/// form of text is subdivided into text pages. A text page is all the text
/// information which is presented at the same time at the screen of the
/// workstation." (§2) MINOS provides "presentation capabilities for text
/// similar to those found in traditional text formatters ... various
/// character fonts, letter sizes, paragraphing, indenting" (§3).
struct PageLayout {
  int width = 64;              ///< Characters per line.
  int height = 20;             ///< Lines per page.
  int paragraph_indent = 2;    ///< First-line indent of a paragraph.
  bool chapter_starts_page = true;  ///< Chapters begin on a fresh page.

  /// Layout for a page whose lower half shows text under a pinned visual
  /// logical message (Figures 3-4): same width, half the lines.
  PageLayout LowerHalf() const {
    PageLayout half = *this;
    half.height = height / 2;
    return half;
  }
};

/// A styled run of characters on one page line.
struct StyledRun {
  int line = 0;       ///< Line index within the page.
  int col_begin = 0;  ///< First styled column.
  int col_end = 0;    ///< One past the last styled column.
  Emphasis kind = Emphasis::kBold;
};

/// Where one word of the document landed on a page (line/column grid).
/// Lets browsing code highlight search hits and draw relevance
/// indicators at the exact on-screen position of a document offset.
struct WordPlacement {
  TextSpan span;      ///< Document offsets of the word.
  int line = 0;       ///< Page line index.
  int col_begin = 0;  ///< First column of the word.
  int col_end = 0;    ///< One past the last column.
};

/// One formatted text page: fixed-size line grid plus style runs plus the
/// document character range it presents (used to map logical positions and
/// search hits to pages).
struct TextPage {
  int number = 0;                   ///< 1-based page number.
  std::vector<std::string> lines;   ///< Exactly layout.height lines.
  std::vector<StyledRun> styles;
  std::vector<WordPlacement> words; ///< Placed body words, page order.
  TextSpan span;                    ///< Document offsets covered.

  /// Placement of the word containing document offset `pos`, or null.
  const WordPlacement* FindWordAt(size_t pos) const;
};

/// Maps document character offsets to page numbers.
class PageMap {
 public:
  /// Builds the map from formatted pages (must be in page-number order).
  explicit PageMap(const std::vector<TextPage>& pages);
  PageMap() = default;

  /// Page presenting offset `pos`. Offsets that fall between pages (e.g.
  /// whitespace swallowed by wrapping) map to the following page; offsets
  /// past the end map to the last page. Zero when there are no pages.
  int PageForOffset(size_t pos) const;

  int page_count() const { return static_cast<int>(spans_.size()); }

 private:
  std::vector<TextSpan> spans_;
};

/// The MINOS text formatter: turns a logical Document into numbered text
/// pages, honoring paragraph indentation, headers and emphasis. The
/// formatter is deterministic: equal documents and layouts yield equal
/// pages (figure benches rely on this for digests).
class TextFormatter {
 public:
  explicit TextFormatter(PageLayout layout) : layout_(layout) {}

  /// Paginates the whole document. InvalidArgument if the layout is
  /// degenerate (width < 8 or height < 3).
  StatusOr<std::vector<TextPage>> Paginate(const Document& doc) const;

  const PageLayout& layout() const { return layout_; }

 private:
  PageLayout layout_;
};

}  // namespace minos::text

#endif  // MINOS_TEXT_FORMATTER_H_
