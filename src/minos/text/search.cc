#include "minos/text/search.h"

#include <algorithm>
#include <cctype>
#include <array>

#include "minos/obs/metrics.h"
#include "minos/util/clock.h"
#include "minos/util/string_util.h"

namespace minos::text {

namespace {

/// Registry-owned pattern-matching statistics ("text.search.*"): direct
/// scans, match yield, scanned bytes and real scan CPU time. Pointers
/// cached once; the default registry's Reset() keeps them valid.
struct SearchMetrics {
  obs::Counter* scans;
  obs::Counter* matches;
  obs::Counter* scanned_bytes;
  obs::Histogram* scan_wall_us;
};

SearchMetrics& Metrics() {
  static SearchMetrics* m = [] {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
    return new SearchMetrics{
        reg.counter("text.search.scans"),
        reg.counter("text.search.matches"),
        reg.counter("text.search.scanned_bytes"),
        reg.histogram("text.search.scan_wall_us"),
    };
  }();
  return *m;
}

/// Boyer-Moore-Horspool bad-character table.
std::array<size_t, 256> BuildSkipTable(std::string_view pattern) {
  std::array<size_t, 256> skip;
  skip.fill(pattern.size());
  for (size_t i = 0; i + 1 < pattern.size(); ++i) {
    skip[static_cast<unsigned char>(pattern[i])] = pattern.size() - 1 - i;
  }
  return skip;
}

}  // namespace

std::vector<size_t> FindAll(std::string_view text,
                            std::string_view pattern) {
  std::vector<size_t> hits;
  const size_t m = pattern.size();
  if (m == 0 || text.size() < m) return hits;
  SearchMetrics& metrics = Metrics();
  metrics.scans->Increment();
  metrics.scanned_bytes->Increment(static_cast<int64_t>(text.size()));
  static WallClock wall;  // Scan time is CPU work, not simulated time.
  const Micros scan_started_at = wall.Now();
  const std::array<size_t, 256> skip = BuildSkipTable(pattern);
  size_t i = 0;
  while (i + m <= text.size()) {
    size_t j = m;
    while (j > 0 && text[i + j - 1] == pattern[j - 1]) --j;
    if (j == 0) {
      hits.push_back(i);
      ++i;  // Allow overlapping occurrences.
    } else {
      i += skip[static_cast<unsigned char>(text[i + m - 1])];
    }
  }
  metrics.matches->Increment(static_cast<int64_t>(hits.size()));
  metrics.scan_wall_us->Record(static_cast<double>(wall.Now() -
                                                   scan_started_at));
  return hits;
}

StatusOr<size_t> FindNext(std::string_view text, std::string_view pattern,
                          size_t from) {
  if (pattern.empty()) return Status::InvalidArgument("empty pattern");
  if (from >= text.size()) return Status::NotFound("pattern not found");
  const std::vector<size_t> hits = FindAll(text.substr(from), pattern);
  if (hits.empty()) return Status::NotFound("pattern not found");
  return from + hits.front();
}

StatusOr<size_t> FindPrevious(std::string_view text,
                              std::string_view pattern, size_t from) {
  if (pattern.empty()) return Status::InvalidArgument("empty pattern");
  const std::vector<size_t> hits =
      FindAll(text.substr(0, std::min(from + pattern.size(), text.size())),
              pattern);
  for (auto it = hits.rbegin(); it != hits.rend(); ++it) {
    if (*it < from) return *it;
  }
  return Status::NotFound("pattern not found");
}

void WordIndex::Build(const Document& doc) {
  for (const LogicalComponent& w : doc.Components(LogicalUnit::kWord)) {
    // FoldWord strips trailing punctuation so "map," indexes as "map".
    const std::string word = FoldWord(std::string_view(doc.contents())
                                          .substr(w.span.begin,
                                                  w.span.length()));
    if (word.empty()) continue;
    AddPosting(word, w.span.begin);
  }
}

void WordIndex::AddPosting(std::string_view word, size_t position) {
  std::vector<size_t>& list = postings_[AsciiToLower(word)];
  // Keep postings sorted; additions are usually in order already.
  if (!list.empty() && list.back() > position) {
    list.insert(std::upper_bound(list.begin(), list.end(), position),
                position);
  } else {
    list.push_back(position);
  }
}

const std::vector<size_t>& WordIndex::Positions(
    std::string_view word) const {
  static const std::vector<size_t>* empty = new std::vector<size_t>();
  obs::MetricsRegistry::Default().counter("text.index.lookups")->Increment();
  auto it = postings_.find(AsciiToLower(word));
  return it == postings_.end() ? *empty : it->second;
}

StatusOr<size_t> WordIndex::NextOccurrence(std::string_view word,
                                           size_t from) const {
  const std::vector<size_t>& list = Positions(word);
  auto it = std::lower_bound(list.begin(), list.end(), from);
  if (it == list.end()) return Status::NotFound("word not found");
  return *it;
}

StatusOr<size_t> WordIndex::PreviousOccurrence(std::string_view word,
                                               size_t from) const {
  const std::vector<size_t>& list = Positions(word);
  auto it = std::lower_bound(list.begin(), list.end(), from);
  if (it == list.begin()) return Status::NotFound("word not found");
  return *(--it);
}

}  // namespace minos::text
