#ifndef MINOS_TEXT_MARKUP_H_
#define MINOS_TEXT_MARKUP_H_

#include <string>
#include <string_view>

#include "minos/text/document.h"
#include "minos/util/statusor.h"

namespace minos::text {

/// Parser for the MINOS declarative text markup. "For objects which have
/// been generated interactively in a given environment, these subdivisions
/// can be easily identified by the tags that the user inserts in order to
/// format the text." (§2) The formatter is declarative: tags describe the
/// logical structure, not the layout (§4).
///
/// Tag language (one tag per line, leading dot):
///
///   .TITLE <text>        title of the object text part
///   .ABSTRACT            abstract until the next structural tag
///   .CHAPTER <name>      starts a chapter
///   .SECTION <name>      starts a section
///   .PP                  starts a paragraph
///   .REFERENCES          starts the references part
///
/// Inline emphasis inside body lines:
///   *bold*   _underline_   /italic/
///
/// Lines that do not start with '.' are body text; consecutive body lines
/// of the same paragraph are joined with single spaces.
class MarkupParser {
 public:
  MarkupParser() = default;

  /// Parses markup into a Document with full logical structure (including
  /// derived sentences and words). Returns InvalidArgument on an unknown
  /// tag or an unterminated emphasis marker.
  StatusOr<Document> Parse(std::string_view markup) const;
};

}  // namespace minos::text

#endif  // MINOS_TEXT_MARKUP_H_
