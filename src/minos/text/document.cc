#include "minos/text/document.h"

#include <algorithm>
#include <cctype>

namespace minos::text {

const char* LogicalUnitName(LogicalUnit unit) {
  switch (unit) {
    case LogicalUnit::kTitle:
      return "title";
    case LogicalUnit::kAbstract:
      return "abstract";
    case LogicalUnit::kChapter:
      return "chapter";
    case LogicalUnit::kSection:
      return "section";
    case LogicalUnit::kParagraph:
      return "paragraph";
    case LogicalUnit::kSentence:
      return "sentence";
    case LogicalUnit::kWord:
      return "word";
    case LogicalUnit::kReferences:
      return "references";
  }
  return "?";
}

size_t Document::AppendText(std::string_view chars) {
  const size_t at = contents_.size();
  contents_.append(chars);
  return at;
}

void Document::AddComponent(LogicalUnit unit, size_t begin,
                            std::string title) {
  LogicalComponent c;
  c.unit = unit;
  c.span = TextSpan{begin, contents_.size()};
  c.title = std::move(title);
  components_[static_cast<size_t>(unit)].push_back(std::move(c));
}

void Document::AddComponentSpan(LogicalComponent component) {
  components_[static_cast<size_t>(component.unit)].push_back(
      std::move(component));
}

void Document::AddEmphasis(EmphasisSpan span) {
  emphasis_.push_back(span);
}

const std::vector<LogicalComponent>& Document::Components(
    LogicalUnit unit) const {
  return components_[static_cast<size_t>(unit)];
}

void Document::DeriveFineStructure() {
  components_[static_cast<size_t>(LogicalUnit::kSentence)].clear();
  components_[static_cast<size_t>(LogicalUnit::kWord)].clear();
  // Speakable blocks: paragraphs, plus the title and the header text of
  // chapters/sections (a reader speaks headers too; this keeps the text
  // and voice renditions of a document aligned word for word).
  std::vector<LogicalComponent> blocks;
  for (const LogicalComponent& t : Components(LogicalUnit::kTitle)) {
    blocks.push_back(t);
  }
  for (const LogicalComponent& c : Components(LogicalUnit::kChapter)) {
    LogicalComponent header = c;
    header.span.end = c.span.begin + c.title.size();
    if (header.span.length() > 0) blocks.push_back(header);
  }
  for (const LogicalComponent& s : Components(LogicalUnit::kSection)) {
    LogicalComponent header = s;
    header.span.end = s.span.begin + s.title.size();
    if (header.span.length() > 0) blocks.push_back(header);
  }
  for (const LogicalComponent& p : Components(LogicalUnit::kParagraph)) {
    blocks.push_back(p);
  }
  std::sort(blocks.begin(), blocks.end(),
            [](const LogicalComponent& a, const LogicalComponent& b) {
              return a.span.begin < b.span.begin;
            });
  for (const LogicalComponent& para : blocks) {
    // Sentences: split at '.', '!' or '?' followed by whitespace/end.
    size_t sent_begin = para.span.begin;
    for (size_t i = para.span.begin; i < para.span.end; ++i) {
      const char c = contents_[i];
      const bool terminator = (c == '.' || c == '!' || c == '?');
      const bool at_end = i + 1 >= para.span.end;
      const bool followed_by_space =
          !at_end &&
          std::isspace(static_cast<unsigned char>(contents_[i + 1]));
      if (terminator && (at_end || followed_by_space)) {
        LogicalComponent s;
        s.unit = LogicalUnit::kSentence;
        s.span = TextSpan{sent_begin, i + 1};
        AddComponentSpan(std::move(s));
        // Skip following whitespace to start the next sentence.
        size_t j = i + 1;
        while (j < para.span.end &&
               std::isspace(static_cast<unsigned char>(contents_[j]))) {
          ++j;
        }
        sent_begin = j;
      }
    }
    if (sent_begin < para.span.end) {
      LogicalComponent s;
      s.unit = LogicalUnit::kSentence;
      s.span = TextSpan{sent_begin, para.span.end};
      AddComponentSpan(std::move(s));
    }
    // Words: maximal non-whitespace runs.
    size_t i = para.span.begin;
    while (i < para.span.end) {
      while (i < para.span.end &&
             std::isspace(static_cast<unsigned char>(contents_[i]))) {
        ++i;
      }
      size_t w = i;
      while (i < para.span.end &&
             !std::isspace(static_cast<unsigned char>(contents_[i]))) {
        ++i;
      }
      if (i > w) {
        LogicalComponent word;
        word.unit = LogicalUnit::kWord;
        word.span = TextSpan{w, i};
        AddComponentSpan(std::move(word));
      }
    }
  }
}

StatusOr<size_t> Document::NextUnitStart(LogicalUnit unit,
                                         size_t pos) const {
  for (const LogicalComponent& c : Components(unit)) {
    if (c.span.begin > pos) return c.span.begin;
  }
  return Status::NotFound(std::string("no next ") + LogicalUnitName(unit));
}

StatusOr<size_t> Document::PreviousUnitStart(LogicalUnit unit,
                                             size_t pos) const {
  const std::vector<LogicalComponent>& cs = Components(unit);
  for (auto it = cs.rbegin(); it != cs.rend(); ++it) {
    if (it->span.begin < pos) return it->span.begin;
  }
  return Status::NotFound(std::string("no previous ") +
                          LogicalUnitName(unit));
}

StatusOr<LogicalComponent> Document::EnclosingUnit(LogicalUnit unit,
                                                   size_t pos) const {
  for (const LogicalComponent& c : Components(unit)) {
    if (c.span.Contains(pos)) return c;
  }
  return Status::NotFound(std::string("position not inside any ") +
                          LogicalUnitName(unit));
}

}  // namespace minos::text
