#include "minos/text/formatter.h"

#include <algorithm>
#include <cctype>

namespace minos::text {

namespace {

/// One typesettable block derived from the document's logical structure.
struct Block {
  enum class Kind { kTitle, kChapterHeader, kSectionHeader, kBody };
  Kind kind;
  size_t order;      // Document offset for ordering.
  TextSpan span;     // Characters this block presents.
  std::string text;  // Header text (headers only).
};

/// A word placed during wrapping, with its document offsets.
struct PlacedWord {
  size_t doc_begin;
  size_t doc_end;
  std::string chars;
};

std::vector<PlacedWord> ExtractWords(const std::string& contents,
                                     TextSpan span) {
  std::vector<PlacedWord> words;
  size_t i = span.begin;
  while (i < span.end) {
    while (i < span.end &&
           std::isspace(static_cast<unsigned char>(contents[i]))) {
      ++i;
    }
    const size_t w = i;
    while (i < span.end &&
           !std::isspace(static_cast<unsigned char>(contents[i]))) {
      ++i;
    }
    if (i > w) {
      words.push_back(PlacedWord{w, i, contents.substr(w, i - w)});
    }
  }
  return words;
}

/// Incrementally builds pages line by line.
class PageBuilder {
 public:
  PageBuilder(const PageLayout& layout, const Document& doc)
      : layout_(layout), doc_(doc) {}

  /// Starts a new page unless the current one is still empty.
  void BreakPage() {
    if (!current_lines_.empty()) FlushPage();
  }

  /// Appends one line; breaks the page when full. `covered` is the
  /// document range the line presents ({0,0} for decorative lines), and
  /// `word_cols` maps placed words to their columns for styling.
  void AddLine(std::string line, TextSpan covered,
               const std::vector<std::pair<PlacedWord, int>>& word_cols) {
    if (static_cast<int>(current_lines_.size()) >= layout_.height) {
      FlushPage();
    }
    const int line_index = static_cast<int>(current_lines_.size());
    // Record word placements for highlight/indicator positioning.
    for (const auto& [word, col] : word_cols) {
      WordPlacement placement;
      placement.span = TextSpan{word.doc_begin, word.doc_end};
      placement.line = line_index;
      placement.col_begin = col;
      placement.col_end = col + static_cast<int>(word.chars.size());
      current_words_.push_back(placement);
    }
    // Style runs: overlap every emphasis span with the placed words.
    for (const auto& [word, col] : word_cols) {
      for (const EmphasisSpan& em : doc_.emphasis()) {
        const size_t lo = std::max(em.span.begin, word.doc_begin);
        const size_t hi = std::min(em.span.end, word.doc_end);
        if (lo >= hi) continue;
        StyledRun run;
        run.line = line_index;
        run.col_begin = col + static_cast<int>(lo - word.doc_begin);
        run.col_end = col + static_cast<int>(hi - word.doc_begin);
        run.kind = em.kind;
        current_styles_.push_back(run);
      }
    }
    current_lines_.push_back(std::move(line));
    if (covered.begin < covered.end) {
      if (current_span_.begin == current_span_.end) {
        current_span_ = covered;
      } else {
        current_span_.begin = std::min(current_span_.begin, covered.begin);
        current_span_.end = std::max(current_span_.end, covered.end);
      }
    }
  }

  /// Adds a blank separator line (no page coverage); never starts a page
  /// with a blank line.
  void AddBlank() {
    if (current_lines_.empty()) return;
    if (static_cast<int>(current_lines_.size()) >= layout_.height) {
      FlushPage();
      return;
    }
    current_lines_.emplace_back();
  }

  /// Lines still available on the current page.
  int remaining_lines() const {
    return layout_.height - static_cast<int>(current_lines_.size());
  }

  std::vector<TextPage> Finish() {
    if (!current_lines_.empty()) FlushPage();
    return std::move(pages_);
  }

 private:
  void FlushPage() {
    TextPage page;
    page.number = static_cast<int>(pages_.size()) + 1;
    page.lines = std::move(current_lines_);
    page.lines.resize(layout_.height);  // Pad to full height.
    page.styles = std::move(current_styles_);
    page.words = std::move(current_words_);
    page.span = current_span_;
    pages_.push_back(std::move(page));
    current_lines_.clear();
    current_styles_.clear();
    current_words_.clear();
    current_span_ = TextSpan{};
  }

  const PageLayout& layout_;
  const Document& doc_;
  std::vector<TextPage> pages_;
  std::vector<std::string> current_lines_;
  std::vector<StyledRun> current_styles_;
  std::vector<WordPlacement> current_words_;
  TextSpan current_span_;
};

/// Word-wraps `span` of the document into the builder, indenting the first
/// line by `first_indent` columns.
void WrapBody(const Document& doc, TextSpan span, int first_indent,
              const PageLayout& layout, PageBuilder* builder) {
  const std::vector<PlacedWord> words =
      ExtractWords(doc.contents(), span);
  std::string line(static_cast<size_t>(std::max(first_indent, 0)), ' ');
  std::vector<std::pair<PlacedWord, int>> cols;
  TextSpan covered{};
  auto flush_line = [&]() {
    if (line.empty() && cols.empty()) return;
    builder->AddLine(std::move(line), covered, cols);
    line.clear();
    cols.clear();
    covered = TextSpan{};
  };
  for (const PlacedWord& w : words) {
    const int needed = static_cast<int>(w.chars.size()) +
                       (line.empty() || line.back() == ' ' ? 0 : 1);
    if (!line.empty() &&
        static_cast<int>(line.size()) + needed > layout.width) {
      flush_line();
    }
    if (!line.empty() && line.back() != ' ') line.push_back(' ');
    const int col = static_cast<int>(line.size());
    // Words longer than the line width are hard-truncated to fit.
    std::string chars = w.chars;
    if (static_cast<int>(chars.size()) > layout.width) {
      chars.resize(static_cast<size_t>(layout.width));
    }
    line += chars;
    cols.emplace_back(w, col);
    if (covered.begin == covered.end) {
      covered = TextSpan{w.doc_begin, w.doc_end};
    } else {
      covered.end = w.doc_end;
    }
  }
  flush_line();
}

}  // namespace

const WordPlacement* TextPage::FindWordAt(size_t pos) const {
  for (const WordPlacement& w : words) {
    if (pos >= w.span.begin && pos < w.span.end) return &w;
  }
  return nullptr;
}

PageMap::PageMap(const std::vector<TextPage>& pages) {
  spans_.reserve(pages.size());
  for (const TextPage& p : pages) spans_.push_back(p.span);
}

int PageMap::PageForOffset(size_t pos) const {
  if (spans_.empty()) return 0;
  for (size_t i = 0; i < spans_.size(); ++i) {
    if (pos < spans_[i].end) return static_cast<int>(i) + 1;
  }
  return static_cast<int>(spans_.size());
}

StatusOr<std::vector<TextPage>> TextFormatter::Paginate(
    const Document& doc) const {
  if (layout_.width < 8 || layout_.height < 3) {
    return Status::InvalidArgument("degenerate page layout");
  }
  // Derive typesettable blocks from the logical structure.
  std::vector<Block> blocks;
  for (const LogicalComponent& c : doc.Components(LogicalUnit::kTitle)) {
    blocks.push_back(
        {Block::Kind::kTitle, c.span.begin, c.span, c.title});
  }
  for (const LogicalComponent& c : doc.Components(LogicalUnit::kChapter)) {
    blocks.push_back({Block::Kind::kChapterHeader, c.span.begin,
                      TextSpan{c.span.begin, c.span.begin + c.title.size()},
                      c.title});
  }
  for (const LogicalComponent& c : doc.Components(LogicalUnit::kSection)) {
    blocks.push_back({Block::Kind::kSectionHeader, c.span.begin,
                      TextSpan{c.span.begin, c.span.begin + c.title.size()},
                      c.title});
  }
  for (const LogicalComponent& c :
       doc.Components(LogicalUnit::kParagraph)) {
    blocks.push_back({Block::Kind::kBody, c.span.begin, c.span, ""});
  }
  std::sort(blocks.begin(), blocks.end(),
            [](const Block& a, const Block& b) { return a.order < b.order; });

  PageBuilder builder(layout_, doc);
  for (const Block& block : blocks) {
    switch (block.kind) {
      case Block::Kind::kTitle: {
        // Centered title on the first page.
        std::string text = block.text;
        if (static_cast<int>(text.size()) > layout_.width) {
          text.resize(static_cast<size_t>(layout_.width));
        }
        const int pad = (layout_.width - static_cast<int>(text.size())) / 2;
        builder.AddLine(std::string(static_cast<size_t>(pad), ' ') + text,
                        block.span, {});
        builder.AddBlank();
        break;
      }
      case Block::Kind::kChapterHeader: {
        if (layout_.chapter_starts_page) {
          builder.BreakPage();
        } else {
          builder.AddBlank();
        }
        std::string header = block.text;
        for (char& ch : header) {
          ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
        }
        builder.AddLine(std::move(header), block.span, {});
        builder.AddBlank();
        break;
      }
      case Block::Kind::kSectionHeader: {
        // Keep a section header attached to at least two body lines.
        if (builder.remaining_lines() < 4) builder.BreakPage();
        builder.AddBlank();
        builder.AddLine(block.text, block.span, {});
        builder.AddBlank();
        break;
      }
      case Block::Kind::kBody: {
        WrapBody(doc, block.span, layout_.paragraph_indent, layout_,
                 &builder);
        builder.AddBlank();
        break;
      }
    }
  }
  std::vector<TextPage> pages = builder.Finish();
  if (pages.empty()) {
    // An empty document still presents one (blank) page.
    TextPage page;
    page.number = 1;
    page.lines.resize(layout_.height);
    pages.push_back(std::move(page));
  }
  return pages;
}

}  // namespace minos::text
