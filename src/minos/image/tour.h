#ifndef MINOS_IMAGE_TOUR_H_
#define MINOS_IMAGE_TOUR_H_

#include <optional>
#include <string>
#include <vector>

#include "minos/image/image.h"
#include "minos/util/clock.h"
#include "minos/util/statusor.h"

namespace minos::image {

/// One stop of a tour: a position of the tour rectangle, optionally with a
/// logical message. "A tour is defined by a rectangle and a sequence of
/// points indicating the position of the rectangle on the large image ...
/// A logical message (visual or audio) may be associated with each
/// position of the tour." (§2)
struct TourStop {
  Point position;                      ///< Top-left of the rectangle.
  std::optional<std::string> visual_message;
  std::optional<std::string> audio_message;  ///< Transcript to speak.
  Micros dwell = SecondsToMicros(2);   ///< Time at this stop (no message).
};

/// A designer-authored tour over an image: an automatically played
/// sequence of views. Playback itself (timing, messages, interruption)
/// is driven by the presentation manager; this class holds the authored
/// data and the view sequence.
class Tour {
 public:
  /// A tour with a fixed rectangle size.
  Tour(int view_width, int view_height)
      : view_width_(view_width), view_height_(view_height) {}

  /// Appends a stop.
  void AddStop(TourStop stop) { stops_.push_back(std::move(stop)); }

  int view_width() const { return view_width_; }
  int view_height() const { return view_height_; }
  const std::vector<TourStop>& stops() const { return stops_; }
  size_t size() const { return stops_.size(); }

  /// The view rectangle at stop `i` (OutOfRange past the end).
  StatusOr<Rect> RectAt(size_t i) const;

 private:
  int view_width_;
  int view_height_;
  std::vector<TourStop> stops_;
};

}  // namespace minos::image

#endif  // MINOS_IMAGE_TOUR_H_
