#include "minos/image/graphics.h"

#include <algorithm>
#include <cstdlib>

#include "minos/util/coding.h"

namespace minos::image {

namespace {

/// Distance from point to segment squared comparison helper: returns true
/// when (px,py) lies within `slack` of segment a-b.
bool NearSegment(Point a, Point b, int px, int py, int slack) {
  const double vx = b.x - a.x, vy = b.y - a.y;
  const double wx = px - a.x, wy = py - a.y;
  const double len2 = vx * vx + vy * vy;
  double t = len2 > 0 ? (wx * vx + wy * vy) / len2 : 0.0;
  t = std::clamp(t, 0.0, 1.0);
  const double dx = wx - t * vx, dy = wy - t * vy;
  return dx * dx + dy * dy <= static_cast<double>(slack) * slack;
}

/// Even-odd point-in-polygon test.
bool InsidePolygon(const std::vector<Point>& poly, int px, int py) {
  bool inside = false;
  for (size_t i = 0, j = poly.size() - 1; i < poly.size(); j = i++) {
    const Point& a = poly[i];
    const Point& b = poly[j];
    if ((a.y > py) != (b.y > py)) {
      const double x_at =
          a.x + static_cast<double>(py - a.y) / (b.y - a.y) * (b.x - a.x);
      if (px < x_at) inside = !inside;
    }
  }
  return inside;
}

}  // namespace

Rect GraphicsObject::BoundingBox() const {
  if (shape == ShapeKind::kCircle) {
    if (vertices.empty()) return Rect{};
    return Rect{vertices[0].x - radius, vertices[0].y - radius,
                2 * radius + 1, 2 * radius + 1};
  }
  if (vertices.empty()) return Rect{};
  int x0 = vertices[0].x, y0 = vertices[0].y;
  int x1 = x0, y1 = y0;
  for (const Point& p : vertices) {
    x0 = std::min(x0, p.x);
    y0 = std::min(y0, p.y);
    x1 = std::max(x1, p.x);
    y1 = std::max(y1, p.y);
  }
  return Rect{x0, y0, x1 - x0 + 1, y1 - y0 + 1};
}

bool GraphicsObject::HitTest(int x, int y, int slack) const {
  switch (shape) {
    case ShapeKind::kPoint:
      return !vertices.empty() && std::abs(vertices[0].x - x) <= slack &&
             std::abs(vertices[0].y - y) <= slack;
    case ShapeKind::kPolyline: {
      for (size_t i = 0; i + 1 < vertices.size(); ++i) {
        if (NearSegment(vertices[i], vertices[i + 1], x, y, slack)) {
          return true;
        }
      }
      return false;
    }
    case ShapeKind::kPolygon: {
      if (vertices.size() < 3) return false;
      if (InsidePolygon(vertices, x, y)) return true;
      for (size_t i = 0, j = vertices.size() - 1; i < vertices.size();
           j = i++) {
        if (NearSegment(vertices[j], vertices[i], x, y, slack)) return true;
      }
      return false;
    }
    case ShapeKind::kCircle: {
      if (vertices.empty()) return false;
      const double dx = x - vertices[0].x, dy = y - vertices[0].y;
      const double d = dx * dx + dy * dy;
      const double r_out = static_cast<double>(radius + slack);
      if (filled) return d <= r_out * r_out;
      const double r_in =
          radius > slack ? static_cast<double>(radius - slack) : 0.0;
      return d <= r_out * r_out && d >= r_in * r_in;
    }
  }
  return false;
}

uint32_t GraphicsImage::Add(GraphicsObject object) {
  object.id = next_id_++;
  objects_.push_back(std::move(object));
  return objects_.back().id;
}

StatusOr<GraphicsObject> GraphicsImage::Find(uint32_t id) const {
  for (const GraphicsObject& o : objects_) {
    if (o.id == id) return o;
  }
  return Status::NotFound("no graphics object with that id");
}

StatusOr<GraphicsObject> GraphicsImage::ObjectAt(int x, int y) const {
  for (auto it = objects_.rbegin(); it != objects_.rend(); ++it) {
    if (it->HitTest(x, y)) return *it;
  }
  return Status::NotFound("no graphics object at that position");
}

std::vector<uint32_t> GraphicsImage::MatchLabels(
    std::string_view pattern) const {
  std::vector<uint32_t> ids;
  if (pattern.empty()) return ids;
  for (const GraphicsObject& o : objects_) {
    if (o.label.kind == LabelKind::kNone) continue;
    if (o.label.text.find(pattern) != std::string::npos) {
      ids.push_back(o.id);
    }
  }
  return ids;
}

std::string GraphicsImage::Serialize() const {
  std::string out;
  PutVarint32(&out, static_cast<uint32_t>(width_));
  PutVarint32(&out, static_cast<uint32_t>(height_));
  PutVarint32(&out, next_id_);
  PutVarint64(&out, objects_.size());
  for (const GraphicsObject& o : objects_) {
    PutVarint32(&out, o.id);
    out.push_back(static_cast<char>(o.shape));
    PutVarint64(&out, o.vertices.size());
    for (const Point& p : o.vertices) {
      PutVarint32(&out, static_cast<uint32_t>(p.x));
      PutVarint32(&out, static_cast<uint32_t>(p.y));
    }
    PutVarint32(&out, static_cast<uint32_t>(o.radius));
    out.push_back(o.filled ? 1 : 0);
    out.push_back(static_cast<char>(o.ink));
    out.push_back(static_cast<char>(o.label.kind));
    PutLengthPrefixed(&out, o.label.text);
    PutVarint32(&out, static_cast<uint32_t>(o.label.anchor.x));
    PutVarint32(&out, static_cast<uint32_t>(o.label.anchor.y));
  }
  return out;
}

StatusOr<GraphicsImage> GraphicsImage::Deserialize(std::string_view bytes) {
  Decoder dec(bytes);
  uint32_t w = 0, h = 0, next_id = 0;
  uint64_t n = 0;
  MINOS_RETURN_IF_ERROR(dec.GetVarint32(&w));
  MINOS_RETURN_IF_ERROR(dec.GetVarint32(&h));
  MINOS_RETURN_IF_ERROR(dec.GetVarint32(&next_id));
  MINOS_RETURN_IF_ERROR(dec.GetVarint64(&n));
  GraphicsImage img(static_cast<int>(w), static_cast<int>(h));
  img.next_id_ = next_id;
  for (uint64_t i = 0; i < n; ++i) {
    GraphicsObject o;
    MINOS_RETURN_IF_ERROR(dec.GetVarint32(&o.id));
    std::string b;
    MINOS_RETURN_IF_ERROR(dec.GetRaw(1, &b));
    o.shape = static_cast<ShapeKind>(static_cast<uint8_t>(b[0]));
    uint64_t nv = 0;
    MINOS_RETURN_IF_ERROR(dec.GetVarint64(&nv));
    o.vertices.reserve(nv);
    for (uint64_t v = 0; v < nv; ++v) {
      uint32_t x = 0, y = 0;
      MINOS_RETURN_IF_ERROR(dec.GetVarint32(&x));
      MINOS_RETURN_IF_ERROR(dec.GetVarint32(&y));
      o.vertices.push_back(
          Point{static_cast<int>(x), static_cast<int>(y)});
    }
    uint32_t radius = 0;
    MINOS_RETURN_IF_ERROR(dec.GetVarint32(&radius));
    o.radius = static_cast<int>(radius);
    MINOS_RETURN_IF_ERROR(dec.GetRaw(3, &b));
    o.filled = b[0] != 0;
    o.ink = static_cast<uint8_t>(b[1]);
    o.label.kind = static_cast<LabelKind>(static_cast<uint8_t>(b[2]));
    MINOS_RETURN_IF_ERROR(dec.GetLengthPrefixed(&o.label.text));
    uint32_t ax = 0, ay = 0;
    MINOS_RETURN_IF_ERROR(dec.GetVarint32(&ax));
    MINOS_RETURN_IF_ERROR(dec.GetVarint32(&ay));
    o.label.anchor = Point{static_cast<int>(ax), static_cast<int>(ay)};
    img.objects_.push_back(std::move(o));
  }
  return img;
}

}  // namespace minos::image
