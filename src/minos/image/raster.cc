#include "minos/image/raster.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace minos::image {

void DrawLine(Bitmap* bm, Point a, Point b, uint8_t ink) {
  int x0 = a.x, y0 = a.y, x1 = b.x, y1 = b.y;
  const int dx = std::abs(x1 - x0), sx = x0 < x1 ? 1 : -1;
  const int dy = -std::abs(y1 - y0), sy = y0 < y1 ? 1 : -1;
  int err = dx + dy;
  for (;;) {
    bm->Blend(x0, y0, ink);
    if (x0 == x1 && y0 == y1) break;
    const int e2 = 2 * err;
    if (e2 >= dy) {
      err += dy;
      x0 += sx;
    }
    if (e2 <= dx) {
      err += dx;
      y0 += sy;
    }
  }
}

void DrawCircle(Bitmap* bm, Point c, int radius, uint8_t ink) {
  if (radius <= 0) {
    bm->Blend(c.x, c.y, ink);
    return;
  }
  int x = radius, y = 0, err = 1 - radius;
  while (x >= y) {
    bm->Blend(c.x + x, c.y + y, ink);
    bm->Blend(c.x + y, c.y + x, ink);
    bm->Blend(c.x - y, c.y + x, ink);
    bm->Blend(c.x - x, c.y + y, ink);
    bm->Blend(c.x - x, c.y - y, ink);
    bm->Blend(c.x - y, c.y - x, ink);
    bm->Blend(c.x + y, c.y - x, ink);
    bm->Blend(c.x + x, c.y - y, ink);
    ++y;
    if (err < 0) {
      err += 2 * y + 1;
    } else {
      --x;
      err += 2 * (y - x) + 1;
    }
  }
}

void FillCircle(Bitmap* bm, Point c, int radius, uint8_t ink) {
  for (int y = -radius; y <= radius; ++y) {
    for (int x = -radius; x <= radius; ++x) {
      if (x * x + y * y <= radius * radius) {
        bm->Blend(c.x + x, c.y + y, ink);
      }
    }
  }
}

void DrawPolyline(Bitmap* bm, const std::vector<Point>& points,
                  uint8_t ink) {
  for (size_t i = 0; i + 1 < points.size(); ++i) {
    DrawLine(bm, points[i], points[i + 1], ink);
  }
}

void DrawPolygon(Bitmap* bm, const std::vector<Point>& points,
                 uint8_t ink) {
  if (points.size() < 2) return;
  DrawPolyline(bm, points, ink);
  DrawLine(bm, points.back(), points.front(), ink);
}

void FillPolygon(Bitmap* bm, const std::vector<Point>& points,
                 uint8_t ink) {
  if (points.size() < 3) return;
  int y0 = points[0].y, y1 = points[0].y;
  for (const Point& p : points) {
    y0 = std::min(y0, p.y);
    y1 = std::max(y1, p.y);
  }
  for (int y = y0; y <= y1; ++y) {
    // Gather x-crossings of scanline y.
    std::vector<double> xs;
    for (size_t i = 0, j = points.size() - 1; i < points.size(); j = i++) {
      const Point& a = points[i];
      const Point& b = points[j];
      if ((a.y > y) != (b.y > y)) {
        xs.push_back(a.x + static_cast<double>(y - a.y) / (b.y - a.y) *
                               (b.x - a.x));
      }
    }
    std::sort(xs.begin(), xs.end());
    for (size_t i = 0; i + 1 < xs.size(); i += 2) {
      const int xa = static_cast<int>(std::ceil(xs[i]));
      const int xb = static_cast<int>(std::floor(xs[i + 1]));
      for (int x = xa; x <= xb; ++x) bm->Blend(x, y, ink);
    }
  }
}

void RenderObject(Bitmap* bm, const GraphicsObject& object) {
  switch (object.shape) {
    case ShapeKind::kPoint:
      if (!object.vertices.empty()) {
        FillCircle(bm, object.vertices[0], 1, object.ink);
      }
      break;
    case ShapeKind::kPolyline:
      DrawPolyline(bm, object.vertices, object.ink);
      break;
    case ShapeKind::kPolygon:
      if (object.filled) {
        FillPolygon(bm, object.vertices, object.ink);
      }
      DrawPolygon(bm, object.vertices, object.ink);
      break;
    case ShapeKind::kCircle:
      if (!object.vertices.empty()) {
        if (object.filled) {
          FillCircle(bm, object.vertices[0], object.radius, object.ink);
        } else {
          DrawCircle(bm, object.vertices[0], object.radius, object.ink);
        }
      }
      break;
  }
}

Bitmap Rasterize(const GraphicsImage& image,
                 const std::vector<uint32_t>& highlighted_ids) {
  Bitmap bm(image.width(), image.height());
  for (const GraphicsObject& o : image.objects()) {
    RenderObject(&bm, o);
    const bool highlighted =
        std::find(highlighted_ids.begin(), highlighted_ids.end(), o.id) !=
        highlighted_ids.end();
    if (highlighted) {
      // Halo: draw the bounding box around the object at full ink.
      const Rect bb = o.BoundingBox();
      const Rect halo{bb.x - 2, bb.y - 2, bb.w + 4, bb.h + 4};
      DrawPolygon(&bm,
                  {{halo.x, halo.y},
                   {halo.x + halo.w - 1, halo.y},
                   {halo.x + halo.w - 1, halo.y + halo.h - 1},
                   {halo.x, halo.y + halo.h - 1}},
                  255);
    }
  }
  return bm;
}

}  // namespace minos::image
