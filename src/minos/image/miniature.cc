#include "minos/image/miniature.h"

#include <algorithm>

namespace minos::image {

StatusOr<Miniature> Miniature::Build(const Image& image, int scale) {
  if (scale < 1) {
    return Status::InvalidArgument("miniature scale must be >= 1");
  }
  if (image.width() == 0 || image.height() == 0) {
    return Status::InvalidArgument("cannot miniaturize an empty image");
  }
  Miniature mini;
  mini.scale_ = scale;
  mini.full_width_ = image.width();
  mini.full_height_ = image.height();
  const int mw = std::max(1, image.width() / scale);
  const int mh = std::max(1, image.height() / scale);
  Bitmap small(mw, mh);

  if (image.is_bitmap()) {
    // Box filter over scale x scale cells.
    const Bitmap full = image.Render();
    for (int y = 0; y < mh; ++y) {
      for (int x = 0; x < mw; ++x) {
        uint32_t sum = 0;
        int n = 0;
        for (int dy = 0; dy < scale; ++dy) {
          for (int dx = 0; dx < scale; ++dx) {
            const int fx = x * scale + dx;
            const int fy = y * scale + dy;
            if (fx < full.width() && fy < full.height()) {
              sum += full.At(fx, fy);
              ++n;
            }
          }
        }
        small.Set(x, y, n > 0 ? static_cast<uint8_t>(sum / n) : 0);
      }
    }
  } else if (image.is_graphics()) {
    // High-level sketch: each object becomes its scaled bounding box,
    // with a dot at the label anchor for labeled objects.
    MINOS_ASSIGN_OR_RETURN(GraphicsImage g, image.graphics());
    for (const GraphicsObject& o : g.objects()) {
      const Rect bb = o.BoundingBox();
      const Rect s{bb.x / scale, bb.y / scale,
                   std::max(1, bb.w / scale), std::max(1, bb.h / scale)};
      DrawPolygon(&small,
                  {{s.x, s.y},
                   {s.x + s.w - 1, s.y},
                   {s.x + s.w - 1, s.y + s.h - 1},
                   {s.x, s.y + s.h - 1}},
                  160);
      if (o.label.kind != LabelKind::kNone) {
        small.Blend(o.label.anchor.x / scale, o.label.anchor.y / scale, 255);
      }
    }
  }
  mini.raster_ = std::move(small);
  return mini;
}

Rect Miniature::ToFullImage(const Rect& on_miniature) const {
  Rect full{on_miniature.x * scale_, on_miniature.y * scale_,
            on_miniature.w * scale_, on_miniature.h * scale_};
  return full.Intersect(Rect{0, 0, full_width_, full_height_});
}

Rect Miniature::ToMiniature(const Rect& on_full) const {
  return Rect{on_full.x / scale_, on_full.y / scale_,
              std::max(1, on_full.w / scale_),
              std::max(1, on_full.h / scale_)};
}

}  // namespace minos::image
