#include "minos/image/view.h"

#include <algorithm>

namespace minos::image {

View::View(const Image* image, Rect rect) : image_(image) {
  rect_ = Clamp(rect);
}

Rect View::Clamp(Rect r) const {
  r.w = std::clamp(r.w, 1, std::max(1, image_->width()));
  r.h = std::clamp(r.h, 1, std::max(1, image_->height()));
  r.x = std::clamp(r.x, 0, std::max(0, image_->width() - r.w));
  r.y = std::clamp(r.y, 0, std::max(0, image_->height() - r.h));
  return r;
}

std::vector<GraphicsObject> View::NewVoiceLabels(const Rect& before,
                                                 const Rect& after) const {
  std::vector<GraphicsObject> fresh;
  if (!voice_option_) return fresh;
  for (const GraphicsObject& o : image_->VoiceLabeledObjectsIn(after)) {
    if (!o.BoundingBox().Intersects(before)) fresh.push_back(o);
  }
  return fresh;
}

std::vector<GraphicsObject> View::Move(int dx, int dy) {
  const Rect before = rect_;
  rect_ = Clamp(Rect{rect_.x + dx, rect_.y + dy, rect_.w, rect_.h});
  return NewVoiceLabels(before, rect_);
}

std::vector<GraphicsObject> View::JumpTo(int x, int y) {
  const Rect before = rect_;
  rect_ = Clamp(Rect{x, y, rect_.w, rect_.h});
  return NewVoiceLabels(before, rect_);
}

std::vector<GraphicsObject> View::Resize(int dw, int dh) {
  const Rect before = rect_;
  Rect r = rect_;
  r.x -= dw / 2;
  r.y -= dh / 2;
  r.w += dw;
  r.h += dh;
  rect_ = Clamp(r);
  return NewVoiceLabels(before, rect_);
}

Bitmap View::Retrieve() {
  bytes_transferred_ += image_->RegionByteSize(rect_);
  return image_->RenderRegion(rect_);
}

}  // namespace minos::image
