#include "minos/image/tour.h"

namespace minos::image {

StatusOr<Rect> Tour::RectAt(size_t i) const {
  if (i >= stops_.size()) return Status::OutOfRange("tour stop past end");
  return Rect{stops_[i].position.x, stops_[i].position.y, view_width_,
              view_height_};
}

}  // namespace minos::image
