#ifndef MINOS_IMAGE_RASTER_H_
#define MINOS_IMAGE_RASTER_H_

#include "minos/image/bitmap.h"
#include "minos/image/graphics.h"

namespace minos::image {

/// Scan-conversion primitives used to turn graphics objects into ink.
/// The archival form of an image with graphics is "device and software
/// package independent" (§4); rasterization happens at presentation time.

/// Bresenham line.
void DrawLine(Bitmap* bm, Point a, Point b, uint8_t ink);

/// Midpoint circle outline.
void DrawCircle(Bitmap* bm, Point center, int radius, uint8_t ink);

/// Filled circle.
void FillCircle(Bitmap* bm, Point center, int radius, uint8_t ink);

/// Polyline (open).
void DrawPolyline(Bitmap* bm, const std::vector<Point>& points,
                  uint8_t ink);

/// Polygon outline (closed).
void DrawPolygon(Bitmap* bm, const std::vector<Point>& points, uint8_t ink);

/// Scanline-filled polygon (even-odd rule).
void FillPolygon(Bitmap* bm, const std::vector<Point>& points, uint8_t ink);

/// Renders one graphics object.
void RenderObject(Bitmap* bm, const GraphicsObject& object);

/// Renders a whole graphics image onto a bitmap of its canvas size.
/// Highlighted object ids are drawn with a double-thick halo (the paper's
/// label-pattern highlighting).
Bitmap Rasterize(const GraphicsImage& image,
                 const std::vector<uint32_t>& highlighted_ids = {});

}  // namespace minos::image

#endif  // MINOS_IMAGE_RASTER_H_
