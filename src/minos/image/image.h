#ifndef MINOS_IMAGE_IMAGE_H_
#define MINOS_IMAGE_IMAGE_H_

#include <optional>
#include <string>

#include "minos/image/bitmap.h"
#include "minos/image/graphics.h"
#include "minos/image/raster.h"
#include "minos/util/statusor.h"

namespace minos::image {

/// A MINOS image: "Images in MINOS may be bitmaps or graphics." (§2)
/// Both forms expose a common raster interface (presentation always ends
/// at a framebuffer) while graphics images additionally carry selectable,
/// labeled objects.
class Image {
 public:
  /// Wraps a bitmap image.
  static Image FromBitmap(Bitmap bitmap);

  /// Wraps a graphics image.
  static Image FromGraphics(GraphicsImage graphics);

  Image() = default;

  bool is_bitmap() const { return bitmap_.has_value(); }
  bool is_graphics() const { return graphics_.has_value(); }

  int width() const;
  int height() const;

  /// Full raster of the image. For graphics images, `highlighted_ids`
  /// are drawn with halos.
  Bitmap Render(const std::vector<uint32_t>& highlighted_ids = {}) const;

  /// Raster of the sub-rectangle `r` only (the data a view retrieves).
  Bitmap RenderRegion(const Rect& r,
                      const std::vector<uint32_t>& highlighted_ids = {}) const;

  /// Bytes a full-image retrieval transfers.
  uint64_t ByteSize() const;

  /// Bytes a retrieval of region `r` transfers (clipped to the image).
  uint64_t RegionByteSize(const Rect& r) const;

  /// Graphics-only facilities; Unsupported on bitmap images ------------

  /// The underlying graphics (Unsupported for bitmaps).
  StatusOr<GraphicsImage> graphics() const;

  /// Topmost labeled object at a point (inverse label lookup).
  StatusOr<GraphicsObject> ObjectAt(int x, int y) const;

  /// Ids of objects whose label matches `pattern`.
  std::vector<uint32_t> MatchLabels(std::string_view pattern) const;

  /// All objects with a voice label intersecting `r` (played as a moving
  /// view encounters them, §2).
  std::vector<GraphicsObject> VoiceLabeledObjectsIn(const Rect& r) const;

  /// Serialization for composition files and the archiver.
  std::string Serialize() const;
  static StatusOr<Image> Deserialize(std::string_view bytes);

 private:
  std::optional<Bitmap> bitmap_;
  std::optional<GraphicsImage> graphics_;
};

}  // namespace minos::image

#endif  // MINOS_IMAGE_IMAGE_H_
