#ifndef MINOS_IMAGE_MINIATURE_H_
#define MINOS_IMAGE_MINIATURE_H_

#include "minos/image/image.h"
#include "minos/util/statusor.h"

namespace minos::image {

/// A representation (miniature) of an image: "an image itself, where only
/// a high level representation of the content of the image are presented
/// in positions which correspond to the actual positions of the objects of
/// the image ... much smaller than the image itself, and thus it is easily
/// transferable to main memory" (§2). Views defined on the miniature map
/// back to regions of the full image so that only the view's data is
/// transferred.
class Miniature {
 public:
  /// Builds a miniature of `image` scaled down by integer factor
  /// `scale` (>= 1). Bitmaps are box-filtered; graphics images render a
  /// scaled sketch (bounding boxes + label anchors), matching the paper's
  /// "high level representation of the content".
  static StatusOr<Miniature> Build(const Image& image, int scale);

  /// The miniature raster itself.
  const Bitmap& raster() const { return raster_; }

  /// Downscale factor.
  int scale() const { return scale_; }

  /// Size of the full image the miniature represents.
  int full_width() const { return full_width_; }
  int full_height() const { return full_height_; }

  /// Maps a rectangle selected on the miniature to full-image
  /// coordinates (the "define a view on the representation" operation).
  Rect ToFullImage(const Rect& on_miniature) const;

  /// Maps a full-image rectangle to miniature coordinates (for drawing
  /// the current view's outline on the representation).
  Rect ToMiniature(const Rect& on_full) const;

  /// Bytes transferring the miniature costs.
  uint64_t ByteSize() const { return raster_.ByteSize(); }

 private:
  Miniature() = default;

  Bitmap raster_;
  int scale_ = 1;
  int full_width_ = 0;
  int full_height_ = 0;
};

}  // namespace minos::image

#endif  // MINOS_IMAGE_MINIATURE_H_
