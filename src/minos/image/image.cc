#include "minos/image/image.h"

#include <algorithm>

#include "minos/util/coding.h"

namespace minos::image {

Image Image::FromBitmap(Bitmap bitmap) {
  Image img;
  img.bitmap_ = std::move(bitmap);
  return img;
}

Image Image::FromGraphics(GraphicsImage graphics) {
  Image img;
  img.graphics_ = std::move(graphics);
  return img;
}

int Image::width() const {
  if (bitmap_) return bitmap_->width();
  if (graphics_) return graphics_->width();
  return 0;
}

int Image::height() const {
  if (bitmap_) return bitmap_->height();
  if (graphics_) return graphics_->height();
  return 0;
}

Bitmap Image::Render(const std::vector<uint32_t>& highlighted_ids) const {
  if (bitmap_) return *bitmap_;
  if (graphics_) return Rasterize(*graphics_, highlighted_ids);
  return Bitmap();
}

Bitmap Image::RenderRegion(
    const Rect& r, const std::vector<uint32_t>& highlighted_ids) const {
  if (bitmap_) return bitmap_->SubBitmap(r);
  if (graphics_) {
    // Rasterize only objects intersecting the region, then crop. This is
    // the "system will only retrieve the relevant data" behaviour (§2).
    Bitmap full(graphics_->width(), graphics_->height());
    for (const GraphicsObject& o : graphics_->objects()) {
      if (!o.BoundingBox().Intersects(r)) continue;
      RenderObject(&full, o);
      if (std::find(highlighted_ids.begin(), highlighted_ids.end(), o.id) !=
          highlighted_ids.end()) {
        const Rect bb = o.BoundingBox();
        DrawPolygon(&full,
                    {{bb.x - 2, bb.y - 2},
                     {bb.x + bb.w + 1, bb.y - 2},
                     {bb.x + bb.w + 1, bb.y + bb.h + 1},
                     {bb.x - 2, bb.y + bb.h + 1}},
                    255);
      }
    }
    return full.SubBitmap(r);
  }
  return Bitmap();
}

uint64_t Image::ByteSize() const {
  if (bitmap_) return bitmap_->ByteSize();
  if (graphics_) return graphics_->Serialize().size();
  return 0;
}

uint64_t Image::RegionByteSize(const Rect& r) const {
  const Rect clipped = r.Intersect(Rect{0, 0, width(), height()});
  if (bitmap_) return static_cast<uint64_t>(clipped.area());
  if (graphics_) {
    // Graphics transfers cost the serialized objects intersecting the
    // region.
    uint64_t bytes = 0;
    for (const GraphicsObject& o : graphics_->objects()) {
      if (o.BoundingBox().Intersects(clipped)) {
        bytes += 16 + 8 * o.vertices.size() + o.label.text.size();
      }
    }
    return bytes;
  }
  return 0;
}

StatusOr<GraphicsImage> Image::graphics() const {
  if (!graphics_) {
    return Status::Unsupported("image is a bitmap, not graphics");
  }
  return *graphics_;
}

StatusOr<GraphicsObject> Image::ObjectAt(int x, int y) const {
  if (!graphics_) {
    return Status::Unsupported("image is a bitmap, not graphics");
  }
  return graphics_->ObjectAt(x, y);
}

std::vector<uint32_t> Image::MatchLabels(std::string_view pattern) const {
  if (!graphics_) return {};
  return graphics_->MatchLabels(pattern);
}

std::vector<GraphicsObject> Image::VoiceLabeledObjectsIn(
    const Rect& r) const {
  std::vector<GraphicsObject> out;
  if (!graphics_) return out;
  for (const GraphicsObject& o : graphics_->objects()) {
    if (o.label.kind == LabelKind::kVoice && o.BoundingBox().Intersects(r)) {
      out.push_back(o);
    }
  }
  return out;
}

std::string Image::Serialize() const {
  std::string out;
  if (bitmap_) {
    out.push_back(0);
    out += bitmap_->Serialize();
  } else if (graphics_) {
    out.push_back(1);
    out += graphics_->Serialize();
  } else {
    out.push_back(2);
  }
  return out;
}

StatusOr<Image> Image::Deserialize(std::string_view bytes) {
  if (bytes.empty()) return Status::Corruption("empty image bytes");
  const uint8_t kind = static_cast<uint8_t>(bytes[0]);
  bytes.remove_prefix(1);
  if (kind == 0) {
    MINOS_ASSIGN_OR_RETURN(Bitmap bm, Bitmap::Deserialize(bytes));
    return FromBitmap(std::move(bm));
  }
  if (kind == 1) {
    MINOS_ASSIGN_OR_RETURN(GraphicsImage g,
                           GraphicsImage::Deserialize(bytes));
    return FromGraphics(std::move(g));
  }
  if (kind == 2) return Image();
  return Status::Corruption("bad image kind byte");
}

}  // namespace minos::image
