#ifndef MINOS_IMAGE_GRAPHICS_H_
#define MINOS_IMAGE_GRAPHICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "minos/image/bitmap.h"
#include "minos/util/statusor.h"

namespace minos::image {

/// Integer point.
struct Point {
  int x = 0;
  int y = 0;
  friend bool operator==(const Point&, const Point&) = default;
};

/// Presentation form of a graphics-object label: "The presentation form of
/// a label may be invisible, text label, or voice label." (§2)
enum class LabelKind : uint8_t {
  kNone = 0,       ///< No label at all.
  kInvisible = 1,  ///< Label exists but displays nothing by default.
  kText = 2,       ///< Short text displayed near the object.
  kVoice = 3,      ///< Short voice; an indicator is displayed near the
                   ///< object and the label plays on selection.
};

/// A label attached to a graphics object. For voice labels `text` is the
/// transcript handed to the speech synthesizer; `anchor` is the
/// designer-specified display position.
struct Label {
  LabelKind kind = LabelKind::kNone;
  std::string text;
  Point anchor;  ///< Designer-specified position (relative to the image).
};

/// Kind of a graphics object.
enum class ShapeKind : uint8_t {
  kPoint = 0,
  kPolyline = 1,
  kPolygon = 2,
  kCircle = 3,
};

/// One graphics object: "Images with graphics contain graphics objects
/// such as points, polygons, polylines, circles, etc. Graphics objects may
/// have a label associated with them." (§2)
struct GraphicsObject {
  uint32_t id = 0;
  ShapeKind shape = ShapeKind::kPoint;
  /// kPoint: 1 vertex; kPolyline: >= 2; kPolygon: >= 3 (closed
  /// implicitly); kCircle: vertices[0] = center.
  std::vector<Point> vertices;
  int radius = 0;       ///< kCircle only.
  bool filled = false;  ///< kPolygon / kCircle shading.
  uint8_t ink = 255;
  Label label;

  /// Tight bounding box of the shape.
  Rect BoundingBox() const;

  /// True if (x, y) is on or inside the object (hit testing for the
  /// paper's inverse lookup: "the user can select an object using the
  /// mouse and the system plays or displays the label").
  bool HitTest(int x, int y, int slack = 2) const;
};

/// A vector image: a canvas size plus graphics objects in z-order.
class GraphicsImage {
 public:
  GraphicsImage(int width, int height) : width_(width), height_(height) {}
  GraphicsImage() : GraphicsImage(0, 0) {}

  int width() const { return width_; }
  int height() const { return height_; }

  /// Adds an object; assigns and returns its id.
  uint32_t Add(GraphicsObject object);

  const std::vector<GraphicsObject>& objects() const { return objects_; }

  /// Object by id.
  StatusOr<GraphicsObject> Find(uint32_t id) const;

  /// Topmost object hit at (x, y), if any.
  StatusOr<GraphicsObject> ObjectAt(int x, int y) const;

  /// Ids of objects whose label text contains `pattern` (case-sensitive
  /// substring). Supports "the user can specify a pattern and request that
  /// the objects in which this pattern appears within their label are
  /// highlighted" (§2).
  std::vector<uint32_t> MatchLabels(std::string_view pattern) const;

  /// Serialization for composition files and the archiver.
  std::string Serialize() const;
  static StatusOr<GraphicsImage> Deserialize(std::string_view bytes);

 private:
  int width_;
  int height_;
  uint32_t next_id_ = 1;
  std::vector<GraphicsObject> objects_;
};

}  // namespace minos::image

#endif  // MINOS_IMAGE_GRAPHICS_H_
