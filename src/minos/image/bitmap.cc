#include "minos/image/bitmap.h"

#include <algorithm>

#include "minos/util/coding.h"
#include "minos/util/string_util.h"

namespace minos::image {

Rect Rect::Intersect(const Rect& o) const {
  const int x0 = std::max(x, o.x);
  const int y0 = std::max(y, o.y);
  const int x1 = std::min(x + w, o.x + o.w);
  const int y1 = std::min(y + h, o.y + o.h);
  if (x1 <= x0 || y1 <= y0) return Rect{};
  return Rect{x0, y0, x1 - x0, y1 - y0};
}

Bitmap::Bitmap(int width, int height)
    : width_(std::max(width, 0)),
      height_(std::max(height, 0)),
      pixels_(static_cast<size_t>(width_) * static_cast<size_t>(height_),
              0) {}

uint8_t Bitmap::At(int x, int y) const {
  if (x < 0 || y < 0 || x >= width_ || y >= height_) return 0;
  return pixels_[static_cast<size_t>(y) * width_ + x];
}

void Bitmap::Set(int x, int y, uint8_t ink) {
  if (x < 0 || y < 0 || x >= width_ || y >= height_) return;
  pixels_[static_cast<size_t>(y) * width_ + x] = ink;
}

void Bitmap::Blend(int x, int y, uint8_t ink) {
  if (x < 0 || y < 0 || x >= width_ || y >= height_) return;
  uint8_t& p = pixels_[static_cast<size_t>(y) * width_ + x];
  p = std::max(p, ink);
}

void Bitmap::Fill(uint8_t ink) {
  std::fill(pixels_.begin(), pixels_.end(), ink);
}

void Bitmap::FillRect(const Rect& r, uint8_t ink) {
  const Rect c = r.Intersect(Rect{0, 0, width_, height_});
  for (int y = c.y; y < c.y + c.h; ++y) {
    for (int x = c.x; x < c.x + c.w; ++x) {
      pixels_[static_cast<size_t>(y) * width_ + x] = ink;
    }
  }
}

void Bitmap::Blit(const Bitmap& src, int x, int y) {
  for (int sy = 0; sy < src.height_; ++sy) {
    for (int sx = 0; sx < src.width_; ++sx) {
      Set(x + sx, y + sy, src.At(sx, sy));
    }
  }
}

void Bitmap::BlendOver(const Bitmap& src, int x, int y) {
  for (int sy = 0; sy < src.height_; ++sy) {
    for (int sx = 0; sx < src.width_; ++sx) {
      Blend(x + sx, y + sy, src.At(sx, sy));
    }
  }
}

void Bitmap::OverwriteBy(const Bitmap& src, int x, int y) {
  for (int sy = 0; sy < src.height_; ++sy) {
    for (int sx = 0; sx < src.width_; ++sx) {
      const uint8_t ink = src.At(sx, sy);
      if (ink > 0) Set(x + sx, y + sy, ink);
    }
  }
}

Bitmap Bitmap::SubBitmap(const Rect& r) const {
  Bitmap out(r.w, r.h);
  for (int y = 0; y < r.h; ++y) {
    for (int x = 0; x < r.w; ++x) {
      out.Set(x, y, At(r.x + x, r.y + y));
    }
  }
  return out;
}

uint64_t Bitmap::Digest() const {
  std::string header;
  PutFixed32(&header, static_cast<uint32_t>(width_));
  PutFixed32(&header, static_cast<uint32_t>(height_));
  uint64_t h = Fnv1a64(header);
  // Continue the FNV stream over the pixel data.
  for (uint8_t p : pixels_) {
    h ^= p;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string Bitmap::Serialize() const {
  std::string out;
  PutVarint32(&out, static_cast<uint32_t>(width_));
  PutVarint32(&out, static_cast<uint32_t>(height_));
  out.append(reinterpret_cast<const char*>(pixels_.data()), pixels_.size());
  return out;
}

StatusOr<Bitmap> Bitmap::Deserialize(std::string_view bytes) {
  Decoder dec(bytes);
  uint32_t w = 0, h = 0;
  MINOS_RETURN_IF_ERROR(dec.GetVarint32(&w));
  MINOS_RETURN_IF_ERROR(dec.GetVarint32(&h));
  const uint64_t need = static_cast<uint64_t>(w) * h;
  if (dec.remaining() < need) {
    return Status::Corruption("bitmap pixel data truncated");
  }
  std::string pixels;
  MINOS_RETURN_IF_ERROR(dec.GetRaw(static_cast<size_t>(need), &pixels));
  Bitmap bm(static_cast<int>(w), static_cast<int>(h));
  for (size_t i = 0; i < pixels.size(); ++i) {
    bm.pixels_[i] = static_cast<uint8_t>(pixels[i]);
  }
  return bm;
}

}  // namespace minos::image
