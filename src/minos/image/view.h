#ifndef MINOS_IMAGE_VIEW_H_
#define MINOS_IMAGE_VIEW_H_

#include <cstdint>
#include <vector>

#include "minos/image/image.h"
#include "minos/util/statusor.h"

namespace minos::image {

/// A view: "a rectangle overlaid on an image. The portion of the image
/// which is enclosed by the rectangle is presented into the display ...
/// The view can be moved at the top of the image using menu options and
/// the mouse ... The dimensions of the view can be shrunk or expanded"
/// (§2). The view tracks the bytes it caused to be transferred, which is
/// what the VIEW-1 experiment measures against full-image retrieval.
class View {
 public:
  /// Creates a view over `image` (borrowed; must outlive the view).
  /// The rectangle is clamped into the image.
  View(const Image* image, Rect rect);

  /// Current view rectangle.
  const Rect& rect() const { return rect_; }

  /// Moves by a delta (clamped). If the voice option is on, returns the
  /// voice-labeled objects newly intersecting the view (the system "plays
  /// the voice labels which are encountered as the view moves").
  std::vector<GraphicsObject> Move(int dx, int dy);

  /// Non-contiguous move (jump) to an absolute position (clamped).
  std::vector<GraphicsObject> JumpTo(int x, int y);

  /// Grows each dimension by (dw, dh), anchored at the center (clamped;
  /// minimum size 1x1). "When the size increases new labels may be
  /// played" — newly covered voice labels are returned.
  std::vector<GraphicsObject> Resize(int dw, int dh);

  /// Retrieves the data under the view: renders the region and charges
  /// `RegionByteSize` to the transfer counter.
  Bitmap Retrieve();

  /// Total bytes retrieved through this view so far.
  uint64_t bytes_transferred() const { return bytes_transferred_; }

  /// Voice-label playback option (§2: "If the voice option has been
  /// turned on...").
  void set_voice_option(bool on) { voice_option_ = on; }
  bool voice_option() const { return voice_option_; }

 private:
  Rect Clamp(Rect r) const;
  std::vector<GraphicsObject> NewVoiceLabels(const Rect& before,
                                             const Rect& after) const;

  const Image* image_;
  Rect rect_;
  bool voice_option_ = false;
  uint64_t bytes_transferred_ = 0;
};

}  // namespace minos::image

#endif  // MINOS_IMAGE_VIEW_H_
