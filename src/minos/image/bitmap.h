#ifndef MINOS_IMAGE_BITMAP_H_
#define MINOS_IMAGE_BITMAP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "minos/util/status.h"
#include "minos/util/statusor.h"

namespace minos::image {

/// Integer rectangle (x, y are the top-left corner; w, h >= 0).
struct Rect {
  int x = 0;
  int y = 0;
  int w = 0;
  int h = 0;

  bool Contains(int px, int py) const {
    return px >= x && px < x + w && py >= y && py < y + h;
  }
  bool Intersects(const Rect& o) const {
    return x < o.x + o.w && o.x < x + w && y < o.y + o.h && o.y < y + h;
  }
  /// Intersection (empty rect with w=h=0 when disjoint).
  Rect Intersect(const Rect& o) const;
  int area() const { return w * h; }
  friend bool operator==(const Rect&, const Rect&) = default;
};

/// 8-bit "ink" raster. Pixel value 0 means blank paper; larger values mean
/// darker ink. The ink convention makes the paper's page-compositing
/// primitives natural:
///   * transparency: new page ink is laid over the old page (max),
///   * overwrite: inked pixels replace, blank pixels leave intact.
class Bitmap {
 public:
  /// Creates a blank (all-zero) bitmap. Dimensions must be non-negative.
  Bitmap(int width, int height);
  Bitmap() : Bitmap(0, 0) {}

  int width() const { return width_; }
  int height() const { return height_; }
  bool empty() const { return width_ == 0 || height_ == 0; }

  /// Pixel access; out-of-bounds reads return 0, writes are ignored.
  uint8_t At(int x, int y) const;
  void Set(int x, int y, uint8_t ink);

  /// Darkens a pixel (max with existing ink).
  void Blend(int x, int y, uint8_t ink);

  /// Fills the whole bitmap with `ink`.
  void Fill(uint8_t ink);

  /// Fills a rectangle (clipped).
  void FillRect(const Rect& r, uint8_t ink);

  /// Copies `src` so its top-left lands at (x, y), overwriting (clipped).
  void Blit(const Bitmap& src, int x, int y);

  /// Lays `src` ink over this bitmap (max per pixel) — the transparency
  /// compositing rule.
  void BlendOver(const Bitmap& src, int x, int y);

  /// Replaces pixels wherever `src` has ink, leaves the rest intact — the
  /// overwrite compositing rule (§2: "the bitmaps, lines, and shades of
  /// the overwrite image replace whatever existed in the previous page but
  /// they leave anything else intact").
  void OverwriteBy(const Bitmap& src, int x, int y);

  /// Extracts a (clipped) sub-rectangle as a new bitmap of size r.w x r.h;
  /// parts outside this bitmap read as blank.
  Bitmap SubBitmap(const Rect& r) const;

  /// Raw row-major pixels.
  const std::vector<uint8_t>& pixels() const { return pixels_; }

  /// Bytes a transfer of this bitmap costs (1 byte/pixel).
  uint64_t ByteSize() const {
    return static_cast<uint64_t>(width_) * static_cast<uint64_t>(height_);
  }

  /// Deterministic content digest (FNV-1a over dimensions and pixels).
  uint64_t Digest() const;

  /// Serialization for composition files and the archiver.
  std::string Serialize() const;
  static StatusOr<Bitmap> Deserialize(std::string_view bytes);

  friend bool operator==(const Bitmap& a, const Bitmap& b) {
    return a.width_ == b.width_ && a.height_ == b.height_ &&
           a.pixels_ == b.pixels_;
  }

 private:
  int width_;
  int height_;
  std::vector<uint8_t> pixels_;
};

}  // namespace minos::image

#endif  // MINOS_IMAGE_BITMAP_H_
