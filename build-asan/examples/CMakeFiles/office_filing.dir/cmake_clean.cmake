file(REMOVE_RECURSE
  "CMakeFiles/office_filing.dir/office_filing.cpp.o"
  "CMakeFiles/office_filing.dir/office_filing.cpp.o.d"
  "office_filing"
  "office_filing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/office_filing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
