# Empty dependencies file for office_filing.
# This may be replaced when dependencies are built.
