# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-asan/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("minos/util")
subdirs("minos/obs")
subdirs("minos/storage")
subdirs("minos/text")
subdirs("minos/voice")
subdirs("minos/image")
subdirs("minos/render")
subdirs("minos/audio")
subdirs("minos/object")
subdirs("minos/format")
subdirs("minos/core")
subdirs("minos/server")
