# Empty compiler generated dependencies file for minos_object.
# This may be replaced when dependencies are built.
