file(REMOVE_RECURSE
  "libminos_object.a"
)
