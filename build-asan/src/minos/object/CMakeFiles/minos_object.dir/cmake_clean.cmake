file(REMOVE_RECURSE
  "CMakeFiles/minos_object.dir/descriptor.cc.o"
  "CMakeFiles/minos_object.dir/descriptor.cc.o.d"
  "CMakeFiles/minos_object.dir/multimedia_object.cc.o"
  "CMakeFiles/minos_object.dir/multimedia_object.cc.o.d"
  "CMakeFiles/minos_object.dir/part_codec.cc.o"
  "CMakeFiles/minos_object.dir/part_codec.cc.o.d"
  "libminos_object.a"
  "libminos_object.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minos_object.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
