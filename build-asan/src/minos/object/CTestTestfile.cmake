# CMake generated Testfile for 
# Source directory: /root/repo/src/minos/object
# Build directory: /root/repo/build-asan/src/minos/object
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
