file(REMOVE_RECURSE
  "libminos_core.a"
)
