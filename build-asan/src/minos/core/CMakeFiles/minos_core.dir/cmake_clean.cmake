file(REMOVE_RECURSE
  "CMakeFiles/minos_core.dir/audio_browser.cc.o"
  "CMakeFiles/minos_core.dir/audio_browser.cc.o.d"
  "CMakeFiles/minos_core.dir/editing_preview.cc.o"
  "CMakeFiles/minos_core.dir/editing_preview.cc.o.d"
  "CMakeFiles/minos_core.dir/events.cc.o"
  "CMakeFiles/minos_core.dir/events.cc.o.d"
  "CMakeFiles/minos_core.dir/message_player.cc.o"
  "CMakeFiles/minos_core.dir/message_player.cc.o.d"
  "CMakeFiles/minos_core.dir/page_compositor.cc.o"
  "CMakeFiles/minos_core.dir/page_compositor.cc.o.d"
  "CMakeFiles/minos_core.dir/presentation_manager.cc.o"
  "CMakeFiles/minos_core.dir/presentation_manager.cc.o.d"
  "CMakeFiles/minos_core.dir/visual_browser.cc.o"
  "CMakeFiles/minos_core.dir/visual_browser.cc.o.d"
  "libminos_core.a"
  "libminos_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minos_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
