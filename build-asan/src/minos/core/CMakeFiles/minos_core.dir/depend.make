# Empty dependencies file for minos_core.
# This may be replaced when dependencies are built.
