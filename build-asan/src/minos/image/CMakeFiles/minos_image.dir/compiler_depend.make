# Empty compiler generated dependencies file for minos_image.
# This may be replaced when dependencies are built.
