
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minos/image/bitmap.cc" "src/minos/image/CMakeFiles/minos_image.dir/bitmap.cc.o" "gcc" "src/minos/image/CMakeFiles/minos_image.dir/bitmap.cc.o.d"
  "/root/repo/src/minos/image/graphics.cc" "src/minos/image/CMakeFiles/minos_image.dir/graphics.cc.o" "gcc" "src/minos/image/CMakeFiles/minos_image.dir/graphics.cc.o.d"
  "/root/repo/src/minos/image/image.cc" "src/minos/image/CMakeFiles/minos_image.dir/image.cc.o" "gcc" "src/minos/image/CMakeFiles/minos_image.dir/image.cc.o.d"
  "/root/repo/src/minos/image/miniature.cc" "src/minos/image/CMakeFiles/minos_image.dir/miniature.cc.o" "gcc" "src/minos/image/CMakeFiles/minos_image.dir/miniature.cc.o.d"
  "/root/repo/src/minos/image/raster.cc" "src/minos/image/CMakeFiles/minos_image.dir/raster.cc.o" "gcc" "src/minos/image/CMakeFiles/minos_image.dir/raster.cc.o.d"
  "/root/repo/src/minos/image/tour.cc" "src/minos/image/CMakeFiles/minos_image.dir/tour.cc.o" "gcc" "src/minos/image/CMakeFiles/minos_image.dir/tour.cc.o.d"
  "/root/repo/src/minos/image/view.cc" "src/minos/image/CMakeFiles/minos_image.dir/view.cc.o" "gcc" "src/minos/image/CMakeFiles/minos_image.dir/view.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/minos/util/CMakeFiles/minos_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
