file(REMOVE_RECURSE
  "libminos_image.a"
)
