file(REMOVE_RECURSE
  "CMakeFiles/minos_image.dir/bitmap.cc.o"
  "CMakeFiles/minos_image.dir/bitmap.cc.o.d"
  "CMakeFiles/minos_image.dir/graphics.cc.o"
  "CMakeFiles/minos_image.dir/graphics.cc.o.d"
  "CMakeFiles/minos_image.dir/image.cc.o"
  "CMakeFiles/minos_image.dir/image.cc.o.d"
  "CMakeFiles/minos_image.dir/miniature.cc.o"
  "CMakeFiles/minos_image.dir/miniature.cc.o.d"
  "CMakeFiles/minos_image.dir/raster.cc.o"
  "CMakeFiles/minos_image.dir/raster.cc.o.d"
  "CMakeFiles/minos_image.dir/tour.cc.o"
  "CMakeFiles/minos_image.dir/tour.cc.o.d"
  "CMakeFiles/minos_image.dir/view.cc.o"
  "CMakeFiles/minos_image.dir/view.cc.o.d"
  "libminos_image.a"
  "libminos_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minos_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
