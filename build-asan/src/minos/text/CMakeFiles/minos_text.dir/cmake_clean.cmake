file(REMOVE_RECURSE
  "CMakeFiles/minos_text.dir/document.cc.o"
  "CMakeFiles/minos_text.dir/document.cc.o.d"
  "CMakeFiles/minos_text.dir/formatter.cc.o"
  "CMakeFiles/minos_text.dir/formatter.cc.o.d"
  "CMakeFiles/minos_text.dir/markup.cc.o"
  "CMakeFiles/minos_text.dir/markup.cc.o.d"
  "CMakeFiles/minos_text.dir/search.cc.o"
  "CMakeFiles/minos_text.dir/search.cc.o.d"
  "libminos_text.a"
  "libminos_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minos_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
