# Empty dependencies file for minos_text.
# This may be replaced when dependencies are built.
