file(REMOVE_RECURSE
  "libminos_text.a"
)
