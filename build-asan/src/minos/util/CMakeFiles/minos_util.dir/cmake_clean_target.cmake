file(REMOVE_RECURSE
  "libminos_util.a"
)
