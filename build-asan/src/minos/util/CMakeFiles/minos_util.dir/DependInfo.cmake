
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minos/util/clock.cc" "src/minos/util/CMakeFiles/minos_util.dir/clock.cc.o" "gcc" "src/minos/util/CMakeFiles/minos_util.dir/clock.cc.o.d"
  "/root/repo/src/minos/util/coding.cc" "src/minos/util/CMakeFiles/minos_util.dir/coding.cc.o" "gcc" "src/minos/util/CMakeFiles/minos_util.dir/coding.cc.o.d"
  "/root/repo/src/minos/util/logging.cc" "src/minos/util/CMakeFiles/minos_util.dir/logging.cc.o" "gcc" "src/minos/util/CMakeFiles/minos_util.dir/logging.cc.o.d"
  "/root/repo/src/minos/util/random.cc" "src/minos/util/CMakeFiles/minos_util.dir/random.cc.o" "gcc" "src/minos/util/CMakeFiles/minos_util.dir/random.cc.o.d"
  "/root/repo/src/minos/util/status.cc" "src/minos/util/CMakeFiles/minos_util.dir/status.cc.o" "gcc" "src/minos/util/CMakeFiles/minos_util.dir/status.cc.o.d"
  "/root/repo/src/minos/util/string_util.cc" "src/minos/util/CMakeFiles/minos_util.dir/string_util.cc.o" "gcc" "src/minos/util/CMakeFiles/minos_util.dir/string_util.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
