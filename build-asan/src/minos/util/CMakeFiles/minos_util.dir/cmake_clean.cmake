file(REMOVE_RECURSE
  "CMakeFiles/minos_util.dir/clock.cc.o"
  "CMakeFiles/minos_util.dir/clock.cc.o.d"
  "CMakeFiles/minos_util.dir/coding.cc.o"
  "CMakeFiles/minos_util.dir/coding.cc.o.d"
  "CMakeFiles/minos_util.dir/logging.cc.o"
  "CMakeFiles/minos_util.dir/logging.cc.o.d"
  "CMakeFiles/minos_util.dir/random.cc.o"
  "CMakeFiles/minos_util.dir/random.cc.o.d"
  "CMakeFiles/minos_util.dir/status.cc.o"
  "CMakeFiles/minos_util.dir/status.cc.o.d"
  "CMakeFiles/minos_util.dir/string_util.cc.o"
  "CMakeFiles/minos_util.dir/string_util.cc.o.d"
  "libminos_util.a"
  "libminos_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minos_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
