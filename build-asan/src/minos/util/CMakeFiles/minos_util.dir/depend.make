# Empty dependencies file for minos_util.
# This may be replaced when dependencies are built.
