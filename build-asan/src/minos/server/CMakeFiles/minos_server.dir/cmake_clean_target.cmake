file(REMOVE_RECURSE
  "libminos_server.a"
)
