file(REMOVE_RECURSE
  "CMakeFiles/minos_server.dir/fault.cc.o"
  "CMakeFiles/minos_server.dir/fault.cc.o.d"
  "CMakeFiles/minos_server.dir/link.cc.o"
  "CMakeFiles/minos_server.dir/link.cc.o.d"
  "CMakeFiles/minos_server.dir/object_server.cc.o"
  "CMakeFiles/minos_server.dir/object_server.cc.o.d"
  "CMakeFiles/minos_server.dir/prefetch.cc.o"
  "CMakeFiles/minos_server.dir/prefetch.cc.o.d"
  "CMakeFiles/minos_server.dir/workstation.cc.o"
  "CMakeFiles/minos_server.dir/workstation.cc.o.d"
  "libminos_server.a"
  "libminos_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minos_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
