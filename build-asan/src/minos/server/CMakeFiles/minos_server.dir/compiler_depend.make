# Empty compiler generated dependencies file for minos_server.
# This may be replaced when dependencies are built.
