# Empty compiler generated dependencies file for minos_audio.
# This may be replaced when dependencies are built.
