file(REMOVE_RECURSE
  "libminos_audio.a"
)
