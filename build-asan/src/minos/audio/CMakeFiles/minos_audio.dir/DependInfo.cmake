
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minos/audio/audio_device.cc" "src/minos/audio/CMakeFiles/minos_audio.dir/audio_device.cc.o" "gcc" "src/minos/audio/CMakeFiles/minos_audio.dir/audio_device.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/minos/util/CMakeFiles/minos_util.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/minos/voice/CMakeFiles/minos_voice.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/minos/text/CMakeFiles/minos_text.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/minos/obs/CMakeFiles/minos_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
