file(REMOVE_RECURSE
  "CMakeFiles/minos_audio.dir/audio_device.cc.o"
  "CMakeFiles/minos_audio.dir/audio_device.cc.o.d"
  "libminos_audio.a"
  "libminos_audio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minos_audio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
