file(REMOVE_RECURSE
  "libminos_voice.a"
)
