# Empty compiler generated dependencies file for minos_voice.
# This may be replaced when dependencies are built.
