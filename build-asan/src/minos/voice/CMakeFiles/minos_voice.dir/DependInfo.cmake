
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minos/voice/audio_pages.cc" "src/minos/voice/CMakeFiles/minos_voice.dir/audio_pages.cc.o" "gcc" "src/minos/voice/CMakeFiles/minos_voice.dir/audio_pages.cc.o.d"
  "/root/repo/src/minos/voice/pause.cc" "src/minos/voice/CMakeFiles/minos_voice.dir/pause.cc.o" "gcc" "src/minos/voice/CMakeFiles/minos_voice.dir/pause.cc.o.d"
  "/root/repo/src/minos/voice/pcm.cc" "src/minos/voice/CMakeFiles/minos_voice.dir/pcm.cc.o" "gcc" "src/minos/voice/CMakeFiles/minos_voice.dir/pcm.cc.o.d"
  "/root/repo/src/minos/voice/recognizer.cc" "src/minos/voice/CMakeFiles/minos_voice.dir/recognizer.cc.o" "gcc" "src/minos/voice/CMakeFiles/minos_voice.dir/recognizer.cc.o.d"
  "/root/repo/src/minos/voice/synthesizer.cc" "src/minos/voice/CMakeFiles/minos_voice.dir/synthesizer.cc.o" "gcc" "src/minos/voice/CMakeFiles/minos_voice.dir/synthesizer.cc.o.d"
  "/root/repo/src/minos/voice/voice_document.cc" "src/minos/voice/CMakeFiles/minos_voice.dir/voice_document.cc.o" "gcc" "src/minos/voice/CMakeFiles/minos_voice.dir/voice_document.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/minos/util/CMakeFiles/minos_util.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/minos/text/CMakeFiles/minos_text.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/minos/obs/CMakeFiles/minos_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
