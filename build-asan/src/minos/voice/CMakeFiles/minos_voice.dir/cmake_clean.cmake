file(REMOVE_RECURSE
  "CMakeFiles/minos_voice.dir/audio_pages.cc.o"
  "CMakeFiles/minos_voice.dir/audio_pages.cc.o.d"
  "CMakeFiles/minos_voice.dir/pause.cc.o"
  "CMakeFiles/minos_voice.dir/pause.cc.o.d"
  "CMakeFiles/minos_voice.dir/pcm.cc.o"
  "CMakeFiles/minos_voice.dir/pcm.cc.o.d"
  "CMakeFiles/minos_voice.dir/recognizer.cc.o"
  "CMakeFiles/minos_voice.dir/recognizer.cc.o.d"
  "CMakeFiles/minos_voice.dir/synthesizer.cc.o"
  "CMakeFiles/minos_voice.dir/synthesizer.cc.o.d"
  "CMakeFiles/minos_voice.dir/voice_document.cc.o"
  "CMakeFiles/minos_voice.dir/voice_document.cc.o.d"
  "libminos_voice.a"
  "libminos_voice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minos_voice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
