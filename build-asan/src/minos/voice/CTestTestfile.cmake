# CMake generated Testfile for 
# Source directory: /root/repo/src/minos/voice
# Build directory: /root/repo/build-asan/src/minos/voice
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
