file(REMOVE_RECURSE
  "libminos_format.a"
)
