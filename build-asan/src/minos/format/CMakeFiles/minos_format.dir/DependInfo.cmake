
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minos/format/archive_mailer.cc" "src/minos/format/CMakeFiles/minos_format.dir/archive_mailer.cc.o" "gcc" "src/minos/format/CMakeFiles/minos_format.dir/archive_mailer.cc.o.d"
  "/root/repo/src/minos/format/object_formatter.cc" "src/minos/format/CMakeFiles/minos_format.dir/object_formatter.cc.o" "gcc" "src/minos/format/CMakeFiles/minos_format.dir/object_formatter.cc.o.d"
  "/root/repo/src/minos/format/synthesis.cc" "src/minos/format/CMakeFiles/minos_format.dir/synthesis.cc.o" "gcc" "src/minos/format/CMakeFiles/minos_format.dir/synthesis.cc.o.d"
  "/root/repo/src/minos/format/workspace.cc" "src/minos/format/CMakeFiles/minos_format.dir/workspace.cc.o" "gcc" "src/minos/format/CMakeFiles/minos_format.dir/workspace.cc.o.d"
  "/root/repo/src/minos/format/workspace_store.cc" "src/minos/format/CMakeFiles/minos_format.dir/workspace_store.cc.o" "gcc" "src/minos/format/CMakeFiles/minos_format.dir/workspace_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/minos/object/CMakeFiles/minos_object.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/minos/storage/CMakeFiles/minos_storage.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/minos/voice/CMakeFiles/minos_voice.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/minos/text/CMakeFiles/minos_text.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/minos/obs/CMakeFiles/minos_obs.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/minos/image/CMakeFiles/minos_image.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/minos/util/CMakeFiles/minos_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
