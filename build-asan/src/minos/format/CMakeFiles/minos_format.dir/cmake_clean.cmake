file(REMOVE_RECURSE
  "CMakeFiles/minos_format.dir/archive_mailer.cc.o"
  "CMakeFiles/minos_format.dir/archive_mailer.cc.o.d"
  "CMakeFiles/minos_format.dir/object_formatter.cc.o"
  "CMakeFiles/minos_format.dir/object_formatter.cc.o.d"
  "CMakeFiles/minos_format.dir/synthesis.cc.o"
  "CMakeFiles/minos_format.dir/synthesis.cc.o.d"
  "CMakeFiles/minos_format.dir/workspace.cc.o"
  "CMakeFiles/minos_format.dir/workspace.cc.o.d"
  "CMakeFiles/minos_format.dir/workspace_store.cc.o"
  "CMakeFiles/minos_format.dir/workspace_store.cc.o.d"
  "libminos_format.a"
  "libminos_format.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minos_format.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
