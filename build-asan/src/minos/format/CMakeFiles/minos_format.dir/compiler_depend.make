# Empty compiler generated dependencies file for minos_format.
# This may be replaced when dependencies are built.
