file(REMOVE_RECURSE
  "CMakeFiles/minos_storage.dir/archiver.cc.o"
  "CMakeFiles/minos_storage.dir/archiver.cc.o.d"
  "CMakeFiles/minos_storage.dir/block_cache.cc.o"
  "CMakeFiles/minos_storage.dir/block_cache.cc.o.d"
  "CMakeFiles/minos_storage.dir/block_device.cc.o"
  "CMakeFiles/minos_storage.dir/block_device.cc.o.d"
  "CMakeFiles/minos_storage.dir/composition_file.cc.o"
  "CMakeFiles/minos_storage.dir/composition_file.cc.o.d"
  "CMakeFiles/minos_storage.dir/data_directory.cc.o"
  "CMakeFiles/minos_storage.dir/data_directory.cc.o.d"
  "CMakeFiles/minos_storage.dir/file_store.cc.o"
  "CMakeFiles/minos_storage.dir/file_store.cc.o.d"
  "CMakeFiles/minos_storage.dir/request_scheduler.cc.o"
  "CMakeFiles/minos_storage.dir/request_scheduler.cc.o.d"
  "CMakeFiles/minos_storage.dir/version_store.cc.o"
  "CMakeFiles/minos_storage.dir/version_store.cc.o.d"
  "libminos_storage.a"
  "libminos_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minos_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
