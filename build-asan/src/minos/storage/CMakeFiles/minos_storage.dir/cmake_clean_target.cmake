file(REMOVE_RECURSE
  "libminos_storage.a"
)
