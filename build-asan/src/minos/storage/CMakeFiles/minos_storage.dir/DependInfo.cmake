
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minos/storage/archiver.cc" "src/minos/storage/CMakeFiles/minos_storage.dir/archiver.cc.o" "gcc" "src/minos/storage/CMakeFiles/minos_storage.dir/archiver.cc.o.d"
  "/root/repo/src/minos/storage/block_cache.cc" "src/minos/storage/CMakeFiles/minos_storage.dir/block_cache.cc.o" "gcc" "src/minos/storage/CMakeFiles/minos_storage.dir/block_cache.cc.o.d"
  "/root/repo/src/minos/storage/block_device.cc" "src/minos/storage/CMakeFiles/minos_storage.dir/block_device.cc.o" "gcc" "src/minos/storage/CMakeFiles/minos_storage.dir/block_device.cc.o.d"
  "/root/repo/src/minos/storage/composition_file.cc" "src/minos/storage/CMakeFiles/minos_storage.dir/composition_file.cc.o" "gcc" "src/minos/storage/CMakeFiles/minos_storage.dir/composition_file.cc.o.d"
  "/root/repo/src/minos/storage/data_directory.cc" "src/minos/storage/CMakeFiles/minos_storage.dir/data_directory.cc.o" "gcc" "src/minos/storage/CMakeFiles/minos_storage.dir/data_directory.cc.o.d"
  "/root/repo/src/minos/storage/file_store.cc" "src/minos/storage/CMakeFiles/minos_storage.dir/file_store.cc.o" "gcc" "src/minos/storage/CMakeFiles/minos_storage.dir/file_store.cc.o.d"
  "/root/repo/src/minos/storage/request_scheduler.cc" "src/minos/storage/CMakeFiles/minos_storage.dir/request_scheduler.cc.o" "gcc" "src/minos/storage/CMakeFiles/minos_storage.dir/request_scheduler.cc.o.d"
  "/root/repo/src/minos/storage/version_store.cc" "src/minos/storage/CMakeFiles/minos_storage.dir/version_store.cc.o" "gcc" "src/minos/storage/CMakeFiles/minos_storage.dir/version_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/minos/util/CMakeFiles/minos_util.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/minos/obs/CMakeFiles/minos_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
