# Empty dependencies file for minos_storage.
# This may be replaced when dependencies are built.
