
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minos/obs/export.cc" "src/minos/obs/CMakeFiles/minos_obs.dir/export.cc.o" "gcc" "src/minos/obs/CMakeFiles/minos_obs.dir/export.cc.o.d"
  "/root/repo/src/minos/obs/json.cc" "src/minos/obs/CMakeFiles/minos_obs.dir/json.cc.o" "gcc" "src/minos/obs/CMakeFiles/minos_obs.dir/json.cc.o.d"
  "/root/repo/src/minos/obs/metrics.cc" "src/minos/obs/CMakeFiles/minos_obs.dir/metrics.cc.o" "gcc" "src/minos/obs/CMakeFiles/minos_obs.dir/metrics.cc.o.d"
  "/root/repo/src/minos/obs/trace.cc" "src/minos/obs/CMakeFiles/minos_obs.dir/trace.cc.o" "gcc" "src/minos/obs/CMakeFiles/minos_obs.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/minos/util/CMakeFiles/minos_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
