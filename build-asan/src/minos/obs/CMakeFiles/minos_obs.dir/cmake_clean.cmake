file(REMOVE_RECURSE
  "CMakeFiles/minos_obs.dir/export.cc.o"
  "CMakeFiles/minos_obs.dir/export.cc.o.d"
  "CMakeFiles/minos_obs.dir/json.cc.o"
  "CMakeFiles/minos_obs.dir/json.cc.o.d"
  "CMakeFiles/minos_obs.dir/metrics.cc.o"
  "CMakeFiles/minos_obs.dir/metrics.cc.o.d"
  "CMakeFiles/minos_obs.dir/trace.cc.o"
  "CMakeFiles/minos_obs.dir/trace.cc.o.d"
  "libminos_obs.a"
  "libminos_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minos_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
