file(REMOVE_RECURSE
  "libminos_obs.a"
)
