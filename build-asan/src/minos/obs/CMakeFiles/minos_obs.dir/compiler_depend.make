# Empty compiler generated dependencies file for minos_obs.
# This may be replaced when dependencies are built.
