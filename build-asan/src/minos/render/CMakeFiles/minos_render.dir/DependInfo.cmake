
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minos/render/export.cc" "src/minos/render/CMakeFiles/minos_render.dir/export.cc.o" "gcc" "src/minos/render/CMakeFiles/minos_render.dir/export.cc.o.d"
  "/root/repo/src/minos/render/font5x7.cc" "src/minos/render/CMakeFiles/minos_render.dir/font5x7.cc.o" "gcc" "src/minos/render/CMakeFiles/minos_render.dir/font5x7.cc.o.d"
  "/root/repo/src/minos/render/screen.cc" "src/minos/render/CMakeFiles/minos_render.dir/screen.cc.o" "gcc" "src/minos/render/CMakeFiles/minos_render.dir/screen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/minos/util/CMakeFiles/minos_util.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/minos/image/CMakeFiles/minos_image.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/minos/text/CMakeFiles/minos_text.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/minos/obs/CMakeFiles/minos_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
