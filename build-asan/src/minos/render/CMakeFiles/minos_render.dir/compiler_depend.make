# Empty compiler generated dependencies file for minos_render.
# This may be replaced when dependencies are built.
