file(REMOVE_RECURSE
  "libminos_render.a"
)
