file(REMOVE_RECURSE
  "CMakeFiles/minos_render.dir/export.cc.o"
  "CMakeFiles/minos_render.dir/export.cc.o.d"
  "CMakeFiles/minos_render.dir/font5x7.cc.o"
  "CMakeFiles/minos_render.dir/font5x7.cc.o.d"
  "CMakeFiles/minos_render.dir/screen.cc.o"
  "CMakeFiles/minos_render.dir/screen.cc.o.d"
  "libminos_render.a"
  "libminos_render.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minos_render.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
