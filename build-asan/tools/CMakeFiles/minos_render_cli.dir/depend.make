# Empty dependencies file for minos_render_cli.
# This may be replaced when dependencies are built.
