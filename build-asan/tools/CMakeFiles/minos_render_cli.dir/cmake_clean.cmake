file(REMOVE_RECURSE
  "CMakeFiles/minos_render_cli.dir/minos_render.cc.o"
  "CMakeFiles/minos_render_cli.dir/minos_render.cc.o.d"
  "minos-render"
  "minos-render.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minos_render_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
