# Empty compiler generated dependencies file for ablation_audio_paging.
# This may be replaced when dependencies are built.
