file(REMOVE_RECURSE
  "CMakeFiles/ablation_audio_paging.dir/ablation_audio_paging.cc.o"
  "CMakeFiles/ablation_audio_paging.dir/ablation_audio_paging.cc.o.d"
  "ablation_audio_paging"
  "ablation_audio_paging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_audio_paging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
