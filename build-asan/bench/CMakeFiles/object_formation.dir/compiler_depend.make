# Empty compiler generated dependencies file for object_formation.
# This may be replaced when dependencies are built.
