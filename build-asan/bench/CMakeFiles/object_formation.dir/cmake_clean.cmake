file(REMOVE_RECURSE
  "CMakeFiles/object_formation.dir/object_formation.cc.o"
  "CMakeFiles/object_formation.dir/object_formation.cc.o.d"
  "object_formation"
  "object_formation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/object_formation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
