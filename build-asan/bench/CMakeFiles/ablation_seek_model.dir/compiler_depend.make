# Empty compiler generated dependencies file for ablation_seek_model.
# This may be replaced when dependencies are built.
