file(REMOVE_RECURSE
  "CMakeFiles/ablation_seek_model.dir/ablation_seek_model.cc.o"
  "CMakeFiles/ablation_seek_model.dir/ablation_seek_model.cc.o.d"
  "ablation_seek_model"
  "ablation_seek_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_seek_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
