# Empty dependencies file for pause_detection.
# This may be replaced when dependencies are built.
