file(REMOVE_RECURSE
  "CMakeFiles/pause_detection.dir/pause_detection.cc.o"
  "CMakeFiles/pause_detection.dir/pause_detection.cc.o.d"
  "pause_detection"
  "pause_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pause_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
