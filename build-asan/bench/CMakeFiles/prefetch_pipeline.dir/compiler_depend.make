# Empty compiler generated dependencies file for prefetch_pipeline.
# This may be replaced when dependencies are built.
