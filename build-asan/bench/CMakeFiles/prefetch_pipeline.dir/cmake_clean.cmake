file(REMOVE_RECURSE
  "CMakeFiles/prefetch_pipeline.dir/prefetch_pipeline.cc.o"
  "CMakeFiles/prefetch_pipeline.dir/prefetch_pipeline.cc.o.d"
  "prefetch_pipeline"
  "prefetch_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prefetch_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
