file(REMOVE_RECURSE
  "CMakeFiles/fig07_08_relevant_objects.dir/fig07_08_relevant_objects.cc.o"
  "CMakeFiles/fig07_08_relevant_objects.dir/fig07_08_relevant_objects.cc.o.d"
  "fig07_08_relevant_objects"
  "fig07_08_relevant_objects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_08_relevant_objects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
