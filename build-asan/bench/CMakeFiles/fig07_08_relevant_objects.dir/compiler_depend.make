# Empty compiler generated dependencies file for fig07_08_relevant_objects.
# This may be replaced when dependencies are built.
