# Empty compiler generated dependencies file for fig01_02_visual_pages.
# This may be replaced when dependencies are built.
