file(REMOVE_RECURSE
  "CMakeFiles/fig01_02_visual_pages.dir/fig01_02_visual_pages.cc.o"
  "CMakeFiles/fig01_02_visual_pages.dir/fig01_02_visual_pages.cc.o.d"
  "fig01_02_visual_pages"
  "fig01_02_visual_pages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_02_visual_pages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
