file(REMOVE_RECURSE
  "CMakeFiles/server_queueing.dir/server_queueing.cc.o"
  "CMakeFiles/server_queueing.dir/server_queueing.cc.o.d"
  "server_queueing"
  "server_queueing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_queueing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
