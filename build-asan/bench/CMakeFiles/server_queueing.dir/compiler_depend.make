# Empty compiler generated dependencies file for server_queueing.
# This may be replaced when dependencies are built.
