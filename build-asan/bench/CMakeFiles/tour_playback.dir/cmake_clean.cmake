file(REMOVE_RECURSE
  "CMakeFiles/tour_playback.dir/tour_playback.cc.o"
  "CMakeFiles/tour_playback.dir/tour_playback.cc.o.d"
  "tour_playback"
  "tour_playback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tour_playback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
