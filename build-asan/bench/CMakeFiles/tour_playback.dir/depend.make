# Empty dependencies file for tour_playback.
# This may be replaced when dependencies are built.
