file(REMOVE_RECURSE
  "CMakeFiles/fig03_04_visual_logical_message.dir/fig03_04_visual_logical_message.cc.o"
  "CMakeFiles/fig03_04_visual_logical_message.dir/fig03_04_visual_logical_message.cc.o.d"
  "fig03_04_visual_logical_message"
  "fig03_04_visual_logical_message.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_04_visual_logical_message.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
