# Empty dependencies file for fig03_04_visual_logical_message.
# This may be replaced when dependencies are built.
