file(REMOVE_RECURSE
  "CMakeFiles/sym_text_voice_browsing.dir/sym_text_voice_browsing.cc.o"
  "CMakeFiles/sym_text_voice_browsing.dir/sym_text_voice_browsing.cc.o.d"
  "sym_text_voice_browsing"
  "sym_text_voice_browsing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sym_text_voice_browsing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
