# Empty compiler generated dependencies file for sym_text_voice_browsing.
# This may be replaced when dependencies are built.
