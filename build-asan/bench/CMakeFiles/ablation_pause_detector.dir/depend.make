# Empty dependencies file for ablation_pause_detector.
# This may be replaced when dependencies are built.
