file(REMOVE_RECURSE
  "CMakeFiles/ablation_pause_detector.dir/ablation_pause_detector.cc.o"
  "CMakeFiles/ablation_pause_detector.dir/ablation_pause_detector.cc.o.d"
  "ablation_pause_detector"
  "ablation_pause_detector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pause_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
