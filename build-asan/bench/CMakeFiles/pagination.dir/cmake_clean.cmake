file(REMOVE_RECURSE
  "CMakeFiles/pagination.dir/pagination.cc.o"
  "CMakeFiles/pagination.dir/pagination.cc.o.d"
  "pagination"
  "pagination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pagination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
