# Empty dependencies file for pagination.
# This may be replaced when dependencies are built.
