# Empty compiler generated dependencies file for voice_recognition_index.
# This may be replaced when dependencies are built.
