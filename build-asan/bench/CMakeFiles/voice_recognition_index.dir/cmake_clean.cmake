file(REMOVE_RECURSE
  "CMakeFiles/voice_recognition_index.dir/voice_recognition_index.cc.o"
  "CMakeFiles/voice_recognition_index.dir/voice_recognition_index.cc.o.d"
  "voice_recognition_index"
  "voice_recognition_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voice_recognition_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
