# Empty compiler generated dependencies file for minos_scenarios.
# This may be replaced when dependencies are built.
