file(REMOVE_RECURSE
  "CMakeFiles/minos_scenarios.dir/scenario_lib.cc.o"
  "CMakeFiles/minos_scenarios.dir/scenario_lib.cc.o.d"
  "libminos_scenarios.a"
  "libminos_scenarios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minos_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
