file(REMOVE_RECURSE
  "libminos_scenarios.a"
)
