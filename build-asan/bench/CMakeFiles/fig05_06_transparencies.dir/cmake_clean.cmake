file(REMOVE_RECURSE
  "CMakeFiles/fig05_06_transparencies.dir/fig05_06_transparencies.cc.o"
  "CMakeFiles/fig05_06_transparencies.dir/fig05_06_transparencies.cc.o.d"
  "fig05_06_transparencies"
  "fig05_06_transparencies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_06_transparencies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
