# Empty dependencies file for fig05_06_transparencies.
# This may be replaced when dependencies are built.
