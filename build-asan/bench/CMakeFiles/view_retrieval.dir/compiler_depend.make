# Empty compiler generated dependencies file for view_retrieval.
# This may be replaced when dependencies are built.
