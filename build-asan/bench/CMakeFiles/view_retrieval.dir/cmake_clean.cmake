file(REMOVE_RECURSE
  "CMakeFiles/view_retrieval.dir/view_retrieval.cc.o"
  "CMakeFiles/view_retrieval.dir/view_retrieval.cc.o.d"
  "view_retrieval"
  "view_retrieval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/view_retrieval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
