file(REMOVE_RECURSE
  "CMakeFiles/fig09_10_process_simulation.dir/fig09_10_process_simulation.cc.o"
  "CMakeFiles/fig09_10_process_simulation.dir/fig09_10_process_simulation.cc.o.d"
  "fig09_10_process_simulation"
  "fig09_10_process_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_10_process_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
