# Empty dependencies file for fig09_10_process_simulation.
# This may be replaced when dependencies are built.
