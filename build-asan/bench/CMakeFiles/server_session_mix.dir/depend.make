# Empty dependencies file for server_session_mix.
# This may be replaced when dependencies are built.
