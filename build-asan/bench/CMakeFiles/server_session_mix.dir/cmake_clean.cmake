file(REMOVE_RECURSE
  "CMakeFiles/server_session_mix.dir/server_session_mix.cc.o"
  "CMakeFiles/server_session_mix.dir/server_session_mix.cc.o.d"
  "server_session_mix"
  "server_session_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_session_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
