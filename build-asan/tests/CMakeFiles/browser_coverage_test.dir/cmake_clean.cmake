file(REMOVE_RECURSE
  "CMakeFiles/browser_coverage_test.dir/browser_coverage_test.cc.o"
  "CMakeFiles/browser_coverage_test.dir/browser_coverage_test.cc.o.d"
  "browser_coverage_test"
  "browser_coverage_test.pdb"
  "browser_coverage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/browser_coverage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
