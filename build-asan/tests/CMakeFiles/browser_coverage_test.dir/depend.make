# Empty dependencies file for browser_coverage_test.
# This may be replaced when dependencies are built.
