file(REMOVE_RECURSE
  "CMakeFiles/session_property_test.dir/session_property_test.cc.o"
  "CMakeFiles/session_property_test.dir/session_property_test.cc.o.d"
  "session_property_test"
  "session_property_test.pdb"
  "session_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/session_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
