# Empty dependencies file for session_property_test.
# This may be replaced when dependencies are built.
