# Empty dependencies file for multimedia_object_test.
# This may be replaced when dependencies are built.
