file(REMOVE_RECURSE
  "CMakeFiles/multimedia_object_test.dir/multimedia_object_test.cc.o"
  "CMakeFiles/multimedia_object_test.dir/multimedia_object_test.cc.o.d"
  "multimedia_object_test"
  "multimedia_object_test.pdb"
  "multimedia_object_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multimedia_object_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
