file(REMOVE_RECURSE
  "CMakeFiles/api_semantics_test.dir/api_semantics_test.cc.o"
  "CMakeFiles/api_semantics_test.dir/api_semantics_test.cc.o.d"
  "api_semantics_test"
  "api_semantics_test.pdb"
  "api_semantics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/api_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
