# Empty dependencies file for api_semantics_test.
# This may be replaced when dependencies are built.
