file(REMOVE_RECURSE
  "CMakeFiles/archive_mailer_test.dir/archive_mailer_test.cc.o"
  "CMakeFiles/archive_mailer_test.dir/archive_mailer_test.cc.o.d"
  "archive_mailer_test"
  "archive_mailer_test.pdb"
  "archive_mailer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/archive_mailer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
