# Empty dependencies file for archive_mailer_test.
# This may be replaced when dependencies are built.
