# Empty dependencies file for message_overlap_test.
# This may be replaced when dependencies are built.
