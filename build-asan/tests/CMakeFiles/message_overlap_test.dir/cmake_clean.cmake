file(REMOVE_RECURSE
  "CMakeFiles/message_overlap_test.dir/message_overlap_test.cc.o"
  "CMakeFiles/message_overlap_test.dir/message_overlap_test.cc.o.d"
  "message_overlap_test"
  "message_overlap_test.pdb"
  "message_overlap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/message_overlap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
