# Empty dependencies file for request_scheduler_test.
# This may be replaced when dependencies are built.
