file(REMOVE_RECURSE
  "CMakeFiles/request_scheduler_test.dir/request_scheduler_test.cc.o"
  "CMakeFiles/request_scheduler_test.dir/request_scheduler_test.cc.o.d"
  "request_scheduler_test"
  "request_scheduler_test.pdb"
  "request_scheduler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/request_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
