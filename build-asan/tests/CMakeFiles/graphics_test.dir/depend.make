# Empty dependencies file for graphics_test.
# This may be replaced when dependencies are built.
