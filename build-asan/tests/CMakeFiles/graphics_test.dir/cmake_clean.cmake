file(REMOVE_RECURSE
  "CMakeFiles/graphics_test.dir/graphics_test.cc.o"
  "CMakeFiles/graphics_test.dir/graphics_test.cc.o.d"
  "graphics_test"
  "graphics_test.pdb"
  "graphics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
