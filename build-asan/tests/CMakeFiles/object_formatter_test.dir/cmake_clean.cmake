file(REMOVE_RECURSE
  "CMakeFiles/object_formatter_test.dir/object_formatter_test.cc.o"
  "CMakeFiles/object_formatter_test.dir/object_formatter_test.cc.o.d"
  "object_formatter_test"
  "object_formatter_test.pdb"
  "object_formatter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/object_formatter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
