# Empty compiler generated dependencies file for object_formatter_test.
# This may be replaced when dependencies are built.
