# Empty dependencies file for trace_span_test.
# This may be replaced when dependencies are built.
