file(REMOVE_RECURSE
  "CMakeFiles/trace_span_test.dir/trace_span_test.cc.o"
  "CMakeFiles/trace_span_test.dir/trace_span_test.cc.o.d"
  "trace_span_test"
  "trace_span_test.pdb"
  "trace_span_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_span_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
