file(REMOVE_RECURSE
  "CMakeFiles/audio_browser_test.dir/audio_browser_test.cc.o"
  "CMakeFiles/audio_browser_test.dir/audio_browser_test.cc.o.d"
  "audio_browser_test"
  "audio_browser_test.pdb"
  "audio_browser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audio_browser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
