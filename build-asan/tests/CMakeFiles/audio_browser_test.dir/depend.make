# Empty dependencies file for audio_browser_test.
# This may be replaced when dependencies are built.
