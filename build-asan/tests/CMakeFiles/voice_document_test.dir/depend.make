# Empty dependencies file for voice_document_test.
# This may be replaced when dependencies are built.
