file(REMOVE_RECURSE
  "CMakeFiles/voice_document_test.dir/voice_document_test.cc.o"
  "CMakeFiles/voice_document_test.dir/voice_document_test.cc.o.d"
  "voice_document_test"
  "voice_document_test.pdb"
  "voice_document_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voice_document_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
