file(REMOVE_RECURSE
  "CMakeFiles/compositor_test.dir/compositor_test.cc.o"
  "CMakeFiles/compositor_test.dir/compositor_test.cc.o.d"
  "compositor_test"
  "compositor_test.pdb"
  "compositor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compositor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
