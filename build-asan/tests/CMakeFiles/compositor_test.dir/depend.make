# Empty dependencies file for compositor_test.
# This may be replaced when dependencies are built.
