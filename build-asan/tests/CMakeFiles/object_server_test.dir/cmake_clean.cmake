file(REMOVE_RECURSE
  "CMakeFiles/object_server_test.dir/object_server_test.cc.o"
  "CMakeFiles/object_server_test.dir/object_server_test.cc.o.d"
  "object_server_test"
  "object_server_test.pdb"
  "object_server_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/object_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
