# Empty compiler generated dependencies file for object_server_test.
# This may be replaced when dependencies are built.
