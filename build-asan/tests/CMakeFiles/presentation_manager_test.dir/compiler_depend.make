# Empty compiler generated dependencies file for presentation_manager_test.
# This may be replaced when dependencies are built.
