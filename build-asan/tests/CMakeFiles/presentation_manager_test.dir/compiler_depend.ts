# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for presentation_manager_test.
