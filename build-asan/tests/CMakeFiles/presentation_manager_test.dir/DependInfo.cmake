
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/presentation_manager_test.cc" "tests/CMakeFiles/presentation_manager_test.dir/presentation_manager_test.cc.o" "gcc" "tests/CMakeFiles/presentation_manager_test.dir/presentation_manager_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/minos/server/CMakeFiles/minos_server.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/minos/core/CMakeFiles/minos_core.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/minos/format/CMakeFiles/minos_format.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/minos/object/CMakeFiles/minos_object.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/minos/render/CMakeFiles/minos_render.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/minos/audio/CMakeFiles/minos_audio.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/minos/image/CMakeFiles/minos_image.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/minos/voice/CMakeFiles/minos_voice.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/minos/text/CMakeFiles/minos_text.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/minos/storage/CMakeFiles/minos_storage.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/minos/obs/CMakeFiles/minos_obs.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/minos/util/CMakeFiles/minos_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
