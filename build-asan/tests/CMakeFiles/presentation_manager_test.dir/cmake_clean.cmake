file(REMOVE_RECURSE
  "CMakeFiles/presentation_manager_test.dir/presentation_manager_test.cc.o"
  "CMakeFiles/presentation_manager_test.dir/presentation_manager_test.cc.o.d"
  "presentation_manager_test"
  "presentation_manager_test.pdb"
  "presentation_manager_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/presentation_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
