# Empty compiler generated dependencies file for symmetry_integration_test.
# This may be replaced when dependencies are built.
