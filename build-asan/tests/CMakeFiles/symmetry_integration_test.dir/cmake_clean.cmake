file(REMOVE_RECURSE
  "CMakeFiles/symmetry_integration_test.dir/symmetry_integration_test.cc.o"
  "CMakeFiles/symmetry_integration_test.dir/symmetry_integration_test.cc.o.d"
  "symmetry_integration_test"
  "symmetry_integration_test.pdb"
  "symmetry_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symmetry_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
