# Empty dependencies file for pcm_synthesizer_test.
# This may be replaced when dependencies are built.
