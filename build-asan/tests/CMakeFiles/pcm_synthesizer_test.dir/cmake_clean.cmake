file(REMOVE_RECURSE
  "CMakeFiles/pcm_synthesizer_test.dir/pcm_synthesizer_test.cc.o"
  "CMakeFiles/pcm_synthesizer_test.dir/pcm_synthesizer_test.cc.o.d"
  "pcm_synthesizer_test"
  "pcm_synthesizer_test.pdb"
  "pcm_synthesizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcm_synthesizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
