file(REMOVE_RECURSE
  "CMakeFiles/corruption_fuzz_test.dir/corruption_fuzz_test.cc.o"
  "CMakeFiles/corruption_fuzz_test.dir/corruption_fuzz_test.cc.o.d"
  "corruption_fuzz_test"
  "corruption_fuzz_test.pdb"
  "corruption_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corruption_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
