# Empty dependencies file for descriptor_test.
# This may be replaced when dependencies are built.
