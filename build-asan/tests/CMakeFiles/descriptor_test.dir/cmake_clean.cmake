file(REMOVE_RECURSE
  "CMakeFiles/descriptor_test.dir/descriptor_test.cc.o"
  "CMakeFiles/descriptor_test.dir/descriptor_test.cc.o.d"
  "descriptor_test"
  "descriptor_test.pdb"
  "descriptor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/descriptor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
