# Empty dependencies file for audio_pages_test.
# This may be replaced when dependencies are built.
