file(REMOVE_RECURSE
  "CMakeFiles/audio_pages_test.dir/audio_pages_test.cc.o"
  "CMakeFiles/audio_pages_test.dir/audio_pages_test.cc.o.d"
  "audio_pages_test"
  "audio_pages_test.pdb"
  "audio_pages_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audio_pages_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
