# Empty dependencies file for version_store_test.
# This may be replaced when dependencies are built.
