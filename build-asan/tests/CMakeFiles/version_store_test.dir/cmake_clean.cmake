file(REMOVE_RECURSE
  "CMakeFiles/version_store_test.dir/version_store_test.cc.o"
  "CMakeFiles/version_store_test.dir/version_store_test.cc.o.d"
  "version_store_test"
  "version_store_test.pdb"
  "version_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/version_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
