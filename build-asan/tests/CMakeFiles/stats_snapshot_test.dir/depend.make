# Empty dependencies file for stats_snapshot_test.
# This may be replaced when dependencies are built.
