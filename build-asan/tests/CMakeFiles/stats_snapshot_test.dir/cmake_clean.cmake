file(REMOVE_RECURSE
  "CMakeFiles/stats_snapshot_test.dir/stats_snapshot_test.cc.o"
  "CMakeFiles/stats_snapshot_test.dir/stats_snapshot_test.cc.o.d"
  "stats_snapshot_test"
  "stats_snapshot_test.pdb"
  "stats_snapshot_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_snapshot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
