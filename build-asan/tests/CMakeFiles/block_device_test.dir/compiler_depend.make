# Empty compiler generated dependencies file for block_device_test.
# This may be replaced when dependencies are built.
