file(REMOVE_RECURSE
  "CMakeFiles/block_device_test.dir/block_device_test.cc.o"
  "CMakeFiles/block_device_test.dir/block_device_test.cc.o.d"
  "block_device_test"
  "block_device_test.pdb"
  "block_device_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/block_device_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
