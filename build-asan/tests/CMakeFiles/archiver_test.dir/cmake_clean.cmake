file(REMOVE_RECURSE
  "CMakeFiles/archiver_test.dir/archiver_test.cc.o"
  "CMakeFiles/archiver_test.dir/archiver_test.cc.o.d"
  "archiver_test"
  "archiver_test.pdb"
  "archiver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/archiver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
