# Empty compiler generated dependencies file for archiver_test.
# This may be replaced when dependencies are built.
