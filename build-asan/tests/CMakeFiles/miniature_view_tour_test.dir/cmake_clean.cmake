file(REMOVE_RECURSE
  "CMakeFiles/miniature_view_tour_test.dir/miniature_view_tour_test.cc.o"
  "CMakeFiles/miniature_view_tour_test.dir/miniature_view_tour_test.cc.o.d"
  "miniature_view_tour_test"
  "miniature_view_tour_test.pdb"
  "miniature_view_tour_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miniature_view_tour_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
