# Empty dependencies file for miniature_view_tour_test.
# This may be replaced when dependencies are built.
