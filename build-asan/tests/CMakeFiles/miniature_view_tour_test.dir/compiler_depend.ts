# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for miniature_view_tour_test.
