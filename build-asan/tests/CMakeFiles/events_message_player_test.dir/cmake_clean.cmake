file(REMOVE_RECURSE
  "CMakeFiles/events_message_player_test.dir/events_message_player_test.cc.o"
  "CMakeFiles/events_message_player_test.dir/events_message_player_test.cc.o.d"
  "events_message_player_test"
  "events_message_player_test.pdb"
  "events_message_player_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/events_message_player_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
