# Empty dependencies file for events_message_player_test.
# This may be replaced when dependencies are built.
