# Empty compiler generated dependencies file for audio_device_test.
# This may be replaced when dependencies are built.
