file(REMOVE_RECURSE
  "CMakeFiles/audio_device_test.dir/audio_device_test.cc.o"
  "CMakeFiles/audio_device_test.dir/audio_device_test.cc.o.d"
  "audio_device_test"
  "audio_device_test.pdb"
  "audio_device_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audio_device_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
