file(REMOVE_RECURSE
  "CMakeFiles/clock_random_test.dir/clock_random_test.cc.o"
  "CMakeFiles/clock_random_test.dir/clock_random_test.cc.o.d"
  "clock_random_test"
  "clock_random_test.pdb"
  "clock_random_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clock_random_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
