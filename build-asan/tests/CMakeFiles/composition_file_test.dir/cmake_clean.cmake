file(REMOVE_RECURSE
  "CMakeFiles/composition_file_test.dir/composition_file_test.cc.o"
  "CMakeFiles/composition_file_test.dir/composition_file_test.cc.o.d"
  "composition_file_test"
  "composition_file_test.pdb"
  "composition_file_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/composition_file_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
