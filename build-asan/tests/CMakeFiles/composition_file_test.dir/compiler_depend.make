# Empty compiler generated dependencies file for composition_file_test.
# This may be replaced when dependencies are built.
