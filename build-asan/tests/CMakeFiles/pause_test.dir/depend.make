# Empty dependencies file for pause_test.
# This may be replaced when dependencies are built.
