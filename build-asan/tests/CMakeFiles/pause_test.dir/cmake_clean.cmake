file(REMOVE_RECURSE
  "CMakeFiles/pause_test.dir/pause_test.cc.o"
  "CMakeFiles/pause_test.dir/pause_test.cc.o.d"
  "pause_test"
  "pause_test.pdb"
  "pause_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pause_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
