# Empty compiler generated dependencies file for data_directory_test.
# This may be replaced when dependencies are built.
