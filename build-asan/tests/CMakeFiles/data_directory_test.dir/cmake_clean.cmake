file(REMOVE_RECURSE
  "CMakeFiles/data_directory_test.dir/data_directory_test.cc.o"
  "CMakeFiles/data_directory_test.dir/data_directory_test.cc.o.d"
  "data_directory_test"
  "data_directory_test.pdb"
  "data_directory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_directory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
