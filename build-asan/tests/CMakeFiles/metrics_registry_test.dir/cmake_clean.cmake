file(REMOVE_RECURSE
  "CMakeFiles/metrics_registry_test.dir/metrics_registry_test.cc.o"
  "CMakeFiles/metrics_registry_test.dir/metrics_registry_test.cc.o.d"
  "metrics_registry_test"
  "metrics_registry_test.pdb"
  "metrics_registry_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metrics_registry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
