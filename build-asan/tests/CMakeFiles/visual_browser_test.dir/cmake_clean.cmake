file(REMOVE_RECURSE
  "CMakeFiles/visual_browser_test.dir/visual_browser_test.cc.o"
  "CMakeFiles/visual_browser_test.dir/visual_browser_test.cc.o.d"
  "visual_browser_test"
  "visual_browser_test.pdb"
  "visual_browser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/visual_browser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
