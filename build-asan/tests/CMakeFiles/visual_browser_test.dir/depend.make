# Empty dependencies file for visual_browser_test.
# This may be replaced when dependencies are built.
