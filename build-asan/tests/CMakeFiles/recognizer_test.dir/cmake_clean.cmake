file(REMOVE_RECURSE
  "CMakeFiles/recognizer_test.dir/recognizer_test.cc.o"
  "CMakeFiles/recognizer_test.dir/recognizer_test.cc.o.d"
  "recognizer_test"
  "recognizer_test.pdb"
  "recognizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recognizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
