# Empty compiler generated dependencies file for recognizer_test.
# This may be replaced when dependencies are built.
