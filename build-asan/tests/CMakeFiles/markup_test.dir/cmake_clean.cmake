file(REMOVE_RECURSE
  "CMakeFiles/markup_test.dir/markup_test.cc.o"
  "CMakeFiles/markup_test.dir/markup_test.cc.o.d"
  "markup_test"
  "markup_test.pdb"
  "markup_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/markup_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
