# Empty dependencies file for markup_test.
# This may be replaced when dependencies are built.
