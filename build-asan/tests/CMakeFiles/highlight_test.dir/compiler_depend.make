# Empty compiler generated dependencies file for highlight_test.
# This may be replaced when dependencies are built.
