file(REMOVE_RECURSE
  "CMakeFiles/highlight_test.dir/highlight_test.cc.o"
  "CMakeFiles/highlight_test.dir/highlight_test.cc.o.d"
  "highlight_test"
  "highlight_test.pdb"
  "highlight_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/highlight_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
