file(REMOVE_RECURSE
  "CMakeFiles/structured_logging_test.dir/structured_logging_test.cc.o"
  "CMakeFiles/structured_logging_test.dir/structured_logging_test.cc.o.d"
  "structured_logging_test"
  "structured_logging_test.pdb"
  "structured_logging_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/structured_logging_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
