# Empty compiler generated dependencies file for structured_logging_test.
# This may be replaced when dependencies are built.
