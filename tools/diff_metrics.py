#!/usr/bin/env python3
"""Diffs BENCH_*.json metric blocks byte-for-byte across runs.

Usage:
    diff_metrics.py BASELINE.json OTHER.json [OTHER.json ...]

The determinism-matrix gate: the same bench run at --workers 1, 2 and 4
must emit bit-identical metric values. Every file's counters, gauges
and histograms sections — plus the bench name and sim_time_us header —
are serialized canonically (sorted keys, exact number text) and
compared against the first file. The `workers` header field is the one
field allowed to differ: it records the worker count itself.

On divergence, every differing entry is printed with both values, so a
nondeterminism bug points straight at the metric that moved.

Exit status: 0 when every file matches the baseline, 1 otherwise.
"""

import json
import sys

# Sections whose contents must match exactly. `workers` is deliberately
# absent: it is the matrix dimension.
COMPARED_HEADERS = ("schema", "bench", "sim_time_us")
COMPARED_SECTIONS = ("counters", "gauges", "histograms")


def canonical(value):
    """Canonical text for a JSON value: sorted keys, repr-exact numbers."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def diff_section(name, base, other, problems):
    """Appends one problem line per divergent entry of a dict section."""
    base = base.get(name, {})
    other = other.get(name, {})
    if not isinstance(base, dict) or not isinstance(other, dict):
        problems.append(f"section '{name}' is not an object in both files")
        return
    for key in sorted(set(base) | set(other)):
        a = canonical(base[key]) if key in base else "<absent>"
        b = canonical(other[key]) if key in other else "<absent>"
        if a != b:
            problems.append(f"{name}.{key}: {a} vs {b}")


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip())
        return 2
    try:
        baseline = load(argv[0])
    except (OSError, json.JSONDecodeError) as err:
        print(f"{argv[0]}: FAIL: {err}")
        return 1

    failed = False
    for path in argv[1:]:
        try:
            other = load(path)
        except (OSError, json.JSONDecodeError) as err:
            print(f"{path}: FAIL: {err}")
            failed = True
            continue
        problems = []
        for header in COMPARED_HEADERS:
            a = canonical(baseline.get(header, None))
            b = canonical(other.get(header, None))
            if a != b:
                problems.append(f"{header}: {a} vs {b}")
        for section in COMPARED_SECTIONS:
            diff_section(section, baseline, other, problems)
        if problems:
            failed = True
            print(f"{path}: DIVERGES from {argv[0]} "
                  f"({len(problems)} differences)")
            for problem in problems:
                print(f"  - {problem}")
        else:
            print(f"{path}: identical metric blocks "
                  f"(workers={other.get('workers')} vs "
                  f"{baseline.get('workers')})")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
