// minos_render — command-line renderer for MINOS synthesis files.
//
// Formats a synthesis file into a multimedia object and renders every
// visual page to a PGM image, exactly as the presentation manager would
// show it (including transparency/overwrite stacking). Data files
// referenced by @IMAGE/@TRANSPARENCY/@OVERWRITE directives are read from
// the directory given with -d (serialized minos::image::Image payloads,
// as produced by Image::Serialize()).
//
// Usage:
//   minos_render [-d data_dir] [-o out_prefix] [-a] [--stats=PATH]
//                synthesis_file
//     -d DIR        directory holding the data files (default: alongside
//                   input)
//     -o PRE        output prefix (default: "page"); writes PRE_001.pgm ...
//     -a            additionally print each page as ASCII art to stdout
//     --stats=PATH  after rendering, replay the formatted object through
//                   the full presentation pipeline (archive at an object
//                   server, fetch over the link through the block cache,
//                   browse every page, run a contended scheduler pass) and
//                   write a minos.metrics.v1 snapshot to PATH

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "minos/core/editing_preview.h"
#include "minos/core/page_compositor.h"
#include "minos/core/visual_browser.h"
#include "minos/format/object_formatter.h"
#include "minos/obs/export.h"
#include "minos/obs/metrics.h"
#include "minos/render/export.h"
#include "minos/render/screen.h"
#include "minos/server/object_server.h"
#include "minos/storage/archiver.h"
#include "minos/storage/block_cache.h"
#include "minos/storage/request_scheduler.h"
#include "minos/util/random.h"

namespace minos {
namespace {

StatusOr<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot read '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Replays `object` through the archival/presentation pipeline so the
/// exported snapshot covers every subsystem the real session would touch:
/// object-server store + repeated link fetches through the block cache,
/// a page-by-page browse (page-turn latency), and a contended SCAN
/// scheduler batch (queueing-delay percentiles).
Status CollectPipelineStats(object::MultimediaObject* object,
                            const std::string& stats_path) {
  SimClock clock;
  storage::BlockDevice device("optical", 20000, 1024,
                              storage::DeviceCostModel::OpticalDisk(),
                              false, &clock);
  storage::BlockCache cache(64);
  storage::Archiver archiver(&device, &cache);
  storage::VersionStore versions;
  server::Link link = server::Link::Ethernet(&clock);
  server::ObjectServer server(&archiver, &versions, &clock, &link);
  MINOS_RETURN_IF_ERROR(object->Archive());
  MINOS_RETURN_IF_ERROR(server.Store(*object).status());
  for (int round = 0; round < 4; ++round) {
    MINOS_RETURN_IF_ERROR(server.Fetch(object->id()).status());
  }

  if (!object->descriptor().pages.empty()) {
    render::Screen screen;
    core::MessagePlayer messages(&clock, voice::SpeakerParams{});
    core::EventLog log;
    MINOS_ASSIGN_OR_RETURN(
        auto browser,
        core::VisualBrowser::Open(object, &screen, &messages, &clock,
                                  &log));
    while (browser->AdvancePages(1).ok()) {
    }
  }

  storage::RequestScheduler scheduler(&device,
                                      storage::SchedulingPolicy::kScan);
  Random rng(42);
  std::vector<storage::IoRequest> reqs;
  for (uint64_t id = 0; id < 128; ++id) {
    storage::IoRequest req;
    req.id = id;
    req.block = rng.Uniform(20000 - 8);
    req.count = 4;
    req.arrival_time = static_cast<Micros>(rng.Uniform(1000000));
    reqs.push_back(req);
  }
  scheduler.Run(reqs);

  obs::SnapshotMeta meta{"minos_render", clock.Now()};
  return obs::WriteSnapshotJson(obs::MetricsRegistry::Default(),
                                stats_path, meta);
}

int Run(int argc, char** argv) {
  std::string data_dir;
  std::string prefix = "page";
  bool ascii = false;
  std::string stats_path;
  std::string input;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-d") == 0 && i + 1 < argc) {
      data_dir = argv[++i];
    } else if (std::strcmp(argv[i], "-o") == 0 && i + 1 < argc) {
      prefix = argv[++i];
    } else if (std::strncmp(argv[i], "--stats=", 8) == 0) {
      stats_path = argv[i] + 8;
    } else if (std::strcmp(argv[i], "-a") == 0) {
      ascii = true;
    } else if (argv[i][0] != '-') {
      input = argv[i];
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  if (input.empty()) {
    std::fprintf(stderr,
                 "usage: minos_render [-d data_dir] [-o prefix] [-a] "
                 "synthesis_file\n");
    return 2;
  }
  if (data_dir.empty()) {
    const size_t slash = input.rfind('/');
    data_dir = slash == std::string::npos ? "." : input.substr(0, slash);
  }

  auto synthesis = ReadFile(input);
  if (!synthesis.ok()) {
    std::fprintf(stderr, "%s\n", synthesis.status().ToString().c_str());
    return 1;
  }
  format::ObjectWorkspace workspace("cli");
  workspace.SetSynthesis(*synthesis);

  // Load every data file the directives reference.
  auto parsed = format::ParseSynthesis(*synthesis);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return 1;
  }
  for (const format::Directive& d : parsed->directives) {
    if (d.kind != format::Directive::Kind::kImage &&
        d.kind != format::Directive::Kind::kTransparency &&
        d.kind != format::Directive::Kind::kOverwrite) {
      continue;
    }
    auto payload = ReadFile(data_dir + "/" + d.arg);
    if (!payload.ok()) {
      std::fprintf(stderr, "data file '%s': %s\n", d.arg.c_str(),
                   payload.status().ToString().c_str());
      return 1;
    }
    workspace.AddDataFile(d.arg, storage::DataType::kImage,
                          std::move(payload).value());
  }

  format::ObjectFormatter formatter;
  auto object = formatter.Format(workspace, 1);
  if (!object.ok()) {
    std::fprintf(stderr, "format: %s\n",
                 object.status().ToString().c_str());
    return 1;
  }
  const int pages = static_cast<int>(object->descriptor().pages.size());
  std::printf("%d pages\n", pages);
  for (int page = 1; page <= pages; ++page) {
    auto raster = core::RenderEditingPreview(*object, page, /*scale=*/1);
    if (!raster.ok()) {
      std::fprintf(stderr, "page %d: %s\n", page,
                   raster.status().ToString().c_str());
      return 1;
    }
    char path[512];
    std::snprintf(path, sizeof(path), "%s_%03d.pgm", prefix.c_str(), page);
    if (Status s = render::WritePgm(*raster, path); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", path);
    if (ascii) {
      std::printf("%s\n", render::ToAscii(*raster, 96).c_str());
    }
  }
  if (!stats_path.empty()) {
    if (Status s = CollectPipelineStats(&*object, stats_path); !s.ok()) {
      std::fprintf(stderr, "stats: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", stats_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace minos

int main(int argc, char** argv) { return minos::Run(argc, argv); }
