#!/usr/bin/env python3
"""Latency attribution report for MINOS trace snapshots (minos.trace.v1).

Usage:
    trace_report.py TRACE.json [TRACE.json ...]
    trace_report.py --check TRACE_ranked_query.json
    trace_report.py --top 5 TRACE_shard_scaling.json

Reads the trace JSON that `minos::obs::Tracer::ToJson` emits (and the
benches write as TRACE_<bench>.json next to BENCH_<bench>.json), builds
the span tree from the explicit span_id/parent_span_id links, and
reports where the simulated time of each request actually went:

  - an attribution table of exclusive (self) time per sanitized span
    name — per-object ids collapse into "%id", so "open#17" and
    "open#23" aggregate into one row; "scheduler.queue_wait" spans
    split by their "lane" tag instead, so time a request spent queued
    behind background work (repair transfers, prefetch staging) lands
    in a different row than time spent behind other foreground pages;
  - a queue-wait contention summary whenever the trace carries
    "scheduler.queue_wait" spans: total wait per lane and the share of
    all waiting charged to each, the direct read on whether repair or
    prefetch traffic is starving foreground fetches at the arm;
  - the critical path of the slowest root span: at every level the
    earliest-started child claims the time it covers, later overlapping
    children claim only the remainder (SimClock rewinds make sibling
    scatter/prefetch work overlap on one timeline), and gaps between
    children are the parent's own self time — so the exclusive times
    sum exactly to the root's duration, never more, never less.

With --check the report runs as a gate: every parent link must resolve
inside its own trace (no orphans), spans must be well-formed (end >=
start), every "scheduler.queue_wait" span must carry a "lane" tag, and
when the snapshot carries a "measured_us" header the root durations
must reconcile with it within --tolerance (default 1%).

With --baseline DIR the attribution table is additionally diffed
against the committed baseline DIR/TRACE_<bench>.baseline.json
(schema minos.trace.baseline.v1): any attribution row whose exclusive
time regresses more than --regression (default 25%) over its baseline
value — with an absolute floor of --regression-floor-us (default 1000)
so micro-rows cannot flake the gate — fails, as does the same
regression of the root total. A missing baseline file fails too: every
traced bench must commit one. --write-baseline DIR distills the current
run into that file instead of gating (regenerate whenever a cost-model
change moves attribution on purpose).

Exit status: 0 when every file passes, 1 otherwise.
"""

import argparse
import json
import os
import re
import sys

SCHEMA = "minos.trace.v1"
BASELINE_SCHEMA = "minos.trace.baseline.v1"

# The scheduler emits one of these per request that sat queued behind
# earlier accesses; the "lane" tag says whose fault the wait was.
QUEUE_WAIT = "scheduler.queue_wait"

_ID_RUN = re.compile(r"[0-9]+")


def sanitize(name):
    """Collapses per-object id runs, mirroring obs::SanitizeSpanName."""
    return _ID_RUN.sub("%id", name)


def span_lane(span):
    """The "lane" tag of a span, or None when absent/non-string."""
    tags = span.get("tags")
    lane = tags.get("lane") if isinstance(tags, dict) else None
    return lane if isinstance(lane, str) and lane else None


def attribution_key(span):
    """Row name for the attribution table. Queue-wait spans keep their
    lane visible so contention from background repair/prefetch traffic
    never aggregates into the same row as foreground-on-foreground
    queueing."""
    key = sanitize(span["name"])
    if span["name"] == QUEUE_WAIT:
        lane = span_lane(span)
        if lane is not None:
            key = f"{key}[{lane}]"
    return key


def load(path):
    """Returns (doc, problems). doc is None when unreadable."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        return None, [str(err)]
    problems = []
    if not isinstance(doc, dict):
        return None, ["document is not a JSON object"]
    if doc.get("schema") != SCHEMA:
        problems.append(f"schema tag is not '{SCHEMA}'")
    if not isinstance(doc.get("spans"), list):
        problems.append("missing list field 'spans'")
    if problems:
        return None, problems
    return doc, []


def check_spans(spans):
    """Structural problems: malformed spans, orphaned parent links."""
    problems = []
    by_trace = {}
    for i, span in enumerate(spans):
        if not isinstance(span, dict):
            problems.append(f"span[{i}] is not an object")
            continue
        name = span.get("name")
        if not isinstance(name, str) or not name:
            problems.append(f"span[{i}] has no name")
            continue
        for field in ("trace_id", "span_id", "parent_span_id", "start_us",
                      "end_us"):
            if not isinstance(span.get(field), int):
                problems.append(f"span '{name}' field '{field}' not integer")
        if problems:
            continue
        if span["end_us"] < span["start_us"]:
            problems.append(f"span '{name}' ends before it starts")
        if name == QUEUE_WAIT and span_lane(span) is None:
            problems.append(
                f"span '{name}' (span_id {span['span_id']}) has no "
                f"'lane' tag; contention cannot be attributed"
            )
        by_trace.setdefault(span["trace_id"], {})[span["span_id"]] = span
    if problems:
        return problems
    for trace_id, members in by_trace.items():
        for span in members.values():
            parent = span["parent_span_id"]
            if parent != 0 and parent not in members:
                problems.append(
                    f"orphan span '{span['name']}' (trace {trace_id}): "
                    f"parent {parent} not in trace"
                )
    return problems


def build_children(spans):
    """span_id -> children sorted by start time (ties: span_id order)."""
    children = {}
    for span in spans:
        if span["parent_span_id"] != 0:
            children.setdefault(span["parent_span_id"], []).append(span)
    for kids in children.values():
        kids.sort(key=lambda s: (s["start_us"], s["span_id"]))
    return children


def attribute(span, lo, hi, children, exclusive, credited):
    """Splits the credited window [lo, hi] of `span` among its children.

    Children are visited in start order; the earliest-started child
    claims the interval it covers, a later overlapping child only the
    part past the earlier one's end. Gaps belong to the parent. The
    exclusive times of the whole subtree sum to exactly hi - lo.
    """
    cursor = lo
    self_us = 0
    for child in children.get(span["span_id"], ()):
        start = min(max(child["start_us"], cursor), hi)
        end = min(max(child["end_us"], cursor), hi)
        self_us += start - cursor
        attribute(child, start, end, children, exclusive, credited)
        cursor = end
    self_us += hi - cursor
    key = attribution_key(span)
    exclusive[key] = exclusive.get(key, 0) + self_us
    credited[span["span_id"]] = hi - lo


def queue_wait_by_lane(spans):
    """lane -> (span count, total wall duration us) of queue-wait spans.

    Uses raw span durations rather than attributed exclusive time: a
    queue-wait span is a leaf, so both agree, and the per-lane totals
    answer the contention question directly — how long did requests sit
    behind the arm, and on behalf of which lane.
    """
    lanes = {}
    for span in spans:
        if span["name"] != QUEUE_WAIT:
            continue
        lane = span_lane(span) or "(untagged)"
        count, us = lanes.get(lane, (0, 0))
        lanes[lane] = (count + 1, us + span["end_us"] - span["start_us"])
    return lanes


def critical_path(root, children, credited):
    """Chain from the root following the largest-credited child."""
    path = []
    span = root
    while span is not None:
        path.append(span)
        kids = children.get(span["span_id"], ())
        span = max(
            (k for k in kids if credited.get(k["span_id"], 0) > 0),
            key=lambda k: credited[k["span_id"]],
            default=None,
        )
    return path


def baseline_path(directory, bench):
    """Path of the committed baseline for `bench` inside `directory`."""
    safe = "".join(c if c.isalnum() else "_" for c in bench)
    return os.path.join(directory, f"TRACE_{safe}.baseline.json")


def distill(bench, exclusive, root_total_us):
    """The committed-baseline document for one trace report."""
    return {
        "schema": BASELINE_SCHEMA,
        "bench": bench,
        "root_total_us": root_total_us,
        "attribution": {k: exclusive[k] for k in sorted(exclusive)},
    }


def diff_baseline(path, bench, exclusive, total, regression, floor_us):
    """Problems from comparing this run's attribution to its baseline.

    A row fails when it grows by more than `regression` (fractional) AND
    by more than `floor_us` absolute — virtual time is deterministic, so
    anything past the floor is a real cost change, and the percentage
    keeps intentional small cost-model tweaks from tripping the gate.
    """
    try:
        with open(path, "r", encoding="utf-8") as f:
            base = json.load(f)
    except OSError:
        return [f"no committed baseline at {path} (run --write-baseline)"]
    except json.JSONDecodeError as err:
        return [f"unreadable baseline {path}: {err}"]
    if not isinstance(base, dict) or base.get("schema") != BASELINE_SCHEMA:
        return [f"baseline {path} schema tag is not '{BASELINE_SCHEMA}'"]
    if base.get("bench") != bench:
        return [
            f"baseline {path} is for bench {base.get('bench')!r}, "
            f"not {bench!r}"
        ]
    problems = []

    def regressed(now, was):
        return now > was * (1.0 + regression) and now - was > floor_us

    base_total = base.get("root_total_us", 0)
    if regressed(total, base_total):
        problems.append(
            f"root total regressed: {total} us vs baseline "
            f"{base_total} us (>{regression * 100:.0f}%)"
        )
    attribution = base.get("attribution", {})
    for name, us in sorted(exclusive.items()):
        was = attribution.get(name)
        if was is None:
            if us > floor_us:
                problems.append(
                    f"attribution row '{name}' ({us} us) absent from "
                    f"baseline (regenerate with --write-baseline)"
                )
            continue
        if regressed(us, was):
            problems.append(
                f"attribution row '{name}' regressed: {us} us vs "
                f"baseline {was} us (>{regression * 100:.0f}%)"
            )
    return problems


def report(doc, path, top, check, tolerance, baseline_dir=None,
           write_baseline_dir=None, regression=0.25, floor_us=1000):
    """Prints the report; returns problems (gate failures) when checking."""
    spans = doc["spans"]
    problems = check_spans(spans)
    if problems:
        return problems

    roots = [s for s in spans if s["parent_span_id"] == 0]
    bench = doc.get("bench", "?")
    traces = len({s["trace_id"] for s in spans})
    dropped = doc.get("dropped_spans", 0)
    print(
        f"{path}: bench={bench!r} spans={len(spans)} traces={traces} "
        f"roots={len(roots)} dropped={dropped}"
    )
    if not spans:
        return ["trace contains no spans"] if check else []

    exclusive = {}
    credited = {}
    children = build_children(spans)
    for root in roots:
        attribute(root, root["start_us"], root["end_us"], children,
                  exclusive, credited)
    total = sum(r["end_us"] - r["start_us"] for r in roots)

    print(f"  attribution (exclusive time, {total} us total):")
    width = max(len(k) for k in exclusive)
    rows = sorted(exclusive.items(), key=lambda kv: -kv[1])
    for name, us in rows[:top]:
        share = 100.0 * us / total if total else 0.0
        print(f"    {name:<{width}}  {us:>12} us  {share:5.1f}%")
    if len(rows) > top:
        rest = sum(us for _, us in rows[top:])
        share = 100.0 * rest / total if total else 0.0
        print(f"    {'(other)':<{width}}  {rest:>12} us  {share:5.1f}%")

    lanes = queue_wait_by_lane(spans)
    if lanes:
        waited = sum(us for _, us in lanes.values())
        print(f"  queue-wait contention ({waited} us total):")
        for lane, (count, us) in sorted(
            lanes.items(), key=lambda kv: -kv[1][1]
        ):
            share = 100.0 * us / waited if waited else 0.0
            print(
                f"    {lane:<12} {count:>6} waits  {us:>12} us  "
                f"{share:5.1f}%"
            )

    slowest = max(roots, key=lambda r: r["end_us"] - r["start_us"])
    slow_us = slowest["end_us"] - slowest["start_us"]
    print(f"  critical path of slowest root ({slow_us} us):")
    for span in critical_path(slowest, children, credited):
        us = credited.get(span["span_id"], 0)
        share = 100.0 * us / slow_us if slow_us else 0.0
        tags = span.get("tags", {})
        suffix = ""
        if isinstance(tags, dict) and tags:
            pairs = ", ".join(f"{k}={v}" for k, v in sorted(tags.items()))
            suffix = f"  [{pairs}]"
        print(f"    {span['name']:<24} {us:>12} us  {share:5.1f}%{suffix}")

    problems = []
    measured = doc.get("measured_us")
    if isinstance(measured, int) and measured >= 0:
        drift = abs(total - measured)
        budget = int(measured * tolerance)
        verdict = "ok" if drift <= budget else "FAIL"
        print(
            f"  reconciliation: roots {total} us vs measured {measured} us "
            f"(drift {drift} us, budget {budget} us) {verdict}"
        )
        if check and drift > budget:
            problems.append(
                f"root durations ({total} us) do not reconcile with "
                f"measured_us ({measured} us) within "
                f"{tolerance * 100:.1f}%"
            )
    elif check:
        print("  reconciliation: no measured_us header, skipped")

    if write_baseline_dir is not None:
        out = baseline_path(write_baseline_dir, bench)
        with open(out, "w", encoding="utf-8") as f:
            json.dump(distill(bench, exclusive, total), f, indent=2,
                      sort_keys=True)
            f.write("\n")
        print(f"  baseline written: {out}")
    elif baseline_dir is not None:
        base_file = baseline_path(baseline_dir, bench)
        base_problems = diff_baseline(
            base_file, bench, exclusive, total, regression, floor_us
        )
        verdict = "FAIL" if base_problems else "ok"
        print(f"  baseline diff vs {base_file}: {verdict}")
        problems.extend(base_problems)
    return problems


def chrome_events(doc):
    """minos.trace.v1 spans -> Chrome/Perfetto complete (ph:"X") events."""
    tids = {}
    events = []
    for span in doc["spans"]:
        tid = tids.setdefault(span["trace_id"], len(tids) + 1)
        events.append({
            "name": span["name"],
            "ph": "X",
            "ts": span["start_us"],
            "dur": span["end_us"] - span["start_us"],
            "pid": 1,
            "tid": tid,
            "args": span.get("tags", {}),
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="+", help="trace JSON files")
    parser.add_argument(
        "--chrome",
        metavar="OUT",
        help="also convert the (single) input to a Chrome/Perfetto "
        "trace-event file at OUT",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="gate mode: fail on orphans, malformed spans, or "
        "reconciliation drift beyond --tolerance",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.01,
        help="allowed |roots - measured| / measured (default 0.01)",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=12,
        help="attribution rows to print before folding into (other)",
    )
    parser.add_argument(
        "--baseline",
        metavar="DIR",
        help="diff attribution against DIR/TRACE_<bench>.baseline.json "
        "and fail on regression beyond --regression",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="DIR",
        help="write (overwrite) DIR/TRACE_<bench>.baseline.json from "
        "this run instead of gating against it",
    )
    parser.add_argument(
        "--regression",
        type=float,
        default=0.25,
        help="allowed fractional growth of any attribution row or the "
        "root total over its baseline (default 0.25)",
    )
    parser.add_argument(
        "--regression-floor-us",
        type=int,
        default=1000,
        help="absolute growth (us) a row must also exceed to fail the "
        "baseline gate (default 1000)",
    )
    args = parser.parse_args(argv)
    if args.baseline and args.write_baseline:
        parser.error("--baseline and --write-baseline are exclusive")
    if args.chrome and len(args.files) != 1:
        parser.error("--chrome takes exactly one input file")

    failed = False
    for path in args.files:
        doc, problems = load(path)
        if doc is not None:
            problems = report(doc, path, args.top, args.check,
                              args.tolerance,
                              baseline_dir=args.baseline,
                              write_baseline_dir=args.write_baseline,
                              regression=args.regression,
                              floor_us=args.regression_floor_us)
            if not problems and args.chrome:
                with open(args.chrome, "w", encoding="utf-8") as f:
                    json.dump(chrome_events(doc), f)
                print(f"  chrome trace: {args.chrome}")
        if problems:
            failed = True
            print(f"{path}: FAIL")
            for problem in problems:
                print(f"  - {problem}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
