#!/usr/bin/env python3
"""Validates exported MINOS stats documents (metrics and traces).

Usage:
    check_stats_schema.py SNAPSHOT.json [TRACE.json ...]
    check_stats_schema.py --require-pipeline BENCH_SYM_1.json
    check_stats_schema.py --require-faults BENCH_fault_sweep.json

Dispatches on the document's "schema" tag. For minos.metrics.v1
(BENCH_*.json) it checks the contract that
`minos::obs::ValidateSnapshotJson` enforces in C++: schema tag, bench
string, numeric sim_time_us, a numeric workers dimension >= 1 (every
bench stamps the worker count of its task pool; a snapshot without it
predates the multi-core runtime and fails), the three metric sections,
numeric values throughout, and the full
count/sum/min/max/mean/p50/p90/p99 field set on every histogram. For minos.trace.v1 (TRACE_*.json, emitted by
`minos::obs::Tracer::ToJson`) it checks the span-list contract: string
names, integer ids and times, end >= start, string-to-string tags, and
every nonzero parent_span_id resolving inside its own trace.

With --require-pipeline, additionally requires the metric families a
full presentation-pipeline run produces (block cache, link, scheduler,
page-turn latency) — the acceptance gate for BENCH_*.json trajectories
and `minos_render --stats` output.

With --require-faults, additionally requires the fault-injection and
recovery families (injected faults, retries actually taken, circuit
breaker state and transitions, retry-delay and page-open-latency
histograms) — the acceptance gate for BENCH_fault_sweep.json. Faults
must have been injected and retries taken: zero-valued evidence
counters fail the check.

With --require-repair, additionally requires the anti-entropy repair
families: repair syncs, digest exchanges, replicas actually repaired
and bytes actually shipped (all > 0), the repair MTTR histograms, and —
the convergence gate — the 'router.under_replicated' gauge present AND
zero: a snapshot whose final state still owes replicas fails.

With --require-ranked-scale, additionally requires the catalog-scale
evidence the ranked_query bench records: postings actually skipped
(query.postings_skipped > 0), the scale gauges present, a pruned visit
fraction under 0.5 at the large catalog, a sublinear per-query scoring
cost growth (< 1.0 relative to catalog size), and the Append delta-path
proof (exactly one stats delta applied, zero full re-adds).

With --require-sessions, additionally requires the SessionManager storm
evidence: sessions actually opened, admitted, queued at the admission
cap, admitted back out of the queue, idle-reaped and closed (all > 0),
the per-event latency histograms non-empty, a peak concurrency of at
least 2000 sessions, and a class fairness ratio within the bench's own
bound — the acceptance gate for BENCH_session_storm.json.

Exit status: 0 when every file validates, 1 otherwise.
"""

import argparse
import json
import sys

SCHEMA = "minos.metrics.v1"
TRACE_SCHEMA = "minos.trace.v1"
HISTOGRAM_FIELDS = ("count", "sum", "min", "max", "mean", "p50", "p90", "p99")
SPAN_INT_FIELDS = ("trace_id", "span_id", "parent_span_id", "start_us",
                   "end_us")

# Metric families a full pipeline run must have touched. Instance scopes
# are numbered (block_cache0, link1, ...), so these are name prefixes /
# substrings rather than exact names.
PIPELINE_COUNTER_PATTERNS = (
    ("block_cache", ".hits"),
    ("block_cache", ".misses"),
    ("link", ".bytes_total"),
    ("link", ".transfers"),
)
PIPELINE_HISTOGRAM_PATTERNS = (
    ("scheduler.", ".queueing_delay_us"),
    ("browser.", ".page_turn_us"),
)

# Fault-model families a chaos run must have produced. The > 0 counters
# prove the run actually exercised recovery rather than merely linking
# against it.
FAULT_COUNTER_PATTERNS = (
    ("faults", ".injected_total"),
    ("fault", ".drops"),
    ("retry", ".attempts_total"),
    ("link", ".breaker_opens_total"),
)
FAULT_POSITIVE_COUNTERS = (
    "faults.injected_total",
    "retry.retries_total",
)
FAULT_GAUGE_PATTERNS = (("link", ".breaker_open"),)
FAULT_HISTOGRAM_NAMES = ("retry.delay_us",)
# Any bench that opens objects under faults records a page-open latency
# histogram under its own scope (fault_sweep.page_open_us,
# prefetch_pipeline.sync.page_open_us, ...); one such histogram must be
# present rather than one hard-coded name.
FAULT_HISTOGRAM_PATTERNS = (("", ".page_open_us"),)

# Anti-entropy repair families a degrade-then-repair run must have
# produced. The > 0 counters prove repairs actually shipped; the
# == 0 gauges prove the run ended converged (no replica debt, no
# pending repair work).
REPAIR_POSITIVE_COUNTERS = (
    "repair.syncs_total",
    "repair.digest_exchanges_total",
    "repair.replicas_repaired_total",
    "repair.bytes_total",
    "repair.requests_total",
)
REPAIR_COUNTER_NAMES = (
    "repair.digest_rejects_total",
    "repair.errors_total",
    "repair.failures_total",
    "router.degraded_stores_total",
)
REPAIR_ZERO_GAUGES = (
    "router.under_replicated",
    "repair.pending",
)
REPAIR_HISTOGRAM_NAMES = (
    "repair.duration_us",
    "fault_sweep.mttr_us",
    "fault_sweep.partial_mttr_us",
)

# Ranked catalog-scale evidence: the max-score pruned scorer must have
# skipped real work, visited under half the exhaustive postings on the
# large catalog, grown sublinearly in catalog size, and folded appends
# through the stats-delta path rather than a rebuild.
RANKED_SCALE_POSITIVE_COUNTERS = ("query.postings_skipped",)
RANKED_SCALE_GAUGES = (
    "ranked_query.scale_scanned_small",
    "ranked_query.scale_scanned_large",
    "ranked_query.scale_exhaustive_scanned_large",
)
RANKED_SCALE_BOUNDED_GAUGES = (
    # (name, exclusive upper bound)
    ("ranked_query.scale_pruned_visit_fraction", 0.5),
    ("ranked_query.scale_cost_growth", 1.0),
)
RANKED_SCALE_EXACT_GAUGES = (
    ("ranked_query.append_stats_full_adds", 0),
    ("ranked_query.append_stats_delta_applies", 1),
)

# SessionManager storm evidence: the multiplexing machinery must have
# actually fired — admission queueing, queue re-admission, idle reaping,
# explicit closes — not merely linked against the session library.
SESSION_POSITIVE_COUNTERS = (
    "session.opened_total",
    "session.admitted_total",
    "session.admission_queued_total",
    "session.queue_admitted_total",
    "session.reaped_total",
    "session.closed_total",
    "session.events_total",
    "session.page_turns_total",
    "session.opens_total",
    "session.searches_total",
    "session.appends_total",
    "prefetch.hits",
)
SESSION_COUNTER_NAMES = (
    "session.deferred_events_total",
    "session.budget_deferred_total",
    "session.link_waits_total",
    "session.plan_invalidations_total",
)
SESSION_GAUGE_NAMES = (
    "session.active",
    "session.queued",
    "session_storm.reader_p99_base_us",
    "session_storm.reader_p99_storm_us",
)
SESSION_MIN_GAUGES = (
    # (name, inclusive lower bound)
    ("session_storm.peak_active", 2000),
    ("session_storm.peak_queued", 1),
)
SESSION_BOUNDED_GAUGES = (
    # (name, inclusive upper bound)
    ("session_storm.fairness_ratio", 4.0),
)
SESSION_HISTOGRAM_NAMES = (
    "session.page_turn_us",
    "session.open_us",
    "session.search_us",
    "session.append_us",
)


def _is_number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _is_int(value):
    return isinstance(value, int) and not isinstance(value, bool)


def validate_trace(doc):
    """Returns a list of problem strings for a minos.trace.v1 document."""
    problems = []
    if not isinstance(doc.get("bench"), str):
        problems.append("missing string field 'bench'")
    if "measured_us" in doc and not _is_number(doc["measured_us"]):
        problems.append("field 'measured_us' is not numeric")
    if not _is_int(doc.get("dropped_spans", 0)):
        problems.append("field 'dropped_spans' is not an integer")
    if not isinstance(doc.get("spans"), list):
        problems.append("missing list field 'spans'")
        return problems

    by_trace = {}
    for i, span in enumerate(doc["spans"]):
        if not isinstance(span, dict):
            problems.append(f"span[{i}] is not an object")
            continue
        name = span.get("name")
        if not isinstance(name, str) or not name:
            problems.append(f"span[{i}] has no string name")
            continue
        bad = False
        for field in SPAN_INT_FIELDS:
            if not _is_int(span.get(field)):
                problems.append(
                    f"span '{name}' field '{field}' is not an integer"
                )
                bad = True
        if bad:
            continue
        if span["end_us"] < span["start_us"]:
            problems.append(f"span '{name}' ends before it starts")
        tags = span.get("tags", {})
        if not isinstance(tags, dict) or not all(
            isinstance(k, str) and isinstance(v, str)
            for k, v in tags.items()
        ):
            problems.append(f"span '{name}' tags are not string->string")
        by_trace.setdefault(span["trace_id"], set()).add(span["span_id"])
    for span in doc["spans"]:
        if not isinstance(span, dict):
            continue
        parent = span.get("parent_span_id")
        trace_id = span.get("trace_id")
        if (
            _is_int(parent)
            and parent != 0
            and parent not in by_trace.get(trace_id, set())
        ):
            problems.append(
                f"orphan span '{span.get('name')}': parent {parent} "
                f"not in trace {trace_id}"
            )
    return problems


def validate(doc, require_pipeline=False, require_faults=False,
             require_repair=False, require_ranked_scale=False,
             require_sessions=False):
    """Returns a list of problem strings (empty when valid)."""
    problems = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    if doc.get("schema") != SCHEMA:
        problems.append(f"schema tag is not '{SCHEMA}'")
    if not isinstance(doc.get("bench"), str):
        problems.append("missing string field 'bench'")
    if not _is_number(doc.get("sim_time_us")):
        problems.append("missing numeric field 'sim_time_us'")
    if not _is_number(doc.get("workers")):
        problems.append("missing numeric field 'workers'")
    elif doc["workers"] < 1:
        problems.append(f"field 'workers' is {doc['workers']}, expected >= 1")
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(doc.get(section), dict):
            problems.append(f"missing object section '{section}'")
    if problems:
        return problems

    for name, value in doc["counters"].items():
        if not _is_number(value):
            problems.append(f"counter '{name}' is not numeric")
    for name, value in doc["gauges"].items():
        if not _is_number(value):
            problems.append(f"gauge '{name}' is not numeric")
    for name, summary in doc["histograms"].items():
        if not isinstance(summary, dict):
            problems.append(f"histogram '{name}' is not an object")
            continue
        for field in HISTOGRAM_FIELDS:
            if not _is_number(summary.get(field)):
                problems.append(f"histogram '{name}' missing field '{field}'")

    if require_pipeline:
        for prefix, suffix in PIPELINE_COUNTER_PATTERNS:
            if not any(
                n.startswith(prefix) and n.endswith(suffix)
                for n in doc["counters"]
            ):
                problems.append(f"no pipeline counter {prefix}*{suffix}")
        for prefix, suffix in PIPELINE_HISTOGRAM_PATTERNS:
            if not any(
                n.startswith(prefix) and n.endswith(suffix)
                for n in doc["histograms"]
            ):
                problems.append(f"no pipeline histogram {prefix}*{suffix}")

    if require_faults:
        for prefix, suffix in FAULT_COUNTER_PATTERNS:
            if not any(
                n.startswith(prefix) and n.endswith(suffix)
                for n in doc["counters"]
            ):
                problems.append(f"no fault counter {prefix}*{suffix}")
        for name in FAULT_POSITIVE_COUNTERS:
            if not doc["counters"].get(name, 0) > 0:
                problems.append(f"counter '{name}' is not > 0")
        for prefix, suffix in FAULT_GAUGE_PATTERNS:
            if not any(
                n.startswith(prefix) and n.endswith(suffix)
                for n in doc["gauges"]
            ):
                problems.append(f"no fault gauge {prefix}*{suffix}")
        for name in FAULT_HISTOGRAM_NAMES:
            if name not in doc["histograms"]:
                problems.append(f"no fault histogram '{name}'")
        for prefix, suffix in FAULT_HISTOGRAM_PATTERNS:
            if not any(
                n.startswith(prefix) and n.endswith(suffix)
                for n in doc["histograms"]
            ):
                problems.append(f"no fault histogram {prefix}*{suffix}")

    if require_repair:
        for name in REPAIR_POSITIVE_COUNTERS:
            if not doc["counters"].get(name, 0) > 0:
                problems.append(f"repair counter '{name}' is not > 0")
        for name in REPAIR_COUNTER_NAMES:
            if name not in doc["counters"]:
                problems.append(f"no repair counter '{name}'")
        for name in REPAIR_ZERO_GAUGES:
            if name not in doc["gauges"]:
                problems.append(f"no repair gauge '{name}'")
            elif doc["gauges"][name] != 0:
                problems.append(
                    f"gauge '{name}' is {doc['gauges'][name]}, "
                    "expected 0 (run did not converge)"
                )
        for name in REPAIR_HISTOGRAM_NAMES:
            if name not in doc["histograms"]:
                problems.append(f"no repair histogram '{name}'")
            elif not doc["histograms"][name].get("count", 0) > 0:
                problems.append(f"repair histogram '{name}' is empty")

    if require_ranked_scale:
        for name in RANKED_SCALE_POSITIVE_COUNTERS:
            if not doc["counters"].get(name, 0) > 0:
                problems.append(f"counter '{name}' is not > 0")
        for name in RANKED_SCALE_GAUGES:
            if name not in doc["gauges"]:
                problems.append(f"no ranked-scale gauge '{name}'")
        for name, bound in RANKED_SCALE_BOUNDED_GAUGES:
            value = doc["gauges"].get(name)
            if not _is_number(value):
                problems.append(f"no ranked-scale gauge '{name}'")
            elif not 0 < value < bound:
                problems.append(
                    f"gauge '{name}' is {value}, expected in (0, {bound})"
                )
        for name, expected in RANKED_SCALE_EXACT_GAUGES:
            value = doc["gauges"].get(name)
            if not _is_number(value):
                problems.append(f"no ranked-scale gauge '{name}'")
            elif value != expected:
                problems.append(
                    f"gauge '{name}' is {value}, expected {expected} "
                    "(append took the rebuild path)"
                )

    if require_sessions:
        for name in SESSION_POSITIVE_COUNTERS:
            if not doc["counters"].get(name, 0) > 0:
                problems.append(f"session counter '{name}' is not > 0")
        for name in SESSION_COUNTER_NAMES:
            if name not in doc["counters"]:
                problems.append(f"no session counter '{name}'")
        for name in SESSION_GAUGE_NAMES:
            if name not in doc["gauges"]:
                problems.append(f"no session gauge '{name}'")
        for name, bound in SESSION_MIN_GAUGES:
            value = doc["gauges"].get(name)
            if not _is_number(value):
                problems.append(f"no session gauge '{name}'")
            elif value < bound:
                problems.append(
                    f"gauge '{name}' is {value}, expected >= {bound}"
                )
        for name, bound in SESSION_BOUNDED_GAUGES:
            value = doc["gauges"].get(name)
            if not _is_number(value):
                problems.append(f"no session gauge '{name}'")
            elif not 0 < value <= bound:
                problems.append(
                    f"gauge '{name}' is {value}, expected in (0, {bound}]"
                )
        for name in SESSION_HISTOGRAM_NAMES:
            if name not in doc["histograms"]:
                problems.append(f"no session histogram '{name}'")
            elif not doc["histograms"][name].get("count", 0) > 0:
                problems.append(f"session histogram '{name}' is empty")
    return problems


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="+", help="snapshot JSON files")
    parser.add_argument(
        "--require-pipeline",
        action="store_true",
        help="also require block-cache/link/scheduler/page-turn families",
    )
    parser.add_argument(
        "--require-faults",
        action="store_true",
        help="also require fault-injection/retry/breaker families with "
        "nonzero fault and retry counts",
    )
    parser.add_argument(
        "--require-repair",
        action="store_true",
        help="also require anti-entropy repair families with nonzero "
        "repair evidence and a zero under-replicated gauge",
    )
    parser.add_argument(
        "--require-ranked-scale",
        action="store_true",
        help="also require the ranked catalog-scale evidence: postings "
        "skipped, a < 0.5 pruned visit fraction, sublinear cost growth, "
        "and the Append stats-delta proof",
    )
    parser.add_argument(
        "--require-sessions",
        action="store_true",
        help="also require the SessionManager storm evidence: nonzero "
        "admission/queue/reap/close counters, non-empty per-event "
        "latency histograms, >= 2000 peak concurrent sessions and a "
        "bounded class fairness ratio",
    )
    args = parser.parse_args(argv)

    failed = False
    for path in args.files:
        try:
            with open(path, "r", encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as err:
            print(f"{path}: FAIL: {err}")
            failed = True
            continue
        is_trace = (
            isinstance(doc, dict) and doc.get("schema") == TRACE_SCHEMA
        )
        if is_trace:
            problems = validate_trace(doc)
        else:
            problems = validate(
                doc,
                require_pipeline=args.require_pipeline,
                require_faults=args.require_faults,
                require_repair=args.require_repair,
                require_ranked_scale=args.require_ranked_scale,
                require_sessions=args.require_sessions,
            )
        if problems:
            failed = True
            print(f"{path}: FAIL")
            for problem in problems:
                print(f"  - {problem}")
        elif is_trace:
            spans = doc["spans"]
            traces = len({s["trace_id"] for s in spans})
            print(
                f"{path}: OK (bench={doc['bench']!r}, {len(spans)} spans, "
                f"{traces} traces)"
            )
        else:
            counters = len(doc["counters"])
            gauges = len(doc["gauges"])
            histograms = len(doc["histograms"])
            print(
                f"{path}: OK (bench={doc['bench']!r}, "
                f"workers={doc['workers']}, {counters} counters, "
                f"{gauges} gauges, {histograms} histograms)"
            )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
