#!/usr/bin/env python3
"""Validates exported MINOS metrics snapshots (minos.metrics.v1).

Usage:
    check_stats_schema.py SNAPSHOT.json [SNAPSHOT.json ...]
    check_stats_schema.py --require-pipeline BENCH_SYM_1.json
    check_stats_schema.py --require-faults BENCH_fault_sweep.json

Checks the schema contract that `minos::obs::ValidateSnapshotJson`
enforces in C++: schema tag, bench string, numeric sim_time_us, the
three metric sections, numeric values throughout, and the full
count/sum/min/max/mean/p50/p90/p99 field set on every histogram.

With --require-pipeline, additionally requires the metric families a
full presentation-pipeline run produces (block cache, link, scheduler,
page-turn latency) — the acceptance gate for BENCH_*.json trajectories
and `minos_render --stats` output.

With --require-faults, additionally requires the fault-injection and
recovery families (injected faults, retries actually taken, circuit
breaker state and transitions, retry-delay and page-open-latency
histograms) — the acceptance gate for BENCH_fault_sweep.json. Faults
must have been injected and retries taken: zero-valued evidence
counters fail the check.

Exit status: 0 when every file validates, 1 otherwise.
"""

import argparse
import json
import sys

SCHEMA = "minos.metrics.v1"
HISTOGRAM_FIELDS = ("count", "sum", "min", "max", "mean", "p50", "p90", "p99")

# Metric families a full pipeline run must have touched. Instance scopes
# are numbered (block_cache0, link1, ...), so these are name prefixes /
# substrings rather than exact names.
PIPELINE_COUNTER_PATTERNS = (
    ("block_cache", ".hits"),
    ("block_cache", ".misses"),
    ("link", ".bytes_total"),
    ("link", ".transfers"),
)
PIPELINE_HISTOGRAM_PATTERNS = (
    ("scheduler.", ".queueing_delay_us"),
    ("browser.", ".page_turn_us"),
)

# Fault-model families a chaos run must have produced. The > 0 counters
# prove the run actually exercised recovery rather than merely linking
# against it.
FAULT_COUNTER_PATTERNS = (
    ("faults", ".injected_total"),
    ("fault", ".drops"),
    ("retry", ".attempts_total"),
    ("link", ".breaker_opens_total"),
)
FAULT_POSITIVE_COUNTERS = (
    "faults.injected_total",
    "retry.retries_total",
)
FAULT_GAUGE_PATTERNS = (("link", ".breaker_open"),)
FAULT_HISTOGRAM_NAMES = ("retry.delay_us",)
# Any bench that opens objects under faults records a page-open latency
# histogram under its own scope (fault_sweep.page_open_us,
# prefetch_pipeline.sync.page_open_us, ...); one such histogram must be
# present rather than one hard-coded name.
FAULT_HISTOGRAM_PATTERNS = (("", ".page_open_us"),)


def _is_number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate(doc, require_pipeline=False, require_faults=False):
    """Returns a list of problem strings (empty when valid)."""
    problems = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    if doc.get("schema") != SCHEMA:
        problems.append(f"schema tag is not '{SCHEMA}'")
    if not isinstance(doc.get("bench"), str):
        problems.append("missing string field 'bench'")
    if not _is_number(doc.get("sim_time_us")):
        problems.append("missing numeric field 'sim_time_us'")
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(doc.get(section), dict):
            problems.append(f"missing object section '{section}'")
    if problems:
        return problems

    for name, value in doc["counters"].items():
        if not _is_number(value):
            problems.append(f"counter '{name}' is not numeric")
    for name, value in doc["gauges"].items():
        if not _is_number(value):
            problems.append(f"gauge '{name}' is not numeric")
    for name, summary in doc["histograms"].items():
        if not isinstance(summary, dict):
            problems.append(f"histogram '{name}' is not an object")
            continue
        for field in HISTOGRAM_FIELDS:
            if not _is_number(summary.get(field)):
                problems.append(f"histogram '{name}' missing field '{field}'")

    if require_pipeline:
        for prefix, suffix in PIPELINE_COUNTER_PATTERNS:
            if not any(
                n.startswith(prefix) and n.endswith(suffix)
                for n in doc["counters"]
            ):
                problems.append(f"no pipeline counter {prefix}*{suffix}")
        for prefix, suffix in PIPELINE_HISTOGRAM_PATTERNS:
            if not any(
                n.startswith(prefix) and n.endswith(suffix)
                for n in doc["histograms"]
            ):
                problems.append(f"no pipeline histogram {prefix}*{suffix}")

    if require_faults:
        for prefix, suffix in FAULT_COUNTER_PATTERNS:
            if not any(
                n.startswith(prefix) and n.endswith(suffix)
                for n in doc["counters"]
            ):
                problems.append(f"no fault counter {prefix}*{suffix}")
        for name in FAULT_POSITIVE_COUNTERS:
            if not doc["counters"].get(name, 0) > 0:
                problems.append(f"counter '{name}' is not > 0")
        for prefix, suffix in FAULT_GAUGE_PATTERNS:
            if not any(
                n.startswith(prefix) and n.endswith(suffix)
                for n in doc["gauges"]
            ):
                problems.append(f"no fault gauge {prefix}*{suffix}")
        for name in FAULT_HISTOGRAM_NAMES:
            if name not in doc["histograms"]:
                problems.append(f"no fault histogram '{name}'")
        for prefix, suffix in FAULT_HISTOGRAM_PATTERNS:
            if not any(
                n.startswith(prefix) and n.endswith(suffix)
                for n in doc["histograms"]
            ):
                problems.append(f"no fault histogram {prefix}*{suffix}")
    return problems


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="+", help="snapshot JSON files")
    parser.add_argument(
        "--require-pipeline",
        action="store_true",
        help="also require block-cache/link/scheduler/page-turn families",
    )
    parser.add_argument(
        "--require-faults",
        action="store_true",
        help="also require fault-injection/retry/breaker families with "
        "nonzero fault and retry counts",
    )
    args = parser.parse_args(argv)

    failed = False
    for path in args.files:
        try:
            with open(path, "r", encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as err:
            print(f"{path}: FAIL: {err}")
            failed = True
            continue
        problems = validate(
            doc,
            require_pipeline=args.require_pipeline,
            require_faults=args.require_faults,
        )
        if problems:
            failed = True
            print(f"{path}: FAIL")
            for problem in problems:
                print(f"  - {problem}")
        else:
            counters = len(doc["counters"])
            gauges = len(doc["gauges"])
            histograms = len(doc["histograms"])
            print(
                f"{path}: OK (bench={doc['bench']!r}, {counters} counters, "
                f"{gauges} gauges, {histograms} histograms)"
            )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
