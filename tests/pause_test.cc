#include "minos/voice/pause.h"

#include <gtest/gtest.h>

#include "minos/text/markup.h"
#include "minos/voice/synthesizer.h"

namespace minos::voice {
namespace {

VoiceTrack MakeTrack(std::string_view markup, SpeakerParams params = {}) {
  text::MarkupParser parser;
  auto doc = parser.Parse(markup);
  EXPECT_TRUE(doc.ok());
  SpeechSynthesizer synth(params);
  auto track = synth.Synthesize(*doc);
  EXPECT_TRUE(track.ok());
  return std::move(track).value();
}

constexpr char kSpeech[] =
    ".PP\nThe quick brown fox jumps over the lazy dog today. Pack my box "
    "with five dozen liquor jugs now.\n"
    ".PP\nHow vexingly quick daft zebras jump around. Sphinx of black "
    "quartz judge my vow.\n"
    ".PP\nFinal paragraph with several closing words here.\n";

TEST(PauseDetectorTest, DetectsMostTrueSilences) {
  const VoiceTrack track = MakeTrack(kSpeech);
  PauseDetector detector;
  const std::vector<Pause> pauses = detector.Detect(track.pcm);
  // Every synthesized silence >= min_pause should be found (energy floor
  // is far below the threshold).
  size_t expected = 0;
  const size_t min_pause =
      track.pcm.MicrosToSamples(static_cast<Micros>(
          detector.params().min_pause_ms * 1000));
  for (const SilenceTruth& s : track.silences) {
    if (s.samples.length() >= 2 * min_pause) ++expected;
  }
  EXPECT_GE(pauses.size(), expected * 8 / 10);
}

TEST(PauseDetectorTest, PausesAlignWithTrueSilences) {
  const VoiceTrack track = MakeTrack(kSpeech);
  PauseDetector detector;
  const std::vector<Pause> pauses = detector.Detect(track.pcm);
  ASSERT_FALSE(pauses.empty());
  int aligned = 0;
  for (const Pause& p : pauses) {
    const size_t mid = p.samples.begin + p.length() / 2;
    for (const SilenceTruth& s : track.silences) {
      if (s.samples.Contains(mid)) {
        ++aligned;
        break;
      }
    }
  }
  // At least 90% of detected pauses sit inside a true silence.
  EXPECT_GE(aligned * 10, static_cast<int>(pauses.size()) * 9);
}

TEST(PauseDetectorTest, PausesAreOrderedAndDisjoint) {
  const VoiceTrack track = MakeTrack(kSpeech);
  PauseDetector detector;
  const std::vector<Pause> pauses = detector.Detect(track.pcm);
  for (size_t i = 1; i < pauses.size(); ++i) {
    EXPECT_GE(pauses[i].samples.begin, pauses[i - 1].samples.end);
  }
}

TEST(PauseDetectorTest, EmptyBufferNoPauses) {
  PcmBuffer pcm(8000);
  PauseDetector detector;
  EXPECT_TRUE(detector.Detect(pcm).empty());
}

TEST(PauseDetectorTest, AllSilenceIsOnePause) {
  PcmBuffer pcm(8000);
  pcm.AppendConstant(8000, 0);
  PauseDetector detector;
  const auto pauses = detector.Detect(pcm);
  ASSERT_EQ(pauses.size(), 1u);
  EXPECT_EQ(pauses[0].samples.begin, 0u);
  EXPECT_EQ(pauses[0].samples.end, 8000u);
}

TEST(PauseContextTest, SplitsShortFromLong) {
  const VoiceTrack track = MakeTrack(kSpeech);
  PauseDetector detector;
  const auto pauses = detector.Detect(track.pcm);
  const PauseContext ctx = detector.SampleContext(
      track.pcm, pauses, track.pcm.size() / 2, track.pcm.size());
  EXPECT_GT(ctx.sampled_pauses, 4u);
  EXPECT_GT(ctx.long_mean_ms, ctx.short_mean_ms);
  EXPECT_GT(ctx.split_ms, ctx.short_mean_ms);
  EXPECT_LT(ctx.split_ms, ctx.long_mean_ms);
  // With default speaker params, word pauses ~70ms, paragraph ~950ms.
  EXPECT_LT(ctx.short_mean_ms, 400.0);
  EXPECT_GT(ctx.long_mean_ms, 300.0);
}

TEST(PauseContextTest, EmptyPausesYieldEmptyContext) {
  PcmBuffer pcm(8000);
  pcm.AppendConstant(100, 20000);
  PauseDetector detector;
  const PauseContext ctx = detector.SampleContext(pcm, {}, 0, 100);
  EXPECT_EQ(ctx.sampled_pauses, 0u);
  EXPECT_DOUBLE_EQ(ctx.split_ms, 0.0);
}

class RewindTest : public ::testing::Test {
 protected:
  RewindTest() : track_(MakeTrack(kSpeech)) {
    pauses_ = detector_.Detect(track_.pcm);
    context_ = detector_.SampleContext(track_.pcm, pauses_,
                                       track_.pcm.size(), track_.pcm.size());
  }
  VoiceTrack track_;
  PauseDetector detector_;
  std::vector<Pause> pauses_;
  PauseContext context_;
};

TEST_F(RewindTest, OneShortPauseBackLandsJustBehind) {
  const size_t from = track_.pcm.size();
  auto target = detector_.RewindPauses(track_.pcm, pauses_, context_, from,
                                       1, PauseKind::kShort);
  ASSERT_TRUE(target.ok());
  EXPECT_LT(*target, from);
  // The landing point is the end of a detected pause.
  bool is_pause_end = false;
  for (const Pause& p : pauses_) {
    if (p.samples.end == *target) is_pause_end = true;
  }
  EXPECT_TRUE(is_pause_end);
}

TEST_F(RewindTest, MorePausesRewindFurther) {
  const size_t from = track_.pcm.size();
  auto one = detector_.RewindPauses(track_.pcm, pauses_, context_, from, 1,
                                    PauseKind::kShort);
  auto three = detector_.RewindPauses(track_.pcm, pauses_, context_, from,
                                      3, PauseKind::kShort);
  ASSERT_TRUE(one.ok());
  ASSERT_TRUE(three.ok());
  EXPECT_LT(*three, *one);
}

TEST_F(RewindTest, LongPauseRewindSkipsWordPauses) {
  const size_t from = track_.pcm.size();
  auto long_rewind = detector_.RewindPauses(track_.pcm, pauses_, context_,
                                            from, 1, PauseKind::kLong);
  ASSERT_TRUE(long_rewind.ok());
  // The long pause is the paragraph boundary; its landing point is close
  // to a truth silence of level >= 1.
  bool near_boundary = false;
  for (const SilenceTruth& s : track_.silences) {
    if (s.level >= 1) {
      const int64_t d = static_cast<int64_t>(*long_rewind) -
                        static_cast<int64_t>(s.samples.end);
      if (d >= -2000 && d <= 2000) near_boundary = true;
    }
  }
  EXPECT_TRUE(near_boundary);
}

TEST_F(RewindTest, TooManyPausesIsOutOfRange) {
  auto target = detector_.RewindPauses(track_.pcm, pauses_, context_,
                                       track_.pcm.size(), 10000,
                                       PauseKind::kShort);
  EXPECT_TRUE(target.status().IsOutOfRange());
}

TEST_F(RewindTest, InvalidCountRejected) {
  auto target = detector_.RewindPauses(track_.pcm, pauses_, context_, 100,
                                       0, PauseKind::kShort);
  EXPECT_TRUE(target.status().IsInvalidArgument());
}

TEST_F(RewindTest, RewindFromStartIsOutOfRange) {
  auto target = detector_.RewindPauses(track_.pcm, pauses_, context_, 0, 1,
                                       PauseKind::kShort);
  EXPECT_TRUE(target.status().IsOutOfRange());
}

// Sweep: detection keeps working across speaker rates and noise floors.
struct SpeakerCase {
  double word_pause_ms;
  double noise_floor;
};

class PauseSweep : public ::testing::TestWithParam<SpeakerCase> {};

TEST_P(PauseSweep, DetectionSurvivesSpeakerVariation) {
  SpeakerParams params;
  params.word_pause_ms = GetParam().word_pause_ms;
  params.noise_floor = GetParam().noise_floor;
  const VoiceTrack track = MakeTrack(kSpeech, params);
  PauseDetector detector;
  const auto pauses = detector.Detect(track.pcm);
  EXPECT_GT(pauses.size(), 3u);
}

INSTANTIATE_TEST_SUITE_P(
    Speakers, PauseSweep,
    ::testing::Values(SpeakerCase{50, 0.01}, SpeakerCase{80, 0.02},
                      SpeakerCase{120, 0.03}, SpeakerCase{60, 0.04}));

}  // namespace
}  // namespace minos::voice
