// The sharded-archive router: deterministic placement, scatter/gather
// merge ordering, breaker-driven failover to replicas, heal-time
// rebalancing, whole-chain loss degrading the presentation, and the
// prefetch pipeline exercising the scheduler's background lane.

#include "minos/server/shard_router.h"

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "minos/core/visual_browser.h"
#include "minos/server/workstation.h"
#include "minos/storage/request_scheduler.h"
#include "minos/text/formatter.h"
#include "minos/text/markup.h"

namespace minos::server {
namespace {

using object::MultimediaObject;
using object::VisualPageSpec;
using storage::ObjectId;

// --- Placement ---------------------------------------------------------

TEST(ShardPlacementTest, HashPlacementIsDeterministicAndSpreads) {
  ShardPlacement hash = HashPlacement();
  std::set<size_t> used;
  for (ObjectId id = 1; id <= 64; ++id) {
    const size_t shard = hash(id, 4);
    EXPECT_EQ(shard, hash(id, 4)) << "id " << id;  // Pure function.
    EXPECT_LT(shard, 4u);
    used.insert(shard);
  }
  // 64 consecutive ids must land on every one of 4 shards.
  EXPECT_EQ(used.size(), 4u);
}

TEST(ShardPlacementTest, RangePlacementPartitionsByIdWithClamp) {
  ShardPlacement range = RangePlacement(6);
  EXPECT_EQ(range(0, 4), 0u);
  EXPECT_EQ(range(5, 4), 0u);
  EXPECT_EQ(range(6, 4), 1u);
  EXPECT_EQ(range(17, 4), 2u);
  EXPECT_EQ(range(23, 4), 3u);
  EXPECT_EQ(range(1000, 4), 3u);  // Overflow clamps to the last shard.
}

// --- A sharded stack ---------------------------------------------------

/// One shard's full server stack: its own device, archiver, versions and
/// link, so per-shard faults and breakers stay independent.
struct ShardStack {
  explicit ShardStack(SimClock* clock)
      : device("shard", 65536, 512, storage::DeviceCostModel::Instant(),
               true, clock),
        cache(256),
        archiver(&device, &cache),
        link(Link::Ethernet(clock)),
        server(&archiver, &versions, clock, &link) {}

  storage::BlockDevice device;
  storage::BlockCache cache;
  storage::Archiver archiver;
  storage::VersionStore versions;
  Link link;
  ObjectServer server;
};

class ShardRouterTest : public ::testing::Test {
 protected:
  /// Builds `n` shard stacks and a router over them (replication 2,
  /// range placement of `ids_per_shard` for predictable primaries).
  void BuildShards(size_t n, uint64_t ids_per_shard) {
    for (size_t i = 0; i < n; ++i) {
      stacks_.push_back(std::make_unique<ShardStack>(&clock_));
    }
    std::vector<ObjectServer*> servers;
    for (auto& stack : stacks_) servers.push_back(&stack->server);
    router_.emplace(servers, &clock_, RangePlacement(ids_per_shard),
                    ShardRouterOptions{});
  }

  MultimediaObject TextObject(ObjectId id, const std::string& body) {
    MultimediaObject obj(id);
    text::MarkupParser parser;
    auto doc = parser.Parse(".PP\n" + body + "\n");
    EXPECT_TRUE(doc.ok());
    EXPECT_TRUE(obj.SetTextPart(std::move(doc).value()).ok());
    VisualPageSpec page;
    page.text_page = 1;
    obj.descriptor().pages.push_back(page);
    EXPECT_TRUE(obj.Archive().ok());
    return obj;
  }

  /// Trips shard `i`'s breaker open by recording failures directly.
  void TripBreaker(size_t i, int threshold = 3) {
    CircuitBreaker::Options options;
    options.failure_threshold = threshold;
    stacks_[i]->link.ConfigureBreaker(options);
    for (int f = 0; f < threshold; ++f) {
      stacks_[i]->link.breaker().RecordFailure();
    }
    ASSERT_EQ(stacks_[i]->link.breaker().state(),
              CircuitBreaker::State::kOpen);
  }

  static int64_t Count(const std::string& name) {
    return static_cast<int64_t>(
        obs::MetricsRegistry::Default().counter(name)->value());
  }

  SimClock clock_;
  std::vector<std::unique_ptr<ShardStack>> stacks_;
  std::optional<ShardRouter> router_;
};

TEST_F(ShardRouterTest, StoreReplicatesOntoTheNextShardInRingOrder) {
  BuildShards(3, 10);
  ASSERT_TRUE(router_->Store(TextObject(12, "replicated body")).ok());
  // Primary of 12 under RangePlacement(10) is shard 1; replica on 2.
  EXPECT_EQ(router_->PrimaryOf(12), 1u);
  EXPECT_EQ(stacks_[0]->server.object_count(), 0u);
  EXPECT_EQ(stacks_[1]->server.object_count(), 1u);
  EXPECT_EQ(stacks_[2]->server.object_count(), 1u);
}

TEST_F(ShardRouterTest, ScatterGatherMergesAscendingAndDedupsReplicas) {
  BuildShards(3, 10);
  // Interleave ids across shards; every object matches "common".
  for (ObjectId id : {25u, 3u, 14u, 21u, 8u, 17u}) {
    ASSERT_TRUE(
        router_->Store(TextObject(id, "common body " + std::to_string(id)))
            .ok());
  }
  const std::vector<ObjectId> ids = router_->QueryAll({"common"});
  // Replication 2 indexes each object on two shards; the gather must
  // still report each id once, in ascending order.
  EXPECT_EQ(ids, (std::vector<ObjectId>{3, 8, 14, 17, 21, 25}));

  auto cards = router_->GatherCards({"common"});
  ASSERT_TRUE(cards.ok());
  ASSERT_EQ(cards->size(), 6u);
  for (size_t i = 1; i < cards->size(); ++i) {
    EXPECT_LT((*cards)[i - 1].id, (*cards)[i].id);
  }
}

TEST_F(ShardRouterTest, GatherAdvancesByTheSlowestShardNotTheSum) {
  BuildShards(2, 10);
  for (ObjectId id : {1u, 2u, 11u, 12u}) {
    ASSERT_TRUE(
        router_->Store(TextObject(id, "parallel body")).ok());
  }
  // Replication 2 over 2 shards puts every object on both, so one
  // shard's serial gather builds all four cards — the no-overlap cost.
  const Micros start = clock_.Now();
  auto serial = stacks_[0]->server.GatherCards({"parallel"});
  ASSERT_TRUE(serial.ok());
  ASSERT_EQ(serial->size(), 4u);
  const Micros serial_cost = clock_.Now() - start;
  clock_.RewindTo(start);
  // The scattered gather splits the ids by primary (two cards per
  // shard) and overlaps the shards: the clock advances by the slowest
  // shard — about half the serial cost, strictly less than all of it.
  auto cards = router_->GatherCards({"parallel"});
  ASSERT_TRUE(cards.ok());
  ASSERT_EQ(cards->size(), 4u);
  const Micros gathered_cost = clock_.Now() - start;
  EXPECT_GT(gathered_cost, 0);
  EXPECT_LT(gathered_cost, serial_cost);
}

TEST_F(ShardRouterTest, OpenBreakerFailsReadsOverToTheReplica) {
  BuildShards(2, 10);
  ASSERT_TRUE(router_->Store(TextObject(5, "failover body")).ok());
  ASSERT_EQ(router_->PrimaryOf(5), 0u);

  const int64_t failovers_before = Count("router.failovers_total");
  TripBreaker(0);
  EXPECT_FALSE(router_->IsLive(0));
  EXPECT_TRUE(router_->IsLive(1));
  EXPECT_EQ(router_->live_count(), 1u);

  // The read routes to the replica on shard 1 and succeeds.
  auto fetched = router_->Fetch(5);
  ASSERT_TRUE(fetched.ok());
  EXPECT_NE(fetched->text_part().contents().find("failover"),
            std::string::npos);
  EXPECT_GT(Count("router.failovers_total"), failovers_before);
  EXPECT_EQ(router_->RouteLink(5), &stacks_[1]->link);
}

TEST_F(ShardRouterTest, InjectedLinkFaultsTripTheBreakerAndFailOver) {
  BuildShards(2, 10);
  ASSERT_TRUE(router_->Store(TextObject(5, "injected body")).ok());
  // Every transfer on shard 0 drops; a low threshold opens its breaker
  // during the first fetch attempt's retries.
  FaultProfile profile;
  profile.drop_rate = 1.0;
  FaultInjector injector(profile, 7, &clock_);
  stacks_[0]->link.SetFaultInjector(&injector);
  CircuitBreaker::Options options;
  options.failure_threshold = 3;
  stacks_[0]->link.ConfigureBreaker(options);

  auto fetched = router_->Fetch(5);
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(stacks_[0]->link.breaker().state(),
            CircuitBreaker::State::kOpen);
  EXPECT_GT(injector.faults_injected(), 0u);
  // Subsequent reads route straight to the replica without touching the
  // dead link.
  const uint64_t faults_before = injector.faults_injected();
  ASSERT_TRUE(router_->Fetch(5).ok());
  EXPECT_EQ(injector.faults_injected(), faults_before);
}

TEST_F(ShardRouterTest, CooledDownShardGetsProbedAndHeals) {
  BuildShards(2, 10);
  ASSERT_TRUE(router_->Store(TextObject(5, "healing body")).ok());
  TripBreaker(0);
  ASSERT_FALSE(router_->IsLive(0));
  const int64_t healed_before = Count("router.shards_healed_total");

  // Past the cooldown the routing table readmits the shard for its
  // half-open probe...
  clock_.Advance(stacks_[0]->link.breaker().options().cooldown_us);
  EXPECT_TRUE(router_->IsLive(0));
  EXPECT_GT(Count("router.shards_healed_total"), healed_before);
  // ...and the probe read (no injector: the link works) closes the
  // breaker, rebalancing routing back onto the primary.
  ASSERT_TRUE(router_->Fetch(5).ok());
  EXPECT_EQ(stacks_[0]->link.breaker().state(),
            CircuitBreaker::State::kClosed);
  EXPECT_EQ(router_->RouteLink(5), &stacks_[0]->link);
}

TEST_F(ShardRouterTest, WholeChainLossDegradesInsteadOfCrashing) {
  BuildShards(2, 10);
  ASSERT_TRUE(
      router_->Store(TextObject(5, "unreachable degradation body")).ok());

  render::Screen screen;
  Workstation workstation(&*router_, &screen, &clock_);
  // Query while healthy: the miniature thumbs land in the session cache.
  auto browser = workstation.Query({"unreachable"});
  ASSERT_TRUE(browser.ok());
  ASSERT_EQ(browser->size(), 1u);

  TripBreaker(0);
  TripBreaker(1);
  EXPECT_EQ(router_->live_count(), 0u);
  EXPECT_EQ(router_->RouteLink(5), nullptr);
  EXPECT_TRUE(router_->Fetch(5).status().IsUnavailable());

  // The view retrieval degrades to the cached miniature thumb and the
  // substitution is recorded — no crash, no empty screen.
  auto region = workstation.FetchImageRegion(5, 0, image::Rect{0, 0, 8, 8});
  ASSERT_TRUE(region.ok());
  ASSERT_FALSE(workstation.presentation().degraded_parts().empty());

  // Queries served by zero shards return empty, not an error.
  EXPECT_TRUE(router_->QueryAll({"unreachable"}).empty());
  auto cards = router_->GatherCards({"unreachable"});
  ASSERT_TRUE(cards.ok());
  EXPECT_TRUE(cards->empty());
}

// --- Scheduler lanes ---------------------------------------------------

/// A paged text object (one visual page per formatted text page).
MultimediaObject PagedObject(ObjectId id, int paragraphs) {
  MultimediaObject obj(id);
  obj.descriptor().layout.width = 48;
  obj.descriptor().layout.height = 12;
  std::string markup;
  for (int i = 0; i < paragraphs; ++i) {
    markup +=
        ".PP\nlane scheduling paragraph long enough to spill across "
        "several formatted pages of the presentation\n";
  }
  text::MarkupParser parser;
  auto doc = parser.Parse(markup);
  EXPECT_TRUE(doc.ok());
  EXPECT_TRUE(obj.SetTextPart(std::move(doc).value()).ok());
  text::TextFormatter formatter(obj.descriptor().layout);
  const size_t pages = formatter.Paginate(obj.text_part()).value().size();
  EXPECT_GE(pages, 2u);
  for (size_t i = 0; i < pages; ++i) {
    VisualPageSpec page;
    page.text_page = static_cast<uint32_t>(i + 1);
    obj.descriptor().pages.push_back(page);
  }
  EXPECT_TRUE(obj.Archive().ok());
  return obj;
}

TEST(SchedulerLaneTest, PrefetchStagingRidesTheBackgroundLane) {
  SimClock clock;
  storage::BlockDevice device("disk", 65536, 512,
                              storage::DeviceCostModel::Instant(), true,
                              &clock);
  // Cache-less archiver: every staging read reaches the device, so the
  // scheduler sees the real miss traffic.
  storage::Archiver archiver(&device, nullptr);
  storage::VersionStore versions;
  Link link = Link::Ethernet(&clock);
  ObjectServer server(&archiver, &versions, &clock, &link);
  obs::MetricsRegistry lanes;
  storage::RequestScheduler scheduler(&device,
                                      storage::SchedulingPolicy::kScan,
                                      &lanes);
  server.SetScheduler(&scheduler);

  ASSERT_TRUE(server.Store(PagedObject(1, 10)).ok());
  render::Screen screen;
  Workstation workstation(&server, &screen, &clock);
  workstation.EnablePrefetch();
  ASSERT_TRUE(workstation.Present(1).ok());
  core::VisualBrowser* browser = workstation.presentation().visual_browser();
  ASSERT_NE(browser, nullptr);
  while (browser->NextPage().ok()) {
  }

  // The foreground page under the cursor staged in the foreground lane;
  // the speculative next/previous pages rode the background lane.
  const double total = lanes.counter("scheduler.scan.requests")->value();
  const double background =
      lanes.counter("scheduler.scan.background_requests")->value();
  EXPECT_GT(total, 0.0);
  EXPECT_GT(background, 0.0);
  EXPECT_LT(background, total);  // Both lanes saw traffic.
}

}  // namespace
}  // namespace minos::server
