// Property sweeps across layouts, editing levels and speakers: the
// symmetric-browsing discrepancy stays bounded by a page of characters;
// reformatting after a synthesis change regenerates the presentation
// form; the workstation can interrupt presentation and return to the
// query interface.

#include <gtest/gtest.h>

#include "minos/core/audio_browser.h"
#include "minos/core/visual_browser.h"
#include "minos/format/object_formatter.h"
#include "minos/server/object_server.h"
#include "minos/server/workstation.h"
#include "minos/text/markup.h"
#include "minos/voice/synthesizer.h"

namespace minos {
namespace {

using object::MultimediaObject;
using object::VisualPageSpec;

std::string ReportMarkup(int paragraphs) {
  std::string markup = ".TITLE Sweep Report\n";
  for (int i = 0; i < paragraphs; ++i) {
    if (i % 4 == 0) {
      markup += ".CHAPTER Part " + std::to_string(i / 4 + 1) + "\n";
    }
    markup += ".PP\n";
    for (int s = 0; s < 3; ++s) {
      markup += "Paragraph " + std::to_string(i) + " sentence " +
                std::to_string(s) + " about browsing multimedia. ";
    }
    markup += "\n";
  }
  return markup;
}

struct SymmetryCase {
  int layout_width;
  int layout_height;
  voice::EditingLevel level;
  uint64_t speaker_seed;
};

class SymmetrySweep : public ::testing::TestWithParam<SymmetryCase> {};

TEST_P(SymmetrySweep, UnitNavigationAgreesWithinOnePage) {
  const SymmetryCase param = GetParam();
  text::MarkupParser parser;
  auto doc = parser.Parse(ReportMarkup(12));
  ASSERT_TRUE(doc.ok());

  MultimediaObject visual(1);
  visual.descriptor().layout.width = param.layout_width;
  visual.descriptor().layout.height = param.layout_height;
  ASSERT_TRUE(visual.SetTextPart(*doc).ok());
  auto formatted = core::FormatObjectText(visual);
  ASSERT_TRUE(formatted.ok());
  for (size_t i = 0; i < formatted->pages.size(); ++i) {
    VisualPageSpec page;
    page.text_page = static_cast<uint32_t>(i + 1);
    visual.descriptor().pages.push_back(page);
  }
  ASSERT_TRUE(visual.Archive().ok());

  voice::SpeakerParams speaker;
  speaker.seed = param.speaker_seed;
  voice::SpeechSynthesizer synth(speaker);
  auto track = synth.Synthesize(*doc);
  ASSERT_TRUE(track.ok());
  voice::VoiceDocument vdoc(std::move(track).value());
  vdoc.TagFromAlignment(*doc, param.level);
  MultimediaObject audio(2);
  audio.descriptor().driving_mode = object::DrivingMode::kAudio;
  ASSERT_TRUE(audio.SetVoicePart(std::move(vdoc)).ok());
  ASSERT_TRUE(audio.Archive().ok());

  SimClock clock;
  render::Screen screen;
  core::MessagePlayer messages(&clock, voice::SpeakerParams{});
  core::EventLog vlog, alog;
  auto vb = core::VisualBrowser::Open(&visual, &screen, &messages, &clock,
                                      &vlog);
  auto ab = core::AudioBrowser::Open(&audio, &screen, &messages, &clock,
                                     &alog);
  ASSERT_TRUE(vb.ok());
  ASSERT_TRUE(ab.ok());

  const size_t chars_per_page =
      doc->size() / static_cast<size_t>((*vb)->page_count()) + 1;
  // Walk chapters with the same command on both media.
  for (int step = 0; step < 2; ++step) {
    const Status vs = (*vb)->NextUnit(text::LogicalUnit::kChapter);
    const Status as = (*ab)->NextUnit(text::LogicalUnit::kChapter);
    ASSERT_EQ(vs.ok(), as.ok()) << vs.ToString() << " vs " << as.ToString();
    if (!vs.ok()) break;
    auto voice_text =
        audio.voice_part().TextOffsetForSample((*ab)->position());
    ASSERT_TRUE(voice_text.ok());
    const int64_t delta =
        static_cast<int64_t>((*vb)->current_text_offset()) -
        static_cast<int64_t>(*voice_text);
    EXPECT_LE(std::abs(delta), static_cast<int64_t>(2 * chars_per_page));
  }
}

INSTANTIATE_TEST_SUITE_P(
    LayoutsLevelsSpeakers, SymmetrySweep,
    ::testing::Values(
        SymmetryCase{40, 8, voice::EditingLevel::kChapters, 1},
        SymmetryCase{40, 8, voice::EditingLevel::kFull, 1},
        SymmetryCase{64, 20, voice::EditingLevel::kChapters, 2},
        SymmetryCase{64, 20, voice::EditingLevel::kSections, 3},
        SymmetryCase{24, 5, voice::EditingLevel::kChapters, 4},
        SymmetryCase{80, 30, voice::EditingLevel::kFull, 5}));

TEST(ReformatTest, SynthesisChangeRegeneratesPresentation) {
  // §4: changing the synthesis file means the descriptor and composition
  // are recreated by re-running the formatter.
  format::ObjectWorkspace ws("evolving");
  ws.SetSynthesis(".PP\nshort body\n");
  format::ObjectFormatter formatter;
  auto v1 = formatter.Format(ws, 1);
  ASSERT_TRUE(v1.ok());
  const size_t pages_before = v1->descriptor().pages.size();

  std::string longer = "@LAYOUT 40 6\n";
  for (int i = 0; i < 30; ++i) {
    longer += ".PP\nparagraph " + std::to_string(i) +
              " with a good amount of text to fill lines\n";
  }
  ws.SetSynthesis(longer);
  auto v2 = formatter.Format(ws, 1);
  ASSERT_TRUE(v2.ok());
  EXPECT_GT(v2->descriptor().pages.size(), pages_before);
  EXPECT_EQ(v2->descriptor().layout.width, 40);
}

TEST(WorkstationFlowTest, InterruptPresentationReturnToQuery) {
  // §5: "The user may interrupt this process and return back to the
  // sequential browsing interface or to the query specification
  // interface to refine his filter."
  SimClock clock;
  storage::BlockDevice device("optical", 1 << 14, 512,
                              storage::DeviceCostModel::Instant(), true,
                              &clock);
  storage::BlockCache cache(128);
  storage::Archiver archiver(&device, &cache);
  storage::VersionStore versions;
  server::Link link = server::Link::Ethernet(&clock);
  server::ObjectServer server(&archiver, &versions, &clock, &link);

  text::MarkupParser parser;
  for (uint64_t id = 1; id <= 3; ++id) {
    MultimediaObject obj(id);
    auto doc = parser.Parse(".PP\nshared keyword plus body " +
                            std::to_string(id) + "\n");
    ASSERT_TRUE(obj.SetTextPart(std::move(doc).value()).ok());
    VisualPageSpec page;
    page.text_page = 1;
    obj.descriptor().pages.push_back(page);
    ASSERT_TRUE(obj.Archive().ok());
    ASSERT_TRUE(server.Store(obj).ok());
  }

  render::Screen screen;
  server::Workstation workstation(&server, &screen, &clock);
  auto first_query = workstation.Query({"shared"});
  ASSERT_TRUE(first_query.ok());
  ASSERT_EQ(first_query->size(), 3u);
  ASSERT_TRUE(workstation.Present(first_query->Select().value()).ok());
  ASSERT_TRUE(workstation.presentation().is_open());

  // Interrupt: refine the filter and browse the new result set; the
  // presentation session is simply replaced on the next Present.
  auto refined = workstation.Query({"shared", "2"});
  ASSERT_TRUE(refined.ok());
  ASSERT_EQ(refined->size(), 1u);
  ASSERT_TRUE(workstation.Present(refined->Select().value()).ok());
  auto current = workstation.presentation().CurrentObject();
  ASSERT_TRUE(current.ok());
  EXPECT_EQ((*current)->id(), 2u);
  EXPECT_EQ(workstation.presentation().depth(), 1u);
}

}  // namespace
}  // namespace minos
