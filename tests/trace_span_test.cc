#include "minos/obs/trace.h"

#include <utility>

#include "gtest/gtest.h"
#include "minos/obs/metrics.h"
#include "minos/util/clock.h"

namespace minos::obs {
namespace {

TEST(TraceSpanTest, RecordsSimClockDurations) {
  SimClock clock(100);
  Tracer tracer(&clock);
  {
    TraceSpan span = tracer.StartSpan("fetch");
    clock.Advance(250);
  }
  ASSERT_EQ(tracer.spans().size(), 1u);
  const SpanRecord& rec = tracer.spans()[0];
  EXPECT_EQ(rec.name, "fetch");
  EXPECT_EQ(rec.start_us, 100);
  EXPECT_EQ(rec.end_us, 350);
  EXPECT_EQ(rec.duration_us(), 250);
  EXPECT_EQ(rec.depth, 0);
  EXPECT_EQ(rec.parent, -1);
  EXPECT_EQ(tracer.open_depth(), 0);
}

TEST(TraceSpanTest, NestedSpansTrackDepthAndParent) {
  SimClock clock;
  Tracer tracer(&clock);
  {
    TraceSpan outer = tracer.StartSpan("open");
    clock.Advance(10);
    {
      TraceSpan inner = tracer.StartSpan("enter");
      EXPECT_EQ(tracer.open_depth(), 2);
      clock.Advance(5);
    }
    clock.Advance(10);
    TraceSpan sibling = tracer.StartSpan("tour");
    clock.Advance(1);
    sibling.End();
  }
  // Records are kept in start order: open, enter, tour.
  ASSERT_EQ(tracer.spans().size(), 3u);
  EXPECT_EQ(tracer.spans()[0].name, "open");
  EXPECT_EQ(tracer.spans()[0].depth, 0);
  EXPECT_EQ(tracer.spans()[0].parent, -1);
  EXPECT_EQ(tracer.spans()[1].name, "enter");
  EXPECT_EQ(tracer.spans()[1].depth, 1);
  EXPECT_EQ(tracer.spans()[1].parent, 0);
  EXPECT_EQ(tracer.spans()[2].name, "tour");
  EXPECT_EQ(tracer.spans()[2].depth, 1);
  EXPECT_EQ(tracer.spans()[2].parent, 0);
  // The outer span closed last and covers the whole interval.
  EXPECT_EQ(tracer.spans()[0].duration_us(), 26);
  EXPECT_EQ(tracer.spans()[1].duration_us(), 5);
}

TEST(TraceSpanTest, EndIsIdempotentAndMoveSafe) {
  SimClock clock;
  Tracer tracer(&clock);
  TraceSpan span = tracer.StartSpan("a");
  clock.Advance(3);
  span.End();
  clock.Advance(100);
  span.End();  // No-op.
  TraceSpan moved = std::move(span);
  moved.End();  // Moved-from source already finished; still a no-op.
  ASSERT_EQ(tracer.spans().size(), 1u);
  EXPECT_EQ(tracer.spans()[0].duration_us(), 3);

  // A live span survives a move and finishes exactly once.
  TraceSpan b = tracer.StartSpan("b");
  TraceSpan b2 = std::move(b);
  clock.Advance(7);
  b2.End();
  ASSERT_EQ(tracer.spans().size(), 2u);
  EXPECT_EQ(tracer.spans()[1].duration_us(), 7);
}

TEST(TraceSpanTest, MirrorsDurationsIntoRegistryHistogram) {
  SimClock clock;
  MetricsRegistry registry;
  Tracer tracer(&clock);
  tracer.set_metrics_registry(&registry);
  for (int i = 1; i <= 3; ++i) {
    TraceSpan span = tracer.StartSpan("page_turn");
    clock.Advance(i * 10);
  }
  Histogram* h = registry.histogram("span.page_turn_us");
  EXPECT_EQ(h->count(), 3);
  EXPECT_DOUBLE_EQ(h->sum(), 60.0);
}

TEST(TraceSpanTest, ClearWhileOpenIsSafe) {
  SimClock clock;
  Tracer tracer(&clock);
  TraceSpan span = tracer.StartSpan("orphan");
  tracer.Clear();
  EXPECT_EQ(tracer.open_depth(), 0);
  span.End();  // Must not touch the cleared record list.
  EXPECT_TRUE(tracer.spans().empty());
}

TEST(TraceSpanTest, JsonRoundTrip) {
  SimClock clock(7);
  Tracer tracer(&clock);
  {
    TraceSpan outer = tracer.StartSpan("open \"quoted\"");
    clock.Advance(11);
    TraceSpan inner = tracer.StartSpan("enter");
    clock.Advance(2);
    inner.End();
    clock.Advance(1);
  }
  const std::string json = tracer.ToJson();
  auto parsed = Tracer::FromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), tracer.spans().size());
  for (size_t i = 0; i < parsed->size(); ++i) {
    const SpanRecord& a = tracer.spans()[i];
    const SpanRecord& b = (*parsed)[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.start_us, b.start_us);
    EXPECT_EQ(a.end_us, b.end_us);
    EXPECT_EQ(a.depth, b.depth);
    EXPECT_EQ(a.parent, b.parent);
  }
}

TEST(TraceSpanTest, NullClockReadsZero) {
  Tracer tracer;
  {
    TraceSpan span = tracer.StartSpan("no_clock");
  }
  ASSERT_EQ(tracer.spans().size(), 1u);
  EXPECT_EQ(tracer.spans()[0].start_us, 0);
  EXPECT_EQ(tracer.spans()[0].end_us, 0);
}

}  // namespace
}  // namespace minos::obs
